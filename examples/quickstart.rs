//! Quickstart: run DiscoverXFD on the paper's Figure 1 document.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use discoverxfd_suite::prelude::*;
use xfd_datagen::warehouse_figure1;

fn main() {
    // The warehouse document of the paper's Figure 1.
    let doc = warehouse_figure1();
    println!("=== Document ({} nodes) ===", doc.node_count());
    println!("{}", to_xml_string(&doc));

    // Infer the schema (Figure 2) and run the full pipeline.
    let schema = infer_schema(&doc);
    println!("=== Inferred schema (nested relational representation) ===");
    println!("{}", nested_representation(&schema));

    let report = discover(&doc, &DiscoveryConfig::default());

    println!("=== Interesting XML FDs (Definition 10) ===");
    for fd in &report.fds {
        println!("  {fd}");
    }

    println!("\n=== XML Keys (Definition 8) ===");
    for key in &report.keys {
        println!("  {key}");
    }

    println!("\n=== Redundancies (Definition 11) ===");
    for r in &report.redundancies {
        println!(
            "  {}  [{} group(s), {} redundant value(s)]",
            r.fd, r.groups, r.redundant_values
        );
    }

    println!(
        "\nDiscovery visited {} lattice nodes, built {} partitions, created {} partition targets in {:?}.",
        report.stats.lattice.nodes_visited,
        report.stats.lattice.partitions_built,
        report.stats.targets.created,
        report.profile.total(),
    );
}
