//! A realistic bookstore-warehouse audit: scale the paper's running
//! example up, find the redundancies, and quantify what a set-element-blind
//! system (the prior XML FD notions) would have missed.
//!
//! ```sh
//! cargo run --example bookstore_redundancy
//! ```

use discoverxfd_suite::prelude::*;
use xfd_datagen::{warehouse_scaled, WarehouseSpec};
use xfd_relation::SetColumnMode;

fn main() {
    let spec = WarehouseSpec {
        states: 6,
        stores_per_state: 4,
        books_per_store: 15,
        catalog_size: 60,
        chains: 6,
        missing_price: 0.08,
        seed: 2006,
        ..Default::default()
    };
    let doc = warehouse_scaled(&spec);
    println!(
        "Scaled warehouse: {} nodes, {} books",
        doc.node_count(),
        "/warehouse/state/store/book"
            .parse::<Path>()
            .unwrap()
            .resolve_all(&doc)
            .len()
    );

    // Full discovery (set-valued columns on).
    let full = discover(&doc, &DiscoveryConfig::default());
    println!("\n=== With set-element support (this paper) ===");
    summarize(&full);

    // The prior notions: no set-valued columns (FD 3/FD 4-style
    // dependencies become invisible).
    let mut cfg = DiscoveryConfig::default();
    cfg.encode.set_columns = SetColumnMode::None;
    let blind = discover(&doc, &cfg);
    println!("\n=== Without set-element support (prior notions) ===");
    summarize(&blind);

    let missed: Vec<&Redundancy> = full
        .redundancies
        .iter()
        .filter(|r| !blind.redundancies.iter().any(|b| b.fd == r.fd))
        .collect();
    println!(
        "\nRedundancies only visible with set semantics: {}",
        missed.len()
    );
    for r in missed.iter().take(5) {
        println!("  {}  ({} redundant values)", r.fd, r.redundant_values);
    }
}

fn summarize(report: &RunOutcome) {
    println!(
        "  {} interesting FDs, {} keys, {} redundancy findings",
        report.fds.len(),
        report.keys.len(),
        report.redundancies.len()
    );
    let total: usize = report.redundancies.iter().map(|r| r.redundant_values).sum();
    println!("  total redundant values: {total}");
    let mut top: Vec<&Redundancy> = report.redundancies.iter().collect();
    top.sort_by_key(|r| std::cmp::Reverse(r.redundant_values));
    for r in top.iter().take(5) {
        println!("    {}  [{} redundant]", r.fd, r.redundant_values);
    }
    println!("  discovery time: {:?}", report.profile.total());
}
