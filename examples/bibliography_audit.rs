//! Audit a DBLP-like bibliography for duplicated entries: the FD
//! `{@key} → title/year/authors` together with `@key` *not* being an XML
//! key of the entry class means the same publication is stored repeatedly.
//!
//! ```sh
//! cargo run --example bibliography_audit
//! ```

use discoverxfd_suite::prelude::*;
use xfd_datagen::{dblp_like, DblpSpec};

fn main() {
    let doc = dblp_like(&DblpSpec {
        articles: 300,
        inproceedings: 200,
        distinct: 180,
        ..Default::default()
    });
    println!(
        "Bibliography: {} articles, {} inproceedings ({} nodes)",
        "/dblp/article"
            .parse::<Path>()
            .unwrap()
            .resolve_all(&doc)
            .len(),
        "/dblp/inproceedings"
            .parse::<Path>()
            .unwrap()
            .resolve_all(&doc)
            .len(),
        doc.node_count()
    );

    let report = discover(&doc, &DiscoveryConfig::default());

    // Which tuple classes have a natural identifier that fails to be a key?
    println!("\n=== Duplicate-entry indicators ===");
    for r in &report.redundancies {
        let lhs_is_key_attr = r.fd.lhs.iter().any(|p| p.to_string().contains("@key"));
        if lhs_is_key_attr {
            println!(
                "  {}  → {} duplicated group(s), {} redundant value(s)",
                r.fd, r.groups, r.redundant_values
            );
        }
    }

    // Set-element dependencies: author sets determined by the entry key.
    println!("\n=== Set-element dependencies (invisible to prior notions) ===");
    for fd in &report.fds {
        if fd.rhs.to_string() == "./author" {
            println!("  {fd}");
        }
    }

    // Keys discovered for the entry classes.
    println!("\n=== Keys ===");
    for key in report.keys.iter().take(10) {
        println!("  {key}");
    }

    println!(
        "\n{} FDs total, {:?} end to end.",
        report.fds.len(),
        report.profile.total()
    );

    // Cross-snapshot audit: two exports of the bibliography, checked as one
    // collection — constraints must hold across both, and duplicates
    // *between* snapshots surface as redundancy.
    let snapshot_a = dblp_like(&DblpSpec {
        articles: 120,
        inproceedings: 0,
        seed: 11,
        ..Default::default()
    });
    let snapshot_b = dblp_like(&DblpSpec {
        articles: 120,
        inproceedings: 0,
        seed: 12,
        ..Default::default()
    });
    let merged =
        discoverxfd::discover_collection(&[&snapshot_a, &snapshot_b], &DiscoveryConfig::default());
    let cross: usize = merged.redundancies.iter().map(|r| r.redundant_values).sum();
    println!("\n=== Cross-snapshot audit (two exports as one collection) ===");
    println!(
        "  {} FDs survive across snapshots; {} redundant values incl. cross-snapshot duplicates",
        merged.fds.len(),
        cross
    );
}
