//! Dirty-data workflow: approximate discovery finds a dependency that a
//! few typos broke, verification pinpoints the offending nodes, and XNF
//! normalization removes the redundancy once the data is trusted.
//!
//! ```sh
//! cargo run --release --example dirty_data_cleanup
//! ```

use discoverxfd::approximate::discover_approximate_forest;
use discoverxfd::normalize::{apply, suggest};
use discoverxfd::verify::{verify_fd, FdSpec};
use discoverxfd_suite::prelude::*;
use xfd_datagen::{warehouse_scaled, WarehouseSpec};

fn main() {
    // A warehouse with 3% of titles typo'd.
    let dirty = warehouse_scaled(&WarehouseSpec {
        states: 6,
        stores_per_state: 4,
        books_per_store: 12,
        title_noise: 0.03,
        ..Default::default()
    });
    println!("Dirty warehouse: {} nodes", dirty.node_count());

    // 1. Exact discovery misses ISBN → title.
    let exact = discover(&dirty, &DiscoveryConfig::default());
    let target = "{./ISBN} -> ./title w.r.t. C_book";
    let found_exact = exact.fds.iter().any(|f| f.to_string() == target);
    println!("\nExact discovery finds `{target}`: {found_exact}");

    // 2. Approximate discovery recovers it with a small g3 error.
    let (schema, forest) = discoverxfd::driver::encode_only(&dirty, &DiscoveryConfig::default());
    let _ = schema;
    let approx = discover_approximate_forest(&forest, &DiscoveryConfig::default(), 0.1);
    if let Some((fd, err)) = approx.iter().find(|(f, _)| f.to_string() == target) {
        println!("Approximate discovery recovers `{fd}` with g3 error {err:.4}");
    }

    // 3. Verification lists the offending pivot nodes (the typos).
    let spec: FdSpec = target.parse().unwrap();
    let report = verify_fd(&forest, &spec, 5).unwrap();
    println!("\nWitnesses of the violation (book node keys):");
    for v in &report.violations {
        println!("  nodes {} vs {}", v.node1.0, v.node2.0);
    }

    // 4. On the clean dataset, the FD holds, indicates redundancy, and the
    //    XNF decomposition eliminates it.
    let clean = warehouse_scaled(&WarehouseSpec {
        states: 6,
        stores_per_state: 4,
        books_per_store: 12,
        title_noise: 0.0,
        ..Default::default()
    });
    let clean_report = discover(&clean, &DiscoveryConfig::default());
    let suggestions = suggest(&clean_report.redundancies);
    let isbn_sugg = suggestions
        .iter()
        .find(|s| s.key_paths.iter().any(|p| p.to_string() == "./ISBN"))
        .expect("ISBN-keyed suggestion");
    println!("\nApplying: {isbn_sugg}");
    let decomposed = apply(&clean, isbn_sugg).expect("local decomposition");
    let before = clean_report
        .redundancies
        .iter()
        .map(|r| r.redundant_values)
        .sum::<usize>();
    let after_report = discover(&decomposed, &DiscoveryConfig::default());
    let after = after_report
        .redundancies
        .iter()
        .map(|r| r.redundant_values)
        .sum::<usize>();
    println!(
        "Redundant values: {before} before decomposition, {after} after \
         ({} nodes -> {} nodes).",
        clean.node_count(),
        decomposed.node_count()
    );
}
