//! Schema refinement: turn discovered redundancies into XNF-style
//! decomposition suggestions — the workflow the paper's introduction
//! motivates ("the critical first step for analyzing and refining such
//! schemas").
//!
//! ```sh
//! cargo run --example schema_refinement
//! ```

use discoverxfd::normalize::suggest;
use discoverxfd_suite::prelude::*;
use xfd_datagen::{mondial_like, protein_like, MondialSpec, ProteinSpec};

fn main() {
    for (name, doc) in [
        (
            "psd-like protein database",
            protein_like(&ProteinSpec::default()),
        ),
        (
            "mondial-like geography",
            mondial_like(&MondialSpec::default()),
        ),
    ] {
        println!("==============================================");
        println!("Dataset: {name} ({} nodes)", doc.node_count());
        let schema = infer_schema(&doc);
        println!("\nCurrent schema:\n{}", nested_representation(&schema));

        let report = discover(&doc, &DiscoveryConfig::default());
        println!(
            "{} interesting FDs, {} redundancy findings.",
            report.fds.len(),
            report.redundancies.len()
        );

        let suggestions = suggest(&report.redundancies);
        println!("\nRefinement suggestions (largest savings first):");
        for s in suggestions.iter().take(6) {
            println!("  - {s}");
        }
        if suggestions.is_empty() {
            println!("  (none — the schema is already redundancy-free w.r.t. its data)");
        }
        println!();
    }
}
