//! Integration smoke over the standard dataset suite: every generator's
//! injected dependencies must be discovered, the baseline must agree where
//! it is able to, and set-element findings must diverge exactly where the
//! paper says prior notions fail.

use discoverxfd::baseline::{discover_flat, BaselineOptions};
use discoverxfd_suite::prelude::*;
use xfd_datagen::{dblp_like, standard_suite, DblpSpec};

#[test]
fn suite_runs_end_to_end_and_finds_redundancy() {
    for ds in standard_suite() {
        let report = discover(
            &ds.tree,
            &DiscoveryConfig {
                max_lhs_size: Some(3),
                ..Default::default()
            },
        );
        assert!(
            !report.fds.is_empty(),
            "{}: no FDs found in a redundancy-injected dataset",
            ds.name
        );
        assert!(
            !report.redundancies.is_empty(),
            "{}: no redundancies found",
            ds.name
        );
    }
}

#[test]
fn conformance_holds_for_all_generated_datasets() {
    for ds in standard_suite() {
        let schema = infer_schema(&ds.tree);
        assert_eq!(check(&ds.tree, &schema), Ok(()), "{} conformance", ds.name);
    }
}

#[test]
fn dblp_key_attribute_dependencies_are_found() {
    let tree = dblp_like(&DblpSpec::default());
    let report = discover(&tree, &DiscoveryConfig::default());
    let fds: Vec<String> = report.fds.iter().map(|f| f.to_string()).collect();
    assert!(
        fds.contains(&"{./@key} -> ./title w.r.t. C_article".to_string()),
        "{fds:#?}"
    );
    assert!(
        fds.contains(&"{./@key} -> ./author w.r.t. C_article".to_string()),
        "missing the set-element FD: {fds:#?}"
    );
}

#[test]
fn flat_baseline_agrees_on_scalar_fds_and_misses_set_fds() {
    let tree = dblp_like(&DblpSpec {
        articles: 60,
        inproceedings: 0,
        ..Default::default()
    });
    let schema = infer_schema(&tree);
    let report = discover(
        &tree,
        &DiscoveryConfig {
            max_lhs_size: Some(2),
            ..Default::default()
        },
    );
    let flat = discover_flat(
        &tree,
        &schema,
        &BaselineOptions {
            max_lhs: 2,
            ..Default::default()
        },
    )
    .expect("dblp flattens fine (only nested sets)");

    // Scalar FD found by both: @key → title.
    assert!(report
        .fds
        .iter()
        .any(|f| f.to_string() == "{./@key} -> ./title w.r.t. C_article"));
    assert!(
        flat.fds
            .iter()
            .any(|f| f.rhs == "/dblp/article/title"
                && f.lhs == vec!["/dblp/article/@key".to_string()])
    );

    // Set FD found only by DiscoverXFD: @key → author (set).
    assert!(report
        .fds
        .iter()
        .any(|f| f.to_string() == "{./@key} -> ./author w.r.t. C_article"));
    assert!(
        !flat
            .fds
            .iter()
            .any(|f| f.rhs == "/dblp/article/author"
                && f.lhs == vec!["/dblp/article/@key".to_string()]),
        "the flat notion must reject key→author on multi-author data (Sec 2.3)"
    );
}

#[test]
fn mondial_car_code_key_is_discovered() {
    let tree = xfd_datagen::mondial_like(&xfd_datagen::MondialSpec::default());
    let report = discover(&tree, &DiscoveryConfig::default());
    let keys: Vec<String> = report.keys.iter().map(|k| k.to_string()).collect();
    assert!(
        keys.contains(&"Key(C_country: {./@car_code})".to_string()),
        "{keys:#?}"
    );
}

#[test]
fn protein_organism_fd_is_discovered() {
    let tree = xfd_datagen::protein_like(&xfd_datagen::ProteinSpec::default());
    let report = discover(
        &tree,
        &DiscoveryConfig {
            max_lhs_size: Some(2),
            ..Default::default()
        },
    );
    let fds: Vec<String> = report.fds.iter().map(|f| f.to_string()).collect();
    assert!(
        fds.iter().any(|f| f.contains("organism/source")
            && f.contains("-> ./organism/common w.r.t. C_ProteinEntry")),
        "{fds:#?}"
    );
}
