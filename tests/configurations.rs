//! End-to-end behaviour across the configuration space: caps, order
//! modes, complex-column modes, deep chains, and multi-child target
//! routing.

use discoverxfd_suite::prelude::*;
use xfd_relation::{ComplexColumnMode, OrderMode};

#[test]
fn four_level_chain_fd_completion() {
    // country → region → store → book; price determined by (isbn,
    // country tax class) only — propagation through three ancestors.
    let xml = "<w>\
        <country><tax>A</tax>\
          <region><store>\
            <book><isbn>1</isbn><price>10</price></book>\
            <book><isbn>2</isbn><price>30</price></book></store></region>\
          <region><store>\
            <book><isbn>1</isbn><price>10</price></book></store></region>\
        </country>\
        <country><tax>B</tax>\
          <region><store>\
            <book><isbn>1</isbn><price>13</price></book></store></region>\
        </country>\
        </w>";
    let doc = parse(xml).unwrap();
    let report = discover(&doc, &DiscoveryConfig::default());
    let fds: Vec<String> = report.fds.iter().map(|f| f.to_string()).collect();
    assert!(
        fds.iter()
            .any(|f| f.contains("../../../tax") && f.contains("-> ./price")),
        "great-grandparent completion missing: {fds:#?}"
    );
}

#[test]
fn multiple_child_relations_route_targets_to_one_parent() {
    // Books and magazines both live under stores; each contributes its
    // own targets to the store relation.
    let xml = "<w>\
        <store><name>X</name>\
          <book><bi>1</bi><bp>10</bp></book><book><bi>2</bi><bp>20</bp></book>\
          <mag><mi>7</mi><mp>5</mp></mag><mag><mi>8</mi><mp>6</mp></mag></store>\
        <store><name>X</name>\
          <book><bi>1</bi><bp>10</bp></book>\
          <mag><mi>7</mi><mp>5</mp></mag></store>\
        <store><name>Y</name>\
          <book><bi>1</bi><bp>12</bp></book>\
          <mag><mi>7</mi><mp>9</mp></mag></store>\
        </w>";
    let doc = parse(xml).unwrap();
    let report = discover(&doc, &DiscoveryConfig::default());
    let fds: Vec<String> = report.fds.iter().map(|f| f.to_string()).collect();
    assert!(
        fds.contains(&"{./bi, ../name} -> ./bp w.r.t. C_book".to_string()),
        "{fds:#?}"
    );
    assert!(
        fds.contains(&"{./mi, ../name} -> ./mp w.r.t. C_mag".to_string()),
        "{fds:#?}"
    );
}

#[test]
fn target_cap_drops_rather_than_explodes() {
    // A relation whose every edge is a partial FD generates many targets;
    // an absurdly low cap must degrade gracefully (counted, not crashed).
    let mut xml = String::from("<w>");
    for s in 0..6 {
        xml.push_str(&format!("<store><name>n{}</name>", s % 2));
        for b in 0..6 {
            xml.push_str(&format!(
                "<book><i>{}</i><p>{}</p><q>{}</q></book>",
                b % 3,
                (s + b) % 4,
                (s * b) % 5
            ));
        }
        xml.push_str("</store>");
    }
    xml.push_str("</w>");
    let doc = parse(&xml).unwrap();
    let capped = discover(
        &doc,
        &DiscoveryConfig {
            max_partition_targets: 1,
            ..Default::default()
        },
    );
    let full = discover(&doc, &DiscoveryConfig::default());
    assert!(capped.stats.targets.created + capped.stats.targets.dropped_overflow > 0);
    assert!(capped.fds.len() <= full.fds.len());
}

#[test]
fn ordered_mode_changes_set_fd_results_end_to_end() {
    let xml = "<w>\
        <book><i>1</i><a>R</a><a>G</a></book>\
        <book><i>1</i><a>G</a><a>R</a></book>\
        <book><i>2</i><a>R</a></book>\
        </w>";
    let doc = parse(xml).unwrap();
    let unordered = discover(&doc, &DiscoveryConfig::default());
    assert!(unordered
        .fds
        .iter()
        .any(|f| f.to_string() == "{./i} -> ./a w.r.t. C_book"));
    let mut cfg = DiscoveryConfig::default();
    cfg.encode.order = OrderMode::Ordered;
    let ordered = discover(&doc, &cfg);
    assert!(
        !ordered
            .fds
            .iter()
            .any(|f| f.to_string() == "{./i} -> ./a w.r.t. C_book"),
        "list semantics must reject the reordered author sets"
    );
}

#[test]
fn value_class_complex_columns_enable_subtree_fds() {
    // contact subtrees equal ⇔ same class id: with ValueClass mode the FD
    // {./contact} → ./name becomes discoverable.
    let xml = "<w>\
        <store><contact><ph>1</ph><em>a</em></contact><name>X</name></store>\
        <store><contact><em>a</em><ph>1</ph></contact><name>X</name></store>\
        <store><contact><ph>2</ph><em>b</em></contact><name>Y</name></store>\
        </w>";
    let doc = parse(xml).unwrap();
    // Default (NodeKey): contact columns are key-like → no such FD.
    let default = discover(&doc, &DiscoveryConfig::default());
    assert!(!default
        .fds
        .iter()
        .any(|f| f.to_string() == "{./contact} -> ./name w.r.t. C_store"));
    let mut cfg = DiscoveryConfig::default();
    cfg.encode.complex_columns = ComplexColumnMode::ValueClass;
    let vc = discover(&doc, &cfg);
    assert!(
        vc.fds
            .iter()
            .any(|f| f.to_string() == "{./contact} -> ./name w.r.t. C_store"),
        "{:#?}",
        vc.fds.iter().map(|f| f.to_string()).collect::<Vec<_>>()
    );
}

#[test]
fn intra_only_config_still_finds_local_fds() {
    let xml = "<w>\
        <store><name>X</name><book><i>1</i><t>A</t></book>\
          <book><i>1</i><t>A</t></book><book><i>2</i><t>B</t></book></store>\
        </w>";
    let doc = parse(xml).unwrap();
    let cfg = DiscoveryConfig {
        inter_relation: false,
        ..Default::default()
    };
    let report = discover(&doc, &cfg);
    assert!(report
        .fds
        .iter()
        .any(|f| f.to_string() == "{./i} -> ./t w.r.t. C_book"));
    assert_eq!(report.stats.targets.created, 0);
}

#[test]
fn empty_lhs_disabled_suppresses_constant_fds() {
    let xml = "<w><b><x>1</x><y>5</y></b><b><x>1</x><y>6</y></b></w>";
    let doc = parse(xml).unwrap();
    let with = discover(&doc, &DiscoveryConfig::default());
    assert!(
        with.fds
            .iter()
            .any(|f| f.to_string() == "{} -> ./x w.r.t. C_b"),
        "{:#?}",
        with.fds.iter().map(|f| f.to_string()).collect::<Vec<_>>()
    );
    let without = discover(
        &doc,
        &DiscoveryConfig {
            empty_lhs: false,
            ..Default::default()
        },
    );
    assert!(!without.fds.iter().any(|f| f.lhs.is_empty()));
}
