//! System-level invariant: every FD the system reports can be parsed back
//! from its own display string and re-verified to hold, across the whole
//! dataset suite. (Display → parse → resolve → check is the user's
//! copy/paste workflow; it must never disagree with discovery.)

use discoverxfd::verify::{verify_fd, FdSpec};
use discoverxfd_suite::prelude::*;
use xfd_datagen::standard_suite;

#[test]
fn every_reported_fd_reparses_and_reverifies() {
    for ds in standard_suite() {
        let cfg = DiscoveryConfig {
            max_lhs_size: Some(2),
            ..Default::default()
        };
        let report = discover(&ds.tree, &cfg);
        let (_, forest) = discoverxfd::driver::encode_only(&ds.tree, &cfg);
        let mut ambiguous = 0usize;
        for fd in &report.fds {
            let spec: FdSpec = fd
                .to_string()
                .parse()
                .unwrap_or_else(|e| panic!("{}: cannot reparse {fd}: {e}", ds.name));
            match verify_fd(&forest, &spec, 3) {
                Ok(rep) => assert!(
                    rep.holds,
                    "{}: reported FD fails re-verification: {fd}",
                    ds.name
                ),
                // C_<label> shorthand can be ambiguous (xmark has four
                // `item` classes); retry with the full pivot path.
                Err(discoverxfd::verify::VerifyError::AmbiguousClass(_)) => {
                    ambiguous += 1;
                    let full = fd.to_string().replace(
                        &format!("C_{}", discoverxfd::fd::class_name(&fd.tuple_class)),
                        &format!("C_{}", fd.tuple_class),
                    );
                    let spec: FdSpec = full.parse().unwrap();
                    let rep = verify_fd(&forest, &spec, 3).unwrap();
                    assert!(rep.holds, "{}: {fd} fails with full path", ds.name);
                }
                Err(e) => panic!("{}: {fd}: {e}", ds.name),
            }
        }
        // The ambiguity fallback only triggers where same-labeled classes
        // exist (xmark's regional items).
        if ds.name != "xmark-like" {
            assert_eq!(ambiguous, 0, "{}: unexpected ambiguity", ds.name);
        }
    }
}

#[test]
fn every_reported_key_lhs_is_actually_a_key() {
    use discoverxfd::verify::{verify_key, ClassRef};
    for ds in standard_suite() {
        let cfg = DiscoveryConfig {
            max_lhs_size: Some(2),
            ..Default::default()
        };
        let report = discover(&ds.tree, &cfg);
        let (_, forest) = discoverxfd::driver::encode_only(&ds.tree, &cfg);
        for key in &report.keys {
            let class = ClassRef::Path(key.tuple_class.clone());
            let rep = verify_key(&forest, &class, &key.lhs, 3)
                .unwrap_or_else(|e| panic!("{}: {key}: {e}", ds.name));
            assert!(rep.holds, "{}: reported key fails: {key}", ds.name);
        }
    }
}
