//! Property tests for the XNF decomposition executor: applying a
//! suggestion must never lose information and must never increase the
//! redundancy it targets.

use discoverxfd::normalize::{apply, suggest, Suggestion};
use discoverxfd_suite::prelude::*;
use proptest::prelude::*;
use xfd_xml::builder::TreeWriter;
use xfd_xml::DataTree;

/// Random flat book documents: catalog-driven so `isbn → title` holds by
/// construction, with optional missing fields.
#[derive(Debug, Clone)]
struct BookDoc {
    books: Vec<(Option<u8>, bool)>, // (isbn index into catalog, include year)
}

fn doc_strategy() -> impl Strategy<Value = BookDoc> {
    proptest::collection::vec((proptest::option::of(0u8..4), proptest::bool::ANY), 1..10)
        .prop_map(|books| BookDoc { books })
}

fn build(doc: &BookDoc) -> DataTree {
    let mut w = TreeWriter::new("shop");
    for (isbn, include_year) in &doc.books {
        w.open("book");
        if let Some(i) = isbn {
            w.leaf("isbn", &format!("i{i}"));
            w.leaf("title", &format!("T{i}")); // determined by isbn
        }
        if *include_year {
            w.leaf("year", "2006");
        }
        w.close();
    }
    w.finish()
}

/// Multiset of (isbn, title) associations reachable in a document — from
/// the books themselves or from extracted `book_info` elements.
fn associations(tree: &DataTree) -> Vec<(String, String)> {
    let mut out = Vec::new();
    for container in ["/shop/book", "/shop/book_info"] {
        for node in container.parse::<Path>().unwrap().resolve_all(tree) {
            let isbn = tree.child_labeled(node, "isbn").and_then(|n| tree.value(n));
            let title = tree
                .child_labeled(node, "title")
                .and_then(|n| tree.value(n));
            if let (Some(i), Some(t)) = (isbn, title) {
                out.push((i.to_string(), t.to_string()));
            }
        }
    }
    out.sort();
    out.dedup();
    out
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    #[test]
    fn apply_preserves_associations_and_reduces_redundancy(doc in doc_strategy()) {
        let tree = build(&doc);
        let sugg = Suggestion {
            tuple_class: "/shop/book".parse().unwrap(),
            key_paths: vec!["./isbn".parse().unwrap()],
            moved_paths: vec!["./title".parse().unwrap()],
            redundant_values: 0,
        };
        let before = associations(&tree);
        let Ok(decomposed) = apply(&tree, &sugg) else {
            // Only possible when the class matches nothing.
            prop_assert!(tree.children(tree.root()).is_empty());
            return Ok(());
        };
        let after = associations(&decomposed);
        prop_assert_eq!(&before, &after, "associations changed");

        // The targeted redundancy is gone: no two book_info share an isbn,
        // and books keep no title when they have an isbn.
        for info in "/shop/book_info".parse::<Path>().unwrap().resolve_all(&decomposed) {
            prop_assert!(decomposed.child_labeled(info, "isbn").is_some());
        }
        for book in "/shop/book".parse::<Path>().unwrap().resolve_all(&decomposed) {
            if decomposed.child_labeled(book, "isbn").is_some() {
                prop_assert!(decomposed.child_labeled(book, "title").is_none());
            }
        }
        // Node count never grows beyond the original plus one info element
        // (key+moved copies) per distinct key.
        prop_assert!(decomposed.node_count() <= tree.node_count() + 3 * 4 + 4);
    }

    #[test]
    fn suggestions_from_discovery_are_always_applicable_or_inter(doc in doc_strategy()) {
        let tree = build(&doc);
        let report = discover(&tree, &DiscoveryConfig::default());
        for s in suggest(&report.redundancies) {
            let local = s
                .key_paths
                .iter()
                .chain(&s.moved_paths)
                .all(|p| !p.to_string().starts_with(".."));
            if local {
                prop_assert!(apply(&tree, &s).is_ok(), "local suggestion failed: {s}");
            }
        }
    }
}
