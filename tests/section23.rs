//! Executable reproduction of the paper's Section 2.3: the three XML FD
//! notions compared on the Figure 1 document, constraint by constraint.
//!
//! | Constraint | path-based [24] | tree-tuple [3] | GTT (this paper) |
//! |---|---|---|---|
//! | 1 (ISBN → title)            | holds    | holds    | holds |
//! | 2 (chain name, ISBN → price)| holds    | holds    | holds |
//! | 3 (ISBN → author *set*)     | VIOLATED | VIOLATED | holds |
//! | 4 (author set, title → ISBN)| —        | VIOLATED | holds |

use discoverxfd::pathfd::path_fd_holds;
use discoverxfd::verify::{verify_fd, FdSpec};
use discoverxfd_suite::prelude::*;
use xfd_datagen::warehouse_figure1;
use xfd_relation::flatten;

fn p(s: &str) -> Path {
    s.parse().unwrap()
}

/// Tree-tuple semantics [3]: an FD over the fully unnested relation of
/// tree tuples, with strong null satisfaction — exactly our flat
/// representation.
fn tree_tuple_fd_holds(tree: &xfd_xml::DataTree, lhs: &[&str], rhs: &str) -> bool {
    let schema = infer_schema(tree);
    let flat = flatten(tree, &schema, 1_000_000).unwrap();
    let lhs_cols: Vec<usize> = lhs
        .iter()
        .map(|p| flat.column_by_path(p).expect("lhs column"))
        .collect();
    let rhs_col = flat.column_by_path(rhs).expect("rhs column");
    for r1 in 0..flat.n_rows() {
        for r2 in r1 + 1..flat.n_rows() {
            let agree = lhs_cols.iter().all(|&c| {
                let a = flat.column_cells(c)[r1];
                a.is_some() && a == flat.column_cells(c)[r2]
            });
            if agree {
                let a = flat.column_cells(rhs_col)[r1];
                let b = flat.column_cells(rhs_col)[r2];
                if a.is_none() || a != b {
                    return false;
                }
            }
        }
    }
    true
}

/// GTT semantics (this paper): checked through the verifier.
fn gtt_holds(tree: &xfd_xml::DataTree, spec: &str) -> bool {
    let schema = infer_schema(tree);
    let forest = encode(tree, &schema, &EncodeConfig::default());
    let spec: FdSpec = spec.parse().unwrap();
    verify_fd(&forest, &spec, 1).unwrap().holds
}

#[test]
fn constraint_1_all_three_notions_agree() {
    let t = warehouse_figure1();
    assert!(
        path_fd_holds(
            &t,
            &[p("/warehouse/state/store/book/ISBN")],
            &p("/warehouse/state/store/book/title")
        )
        .holds
    );
    assert!(tree_tuple_fd_holds(
        &t,
        &["/warehouse/state/store/book/ISBN"],
        "/warehouse/state/store/book/title"
    ));
    assert!(gtt_holds(&t, "{./ISBN} -> ./title w.r.t. C_book"));
}

#[test]
fn constraint_2_all_three_notions_agree() {
    let t = warehouse_figure1();
    assert!(
        path_fd_holds(
            &t,
            &[
                p("/warehouse/state/store/contact/name"),
                p("/warehouse/state/store/book/ISBN")
            ],
            &p("/warehouse/state/store/book/price")
        )
        .holds
    );
    assert!(gtt_holds(
        &t,
        "{../contact/name, ./ISBN} -> ./price w.r.t. C_book"
    ));

    // Tree-tuple nuance the paper glosses over: book 80's *missing* price
    // expands into two author-tuples that agree on the LHS with ⊥ RHS, so
    // strict strong satisfaction declares Constraint 2 violated on the
    // unnested Figure 1 — one more artifact of tuple multiplication.
    assert!(!tree_tuple_fd_holds(
        &t,
        &[
            "/warehouse/state/store/contact/name",
            "/warehouse/state/store/book/ISBN"
        ],
        "/warehouse/state/store/book/price"
    ));
    // On a price-complete variant all three notions agree.
    let mut complete = warehouse_figure1();
    let books = "/warehouse/state/store/book"
        .parse::<Path>()
        .unwrap()
        .resolve_all(&complete);
    for b in books {
        if complete.child_labeled(b, "price").is_none() {
            let price = complete.add_child(b, "price");
            complete.set_value(price, "59.99");
        }
    }
    assert_eq!(
        "/warehouse/state/store/book/price"
            .parse::<Path>()
            .unwrap()
            .resolve_all(&complete)
            .len(),
        4,
        "the variant must fill book 80's price"
    );
    assert!(tree_tuple_fd_holds(
        &complete,
        &[
            "/warehouse/state/store/contact/name",
            "/warehouse/state/store/book/ISBN"
        ],
        "/warehouse/state/store/book/price"
    ));
}

/// The crux of Section 2.3: Constraint 3 is *satisfied* in Figure 1
/// ("two books with the same ISBN value always have the same set of
/// authors") yet both prior notions declare its closest expressible form
/// VIOLATED.
#[test]
fn constraint_3_separates_the_notions() {
    let t = warehouse_figure1();
    // Path-based [24]: "the FD is violated since book 30 has two authors
    // of different values…"
    assert!(
        !path_fd_holds(
            &t,
            &[p("/warehouse/state/store/book/ISBN")],
            &p("/warehouse/state/store/book/author")
        )
        .holds
    );
    // Tree-tuple [3]: "author 32 and author 33 belong to two different
    // tree tuples… the FD is again violated."
    assert!(!tree_tuple_fd_holds(
        &t,
        &["/warehouse/state/store/book/ISBN"],
        "/warehouse/state/store/book/author"
    ));
    // GTT: FD 3 holds with the intended set semantics.
    assert!(gtt_holds(&t, "{./ISBN} -> ./author w.r.t. C_book"));
}

/// Constraint 4 (author set + title → ISBN): inexpressible under the
/// prior notions (per-author comparison is simply wrong) and provable
/// under GTT.
#[test]
fn constraint_4_needs_set_semantics() {
    // Figure 1 satisfies it; a per-author flat reading *also* happens to
    // hold there, so use the discriminating instance from Section 2.3's
    // logic: two books sharing one author and the title but with
    // different author sets (hence different ISBNs — Constraint 4 holds).
    let t = parse(
        "<warehouse><state><name>S</name><store>\
           <contact><name>C</name><address>A</address></contact>\
           <book><ISBN>1</ISBN><author>R</author><author>G</author><title>T</title></book>\
           <book><ISBN>2</ISBN><author>R</author><title>T</title></book>\
         </store></state></warehouse>",
    )
    .unwrap();
    // GTT: holds (the author sets {R,G} and {R} differ).
    assert!(gtt_holds(&t, "{./author, ./title} -> ./ISBN w.r.t. C_book"));
    // Flat/tree-tuple: violated (rows (R,T)→1 and (R,T)→2).
    assert!(!tree_tuple_fd_holds(
        &t,
        &[
            "/warehouse/state/store/book/author",
            "/warehouse/state/store/book/title"
        ],
        "/warehouse/state/store/book/ISBN"
    ));
    // Path-based: likewise violated through the shared author R.
    assert!(
        !path_fd_holds(
            &t,
            &[
                p("/warehouse/state/store/book/author"),
                p("/warehouse/state/store/book/title")
            ],
            &p("/warehouse/state/store/book/ISBN")
        )
        .holds
    );
}

/// And the paper's remark that FD 5 ({../ISBN} → ../title w.r.t.
/// C_author) is structurally redundant w.r.t. FD 1 (Theorem 2): both
/// sides of the equivalence hold on Figure 1.
#[test]
fn theorem_2_equivalence_on_figure_1() {
    let t = warehouse_figure1();
    let schema = infer_schema(&t);
    let forest = encode(&t, &schema, &EncodeConfig::default());
    let fd1: FdSpec = "{./ISBN} -> ./title w.r.t. C_book".parse().unwrap();
    let fd5: FdSpec = "{../ISBN} -> ../title w.r.t. C_author".parse().unwrap();
    let fd1_holds = verify_fd(&forest, &fd1, 1).unwrap().holds;
    // FD 5's RHS is above the pivot; the verifier rejects it as an RHS by
    // design (Definition 10), which *is* the paper's point: the FD is
    // structurally redundant and never reported. Check the equivalence
    // via path semantics instead.
    assert!(verify_fd(&forest, &fd5, 1).is_err());
    let fd5_path = path_fd_holds(
        &t,
        &[p("/warehouse/state/store/book/ISBN")],
        &p("/warehouse/state/store/book/title"),
    );
    assert_eq!(fd1_holds, fd5_path.holds);
}
