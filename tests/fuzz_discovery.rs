//! Shape-agnostic fuzzing of the whole pipeline: random small trees of
//! arbitrary structure must never panic discovery, and every reported
//! fact must survive independent re-verification.

use discoverxfd::verify::{verify_fd, verify_key, ClassRef, FdSpec, VerifyError};
use discoverxfd_suite::prelude::*;
use proptest::prelude::*;
use xfd_xml::builder::TreeWriter;
use xfd_xml::DataTree;

#[derive(Debug, Clone)]
enum Node {
    Leaf(u8),
    Inner(Vec<(u8, Node)>),
}

fn node_strategy() -> impl Strategy<Value = Node> {
    let leaf = (0u8..4).prop_map(Node::Leaf);
    leaf.prop_recursive(4, 28, 4, |inner| {
        proptest::collection::vec((0u8..3, inner), 0..4).prop_map(Node::Inner)
    })
}

fn build(node: &Node) -> DataTree {
    let mut w = TreeWriter::new("root");
    fn emit(w: &mut TreeWriter, label: u8, node: &Node) {
        match node {
            Node::Leaf(v) => {
                w.leaf(&format!("e{label}"), &format!("v{v}"));
            }
            Node::Inner(children) => {
                w.open(&format!("e{label}"));
                for (l, c) in children {
                    emit(w, *l, c);
                }
                w.close();
            }
        }
    }
    if let Node::Inner(children) = node {
        for (l, c) in children {
            emit(&mut w, *l, c);
        }
    }
    w.finish()
}

/// Re-verify an FD against the forest, resolving class-label ambiguity
/// (same labels at different depths) via the full pivot path.
fn reverifies(forest: &xfd_relation::Forest, fd: &Xfd) -> bool {
    let spec: FdSpec = fd.to_string().parse().expect("reparse");
    match verify_fd(forest, &spec, 1) {
        Ok(rep) => rep.holds,
        Err(VerifyError::AmbiguousClass(_)) => {
            let full = fd.to_string().replace(
                &format!("C_{}", discoverxfd::fd::class_name(&fd.tuple_class)),
                &format!("C_{}", fd.tuple_class),
            );
            let spec: FdSpec = full.parse().expect("full reparse");
            verify_fd(forest, &spec, 1).expect("full verify").holds
        }
        Err(e) => panic!("verify error on {fd}: {e}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 120, ..ProptestConfig::default() })]

    #[test]
    fn discovery_is_sound_on_arbitrary_trees(node in node_strategy()) {
        let tree = build(&node);
        let cfg = DiscoveryConfig { max_lhs_size: Some(2), ..Default::default() };
        let report = discover(&tree, &cfg);
        let (_, forest) = discoverxfd::driver::encode_only(&tree, &cfg);
        for fd in report.fds.iter().take(25) {
            prop_assert!(reverifies(&forest, fd), "unsound FD {} on {:?}", fd, node);
        }
        for key in report.keys.iter().take(25) {
            let rep = verify_key(&forest, &ClassRef::Path(key.tuple_class.clone()), &key.lhs, 1)
                .expect("key verify");
            prop_assert!(rep.holds, "unsound key {} on {:?}", key, node);
        }
        for r in &report.redundancies {
            prop_assert!(r.groups >= 1);
            prop_assert!(r.redundant_values >= r.groups);
        }
    }

    #[test]
    fn parallel_matches_sequential_on_arbitrary_trees(node in node_strategy()) {
        let tree = build(&node);
        let seq = discover(&tree, &DiscoveryConfig::default());
        let par = discover(&tree, &DiscoveryConfig { parallel: true, ..Default::default() });
        let s: Vec<String> = seq.fds.iter().map(|f| f.to_string()).collect();
        let p: Vec<String> = par.fds.iter().map(|f| f.to_string()).collect();
        prop_assert_eq!(s, p);
    }

    #[test]
    fn normalize_never_increases_redundancy(node in node_strategy()) {
        let tree = build(&node);
        let cfg = DiscoveryConfig::default();
        let before: usize =
            discover(&tree, &cfg).redundancies.iter().map(|r| r.redundant_values).sum();
        let (after_tree, rounds) = discoverxfd::normalize::normalize_fully(&tree, &cfg, 4);
        let after: usize =
            discover(&after_tree, &cfg).redundancies.iter().map(|r| r.redundant_values).sum();
        if !rounds.is_empty() {
            prop_assert!(after < before, "rounds ran but redundancy grew: {before} -> {after}");
        }
    }
}
