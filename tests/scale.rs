//! Larger end-to-end smokes: the system must remain robust (no panics,
//! sensible outputs, bounded target counts) well beyond the unit-test
//! scales. Runtime is kept in the low seconds in debug builds.

use discoverxfd_suite::prelude::*;
use xfd_datagen::{warehouse_scaled, xmark_like, WarehouseSpec, XmarkSpec};

#[test]
fn xmark_scale_4_end_to_end() {
    let tree = xmark_like(&XmarkSpec::with_scale(4.0));
    assert!(tree.node_count() > 8_000);
    let report = discover(
        &tree,
        &DiscoveryConfig {
            max_lhs_size: Some(3),
            ..Default::default()
        },
    );
    assert!(!report.fds.is_empty());
    assert!(
        report.stats.targets.dropped_overflow == 0,
        "caps must not trigger at this scale"
    );
    // Serialization round-trip at scale.
    let xml = to_xml_string(&tree);
    let reparsed = parse(&xml).unwrap();
    assert_eq!(reparsed.node_count(), tree.node_count());
}

#[test]
fn big_warehouse_parallel_equals_sequential() {
    let tree = warehouse_scaled(&WarehouseSpec {
        states: 10,
        stores_per_state: 6,
        books_per_store: 25,
        catalog_size: 120,
        ..Default::default()
    });
    let seq = discover(&tree, &DiscoveryConfig::default());
    let par = discover(
        &tree,
        &DiscoveryConfig {
            parallel: true,
            ..Default::default()
        },
    );
    let s: Vec<String> = seq.fds.iter().map(|f| f.to_string()).collect();
    let p: Vec<String> = par.fds.iter().map(|f| f.to_string()).collect();
    assert_eq!(s, p);
    assert_eq!(seq.redundancies.len(), par.redundancies.len());
}

#[test]
fn deep_synthetic_nesting() {
    // Seven levels of set nesting: discovery and targets traverse cleanly.
    let mut xml = String::from("<l0>");
    fn nest(xml: &mut String, depth: usize, branch: usize) {
        if depth == 7 {
            xml.push_str(&format!("<v>{}</v>", branch % 3));
            return;
        }
        for b in 0..2 {
            xml.push_str(&format!("<l{depth}>"));
            xml.push_str(&format!("<a{depth}>{}</a{depth}>", (branch + b) % 2));
            nest(xml, depth + 1, branch + b);
            xml.push_str(&format!("</l{depth}>"));
        }
    }
    nest(&mut xml, 1, 0);
    xml.push_str("</l0>");
    let tree = parse(&xml).unwrap();
    let report = discover(
        &tree,
        &DiscoveryConfig {
            max_lhs_size: Some(2),
            ..Default::default()
        },
    );
    assert!(report.stats.forest.relations >= 7);
    // Sanity: every reported FD re-verifies.
    let (_, forest) = discoverxfd::driver::encode_only(&tree, &DiscoveryConfig::default());
    for fd in report.fds.iter().take(20) {
        let spec: discoverxfd::verify::FdSpec = fd
            .to_string()
            .replace(
                &format!("C_{}", discoverxfd::fd::class_name(&fd.tuple_class)),
                &format!("C_{}", fd.tuple_class),
            )
            .parse()
            .unwrap();
        let rep = discoverxfd::verify::verify_fd(&forest, &spec, 3).unwrap();
        assert!(rep.holds, "reported FD fails re-verification: {fd}");
    }
}
