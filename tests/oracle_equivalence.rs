//! Property-based validation: on randomly generated small documents, the
//! partition-based discovery must agree with the brute-force
//! definition-level oracle (Definition 7 checked pair-by-pair).

use discoverxfd::bruteforce::{brute_force, BruteOptions};
use discoverxfd::interesting::{
    inter_fd_to_xfd, inter_key_to_key, intra_fd_to_xfd, intra_key_to_key,
};
use discoverxfd::xfd::discover_forest;
use discoverxfd::DiscoveryConfig;
use proptest::prelude::*;
use xfd_relation::{encode, EncodeConfig, Forest};
use xfd_schema::infer_schema;
use xfd_xml::builder::TreeWriter;
use xfd_xml::DataTree;

/// A random two-level document: stores with attributes and nested books.
#[derive(Debug, Clone)]
struct Doc {
    stores: Vec<Store>,
}

#[derive(Debug, Clone)]
struct Store {
    name: u8,
    books: Vec<Book>,
}

#[derive(Debug, Clone)]
struct Book {
    isbn: Option<u8>,
    title: Option<u8>,
    authors: Vec<u8>,
}

fn doc_strategy() -> impl Strategy<Value = Doc> {
    let book = (
        proptest::option::of(0u8..3),
        proptest::option::of(0u8..3),
        proptest::collection::vec(0u8..3, 0..3),
    )
        .prop_map(|(isbn, title, authors)| Book {
            isbn,
            title,
            authors,
        });
    let store = (0u8..2, proptest::collection::vec(book, 0..4))
        .prop_map(|(name, books)| Store { name, books });
    proptest::collection::vec(store, 1..4).prop_map(|stores| Doc { stores })
}

fn build(doc: &Doc) -> DataTree {
    let mut w = TreeWriter::new("w");
    for s in &doc.stores {
        w.open("store");
        w.leaf("name", &format!("n{}", s.name));
        for b in &s.books {
            w.open("book");
            if let Some(i) = b.isbn {
                w.leaf("isbn", &format!("i{i}"));
            }
            if let Some(t) = b.title {
                w.leaf("title", &format!("t{t}"));
            }
            for a in &b.authors {
                w.leaf("author", &format!("a{a}"));
            }
            w.close();
        }
        w.close();
    }
    w.finish()
}

fn discovery_strings(forest: &Forest, max_lhs: usize) -> (Vec<String>, Vec<String>) {
    let disc = discover_forest(forest, &DiscoveryConfig::default());
    let mut fds = Vec::new();
    let mut keys = Vec::new();
    for rd in &disc.relations {
        if forest.relation(rd.rel).parent.is_none() {
            continue;
        }
        for fd in &rd.fds {
            if fd.lhs.len() <= max_lhs {
                fds.push(intra_fd_to_xfd(forest, rd.rel, fd).to_string());
            }
        }
        for &k in &rd.keys {
            if k.len() <= max_lhs {
                keys.push(intra_key_to_key(forest, rd.rel, k).to_string());
            }
        }
    }
    for fd in &disc.inter_fds {
        let total: usize = fd.lhs_levels.iter().map(|(_, a)| a.len()).sum();
        if total <= max_lhs {
            fds.push(inter_fd_to_xfd(forest, fd).to_string());
        }
    }
    for key in &disc.inter_keys {
        let total: usize = key.lhs_levels.iter().map(|(_, a)| a.len()).sum();
        if total <= max_lhs {
            keys.push(inter_key_to_key(forest, key).to_string());
        }
    }
    fds.sort();
    fds.dedup();
    keys.sort();
    keys.dedup();
    (fds, keys)
}

/// Three-level documents: states → stores → books, exercising grandparent
/// partition-target propagation.
fn build3(doc: &[(u8, Doc)]) -> DataTree {
    let mut w = TreeWriter::new("w");
    for (sname, inner) in doc {
        w.open("state");
        w.leaf("sn", &format!("s{sname}"));
        for s in &inner.stores {
            w.open("store");
            w.leaf("name", &format!("n{}", s.name));
            for b in &s.books {
                w.open("book");
                if let Some(i) = b.isbn {
                    w.leaf("isbn", &format!("i{i}"));
                }
                if let Some(t) = b.title {
                    w.leaf("title", &format!("t{t}"));
                }
                for a in &b.authors {
                    w.leaf("author", &format!("a{a}"));
                }
                w.close();
            }
            w.close();
        }
        w.close();
    }
    w.finish()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    #[test]
    fn discovery_matches_oracle(doc in doc_strategy()) {
        let tree = build(&doc);
        let schema = infer_schema(&tree);
        let forest = encode(&tree, &schema, &EncodeConfig::default());
        let opts = BruteOptions { max_lhs: 2, empty_lhs: true };
        let oracle = brute_force(&forest, &opts);
        let (fds, keys) = discovery_strings(&forest, opts.max_lhs);
        let ofds = oracle.fd_strings(&forest);
        let okeys = oracle.key_strings(&forest);
        prop_assert_eq!(&fds, &ofds, "FDs diverge on {:?}", doc);
        // Keys: soundness always; completeness for single-level keys
        // (inter keys are partition-target byproducts by design).
        for k in &keys {
            prop_assert!(okeys.contains(k), "unsound key {} on {:?}", k, doc);
        }
        for raw in oracle
            .keys
            .iter()
            .filter(|r| r.lhs_levels.iter().all(|&(rel, _)| rel == r.origin))
        {
            let s = inter_key_to_key(&forest, raw).to_string();
            prop_assert!(keys.contains(&s), "missed intra key {} on {:?}", s, doc);
        }
    }

    #[test]
    fn discovery_matches_oracle_three_levels(
        doc in proptest::collection::vec((0u8..2, doc_strategy()), 1..3)
    ) {
        let tree = build3(&doc);
        let schema = infer_schema(&tree);
        let forest = encode(&tree, &schema, &EncodeConfig::default());
        let opts = BruteOptions { max_lhs: 2, empty_lhs: true };
        let oracle = brute_force(&forest, &opts);
        let (fds, _) = discovery_strings(&forest, opts.max_lhs);
        let ofds = oracle.fd_strings(&forest);
        prop_assert_eq!(&fds, &ofds, "FDs diverge on {:?}", doc);
    }

    #[test]
    fn reported_redundancies_always_have_satisfied_fds(doc in doc_strategy()) {
        let tree = build(&doc);
        let report = discoverxfd::discover(&tree, &DiscoveryConfig::default());
        // Every redundancy cites an FD that the report also lists, and has
        // a positive magnitude.
        for r in &report.redundancies {
            prop_assert!(r.groups > 0);
            prop_assert!(r.redundant_values > 0);
            prop_assert!(
                report.fds.contains(&r.fd),
                "redundancy fd {} not among reported FDs", r.fd
            );
        }
    }
}
