//! End-to-end reproduction of the paper's running example: on the exact
//! Figure 1 document, the system must report the FDs of Section 3.1 and
//! the redundancies of Section 1.

use discoverxfd_suite::prelude::*;
use xfd_datagen::warehouse_figure1;

fn report() -> RunOutcome {
    discover(&warehouse_figure1(), &DiscoveryConfig::default())
}

fn fd_strings(r: &RunOutcome) -> Vec<String> {
    r.fds.iter().map(Xfd::to_string).collect()
}

#[test]
fn fd1_isbn_determines_title() {
    let r = report();
    assert!(
        fd_strings(&r).contains(&"{./ISBN} -> ./title w.r.t. C_book".to_string()),
        "{:#?}",
        fd_strings(&r)
    );
}

#[test]
fn fd2_chain_and_isbn_determine_price() {
    let r = report();
    let fds = fd_strings(&r);
    // {./ISBN} → ./price alone must NOT hold (book 80 has no price)…
    assert!(
        !fds.contains(&"{./ISBN} -> ./price w.r.t. C_book".to_string()),
        "{fds:#?}"
    );
    // …but extending with the store (chain) name satisfies it.
    assert!(
        fds.iter()
            .any(|f| f.contains("../contact/name") && f.contains("-> ./price w.r.t. C_book")),
        "{fds:#?}"
    );
}

#[test]
fn fd3_isbn_determines_author_set() {
    let r = report();
    assert!(
        fd_strings(&r).contains(&"{./ISBN} -> ./author w.r.t. C_book".to_string()),
        "{:#?}",
        fd_strings(&r)
    );
}

#[test]
fn fd4_authors_and_title_determine_isbn() {
    // FD 4 as stated uses {./author, ./title}; on the small Figure 1
    // instance the minimal variants {./author} → ./ISBN and
    // {./title} → ./ISBN already hold (and imply it).
    let r = report();
    let fds = fd_strings(&r);
    let fd4_or_stronger = fds.iter().any(|f| {
        f == "{./author, ./title} -> ./ISBN w.r.t. C_book"
            || f == "{./author} -> ./ISBN w.r.t. C_book"
            || f == "{./title} -> ./ISBN w.r.t. C_book"
    });
    assert!(fd4_or_stronger, "{fds:#?}");
}

#[test]
fn fd5_structurally_redundant_variant_is_not_reported() {
    // FD 5 = {../ISBN} → ../title w.r.t. C_author is structurally
    // redundant (Theorem 2) and must not appear.
    let r = report();
    assert!(
        !fd_strings(&r)
            .iter()
            .any(|f| f.contains("w.r.t. C_author") && f.contains("../title")),
        "{:#?}",
        fd_strings(&r)
    );
}

#[test]
fn redundancies_match_section_1() {
    let r = report();
    let reds: Vec<String> = r.redundancies.iter().map(|x| x.fd.to_string()).collect();
    // "the title DBMS and the set of authors … are stored multiple times
    // for ISBN 1-55860-438-3"
    assert!(
        reds.contains(&"{./ISBN} -> ./title w.r.t. C_book".to_string()),
        "{reds:#?}"
    );
    assert!(
        reds.contains(&"{./ISBN} -> ./author w.r.t. C_book".to_string()),
        "{reds:#?}"
    );
    // Title stored redundantly twice (books 50 and 80 repeat book 30's title).
    let title_red = r
        .redundancies
        .iter()
        .find(|x| x.fd.to_string() == "{./ISBN} -> ./title w.r.t. C_book")
        .unwrap();
    assert_eq!(title_red.redundant_values, 2);
    // "The price of book 1-55860-438-3 is stored redundantly for the store
    // chain Borders": the FD-2 style redundancy.
    assert!(
        reds.iter()
            .any(|f| f.contains("../contact/name") && f.contains("-> ./price")),
        "{reds:#?}"
    );
}

#[test]
fn schema_matches_figure_2() {
    let t = warehouse_figure1();
    let schema = infer_schema(&t);
    let rendered = nested_representation(&schema);
    let expected = "\
warehouse: Rcd
  state: SetOf Rcd
    name: str
    store: SetOf Rcd
      contact: Rcd
        name: str
        address: str
      book: SetOf Rcd
        ISBN: str
        author: SetOf str
        title: str
        price: str
";
    // Leaf types may be tighter than `str` where all values parse
    // numerically; normalize float → str for the comparison.
    let normalized = rendered.replace(": float", ": str");
    assert_eq!(normalized, expected);
}

#[test]
fn conformance_of_figure_1_against_inferred_schema() {
    let t = warehouse_figure1();
    let schema = infer_schema(&t);
    assert_eq!(check(&t, &schema), Ok(()));
}

#[test]
fn hierarchical_representation_matches_figure_6_counts() {
    let t = warehouse_figure1();
    let schema = infer_schema(&t);
    let forest = encode(&t, &schema, &EncodeConfig::default());
    let by_name = |n: &str| {
        forest
            .relations
            .iter()
            .find(|r| r.name == n)
            .unwrap_or_else(|| panic!("missing relation {n}"))
    };
    assert_eq!(by_name("state").n_tuples(), 2);
    assert_eq!(by_name("store").n_tuples(), 3);
    assert_eq!(by_name("book").n_tuples(), 4);
    assert_eq!(by_name("author").n_tuples(), 7);
}
