//! Property-based invariants of the XML substrate: serialize∘parse
//! preserves tree value, node keys stay pre-order, and equality classes
//! agree with the definitional canonical forms.

use proptest::prelude::*;
use xfd_xml::builder::TreeWriter;
use xfd_xml::{canonical_form, node_value_eq_cross, parse, to_xml_string, DataTree, EqClasses};

/// Strategy: random small trees with safe labels and arbitrary text values.
#[derive(Debug, Clone)]
enum Node {
    Leaf(String),
    Inner(Vec<(u8, Node)>),
}

fn node_strategy() -> impl Strategy<Value = Node> {
    let leaf = "[ -~]{0,12}".prop_map(Node::Leaf);
    leaf.prop_recursive(3, 24, 4, |inner| {
        proptest::collection::vec((0u8..4, inner), 0..4).prop_map(Node::Inner)
    })
}

fn build(node: &Node) -> DataTree {
    let mut w = TreeWriter::new("root");
    fn emit(w: &mut TreeWriter, label: u8, node: &Node) {
        match node {
            Node::Leaf(v) => {
                // The parser trims leaf text; pre-trim so roundtrip is exact.
                let trimmed = v.trim();
                if trimmed.is_empty() {
                    w.empty(&format!("e{label}"));
                } else {
                    w.leaf(&format!("e{label}"), trimmed);
                }
            }
            Node::Inner(children) => {
                w.open(&format!("e{label}"));
                for (l, c) in children {
                    emit(w, *l, c);
                }
                w.close();
            }
        }
    }
    if let Node::Inner(children) = node {
        for (l, c) in children {
            emit(&mut w, *l, c);
        }
    } else {
        emit(&mut w, 0, node);
    }
    w.finish()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    #[test]
    fn serialize_parse_preserves_node_value(node in node_strategy()) {
        let tree = build(&node);
        let xml = to_xml_string(&tree);
        let reparsed = parse(&xml).unwrap_or_else(|e| panic!("reparse failed: {e}\n{xml}"));
        prop_assert!(
            node_value_eq_cross(&tree, tree.root(), &reparsed, reparsed.root()),
            "roundtrip changed the tree:\n{}", xml
        );
    }

    #[test]
    fn node_keys_are_preorder(node in node_strategy()) {
        let tree = build(&node);
        let order: Vec<u32> = tree.descendants(tree.root()).map(|n| n.0).collect();
        // Pre-order of an arena built in document order is ascending only
        // if no @text reordering happened (builder never reorders).
        let mut sorted = order.clone();
        sorted.sort_unstable();
        prop_assert_eq!(order, sorted);
        for n in tree.all_nodes() {
            if let Some(p) = tree.parent(n) {
                prop_assert!(p < n, "parents precede children");
            }
        }
    }

    #[test]
    fn eq_classes_agree_with_canonical_forms(node in node_strategy()) {
        let tree = build(&node);
        let eq = EqClasses::compute(&tree);
        let nodes: Vec<_> = tree.all_nodes().collect();
        // Pairwise over a bounded sample.
        for &a in nodes.iter().take(12) {
            for &b in nodes.iter().take(12) {
                let by_class = eq.class_of(a) == eq.class_of(b);
                let by_form = canonical_form(&tree, a) == canonical_form(&tree, b);
                prop_assert_eq!(by_class, by_form, "classes diverge for {:?} {:?}", a, b);
            }
        }
    }
}
