#![warn(missing_docs)]
//! # discoverxfd-suite
//!
//! Facade over the full DiscoverXFD system (Yu & Jagadish, VLDB 2006):
//! re-exports every workspace crate under one roof so examples and
//! downstream users can depend on a single crate.
//!
//! ```
//! use discoverxfd_suite::prelude::*;
//!
//! let doc = parse("<r><b><i>1</i><t>A</t></b><b><i>1</i><t>A</t></b></r>").unwrap();
//! let report = discover(&doc, &DiscoveryConfig::default());
//! assert!(!report.fds.is_empty());
//! ```

pub use discoverxfd as core;
pub use xfd_datagen as datagen;
pub use xfd_partition as partition;
pub use xfd_relation as relation;
pub use xfd_schema as schema;
pub use xfd_xml as xml;

/// One-stop imports for examples and quick scripts.
pub mod prelude {
    pub use discoverxfd::{
        discover, discover_with_schema, DiscoveryConfig, DiscoveryReport, FdScope, Redundancy,
        RunOutcome, Xfd, XmlKey,
    };
    pub use xfd_relation::{encode, EncodeConfig};
    pub use xfd_schema::{check, infer_schema, nested_representation, SchemaMap};
    pub use xfd_xml::{parse, to_xml_string, DataTree, Path, TreeBuilder};
}
