#!/usr/bin/env bash
# Full local CI gate: formatting, lints, release build, test suite, and a
# serving-mode smoke test (ephemeral port, one discovery round-trip
# checked against the batch CLI, metrics probe, SIGTERM drain).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all --check

echo "== cargo clippy -D warnings"
# Vendored stand-in crates (vendor/*) are exempt from the lint gate.
cargo clippy --workspace --all-targets \
  --exclude rand --exclude proptest --exclude criterion \
  -- -D warnings

echo "== xfdlint --check"
# Workspace-native static analysis: panic-freedom, lock discipline (now
# call-graph-aware), unsafe audit, error hygiene, deadline discipline and
# frame-protocol exhaustiveness. Exits nonzero on any violation, including
# stale allow annotations. The JSON report is archived for inspection, and
# the live-allow count is gated on a fixed budget: adding a new
# `xfdlint:allow` annotation must bump the number here, in review.
XFDLINT_ALLOW_BUDGET=26
mkdir -p target
cargo run -q -p xfdlint -- --check --format json > target/xfdlint-report.json
grep -q '"violations": \[\]' target/xfdlint-report.json \
  || { echo "xfdlint report has violations:"; cargo run -q -p xfdlint -- --check || true; exit 1; }
ALLOWS=$(grep -c '"reason":' target/xfdlint-report.json || true)
[ "$ALLOWS" = "$XFDLINT_ALLOW_BUDGET" ] \
  || { echo "live allow count $ALLOWS != budget $XFDLINT_ALLOW_BUDGET (see cargo run -p xfdlint -- --list-allows)"; exit 1; }
echo "   zero violations, $ALLOWS live allows (budget $XFDLINT_ALLOW_BUDGET), report at target/xfdlint-report.json"

echo "== cargo build --release"
# The root manifest is a package + workspace; a bare `cargo build` would
# only build the facade crate, leaving ./target/release/discoverxfd stale.
cargo build --release --workspace

echo "== cargo test --workspace -q"
# The root manifest is a package + workspace; bare `cargo test` would only
# run the facade crate's suites.
cargo test --workspace -q

echo "== server smoke test"
BIN=./target/release/discoverxfd
DOC=$(mktemp /tmp/ci-doc-XXXXXX.xml)
BANNER=$(mktemp /tmp/ci-banner-XXXXXX)
trap 'rm -f "$DOC" "$BANNER"; [ -n "${SERVER_PID:-}" ] && kill -9 "$SERVER_PID" 2>/dev/null || true' EXIT

"$BIN" gen warehouse > "$DOC"

"$BIN" serve --addr 127.0.0.1:0 --workers 2 > "$BANNER" &
SERVER_PID=$!
for _ in $(seq 1 100); do
  grep -q "listening on" "$BANNER" 2>/dev/null && break
  sleep 0.05
done
ADDR=$(sed -n 's#listening on http://##p' "$BANNER")
[ -n "$ADDR" ] || { echo "server did not start"; exit 1; }
echo "   serving on $ADDR"

# The served report must match the batch CLI byte-for-byte once the one
# volatile field (total wall time) is normalized on both sides.
normalize() { sed 's/"total_ms": [0-9.]*/"total_ms": X/'; }
curl -sS -X POST --data-binary @"$DOC" "http://$ADDR/v1/discover" | normalize > /tmp/ci-served.json
"$BIN" discover "$DOC" --json | normalize > /tmp/ci-batch.json
cmp /tmp/ci-served.json /tmp/ci-batch.json || { echo "served report differs from batch CLI"; exit 1; }
echo "   served report matches batch CLI"

# Tiered partition kernel: the default run must actually take the
# error-only path (and its early exit — the warehouse data has invalid
# candidates), and the report must be byte-identical to the materializing
# escape hatch once the stats object is normalized (its work counters
# legitimately differ between kernels — that is the whole point).
grep -Eq '"products_error_only": [1-9]' /tmp/ci-batch.json \
  || { echo "expected error-only products in the default discover run"; exit 1; }
grep -Eq '"early_exits": [1-9]' /tmp/ci-batch.json \
  || { echo "expected early exits in the default discover run"; exit 1; }
normalize_stats() { sed 's/"stats": {[^}]*}/"stats": X/'; }
"$BIN" discover "$DOC" --json --no-error-only-kernel | normalize_stats > /tmp/ci-batch-mat.json
normalize_stats < /tmp/ci-batch.json > /tmp/ci-batch-tiered.json
cmp /tmp/ci-batch-tiered.json /tmp/ci-batch-mat.json \
  || { echo "tiered report differs from --no-error-only-kernel"; exit 1; }
# Cross-thread runs agree modulo the same stats normalization (sequential
# uses frontier materialization, parallel the speculative precompute).
for T in 2 8; do
  "$BIN" discover "$DOC" --json --threads "$T" | normalize_stats > /tmp/ci-batch-t"$T".json
  cmp /tmp/ci-batch-tiered.json /tmp/ci-batch-t"$T".json \
    || { echo "tiered report drifted at --threads $T"; exit 1; }
done
echo "   tiered kernel engaged (early exits seen); parity with escape hatch and threads 2/8"

# Second POST of the same document must be answered from the result cache.
curl -sS -X POST --data-binary @"$DOC" "http://$ADDR/v1/discover" -o /dev/null -D /tmp/ci-headers.txt
grep -qi '^X-Cache: hit' /tmp/ci-headers.txt \
  || { echo "expected X-Cache: hit on the repeat request"; exit 1; }
curl -sS "http://$ADDR/metrics" > /tmp/ci-metrics.txt
grep -q "discoverxfd_result_cache_hits_total 1" /tmp/ci-metrics.txt \
  || { echo "expected a result-cache hit in /metrics"; exit 1; }
echo "   repeat request served from cache"

# No worker panicked while handling the smoke traffic: the panic counter
# both exists and reads zero.
grep -q "^discoverxfd_worker_panics_total 0$" /tmp/ci-metrics.txt \
  || { echo "expected discoverxfd_worker_panics_total 0 in /metrics"; exit 1; }
echo "   zero worker panics"

curl -sS "http://$ADDR/healthz" | grep -q '"ok"' || { echo "healthz failed"; exit 1; }

# SIGTERM must drain and exit 0.
kill -TERM "$SERVER_PID"
DRAIN=0
if wait "$SERVER_PID"; then DRAIN=1; fi
[ "$DRAIN" = 1 ] || { echo "server did not exit cleanly on SIGTERM"; exit 1; }
SERVER_PID=""
echo "   clean SIGTERM drain"

echo "== corpus smoke test"
CORPUS_ROOT=$(mktemp -d /tmp/ci-corpus-XXXXXX)
DOC2=$(mktemp /tmp/ci-doc2-XXXXXX.xml)
DOC3=$(mktemp /tmp/ci-doc3-XXXXXX.xml)
trap 'rm -f "$DOC" "$DOC2" "$DOC3" "$BANNER"; rm -rf "$CORPUS_ROOT"; [ -n "${SERVER_PID:-}" ] && kill -9 "$SERVER_PID" 2>/dev/null || true' EXIT
"$BIN" gen warehouse --scale 2 --seed 7 > "$DOC2"
"$BIN" gen warehouse --scale 2 --seed 11 > "$DOC3"

"$BIN" corpus create smoke --root "$CORPUS_ROOT" 2>/dev/null
"$BIN" corpus add smoke "$DOC" --name d1 --root "$CORPUS_ROOT" 2>/dev/null
"$BIN" corpus add smoke "$DOC2" --name d2 --root "$CORPUS_ROOT" 2>/dev/null
"$BIN" corpus discover smoke --root "$CORPUS_ROOT" --json | normalize > /tmp/ci-corpus-two.json
echo "   create + add + discover"

# Simulated kill -9 mid-ingest: the segment and WAL record are on disk,
# the manifest commit never ran. Reopening must replay the WAL.
CRASH_RC=0
"$BIN" corpus add smoke "$DOC3" --name d3 --root "$CORPUS_ROOT" --crash-after-wal 2>/dev/null || CRASH_RC=$?
[ "$CRASH_RC" = 42 ] || { echo "crash injection exited $CRASH_RC, expected 42"; exit 1; }
"$BIN" corpus status smoke --root "$CORPUS_ROOT" | grep -q "d3" \
  || { echo "WAL replay lost the staged document"; exit 1; }
echo "   crash-kill recovered via WAL replay"

# The recovered corpus must discover byte-identically to one that never
# crashed (same three documents, fresh corpus).
"$BIN" corpus create clean --root "$CORPUS_ROOT" 2>/dev/null
"$BIN" corpus add clean "$DOC" --name d1 --root "$CORPUS_ROOT" 2>/dev/null
"$BIN" corpus add clean "$DOC2" --name d2 --root "$CORPUS_ROOT" 2>/dev/null
"$BIN" corpus add clean "$DOC3" --name d3 --root "$CORPUS_ROOT" 2>/dev/null
"$BIN" corpus discover smoke --root "$CORPUS_ROOT" --json | normalize > /tmp/ci-corpus-recovered.json
"$BIN" corpus discover clean --root "$CORPUS_ROOT" --json | normalize > /tmp/ci-corpus-clean.json
cmp /tmp/ci-corpus-recovered.json /tmp/ci-corpus-clean.json \
  || { echo "recovered corpus report differs from a clean one"; exit 1; }
echo "   recovered report matches a never-crashed corpus"

# Compaction folds the smoke corpus's per-document segments into one;
# the discovery report must not change.
"$BIN" corpus compact smoke --root "$CORPUS_ROOT" 2>/dev/null
"$BIN" corpus discover smoke --root "$CORPUS_ROOT" --json | normalize > /tmp/ci-corpus-compacted.json
cmp /tmp/ci-corpus-compacted.json /tmp/ci-corpus-clean.json \
  || { echo "compacted corpus report differs from the pre-compaction one"; exit 1; }
echo "   compaction preserved the report"

echo "== cluster smoke test"
CLUSTER_LOG=$(mktemp /tmp/ci-cluster-XXXXXX.log)
trap 'rm -f "$DOC" "$DOC2" "$DOC3" "$BANNER" "$CLUSTER_LOG"; rm -rf "$CORPUS_ROOT"; [ -n "${SERVER_PID:-}" ] && kill -9 "$SERVER_PID" 2>/dev/null || true' EXIT

# Two worker subprocesses must reproduce the in-process report
# byte-for-byte (wall-clock normalized on both sides, as above).
"$BIN" cluster discover clean --root "$CORPUS_ROOT" --workers 2 --json \
  2> "$CLUSTER_LOG" | normalize > /tmp/ci-cluster-two.json
cmp /tmp/ci-cluster-two.json /tmp/ci-corpus-clean.json \
  || { echo "2-worker cluster report differs from the in-process one"; exit 1; }
grep -q "workers=2 live=2 lost=0 handshake_failures=0" "$CLUSTER_LOG" \
  || { echo "expected two live workers; got: $(cat "$CLUSTER_LOG")"; exit 1; }
grep -Eq "pass_remote=[1-9]" "$CLUSTER_LOG" \
  || { echo "expected remote relation passes; got: $(cat "$CLUSTER_LOG")"; exit 1; }
echo "   2-worker report matches in-process"

# SIGKILL one worker right after its first pass assignment: the orphaned
# task must be retried (or recomputed locally) and the report must still
# be identical.
"$BIN" cluster discover clean --root "$CORPUS_ROOT" --workers 2 --kill-worker-after 1 --json \
  2> "$CLUSTER_LOG" | normalize > /tmp/ci-cluster-killed.json
cmp /tmp/ci-cluster-killed.json /tmp/ci-corpus-clean.json \
  || { echo "report changed after a worker was killed mid-run"; exit 1; }
grep -q " lost=1 " "$CLUSTER_LOG" \
  || { echo "expected one lost worker; got: $(cat "$CLUSTER_LOG")"; exit 1; }
RETRIED=$(sed -n 's/.* retried=\([0-9]*\).*/\1/p' "$CLUSTER_LOG")
FALLBACK=$(sed -n 's/.* fallback=\([0-9]*\).*/\1/p' "$CLUSTER_LOG")
[ "$((${RETRIED:-0} + ${FALLBACK:-0}))" -ge 1 ] \
  || { echo "expected the orphaned task to be retried or recomputed; got: $(cat "$CLUSTER_LOG")"; exit 1; }
echo "   mid-run kill survived: lost=1 retried=${RETRIED:-0} fallback=${FALLBACK:-0}, report identical"

echo "== loopback TCP cluster smoke"
TCPW1_LOG=$(mktemp /tmp/ci-tcpw1-XXXXXX.log)
TCPW2_LOG=$(mktemp /tmp/ci-tcpw2-XXXXXX.log)
SEG_CACHE=$(mktemp -d /tmp/ci-segcache-XXXXXX)
trap 'rm -f "$DOC" "$DOC2" "$DOC3" "$BANNER" "$CLUSTER_LOG" "$TCPW1_LOG" "$TCPW2_LOG"; rm -rf "$CORPUS_ROOT" "$SEG_CACHE"; [ -n "${SERVER_PID:-}" ] && kill -9 "$SERVER_PID" 2>/dev/null; [ -n "${W1_PID:-}" ] && kill -9 "$W1_PID" 2>/dev/null; [ -n "${W2_PID:-}" ] && kill -9 "$W2_PID" 2>/dev/null || true' EXIT

# Two standalone TCP workers on ephemeral loopback ports: one with shared
# storage, one storage-less (fed via content-addressed segment shipping).
"$BIN" worker --listen 127.0.0.1:0 --token ci-secret > "$TCPW1_LOG" &
W1_PID=$!
"$BIN" worker --listen 127.0.0.1:0 --token ci-secret --no-shared-storage --seg-cache "$SEG_CACHE" > "$TCPW2_LOG" &
W2_PID=$!
disown "$W1_PID" "$W2_PID"   # teardown is kill -9; keep bash quiet about it
for _ in $(seq 1 100); do
  grep -q "worker listening on" "$TCPW1_LOG" 2>/dev/null \
    && grep -q "worker listening on" "$TCPW2_LOG" 2>/dev/null && break
  sleep 0.05
done
TCP_ADDR1=$(sed -n 's/^worker listening on //p' "$TCPW1_LOG")
TCP_ADDR2=$(sed -n 's/^worker listening on //p' "$TCPW2_LOG")
[ -n "$TCP_ADDR1" ] && [ -n "$TCP_ADDR2" ] || { echo "TCP workers did not start"; exit 1; }

# The remote report must match the in-process one byte-for-byte, with the
# storage-less worker fed over the wire.
"$BIN" cluster discover clean --root "$CORPUS_ROOT" --remote "$TCP_ADDR1,$TCP_ADDR2" \
  --token ci-secret --json 2> "$CLUSTER_LOG" | normalize > /tmp/ci-cluster-tcp.json
cmp /tmp/ci-cluster-tcp.json /tmp/ci-corpus-clean.json \
  || { echo "loopback-TCP cluster report differs from the in-process one"; exit 1; }
grep -q "workers=2 live=2 lost=0 handshake_failures=0" "$CLUSTER_LOG" \
  || { echo "expected two live TCP workers; got: $(cat "$CLUSTER_LOG")"; exit 1; }
grep -Eq "segs_shipped=[1-9]" "$CLUSTER_LOG" \
  || { echo "expected shipped segments for the storage-less worker; got: $(cat "$CLUSTER_LOG")"; exit 1; }
echo "   2 remote TCP workers match in-process, segments shipped"

kill -9 "$W1_PID" "$W2_PID" 2>/dev/null || true
W1_PID=""
W2_PID=""

# Serving mode routes corpus discovery through a persistent warm worker
# pool when started with --cluster-workers; /metrics must account for it.
"$BIN" serve --addr 127.0.0.1:0 --workers 2 --corpus-root "$CORPUS_ROOT" --cluster-workers 2 > "$BANNER" &
SERVER_PID=$!
for _ in $(seq 1 100); do
  grep -q "listening on" "$BANNER" 2>/dev/null && break
  sleep 0.05
done
ADDR=$(sed -n 's#listening on http://##p' "$BANNER")
[ -n "$ADDR" ] || { echo "cluster server did not start"; exit 1; }
curl -sS -X POST "http://$ADDR/v1/corpora/clean/discover" -o /dev/null
# A different search config misses the result cache but keeps the plan
# fingerprint, so the second request must reuse the warm pool entry.
curl -sS -X POST "http://$ADDR/v1/corpora/clean/discover?max-lhs=4" -o /dev/null
# An identical repeat must be answered straight from the result cache —
# no plan derivation, no cluster contact at all.
curl -sS -X POST "http://$ADDR/v1/corpora/clean/discover" -o /dev/null -D /tmp/ci-headers.txt
grep -qi '^X-Cache: hit' /tmp/ci-headers.txt \
  || { echo "expected X-Cache: hit on the repeat corpus discovery"; exit 1; }
curl -sS "http://$ADDR/metrics" > /tmp/ci-cluster-metrics.txt
grep -q "^discoverxfd_cluster_workers 2$" /tmp/ci-cluster-metrics.txt \
  || { echo "expected discoverxfd_cluster_workers 2 in /metrics"; exit 1; }
grep -Eq '^discoverxfd_cluster_tasks_total\{status="done"\} [1-9]' /tmp/ci-cluster-metrics.txt \
  || { echo "expected completed cluster tasks in /metrics"; exit 1; }
grep -q '^discoverxfd_cluster_tasks_total{status="fallback"} 0$' /tmp/ci-cluster-metrics.txt \
  || { echo "expected zero fallback cluster tasks in /metrics"; exit 1; }
grep -q "^discoverxfd_cluster_retries_total 0$" /tmp/ci-cluster-metrics.txt \
  || { echo "expected zero cluster retries in /metrics"; exit 1; }
grep -Eq '^discoverxfd_pool_warm_hits_total [1-9]' /tmp/ci-cluster-metrics.txt \
  || { echo "expected a warm pool hit in /metrics"; exit 1; }
grep -q '^discoverxfd_pool_workers{state="warm"} 2$' /tmp/ci-cluster-metrics.txt \
  || { echo "expected two warm pooled workers in /metrics"; exit 1; }
grep -q "^discoverxfd_worker_panics_total 0$" /tmp/ci-cluster-metrics.txt \
  || { echo "expected discoverxfd_worker_panics_total 0 in /metrics"; exit 1; }
kill -TERM "$SERVER_PID"
wait "$SERVER_PID" || { echo "cluster server did not exit cleanly on SIGTERM"; exit 1; }
SERVER_PID=""
echo "   warm pool reused across requests, cache hit skipped the cluster, zero panics"

echo "== bench corpus smoke"
# Scaled-down bench_corpus run: same 33-doc / 8-category shape, smaller
# relations. The binary itself asserts byte-identical serial / parallel /
# from-scratch reports; CI re-checks the two headline numbers from the
# JSON it writes.
BENCH_OUT=$(mktemp /tmp/ci-bench-corpus-XXXXXX.json)
trap 'rm -f "$DOC" "$DOC2" "$DOC3" "$BANNER" "$CLUSTER_LOG" "$BENCH_OUT"; rm -rf "$CORPUS_ROOT"; [ -n "${SERVER_PID:-}" ] && kill -9 "$SERVER_PID" 2>/dev/null || true' EXIT
./target/release/bench_corpus "$BENCH_OUT" --smoke
grep -q '"worker_panics": 0' "$BENCH_OUT" \
  || { echo "expected zero worker panics in $BENCH_OUT"; exit 1; }
SPEEDUP=$(sed -n 's/.*"speedup": \([0-9.]*\).*/\1/p' "$BENCH_OUT")
awk -v s="$SPEEDUP" 'BEGIN { exit !(s >= 3.0) }' \
  || { echo "incremental speedup $SPEEDUP below the 3x floor"; exit 1; }
echo "   incremental speedup ${SPEEDUP}x, zero worker panics"

echo "== bench cluster smoke"
# Scaled-down bench_cluster run. The binary itself asserts that the 1, 2
# and 4-worker reports are byte-identical to the in-process run and that
# every worker survived; CI re-checks the loss counter from the JSON.
BENCH_CLUSTER_OUT=$(mktemp /tmp/ci-bench-cluster-XXXXXX.json)
trap 'rm -f "$DOC" "$DOC2" "$DOC3" "$BANNER" "$CLUSTER_LOG" "$BENCH_OUT" "$BENCH_CLUSTER_OUT"; rm -rf "$CORPUS_ROOT"; [ -n "${SERVER_PID:-}" ] && kill -9 "$SERVER_PID" 2>/dev/null || true' EXIT
./target/release/bench_cluster "$BENCH_CLUSTER_OUT" --smoke
grep -q '"workers_lost": 0' "$BENCH_CLUSTER_OUT" \
  || { echo "expected zero lost workers in $BENCH_CLUSTER_OUT"; exit 1; }
echo "   cluster bench parity held, zero workers lost"

echo "CI OK"
