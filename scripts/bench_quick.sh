#!/usr/bin/env bash
# Quick benchmarks:
#  * partition machinery — sweeps the warehouse, XMark-like SF=1 and wide
#    synthetic datasets through the sequential / parallel / byte-budgeted
#    discovery configurations; writes wall-time, cache counters and the
#    product-hot-path allocation comparison to BENCH_partitions.json
#    (pass a different path as $1);
#  * serving mode — drives an in-process daemon with concurrent clients
#    through a cold (all cache misses) and warm (all cache hits) phase;
#    writes rps and p50/p99 latency to BENCH_server.json (or $2).
set -euo pipefail
cd "$(dirname "$0")/.."
cargo build --release -p xfd-bench --bin bench_partitions --bin bench_server
./target/release/bench_partitions "${1:-BENCH_partitions.json}"
./target/release/bench_server "${2:-BENCH_server.json}"
