#!/usr/bin/env bash
# Quick benchmarks:
#  * partition machinery — sweeps the warehouse, XMark-like SF=1 and wide
#    synthetic datasets through the sequential / parallel / byte-budgeted
#    discovery configurations; writes wall-time, cache counters and the
#    product-hot-path allocation comparison to BENCH_partitions.json
#    (pass a different path as $1);
#  * serving mode — drives an in-process daemon with concurrent clients
#    through a cold (all cache misses) and warm (all cache hits) phase;
#    writes rps and p50/p99 latency to BENCH_server.json (or $2);
#  * corpus store — builds a 32-document multi-schema corpus and runs the
#    sharded pipeline serially and on an 8-thread pool, cold and after one
#    small document add (cached partials + memoised relation passes
#    replay), against a from-scratch discover_collection baseline; asserts
#    byte-identical reports and a >= 3x incremental speedup, and writes
#    per-phase (merge/infer/encode/passes) timings to BENCH_corpus.json
#    (or $3).
set -euo pipefail
cd "$(dirname "$0")/.."
cargo build --release -p xfd-bench --bin bench_partitions --bin bench_server --bin bench_corpus
./target/release/bench_partitions "${1:-BENCH_partitions.json}"
./target/release/bench_server "${2:-BENCH_server.json}"
./target/release/bench_corpus "${3:-BENCH_corpus.json}"
