#!/usr/bin/env bash
# Quick partition-machinery benchmark: sweeps the warehouse, XMark-like
# SF=1 and wide synthetic datasets through the sequential / parallel /
# byte-budgeted discovery configurations and writes wall-time, cache
# counters and the product-hot-path allocation comparison to
# BENCH_partitions.json (pass a different path as $1).
set -euo pipefail
cd "$(dirname "$0")/.."
cargo build --release -p xfd-bench --bin bench_partitions
./target/release/bench_partitions "${1:-BENCH_partitions.json}"
