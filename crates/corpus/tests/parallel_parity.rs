//! The sharded, pooled corpus pipeline must be byte-identical — FDs, keys,
//! redundancies, work counters, rendered report — to a from-scratch
//! [`discover_collection`] over the same documents, at every thread count,
//! cold and warm, across incremental mutations.

use std::fs;
use std::path::PathBuf;

use discoverxfd::{discover_collection, DiscoveryConfig, RunOutcome};
use proptest::prelude::*;
use xfd_corpus::CorpusStore;
use xfd_xml::{parse, DataTree};

fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("xfd-par-parity-{}-{tag}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Rendered report with wall-clock and memo counters dropped (everything
/// up to `"total_ms"`; the memo counters render after it for the same
/// reason). FDs, keys, redundancies, and lattice work counters remain.
fn render_stable(r: &RunOutcome) -> String {
    let json = discoverxfd::report::render_json(r);
    json.split("\"total_ms\"").next().unwrap().to_string()
}

fn config_for(threads: usize) -> DiscoveryConfig {
    DiscoveryConfig {
        parallel: threads > 1,
        threads,
        ..DiscoveryConfig::default()
    }
}

/// A small corpus-worthy document: repeated `book` sets with correlated
/// columns (so FDs and redundancies actually exist) plus a varying branch.
fn doc(seed: u64) -> DataTree {
    let a = seed % 3;
    let b = seed % 5;
    let xml = format!(
        "<shop><name>S{a}</name><book><i>{b}</i><t>T{a}</t><p>{}</p></book>\
         <book><i>{b}</i><t>T{a}</t><p>{}</p></book></shop>",
        b * 10,
        (seed % 7) * 10,
    );
    parse(&xml).unwrap()
}

/// The report body — schema, FDs, keys, redundancies — without the stats
/// object, whose partition-cache work counters legitimately vary with the
/// intra-pass thread count.
fn render_report(r: &RunOutcome) -> String {
    let json = discoverxfd::report::render_json(r);
    json.split("\"stats\"").next().unwrap().to_string()
}

/// Cold + warm sharded discovery at `threads` must match the grafted
/// [`discover_collection`] run under the same configuration, byte for
/// byte including work counters. Returns the report body for cross-thread
/// comparison.
fn assert_parity(seeds: &[u64], threads: usize, tag: &str) -> String {
    let trees: Vec<DataTree> = seeds.iter().map(|&s| doc(s)).collect();
    let refs: Vec<&DataTree> = trees.iter().collect();
    let config = config_for(threads);
    let grafted = discover_collection(&refs, &config);
    let expect = render_stable(&grafted);

    let root = tmp(tag);
    let store = CorpusStore::new(&root);
    let mut c = store.create("c").unwrap();
    for (i, t) in trees.iter().enumerate() {
        c.add_doc(&format!("d{i}"), t).unwrap();
    }
    let cold = c.discover(&config);
    assert_eq!(
        render_stable(&cold),
        expect,
        "cold sharded discover (threads={threads}) diverged from discover_collection"
    );
    let warm = c.discover(&config);
    assert_eq!(
        render_stable(&warm),
        expect,
        "warm (forest-cached, memo-hit) discover (threads={threads}) diverged"
    );
    assert!(
        c.status().forest_cached,
        "repeat discover must leave the merged forest cached"
    );
    let _ = fs::remove_dir_all(&root);
    render_report(&cold)
}

#[test]
fn sharded_discovery_matches_collection_at_1_2_and_8_threads() {
    let seeds: Vec<u64> = (0..6).collect();
    let mut reports = Vec::new();
    for threads in [1, 2, 8] {
        reports.push(assert_parity(&seeds, threads, &format!("fixed-{threads}")));
    }
    // The discovered FDs/keys/redundancies are thread-count invariant.
    assert_eq!(reports[0], reports[1]);
    assert_eq!(reports[0], reports[2]);
}

#[test]
fn incremental_mutations_stay_byte_identical_under_parallelism() {
    let root = tmp("incr");
    let store = CorpusStore::new(&root);
    let mut c = store.create("c").unwrap();
    let config = config_for(8);
    for i in 0..5u64 {
        c.add_doc(&format!("d{i}"), &doc(i)).unwrap();
    }
    c.discover(&config);
    // Mutate: remove one, add two (one a duplicate of an existing doc).
    c.remove_doc("d2").unwrap();
    c.add_doc("d5", &doc(5)).unwrap();
    c.add_doc("d0-bis", &doc(0)).unwrap();
    let incremental = c.discover(&config);

    let trees: Vec<DataTree> = [0, 1, 3, 4, 5, 0].iter().map(|&s| doc(s)).collect();
    let refs: Vec<&DataTree> = trees.iter().collect();
    let scratch = discover_collection(&refs, &config);
    assert_eq!(render_stable(&incremental), render_stable(&scratch));
    assert!(
        c.status().memo_hits > 0,
        "warm incremental discover must replay some relation passes"
    );
    let _ = fs::remove_dir_all(&root);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Random small corpora: parity across thread counts, including the
    /// empty corpus and duplicated documents.
    #[test]
    fn random_corpora_are_thread_count_invariant(
        seeds in proptest::collection::vec(0u64..20, 0..5),
        threads in prop_oneof![Just(1usize), Just(2), Just(8)],
        case in 0u32..u32::MAX,
    ) {
        assert_parity(&seeds, threads, &format!("prop-{case}"));
    }
}
