//! Property tests for the shared name guard: every rejected class maps to
//! its typed [`NameError`], and every accepted name survives a round trip
//! through the filesystem as a literal path component.

use std::fs;
use std::path::PathBuf;

use proptest::prelude::*;
use xfd_corpus::{validate_name, NameError};

fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("xfd-names-prop-{}-{tag}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// A name that passes the guard: first byte avoids the leading-dot rule,
/// the rest draw from the full allowed alphabet, total length <= 128.
const VALID: &str = "[A-Za-z0-9_-][A-Za-z0-9._-]{0,127}";

/// Allowed-alphabet fragment that is safe anywhere in a name, including
/// position zero — used to pad rejected inputs without tripping a
/// *different* rule than the one under test.
const SAFE_FRAG: &str = "[A-Za-z0-9_-]{0,10}";

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    #[test]
    fn valid_names_are_accepted(name in VALID) {
        prop_assert!(name.len() <= 128);
        prop_assert_eq!(validate_name(&name), Ok(()), "{:?}", name);
    }

    #[test]
    fn oversized_names_are_rejected(name in "[A-Za-z0-9_-][A-Za-z0-9._-]{128,200}") {
        prop_assert!(name.len() > 128);
        prop_assert_eq!(validate_name(&name), Err(NameError::TooLong), "{:?}", name);
    }

    #[test]
    fn leading_dots_are_rejected(suffix in "[A-Za-z0-9._-]{0,20}", dots in 1usize..4) {
        // Covers `.`, `..`, `.hidden`, `..evil`, `../x`-style prefixes
        // (the slash variant is additionally a BadChar, but the dot rule
        // fires first because it is positional).
        let name = format!("{}{}", ".".repeat(dots), suffix);
        prop_assert_eq!(validate_name(&name), Err(NameError::LeadingDot), "{:?}", name);
    }

    #[test]
    fn separators_are_rejected(
        prefix in SAFE_FRAG,
        suffix in SAFE_FRAG,
        sep in prop_oneof![Just('/'), Just('\\'), Just('\0')],
    ) {
        let name = format!("{prefix}{sep}{suffix}");
        prop_assert_eq!(validate_name(&name), Err(NameError::BadChar), "{:?}", name);
    }

    #[test]
    fn non_ascii_is_rejected(
        prefix in SAFE_FRAG,
        suffix in SAFE_FRAG,
        cp in 0x80u32..0xD800,
    ) {
        let c = char::from_u32(cp).expect("below surrogate range");
        let name = format!("{prefix}{c}{suffix}");
        prop_assert_eq!(validate_name(&name), Err(NameError::BadChar), "{:?}", name);
    }

    #[test]
    fn ascii_outside_the_alphabet_is_rejected(
        prefix in SAFE_FRAG,
        suffix in SAFE_FRAG,
        // The printable-ASCII complement of [A-Za-z0-9._-]: spaces,
        // punctuation, shell metacharacters, percent signs, and so on.
        bad in "[ -,/:-@[-^`{-~]",
    ) {
        let name = format!("{prefix}{bad}{suffix}");
        prop_assert_eq!(validate_name(&name), Err(NameError::BadChar), "{:?}", name);
    }

}

#[test]
fn empty_name_is_rejected() {
    assert_eq!(validate_name(""), Err(NameError::Empty));
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// An accepted name is usable verbatim as a single path component: the
    /// file lands inside the directory (no traversal), directory listing
    /// returns the same name, and the contents read back intact.
    #[test]
    fn accepted_names_round_trip_through_the_filesystem(name in VALID, payload in 0u32..1_000_000) {
        prop_assert_eq!(validate_name(&name), Ok(()));
        let dir = tmp("roundtrip");
        let path = dir.join(&name);
        // The joined path must still be *inside* the temp dir — a name that
        // validated cannot escape via `..` or absolute components.
        prop_assert!(path.starts_with(&dir), "{:?} escaped {:?}", path, dir);
        fs::write(&path, payload.to_le_bytes()).expect("write named file");
        let listed: Vec<String> = fs::read_dir(&dir)
            .expect("list dir")
            .map(|e| e.expect("dir entry").file_name().to_string_lossy().into_owned())
            .collect();
        prop_assert_eq!(&listed, &vec![name.clone()], "directory echoes the name back");
        let back = fs::read(&path).expect("read named file");
        prop_assert_eq!(back, payload.to_le_bytes().to_vec());
        let _ = fs::remove_dir_all(&dir);
    }
}
