//! Crash-point injection: a corpus interrupted at *any* byte of its WAL
//! must reopen as either the pre-ingest or the post-ingest document set —
//! never a torn one, never a failure to open.

use std::fs;
use std::path::{Path, PathBuf};

use discoverxfd::DiscoveryConfig;
use xfd_corpus::CorpusStore;
use xfd_xml::{parse, DataTree};

fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("xfd-wal-crash-{}-{tag}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn doc(i: u32) -> DataTree {
    parse(&format!(
        "<shop><book><i>{i}</i><t>T{i}</t></book><book><i>{i}</i><t>T{i}</t></book></shop>"
    ))
    .unwrap()
}

fn copy_dir(src: &Path, dst: &Path) {
    fs::create_dir_all(dst).unwrap();
    for entry in fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        let to = dst.join(entry.file_name());
        if entry.file_type().unwrap().is_dir() {
            copy_dir(&entry.path(), &to);
        } else {
            fs::copy(entry.path(), &to).unwrap();
        }
    }
}

/// Build the canonical mid-ingest state: doc `a` committed, doc `b` staged
/// (segment + WAL record on disk, manifest untouched). Returns the corpus
/// root and the staged WAL bytes.
fn mid_ingest_state(tag: &str) -> (PathBuf, Vec<u8>) {
    let root = tmp(tag);
    let store = CorpusStore::new(&root);
    let mut c = store.create("c").unwrap();
    c.add_doc("a", &doc(1)).unwrap();
    c.stage_doc("b", &doc(2)).unwrap();
    let wal = fs::read(root.join("c").join("wal")).unwrap();
    assert!(wal.len() > 20, "one framed record expected");
    (root, wal)
}

#[test]
fn truncation_at_every_byte_yields_pre_or_post_state() {
    let (root, wal) = mid_ingest_state("truncate");
    let snapshot = tmp("truncate-snapshot");
    copy_dir(&root, &snapshot);

    for cut in 0..=wal.len() {
        let _ = fs::remove_dir_all(&root);
        copy_dir(&snapshot, &root);
        fs::write(root.join("c").join("wal"), &wal[..cut]).unwrap();

        let store = CorpusStore::new(&root);
        let c = store
            .open("c")
            .unwrap_or_else(|e| panic!("open failed at cut {cut}: {e}"));
        let names = c.doc_names();
        if cut == wal.len() {
            assert_eq!(names, vec!["a", "b"], "full WAL must surface the ingest");
        } else {
            assert_eq!(names, vec!["a"], "cut {cut} must roll back to pre-ingest");
        }
    }
    let _ = fs::remove_dir_all(&root);
    let _ = fs::remove_dir_all(&snapshot);
}

#[test]
fn corruption_of_any_byte_never_tears_the_corpus() {
    let (root, wal) = mid_ingest_state("flip");
    let snapshot = tmp("flip-snapshot");
    copy_dir(&root, &snapshot);

    for pos in 0..wal.len() {
        let _ = fs::remove_dir_all(&root);
        copy_dir(&snapshot, &root);
        let mut dirty = wal.clone();
        dirty[pos] ^= 0x5a;
        fs::write(root.join("c").join("wal"), &dirty).unwrap();

        let store = CorpusStore::new(&root);
        let c = store
            .open("c")
            .unwrap_or_else(|e| panic!("open failed at flipped byte {pos}: {e}"));
        let names = c.doc_names();
        assert!(
            names == vec!["a"] || names == vec!["a", "b"],
            "flipped byte {pos} produced torn set {names:?}"
        );
    }
    let _ = fs::remove_dir_all(&root);
    let _ = fs::remove_dir_all(&snapshot);
}

/// The crash-recovered corpus must not just open — discovery over it must
/// be byte-identical to a corpus built without any crash.
#[test]
fn recovered_corpus_discovers_identically_to_a_clean_one() {
    let (root, _) = mid_ingest_state("parity");
    let store = CorpusStore::new(&root);
    let mut recovered = store.open("c").unwrap(); // replays the staged add
    assert_eq!(recovered.doc_names(), vec!["a", "b"]);

    let clean_root = tmp("parity-clean");
    let clean_store = CorpusStore::new(&clean_root);
    let mut clean = clean_store.create("c").unwrap();
    clean.add_doc("a", &doc(1)).unwrap();
    clean.add_doc("b", &doc(2)).unwrap();

    let config = DiscoveryConfig::default();
    let stable = |r: &discoverxfd::RunOutcome| {
        discoverxfd::report::render_json(r)
            .split("\"total_ms\"")
            .next()
            .unwrap()
            .to_string()
    };
    assert_eq!(
        stable(&recovered.discover(&config)),
        stable(&clean.discover(&config))
    );
    let _ = fs::remove_dir_all(&root);
    let _ = fs::remove_dir_all(&clean_root);
}
