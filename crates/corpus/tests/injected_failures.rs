//! Injected on-disk failures against *committed* state: flipped segment
//! bytes, truncated segments, and a segment whose digest checks out but
//! whose tuple block is torn. Every case must surface a typed
//! [`CorpusError`] from `open` — never a panic, never a silently wrong
//! document set. (WAL-byte corruption is covered by `wal_crash.rs`.)

use std::fs;
use std::path::PathBuf;

use xfd_corpus::{CorpusError, CorpusStore};
use xfd_hash::{digest_bytes, format_digest};
use xfd_relation::treetuple::DecodeError;
use xfd_xml::parse;

fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("xfd-inject-{}-{tag}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// One committed corpus with one document; returns (root, segment path).
fn committed_corpus(tag: &str) -> (PathBuf, PathBuf) {
    let root = tmp(tag);
    let store = CorpusStore::new(&root);
    let mut c = store.create("c").unwrap();
    let tree =
        parse("<shop><book><i>1</i><t>T</t></book><book><i>1</i><t>T</t></book></shop>").unwrap();
    c.add_doc("d1", &tree).unwrap();
    drop(c);
    let seg = root.join("c").join("segments").join("seg-0.xtt");
    assert!(seg.is_file(), "expected committed segment at {seg:?}");
    (root, seg)
}

#[test]
fn flipped_segment_byte_is_a_typed_corruption_error() {
    let (root, seg) = committed_corpus("flip-seg");
    let mut bytes = fs::read(&seg).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x5A;
    fs::write(&seg, &bytes).unwrap();

    match CorpusStore::new(&root).open("c") {
        Err(CorpusError::Corrupt(what)) => {
            assert!(what.contains("digest"), "unexpected detail: {what}")
        }
        Err(other) => panic!("expected Corrupt, got {other:?}"),
        Ok(_) => panic!("corrupted corpus opened cleanly"),
    }
}

#[test]
fn truncated_segment_is_a_typed_corruption_error() {
    let (root, seg) = committed_corpus("trunc-seg");
    let bytes = fs::read(&seg).unwrap();
    fs::write(&seg, &bytes[..bytes.len() / 2]).unwrap();

    assert!(
        matches!(
            CorpusStore::new(&root).open("c"),
            Err(CorpusError::Corrupt(_))
        ),
        "digest verification must catch the truncation before decoding"
    );
}

#[test]
fn torn_tuple_block_with_matching_digest_is_a_typed_decode_error() {
    // Digest verification passes (the manifest is rewritten to match the
    // truncated bytes), so `open` reaches the codec — which must report
    // `Truncated` instead of panicking on a short buffer.
    let (root, seg) = committed_corpus("torn-tuples");
    let bytes = fs::read(&seg).unwrap();
    let torn = &bytes[..bytes.len() - 3];
    fs::write(&seg, torn).unwrap();
    let manifest = root.join("c").join("MANIFEST");
    fs::write(
        &manifest,
        format!(
            "xfdcorpus v1\ndoc 0 {} d1\n",
            format_digest(digest_bytes(torn))
        ),
    )
    .unwrap();

    match CorpusStore::new(&root).open("c") {
        Err(CorpusError::Decode(DecodeError::Truncated)) => {}
        Err(other) => panic!("expected Decode(Truncated), got {other:?}"),
        Ok(_) => panic!("torn corpus opened cleanly"),
    }
}

#[test]
fn garbage_segment_with_matching_digest_is_a_typed_decode_error() {
    let (root, seg) = committed_corpus("garbage");
    let garbage: Vec<u8> = (0..200u32)
        .map(|i| (i.wrapping_mul(97) >> 3) as u8)
        .collect();
    fs::write(&seg, &garbage).unwrap();
    let manifest = root.join("c").join("MANIFEST");
    fs::write(
        &manifest,
        format!(
            "xfdcorpus v1\ndoc 0 {} d1\n",
            format_digest(digest_bytes(&garbage))
        ),
    )
    .unwrap();

    match CorpusStore::new(&root).open("c") {
        Err(CorpusError::Decode(_)) => {}
        Err(other) => panic!("expected a Decode error, got {other:?}"),
        Ok(_) => panic!("garbage corpus opened cleanly"),
    }
}
