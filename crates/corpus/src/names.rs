//! The shared name guard for corpus and document names.
//!
//! Names become path components under the corpus root *and* path segments
//! in server URLs, so they are validated identically everywhere — CLI and
//! server — **before** any filesystem access. The rules are deliberately
//! strict: ASCII letters, digits, `.`, `_`, `-`; no leading dot (which
//! also kills `.` and `..` traversal); at most 128 bytes. Everything else
//! (slashes, backslashes, NULs, non-ASCII, percent-escapes left undecoded)
//! fails the character test.

/// Why a name was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NameError {
    /// Empty string.
    Empty,
    /// More than 128 bytes.
    TooLong,
    /// Starts with `.` (covers `.`, `..`, and hidden files).
    LeadingDot,
    /// Contains a byte outside `[A-Za-z0-9._-]`.
    BadChar,
}

impl std::fmt::Display for NameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NameError::Empty => write!(f, "name is empty"),
            NameError::TooLong => write!(f, "name exceeds 128 bytes"),
            NameError::LeadingDot => write!(f, "name may not start with '.'"),
            NameError::BadChar => {
                write!(
                    f,
                    "name may only contain ASCII letters, digits, '.', '_', '-'"
                )
            }
        }
    }
}

impl std::error::Error for NameError {}

/// Validate a corpus or document name. `Ok(())` means the name is safe to
/// join onto a directory path and to embed in a URL path segment.
pub fn validate_name(name: &str) -> Result<(), NameError> {
    if name.is_empty() {
        return Err(NameError::Empty);
    }
    if name.len() > 128 {
        return Err(NameError::TooLong);
    }
    if name.starts_with('.') {
        return Err(NameError::LeadingDot);
    }
    if !name
        .bytes()
        .all(|b| b.is_ascii_alphanumeric() || b == b'.' || b == b'_' || b == b'-')
    {
        return Err(NameError::BadChar);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_ordinary_names() {
        for ok in ["a", "orders", "corpus-2024", "v1.2_final", "A-b.C_9"] {
            assert_eq!(validate_name(ok), Ok(()), "{ok}");
        }
    }

    #[test]
    fn rejects_traversal_and_separators() {
        assert_eq!(validate_name("."), Err(NameError::LeadingDot));
        assert_eq!(validate_name(".."), Err(NameError::LeadingDot));
        assert_eq!(validate_name("..evil"), Err(NameError::LeadingDot));
        assert_eq!(validate_name(".hidden"), Err(NameError::LeadingDot));
        assert_eq!(validate_name("a/b"), Err(NameError::BadChar));
        assert_eq!(validate_name("../x"), Err(NameError::LeadingDot));
        assert_eq!(validate_name("a\\b"), Err(NameError::BadChar));
        assert_eq!(validate_name("a\0b"), Err(NameError::BadChar));
    }

    #[test]
    fn rejects_non_ascii_and_spaces() {
        assert_eq!(validate_name("café"), Err(NameError::BadChar));
        assert_eq!(validate_name("名前"), Err(NameError::BadChar));
        assert_eq!(validate_name("a b"), Err(NameError::BadChar));
        assert_eq!(validate_name("a%2e%2e"), Err(NameError::BadChar));
    }

    #[test]
    fn rejects_empty_and_oversized() {
        assert_eq!(validate_name(""), Err(NameError::Empty));
        assert_eq!(validate_name(&"x".repeat(128)), Ok(()));
        assert_eq!(validate_name(&"x".repeat(129)), Err(NameError::TooLong));
    }
}
