//! On-disk corpus layout: manifest, write-ahead log, segment files.
//!
//! One directory per corpus:
//!
//! ```text
//! <root>/<corpus>/MANIFEST          committed document list
//! <root>/<corpus>/wal               redo log between manifest rewrites
//! <root>/<corpus>/segments/seg-N.xtt   one TreeTuple block per document
//! ```
//!
//! The `MANIFEST` is a line-oriented text file — a `xfdcorpus v1` header,
//! then one `doc <seg-id> <digest> <name>` line per document in ingest
//! order. It is only ever replaced atomically (write `MANIFEST.tmp`,
//! fsync, rename, fsync the directory).
//!
//! ## WAL protocol
//!
//! Every mutation follows *segment → WAL → manifest*:
//!
//! 1. the segment file is fully written and fsynced (adds only);
//! 2. a WAL record is appended and fsynced — `[u32 LE length][payload]
//!    [16-byte LE checksum]`, the checksum being the shared dual-lane
//!    FNV-1a digest of the payload, the same 128-bit lane the manifest
//!    uses for segment digests;
//! 3. the manifest is atomically rewritten and the WAL truncated.
//!
//! Replay-on-open applies every complete, checksum-verified record in
//! order (an `add` additionally requires its segment to exist with a
//! matching digest), drops the torn tail, rewrites the manifest, and
//! truncates the WAL. A crash at *any* byte therefore yields either the
//! pre-mutation or the post-mutation document set — never a torn one.
//! Unreferenced segment files left by pre-WAL crashes are garbage-collected
//! on open.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

use xfd_hash::{digest_bytes, format_digest, parse_digest};

/// Magic first line of a manifest.
const MANIFEST_HEADER: &str = "xfdcorpus v1";
/// Largest WAL payload replay will consider sane (a record holds one
/// mutation line, nowhere near this).
const MAX_WAL_PAYLOAD: usize = 1 << 20;

/// One committed document: its name, segment id and segment digest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DocMeta {
    /// Document name (validated by [`crate::validate_name`]).
    pub name: String,
    /// Segment id (`segments/seg-<id>.xtt`).
    pub seg: u64,
    /// Digest of the document's bytes (the whole segment file, or its
    /// `span` of a shared compacted segment).
    pub digest: u128,
    /// `(offset, length)` within the segment file for documents packed
    /// into a shared segment by `corpus compact`; `None` means the
    /// document owns the whole file.
    pub span: Option<(u64, u64)>,
}

/// A WAL mutation record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// A document was ingested (its segment is already on disk).
    Add(DocMeta),
    /// A document was removed.
    Remove(String),
    /// Every document was rewritten into one shared segment (the new
    /// segment is already on disk); carries the full post-compaction
    /// document list, which *replaces* the committed one on replay.
    Compact(Vec<DocMeta>),
}

impl WalRecord {
    /// Text payload of the record.
    pub fn payload(&self) -> String {
        match self {
            WalRecord::Add(d) => {
                format!("add {} {} {}", d.seg, format_digest(d.digest), d.name)
            }
            WalRecord::Remove(name) => format!("rm {name}"),
            WalRecord::Compact(metas) => {
                let mut text = format!("compact {}", metas.len());
                for d in metas {
                    let (off, len) = d.span.unwrap_or((0, 0));
                    text.push_str(&format!(
                        "\n{} {off} {len} {} {}",
                        d.seg,
                        format_digest(d.digest),
                        d.name
                    ));
                }
                text
            }
        }
    }

    /// Parse a payload back; `None` for unknown or malformed payloads.
    pub fn parse(payload: &str) -> Option<WalRecord> {
        if let Some(rest) = payload.strip_prefix("compact ") {
            let mut lines = rest.lines();
            let count: usize = lines.next()?.trim().parse().ok()?;
            let mut metas = Vec::with_capacity(count.min(1 << 16));
            for _ in 0..count {
                let mut parts = lines.next()?.splitn(5, ' ');
                let seg: u64 = parts.next()?.parse().ok()?;
                let off: u64 = parts.next()?.parse().ok()?;
                let len: u64 = parts.next()?.parse().ok()?;
                let digest = parse_digest(parts.next()?)?;
                let name = parts.next()?;
                if name.is_empty() {
                    return None;
                }
                metas.push(DocMeta {
                    name: name.to_string(),
                    seg,
                    digest,
                    span: Some((off, len)),
                });
            }
            if lines.next().is_some() {
                return None;
            }
            return Some(WalRecord::Compact(metas));
        }
        let mut parts = payload.splitn(4, ' ');
        match parts.next()? {
            "add" => {
                let seg: u64 = parts.next()?.parse().ok()?;
                let digest = parse_digest(parts.next()?)?;
                let name = parts.next()?;
                if name.is_empty() {
                    return None;
                }
                Some(WalRecord::Add(DocMeta {
                    name: name.to_string(),
                    seg,
                    digest,
                    span: None,
                }))
            }
            "rm" => {
                let name = parts.next()?;
                if name.is_empty() || parts.next().is_some() {
                    return None;
                }
                Some(WalRecord::Remove(name.to_string()))
            }
            _ => None,
        }
    }
}

/// Low-level handle on one corpus directory. Higher layers
/// ([`crate::CorpusHandle`]) own the in-memory state; this type owns the
/// bytes and the crash-safety discipline.
#[derive(Debug)]
pub struct StoreDir {
    dir: PathBuf,
}

impl StoreDir {
    /// Create the directory structure for a new, empty corpus. Fails if
    /// `dir` already exists.
    pub fn init(dir: &Path) -> io::Result<StoreDir> {
        fs::create_dir_all(dir.parent().unwrap_or(Path::new(".")))?;
        fs::create_dir(dir)?;
        fs::create_dir(dir.join("segments"))?;
        let store = StoreDir {
            dir: dir.to_path_buf(),
        };
        store.commit(&[])?;
        Ok(store)
    }

    /// Attach to an existing corpus directory (no replay; see
    /// [`StoreDir::open`]).
    pub fn attach(dir: &Path) -> StoreDir {
        StoreDir {
            dir: dir.to_path_buf(),
        }
    }

    /// Open an existing corpus: load the manifest, replay the WAL, rewrite
    /// the manifest if the WAL held anything, and garbage-collect
    /// unreferenced segments. Returns the committed document list.
    pub fn open(dir: &Path) -> Result<(StoreDir, Vec<DocMeta>), StoreError> {
        let store = StoreDir::attach(dir);
        if !store.manifest_path().is_file() {
            return Err(StoreError::Corrupt("missing MANIFEST".into()));
        }
        let mut docs = store.load_manifest()?;
        let replayed = store.replay_wal(&mut docs)?;
        if replayed {
            store.commit(&docs)?;
        }
        store.collect_garbage(&docs)?;
        Ok((store, docs))
    }

    /// Open an existing corpus without mutating its directory: the WAL is
    /// replayed *in memory* only — the manifest is not rewritten, the WAL
    /// is not truncated and no garbage collection runs. For processes that
    /// read a corpus another process owns (cluster workers).
    pub fn open_readonly(dir: &Path) -> Result<(StoreDir, Vec<DocMeta>), StoreError> {
        let store = StoreDir::attach(dir);
        if !store.manifest_path().is_file() {
            return Err(StoreError::Corrupt("missing MANIFEST".into()));
        }
        let mut docs = store.load_manifest()?;
        store.replay_wal(&mut docs)?;
        Ok((store, docs))
    }

    /// The corpus directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn manifest_path(&self) -> PathBuf {
        self.dir.join("MANIFEST")
    }

    /// Path of the WAL file.
    pub fn wal_path(&self) -> PathBuf {
        self.dir.join("wal")
    }

    /// Path of segment `seg`.
    pub fn seg_path(&self, seg: u64) -> PathBuf {
        self.dir.join("segments").join(format!("seg-{seg}.xtt"))
    }

    /// Write and fsync a segment file. Step 1 of an ingest: runs *before*
    /// the WAL record referencing it.
    pub fn write_segment(&self, seg: u64, bytes: &[u8]) -> io::Result<()> {
        let path = self.seg_path(seg);
        let mut f = File::create(&path)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        Ok(())
    }

    /// Read a segment file whole.
    pub fn read_segment(&self, seg: u64) -> io::Result<Vec<u8>> {
        fs::read(self.seg_path(seg))
    }

    /// Read one document's bytes: the whole segment file, or its span of a
    /// shared compacted segment.
    pub fn read_doc(&self, meta: &DocMeta) -> Result<Vec<u8>, StoreError> {
        let bytes = self.read_segment(meta.seg)?;
        Ok(slice_span(&bytes, meta)?.to_vec())
    }

    /// Append one record to the WAL and fsync it. Step 2 of a mutation:
    /// after this returns, the mutation survives any crash.
    pub fn append_wal(&self, record: &WalRecord) -> io::Result<()> {
        let payload = record.payload();
        let mut f = OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.wal_path())?;
        let mut frame = Vec::with_capacity(payload.len() + 20);
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(payload.as_bytes());
        frame.extend_from_slice(&digest_bytes(payload.as_bytes()).to_le_bytes());
        f.write_all(&frame)?;
        f.sync_all()?;
        Ok(())
    }

    /// Atomically rewrite the manifest to `docs` and truncate the WAL.
    /// Step 3 of a mutation.
    pub fn commit(&self, docs: &[DocMeta]) -> io::Result<()> {
        let mut text = String::from(MANIFEST_HEADER);
        text.push('\n');
        for d in docs {
            match d.span {
                None => text.push_str(&format!(
                    "doc {} {} {}\n",
                    d.seg,
                    format_digest(d.digest),
                    d.name
                )),
                Some((off, len)) => text.push_str(&format!(
                    "part {} {off} {len} {} {}\n",
                    d.seg,
                    format_digest(d.digest),
                    d.name
                )),
            }
        }
        let tmp = self.dir.join("MANIFEST.tmp");
        let mut f = File::create(&tmp)?;
        f.write_all(text.as_bytes())?;
        f.sync_all()?;
        fs::rename(&tmp, self.manifest_path())?;
        // fsync the directory so the rename itself is durable.
        File::open(&self.dir)?.sync_all()?;
        // The manifest now covers everything the WAL recorded.
        if self.wal_path().exists() {
            File::create(self.wal_path())?.sync_all()?;
        }
        Ok(())
    }

    fn load_manifest(&self) -> Result<Vec<DocMeta>, StoreError> {
        let text = fs::read_to_string(self.manifest_path())?;
        let mut lines = text.lines();
        if lines.next() != Some(MANIFEST_HEADER) {
            return Err(StoreError::Corrupt("bad MANIFEST header".into()));
        }
        let mut docs = Vec::new();
        for line in lines {
            if line.is_empty() {
                continue;
            }
            let bad = || StoreError::Corrupt(format!("bad MANIFEST line: {line}"));
            if let Some(rest) = line.strip_prefix("doc ") {
                let mut parts = rest.splitn(3, ' ');
                let seg: u64 = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
                let digest = parse_digest(parts.next().ok_or_else(bad)?).ok_or_else(bad)?;
                let name = parts.next().ok_or_else(bad)?.to_string();
                docs.push(DocMeta {
                    name,
                    seg,
                    digest,
                    span: None,
                });
            } else if let Some(rest) = line.strip_prefix("part ") {
                let mut parts = rest.splitn(5, ' ');
                let seg: u64 = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
                let off: u64 = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
                let len: u64 = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
                let digest = parse_digest(parts.next().ok_or_else(bad)?).ok_or_else(bad)?;
                let name = parts.next().ok_or_else(bad)?.to_string();
                docs.push(DocMeta {
                    name,
                    seg,
                    digest,
                    span: Some((off, len)),
                });
            } else {
                return Err(bad());
            }
        }
        Ok(docs)
    }

    /// Apply complete, verified WAL records to `docs`; stop at the first
    /// torn or invalid record. Returns whether the WAL held any bytes (in
    /// which case the caller must re-commit).
    fn replay_wal(&self, docs: &mut Vec<DocMeta>) -> Result<bool, StoreError> {
        let bytes = match fs::read(self.wal_path()) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(false),
            Err(e) => return Err(e.into()),
        };
        if bytes.is_empty() {
            return Ok(false);
        }
        let mut pos = 0usize;
        // Every short or out-of-range read below is the torn tail a crash
        // mid-append leaves behind: stop replaying, keep what is already
        // applied.
        while let Some(header) = bytes
            .get(pos..pos + 4)
            .and_then(|b| <[u8; 4]>::try_from(b).ok())
        {
            let len = u32::from_le_bytes(header) as usize;
            if len > MAX_WAL_PAYLOAD {
                break;
            }
            let Some(payload) = bytes.get(pos + 4..pos + 4 + len) else {
                break;
            };
            let Some(checksum) = bytes
                .get(pos + 4 + len..pos + 20 + len)
                .and_then(|b| <[u8; 16]>::try_from(b).ok())
                .map(u128::from_le_bytes)
            else {
                break;
            };
            if digest_bytes(payload) != checksum {
                break; // torn or corrupted record
            }
            let Some(record) = std::str::from_utf8(payload).ok().and_then(WalRecord::parse) else {
                break;
            };
            match record {
                WalRecord::Add(meta) => {
                    // The protocol wrote and fsynced the segment before this
                    // record; verify that actually holds before trusting it.
                    match self.read_segment(meta.seg) {
                        Ok(seg_bytes) if digest_bytes(&seg_bytes) == meta.digest => {
                            docs.retain(|d| d.name != meta.name);
                            docs.push(meta);
                        }
                        _ => break,
                    }
                }
                WalRecord::Remove(name) => docs.retain(|d| d.name != name),
                WalRecord::Compact(metas) => {
                    // Compaction wrote and fsynced the shared segment before
                    // this record; every span must digest-match, else the
                    // record is torn and the pre-compaction list stands.
                    let mut seg_bytes: Option<(u64, Vec<u8>)> = None;
                    let mut all_ok = true;
                    for meta in &metas {
                        if seg_bytes.as_ref().map(|(s, _)| *s) != Some(meta.seg) {
                            match self.read_segment(meta.seg) {
                                Ok(b) => seg_bytes = Some((meta.seg, b)),
                                Err(_) => {
                                    all_ok = false;
                                    break;
                                }
                            }
                        }
                        let ok = seg_bytes
                            .as_ref()
                            .and_then(|(_, b)| slice_span(b, meta).ok())
                            .is_some_and(|doc| digest_bytes(doc) == meta.digest);
                        if !ok {
                            all_ok = false;
                            break;
                        }
                    }
                    if !all_ok {
                        break;
                    }
                    *docs = metas;
                }
            }
            pos += 20 + len;
        }
        Ok(true)
    }

    /// Delete segment files no committed document references (left behind
    /// by crashes between segment write and WAL append, or by removals).
    fn collect_garbage(&self, docs: &[DocMeta]) -> io::Result<()> {
        let live: Vec<PathBuf> = docs.iter().map(|d| self.seg_path(d.seg)).collect();
        for entry in fs::read_dir(self.dir.join("segments"))? {
            let path = entry?.path();
            if !live.contains(&path) {
                // xfdlint:allow(error_hygiene, reason = "orphan-segment GC is opportunistic; a file that cannot be unlinked now is retried on the next open")
                let _ = fs::remove_file(&path);
            }
        }
        Ok(())
    }
}

/// Slice a document's span out of its segment bytes (the whole slice for
/// whole-file documents), bounds-checked.
fn slice_span<'a>(bytes: &'a [u8], meta: &DocMeta) -> Result<&'a [u8], StoreError> {
    match meta.span {
        None => Ok(bytes),
        Some((off, len)) => (off as usize)
            .checked_add(len as usize)
            .and_then(|end| bytes.get(off as usize..end))
            .ok_or_else(|| {
                StoreError::Corrupt(format!(
                    "span of document '{}' exceeds segment {}",
                    meta.name, meta.seg
                ))
            }),
    }
}

/// Errors from the storage layer.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem failure.
    Io(io::Error),
    /// The on-disk state is not a corpus (bad header, unparseable line,
    /// digest mismatch).
    Corrupt(String),
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "i/o error: {e}"),
            StoreError::Corrupt(what) => write!(f, "corrupt corpus: {what}"),
        }
    }
}

impl std::error::Error for StoreError {}

/// Read a file and digest it in one pass (used by status reporting).
pub fn digest_file(path: &Path) -> io::Result<u128> {
    let mut f = File::open(path)?;
    let mut buf = [0u8; 64 * 1024];
    let mut d = xfd_hash::ContentDigest::new();
    loop {
        let n = f.read(&mut buf)?;
        if n == 0 {
            return Ok(d.finish());
        }
        let Some(chunk) = buf.get(..n) else {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "reader reported more bytes than the buffer holds",
            ));
        };
        d.update(chunk);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("xfd-corpus-store-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn meta(name: &str, seg: u64, bytes: &[u8]) -> DocMeta {
        DocMeta {
            name: name.into(),
            seg,
            digest: digest_bytes(bytes),
            span: None,
        }
    }

    fn part(name: &str, seg: u64, off: u64, bytes: &[u8]) -> DocMeta {
        DocMeta {
            name: name.into(),
            seg,
            digest: digest_bytes(bytes),
            span: Some((off, bytes.len() as u64)),
        }
    }

    #[test]
    fn wal_record_payloads_round_trip() {
        let add = WalRecord::Add(meta("orders-3", 7, b"abc"));
        assert_eq!(WalRecord::parse(&add.payload()), Some(add.clone()));
        let rm = WalRecord::Remove("orders-3".into());
        assert_eq!(WalRecord::parse(&rm.payload()), Some(rm));
        let compact = WalRecord::Compact(vec![part("a", 4, 0, b"one"), part("b", 4, 3, b"two")]);
        assert_eq!(WalRecord::parse(&compact.payload()), Some(compact));
        assert_eq!(WalRecord::parse("nonsense 1 2 3"), None);
        assert_eq!(WalRecord::parse("add x y z"), None);
        assert_eq!(WalRecord::parse("rm"), None);
        assert_eq!(WalRecord::parse("compact x"), None);
        assert_eq!(WalRecord::parse("compact 2\n0 0 3 00 a"), None);
    }

    #[test]
    fn manifest_round_trips_span_documents() {
        let dir = tmp_dir("spans");
        let store = StoreDir::init(&dir).unwrap();
        store.write_segment(3, b"onetwo").unwrap();
        let docs = vec![part("a", 3, 0, b"one"), part("b", 3, 3, b"two")];
        store.commit(&docs).unwrap();
        let (store, loaded) = StoreDir::open(&dir).unwrap();
        assert_eq!(loaded, docs);
        assert_eq!(store.read_doc(&loaded[0]).unwrap(), b"one");
        assert_eq!(store.read_doc(&loaded[1]).unwrap(), b"two");
        // A span past the end of the segment is corruption, not a panic.
        let bogus = part("c", 3, 5, b"xx");
        assert!(matches!(
            store.read_doc(&bogus),
            Err(StoreError::Corrupt(_))
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wal_compact_replay_replaces_the_document_list() {
        let dir = tmp_dir("compact-replay");
        let store = StoreDir::init(&dir).unwrap();
        store.write_segment(0, b"one").unwrap();
        store.write_segment(1, b"two").unwrap();
        let before = vec![meta("a", 0, b"one"), meta("b", 1, b"two")];
        store.commit(&before).unwrap();
        // Compaction crashed between WAL append and manifest rewrite.
        store.write_segment(2, b"onetwo").unwrap();
        let after = vec![part("a", 2, 0, b"one"), part("b", 2, 3, b"two")];
        store
            .append_wal(&WalRecord::Compact(after.clone()))
            .unwrap();
        let (store, docs) = StoreDir::open(&dir).unwrap();
        assert_eq!(docs, after);
        // Replay committed: old whole-file segments are garbage now.
        assert!(!store.seg_path(0).exists());
        assert!(!store.seg_path(1).exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wal_compact_without_segment_is_dropped() {
        let dir = tmp_dir("compact-noseg");
        let store = StoreDir::init(&dir).unwrap();
        store.write_segment(0, b"one").unwrap();
        let before = vec![meta("a", 0, b"one")];
        store.commit(&before).unwrap();
        // Crash before the compacted segment reached disk: record is torn.
        store
            .append_wal(&WalRecord::Compact(vec![part("a", 9, 0, b"one")]))
            .unwrap();
        let (_, docs) = StoreDir::open(&dir).unwrap();
        assert_eq!(docs, before);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_readonly_leaves_the_directory_untouched() {
        let dir = tmp_dir("readonly");
        let store = StoreDir::init(&dir).unwrap();
        store.write_segment(0, b"first").unwrap();
        store
            .append_wal(&WalRecord::Add(meta("a", 0, b"first")))
            .unwrap();
        store.write_segment(7, b"orphan").unwrap();
        let wal_before = fs::read(store.wal_path()).unwrap();
        let manifest_before = fs::read(dir.join("MANIFEST")).unwrap();
        let (ro, docs) = StoreDir::open_readonly(&dir).unwrap();
        // The replayed view surfaces the staged document…
        assert_eq!(docs, vec![meta("a", 0, b"first")]);
        // …but nothing on disk moved: WAL, manifest and orphans intact.
        assert_eq!(fs::read(ro.wal_path()).unwrap(), wal_before);
        assert_eq!(fs::read(dir.join("MANIFEST")).unwrap(), manifest_before);
        assert!(ro.seg_path(7).exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn manifest_round_trips_through_commit_and_open() {
        let dir = tmp_dir("manifest");
        let store = StoreDir::init(&dir).unwrap();
        store.write_segment(0, b"seg zero").unwrap();
        store.write_segment(1, b"seg one").unwrap();
        let docs = vec![meta("a", 0, b"seg zero"), meta("b", 1, b"seg one")];
        store.commit(&docs).unwrap();
        let (_, loaded) = StoreDir::open(&dir).unwrap();
        assert_eq!(loaded, docs);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wal_replay_applies_complete_records() {
        let dir = tmp_dir("replay");
        let store = StoreDir::init(&dir).unwrap();
        store.write_segment(0, b"first").unwrap();
        store
            .append_wal(&WalRecord::Add(meta("a", 0, b"first")))
            .unwrap();
        // Crash here: manifest never rewritten. Reopen must surface doc a.
        let (_, docs) = StoreDir::open(&dir).unwrap();
        assert_eq!(docs, vec![meta("a", 0, b"first")]);
        // And the replay committed: the WAL is now empty.
        assert_eq!(fs::read(store.wal_path()).unwrap(), Vec::<u8>::new());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wal_add_without_segment_is_dropped() {
        let dir = tmp_dir("noseg");
        let store = StoreDir::init(&dir).unwrap();
        store
            .append_wal(&WalRecord::Add(meta("ghost", 9, b"never written")))
            .unwrap();
        let (_, docs) = StoreDir::open(&dir).unwrap();
        assert!(docs.is_empty(), "{docs:?}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn orphan_segments_are_collected_on_open() {
        let dir = tmp_dir("gc");
        let store = StoreDir::init(&dir).unwrap();
        store
            .write_segment(5, b"orphan from a pre-WAL crash")
            .unwrap();
        let (store, docs) = StoreDir::open(&dir).unwrap();
        assert!(docs.is_empty());
        assert!(!store.seg_path(5).exists(), "orphan must be collected");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_rejects_a_missing_or_mangled_manifest() {
        let dir = tmp_dir("mangled");
        assert!(matches!(
            StoreDir::open(&dir),
            Err(StoreError::Io(_)) | Err(StoreError::Corrupt(_))
        ));
        let store = StoreDir::init(&dir).unwrap();
        fs::write(store.dir().join("MANIFEST"), "not a manifest\n").unwrap();
        assert!(matches!(StoreDir::open(&dir), Err(StoreError::Corrupt(_))));
        fs::remove_dir_all(&dir).unwrap();
    }
}
