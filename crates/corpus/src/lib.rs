#![warn(missing_docs)]
//! # xfd-corpus
//!
//! A named, durable, multi-document corpus store with incremental XFD
//! discovery — the stateful layer that turns DiscoverXFD from a
//! run-per-request function into a discovery *service*.
//!
//! * **On disk** each corpus is an append-only segment directory: one
//!   [`TreeTuple`](xfd_relation::treetuple) block per ingested document, a
//!   `MANIFEST` carrying per-segment 128-bit FNV-1a digests, and a small
//!   WAL so a crash mid-ingest never corrupts the manifest (see
//!   [`store`] for the exact protocol).
//! * **In memory** a [`CorpusHandle`] keeps the decoded documents plus a
//!   [`RelationMemo`](discoverxfd::RelationMemo): re-running
//!   [`CorpusHandle::discover`] after adding or removing one document
//!   replays every relation pass whose partition inputs did not change and
//!   recomputes only the rest — output byte-identical to a from-scratch
//!   run over the same documents.
//!
//! ```no_run
//! use xfd_corpus::CorpusStore;
//! use discoverxfd::DiscoveryConfig;
//!
//! let store = CorpusStore::new("./corpora");
//! let mut corpus = store.create("orders").unwrap();
//! let doc = xfd_xml::parse("<shop><book><i>1</i></book></shop>").unwrap();
//! corpus.add_doc("day-1", &doc).unwrap();
//! let outcome = corpus.discover(&DiscoveryConfig::default());
//! println!("{} FDs", outcome.fds.len());
//! ```

pub mod names;
pub mod store;

pub use names::{validate_name, NameError};
pub use store::{DocMeta, StoreDir, StoreError, WalRecord};

use std::collections::{HashMap, HashSet};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

use discoverxfd::memo::{PassRunner, RelationMemo, RelationProgress};
use discoverxfd::{discover_prepared_with, DiscoveryConfig, RunOutcome};
use xfd_relation::treetuple::{decode_tree, encode_tree, DecodeError};
use xfd_relation::{build_partials, merge_partials, Forest, SegmentPartial};
use xfd_schema::{infer_schema_from_summaries, summarize, Schema, SchemaMap, SchemaSummary};
use xfd_xml::DataTree;

/// Errors from the corpus layer.
#[derive(Debug)]
pub enum CorpusError {
    /// Filesystem failure.
    Io(io::Error),
    /// A corpus or document name failed [`validate_name`].
    BadName(NameError),
    /// `create` on an existing corpus.
    CorpusExists(String),
    /// `open`/`delete` on a missing corpus.
    CorpusNotFound(String),
    /// `add_doc` with a name already in the corpus.
    DocExists(String),
    /// `remove_doc` with an unknown name.
    DocNotFound(String),
    /// On-disk state failed verification (manifest, WAL, or a segment
    /// whose bytes no longer match their manifest digest).
    Corrupt(String),
    /// A segment failed to decode.
    Decode(DecodeError),
    /// The in-memory handle was abandoned after a panic mid-operation
    /// (e.g. a poisoned server-side lock); durable state is intact and the
    /// corpus reopens from the manifest + WAL on the next request.
    Poisoned(String),
    /// A mutation was attempted through a handle opened with
    /// [`CorpusStore::open_readonly`] (a cluster worker's view).
    ReadOnly(String),
}

impl From<io::Error> for CorpusError {
    fn from(e: io::Error) -> Self {
        CorpusError::Io(e)
    }
}

impl From<StoreError> for CorpusError {
    fn from(e: StoreError) -> Self {
        match e {
            StoreError::Io(e) => CorpusError::Io(e),
            StoreError::Corrupt(what) => CorpusError::Corrupt(what),
        }
    }
}

impl std::fmt::Display for CorpusError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CorpusError::Io(e) => write!(f, "i/o error: {e}"),
            CorpusError::BadName(e) => write!(f, "invalid name: {e}"),
            CorpusError::CorpusExists(n) => write!(f, "corpus '{n}' already exists"),
            CorpusError::CorpusNotFound(n) => write!(f, "corpus '{n}' not found"),
            CorpusError::DocExists(n) => write!(f, "document '{n}' already exists"),
            CorpusError::DocNotFound(n) => write!(f, "document '{n}' not found"),
            CorpusError::Corrupt(what) => write!(f, "corrupt corpus: {what}"),
            CorpusError::Decode(e) => write!(f, "segment decode failed: {e}"),
            CorpusError::Poisoned(n) => write!(
                f,
                "corpus '{n}' was abandoned after a panic; retry to reopen it"
            ),
            CorpusError::ReadOnly(n) => {
                write!(
                    f,
                    "corpus '{n}' was opened read-only; mutations are rejected"
                )
            }
        }
    }
}

impl std::error::Error for CorpusError {}

/// A root directory holding corpora, one subdirectory each.
#[derive(Debug, Clone)]
pub struct CorpusStore {
    root: PathBuf,
}

impl CorpusStore {
    /// A store rooted at `root` (created lazily on first `create`).
    pub fn new(root: impl Into<PathBuf>) -> CorpusStore {
        CorpusStore { root: root.into() }
    }

    /// The root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn corpus_dir(&self, name: &str) -> Result<PathBuf, CorpusError> {
        validate_name(name).map_err(CorpusError::BadName)?;
        Ok(self.root.join(name))
    }

    /// Whether a corpus of that name exists (invalid names simply don't).
    pub fn exists(&self, name: &str) -> bool {
        validate_name(name).is_ok() && self.root.join(name).join("MANIFEST").is_file()
    }

    /// Create a new empty corpus.
    pub fn create(&self, name: &str) -> Result<CorpusHandle, CorpusError> {
        let dir = self.corpus_dir(name)?;
        if dir.exists() {
            return Err(CorpusError::CorpusExists(name.to_string()));
        }
        StoreDir::init(&dir)?;
        CorpusHandle::load(name, &dir)
    }

    /// Open an existing corpus, replaying its WAL and verifying every
    /// segment digest.
    pub fn open(&self, name: &str) -> Result<CorpusHandle, CorpusError> {
        let dir = self.corpus_dir(name)?;
        if !dir.join("MANIFEST").is_file() {
            return Err(CorpusError::CorpusNotFound(name.to_string()));
        }
        CorpusHandle::load(name, &dir)
    }

    /// Open an existing corpus **without mutating its directory**: the WAL
    /// is replayed in memory only — no manifest rewrite, no WAL truncation,
    /// no garbage collection. This is the view cluster workers take on a
    /// corpus the coordinator owns; mutations through the returned handle
    /// fail with [`CorpusError::ReadOnly`].
    pub fn open_readonly(&self, name: &str) -> Result<CorpusHandle, CorpusError> {
        let dir = self.corpus_dir(name)?;
        if !dir.join("MANIFEST").is_file() {
            return Err(CorpusError::CorpusNotFound(name.to_string()));
        }
        CorpusHandle::load_inner(name, &dir, true)
    }

    /// Open the corpus, creating it first if missing.
    pub fn open_or_create(&self, name: &str) -> Result<CorpusHandle, CorpusError> {
        if self.exists(name) {
            self.open(name)
        } else {
            self.create(name)
        }
    }

    /// Delete a corpus and everything under it.
    pub fn delete(&self, name: &str) -> Result<(), CorpusError> {
        let dir = self.corpus_dir(name)?;
        if !dir.exists() {
            return Err(CorpusError::CorpusNotFound(name.to_string()));
        }
        fs::remove_dir_all(&dir)?;
        Ok(())
    }

    /// Names of all corpora under the root, sorted.
    pub fn list(&self) -> io::Result<Vec<String>> {
        let mut names = Vec::new();
        let entries = match fs::read_dir(&self.root) {
            Ok(e) => e,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(names),
            Err(e) => return Err(e),
        };
        for entry in entries {
            let entry = entry?;
            if let Some(name) = entry.file_name().to_str() {
                if validate_name(name).is_ok() && entry.path().join("MANIFEST").is_file() {
                    names.push(name.to_string());
                }
            }
        }
        names.sort();
        Ok(names)
    }
}

struct Doc {
    meta: DocMeta,
    tree: DataTree,
}

/// Point-in-time description of a corpus, for `corpus status` and the
/// server's `GET /v1/corpora/{name}`.
#[derive(Debug, Clone)]
pub struct CorpusStatus {
    /// Corpus name.
    pub name: String,
    /// Per document: name, segment digest (hex), node count.
    pub docs: Vec<(String, String, usize)>,
    /// Total bytes across segment files.
    pub segment_bytes: u64,
    /// Cached relation passes currently held.
    pub memo_entries: usize,
    /// Lifetime relation passes replayed from cache.
    pub memo_hits: u64,
    /// Lifetime relation passes computed.
    pub memo_misses: u64,
    /// Lifetime relation passes evicted under the memo byte budget.
    pub memo_evictions: u64,
    /// Approximate bytes of memoized relation passes currently resident.
    pub memo_resident_bytes: usize,
    /// Whether the merged forest for the current corpus state is cached
    /// (the next same-config `discover` skips merge+infer+encode).
    pub forest_cached: bool,
    /// Lifetime error-only (validation) partition products across discover
    /// runs on this handle.
    pub kernel_products_error_only: u64,
    /// Lifetime fully-materialized partition products.
    pub kernel_products_materialized: u64,
    /// Lifetime early exits taken by the error-only kernel.
    pub kernel_early_exits: u64,
    /// Lifetime lattice-node answers served from the summary tier.
    pub kernel_summary_hits: u64,
}

/// Per-segment derived state, keyed by the segment's content digest so
/// identical documents (and re-ingested ones) share one entry.
struct SegCacheEntry {
    /// Schema trie of the segment, valid for any configuration.
    summary: Arc<SchemaSummary>,
    /// Encoded partial, valid only for the plan fingerprint it was built
    /// under (collection schema + encode configuration).
    partial: Option<(u128, Arc<SegmentPartial>)>,
}

/// The merged collection forest of one corpus state under one plan.
struct ForestCache {
    generation: u64,
    plan_fp: u128,
    schema: Arc<Schema>,
    forest: Arc<Forest>,
}

/// Everything a [`SegmentPartial`] depends on besides the document bytes:
/// the collection schema and the encode configuration.
fn plan_fingerprint(schema: &Schema, config: &DiscoveryConfig) -> u128 {
    xfd_hash::digest_bytes(format!("{schema:?}|{:?}", config.encode).as_bytes())
}

/// The inferred collection schema plus the fingerprint everything encoded
/// under it depends on. Produced by [`CorpusHandle::plan`]; a cluster
/// worker re-derives it independently from its read-only view of the same
/// directory and the two fingerprints must agree before any work is
/// assigned.
pub struct CorpusPlan {
    schema: Arc<Schema>,
    plan_fp: u128,
    infer: Duration,
}

impl CorpusPlan {
    /// The collection schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Fingerprint of (collection schema, encode configuration).
    pub fn plan_fp(&self) -> u128 {
        self.plan_fp
    }
}

/// The encoded collection under one plan, ready for the relation passes.
/// Produced by [`CorpusHandle::merged_forest`]; consumed by
/// [`CorpusHandle::finish_discover`].
pub struct PreparedCorpus {
    schema: Arc<Schema>,
    forest: Arc<Forest>,
    infer: Duration,
    merge: Duration,
    encode: Duration,
}

impl PreparedCorpus {
    /// The collection schema the forest was encoded under.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// The merged collection forest.
    pub fn forest(&self) -> &Arc<Forest> {
        &self.forest
    }
}

/// Outcome of a [`CorpusHandle::compact`].
#[derive(Debug, Clone, Copy, Default)]
pub struct CompactStats {
    /// Documents packed into the shared segment.
    pub docs: usize,
    /// Distinct segment files before compaction.
    pub segments_before: usize,
    /// Bytes of the new shared segment.
    pub bytes: u64,
}

/// Staged compaction output: the new segment id, the concatenated
/// tuple-block blob, and the rewritten per-document metas.
type CompactLayout = (u64, Vec<u8>, Vec<DocMeta>);

/// An open corpus: committed documents decoded in memory, plus the
/// relation-pass memo that makes repeat discovery incremental. One handle
/// assumes exclusive ownership of its directory (the server keeps one per
/// corpus; the CLI opens, mutates, exits).
pub struct CorpusHandle {
    name: String,
    store: StoreDir,
    docs: Vec<Doc>,
    next_seg: u64,
    memo: RelationMemo,
    /// Bumped on every add/remove; cached forests from older generations
    /// can never be reused.
    generation: u64,
    seg_cache: HashMap<u128, SegCacheEntry>,
    forest_cache: Option<ForestCache>,
    readonly: bool,
    /// Lifetime partition-kernel counters, summed over every discover run
    /// on this handle (including stats replayed from the memo).
    kernel_products_error_only: u64,
    kernel_products_materialized: u64,
    kernel_early_exits: u64,
    kernel_summary_hits: u64,
}

impl CorpusHandle {
    fn load(name: &str, dir: &Path) -> Result<CorpusHandle, CorpusError> {
        CorpusHandle::load_inner(name, dir, false)
    }

    fn load_inner(name: &str, dir: &Path, readonly: bool) -> Result<CorpusHandle, CorpusError> {
        let (store, metas) = if readonly {
            StoreDir::open_readonly(dir)?
        } else {
            StoreDir::open(dir)?
        };
        let mut docs = Vec::with_capacity(metas.len());
        let mut next_seg = 0u64;
        for meta in metas {
            let bytes = store.read_doc(&meta)?;
            if xfd_hash::digest_bytes(&bytes) != meta.digest {
                return Err(CorpusError::Corrupt(format!(
                    "segment {} of document '{}' does not match its manifest digest",
                    meta.seg, meta.name
                )));
            }
            let tree = decode_tree(&bytes).map_err(CorpusError::Decode)?;
            next_seg = next_seg.max(meta.seg + 1);
            docs.push(Doc { meta, tree });
        }
        Ok(CorpusHandle {
            name: name.to_string(),
            store,
            docs,
            next_seg,
            memo: RelationMemo::new(),
            generation: 0,
            seg_cache: HashMap::new(),
            forest_cache: None,
            readonly,
            kernel_products_error_only: 0,
            kernel_products_materialized: 0,
            kernel_early_exits: 0,
            kernel_summary_hits: 0,
        })
    }

    fn guard_writable(&self) -> Result<(), CorpusError> {
        if self.readonly {
            return Err(CorpusError::ReadOnly(self.name.clone()));
        }
        Ok(())
    }

    /// Corpus name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The corpus directory (what a cluster coordinator hands to the
    /// workers it spawns, which reopen it with
    /// [`CorpusStore::open_readonly`]).
    pub fn dir(&self) -> &Path {
        self.store.dir()
    }

    /// Document names in ingest order.
    pub fn doc_names(&self) -> Vec<&str> {
        self.docs.iter().map(|d| d.meta.name.as_str()).collect()
    }

    /// Number of documents.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// True when the corpus holds no documents.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// The decoded documents, in ingest order.
    pub fn trees(&self) -> Vec<&DataTree> {
        self.docs.iter().map(|d| &d.tree).collect()
    }

    /// Stage a document without committing it: segment written and fsynced,
    /// WAL record appended and fsynced, manifest **not** rewritten and the
    /// in-memory state **not** updated. This is the state an ingest crash
    /// leaves behind; reopening the corpus replays the WAL and surfaces the
    /// document. Exists for crash-injection tests (`--crash-after-wal`).
    pub fn stage_doc(&mut self, doc_name: &str, tree: &DataTree) -> Result<(), CorpusError> {
        let meta = self.stage(doc_name, tree)?;
        self.next_seg = meta.seg + 1;
        Ok(())
    }

    fn stage(&self, doc_name: &str, tree: &DataTree) -> Result<DocMeta, CorpusError> {
        self.guard_writable()?;
        validate_name(doc_name).map_err(CorpusError::BadName)?;
        if self.docs.iter().any(|d| d.meta.name == doc_name) {
            return Err(CorpusError::DocExists(doc_name.to_string()));
        }
        let bytes = encode_tree(tree);
        let meta = DocMeta {
            name: doc_name.to_string(),
            seg: self.next_seg,
            digest: xfd_hash::digest_bytes(&bytes),
            span: None,
        };
        self.store.write_segment(meta.seg, &bytes)?;
        self.store.append_wal(&WalRecord::Add(meta.clone()))?;
        Ok(meta)
    }

    /// Ingest a document: segment → WAL → manifest, then update the
    /// in-memory state. Fails with [`CorpusError::DocExists`] if the name
    /// is taken.
    pub fn add_doc(&mut self, doc_name: &str, tree: &DataTree) -> Result<(), CorpusError> {
        let meta = self.stage(doc_name, tree)?;
        self.next_seg = meta.seg + 1;
        let mut metas: Vec<DocMeta> = self.docs.iter().map(|d| d.meta.clone()).collect();
        metas.push(meta.clone());
        self.store.commit(&metas)?;
        self.docs.push(Doc {
            meta,
            tree: tree.clone(),
        });
        self.generation += 1;
        Ok(())
    }

    /// Remove a document: WAL → manifest → segment unlink (skipped when
    /// other documents still live in the same compacted segment).
    pub fn remove_doc(&mut self, doc_name: &str) -> Result<(), CorpusError> {
        self.guard_writable()?;
        let idx = self
            .docs
            .iter()
            .position(|d| d.meta.name == doc_name)
            .ok_or_else(|| CorpusError::DocNotFound(doc_name.to_string()))?;
        self.store
            .append_wal(&WalRecord::Remove(doc_name.to_string()))?;
        let removed = self.docs.remove(idx);
        let metas: Vec<DocMeta> = self.docs.iter().map(|d| d.meta.clone()).collect();
        self.store.commit(&metas)?;
        if !self.docs.iter().any(|d| d.meta.seg == removed.meta.seg) {
            // xfdlint:allow(error_hygiene, reason = "the manifest no longer references this segment; a failed unlink only leaves an orphan for GC on the next open")
            let _ = fs::remove_file(self.store.seg_path(removed.meta.seg));
        }
        self.generation += 1;
        Ok(())
    }

    /// Pack every document's bytes into one new shared segment, replacing
    /// the document-per-file layout built up by ingest. The protocol is
    /// the same *segment → WAL → manifest* discipline as ingest, so a
    /// crash at any byte leaves either the old layout or the new one.
    /// Document bytes, digests and order are unchanged — discovery output
    /// and every derived cache (summaries, partials, memo, forest) remain
    /// valid, which the tests assert by report byte-parity.
    pub fn compact(&mut self) -> Result<CompactStats, CorpusError> {
        self.guard_writable()?;
        let Some((new_seg, blob, metas)) = self.build_compact()? else {
            return Ok(CompactStats::default());
        };
        let segments_before: HashSet<u64> = self.docs.iter().map(|d| d.meta.seg).collect();
        self.store.write_segment(new_seg, &blob)?;
        self.store.append_wal(&WalRecord::Compact(metas.clone()))?;
        self.store.commit(&metas)?;
        for seg in &segments_before {
            if *seg != new_seg {
                // xfdlint:allow(error_hygiene, reason = "the manifest no longer references the old segments; a failed unlink only leaves an orphan for GC on the next open")
                let _ = fs::remove_file(self.store.seg_path(*seg));
            }
        }
        for (d, meta) in self.docs.iter_mut().zip(metas) {
            d.meta = meta;
        }
        self.next_seg = new_seg + 1;
        Ok(CompactStats {
            docs: self.docs.len(),
            segments_before: segments_before.len(),
            bytes: blob.len() as u64,
        })
    }

    /// Stage a compaction without committing it: shared segment written
    /// and fsynced, WAL record appended and fsynced, manifest **not**
    /// rewritten and the in-memory metas **not** updated — the state a
    /// compaction crash leaves behind. Exists for crash-injection tests
    /// (`corpus compact --crash-after-wal`).
    pub fn stage_compact(&mut self) -> Result<(), CorpusError> {
        self.guard_writable()?;
        let Some((new_seg, blob, metas)) = self.build_compact()? else {
            return Ok(());
        };
        self.store.write_segment(new_seg, &blob)?;
        self.store.append_wal(&WalRecord::Compact(metas))?;
        self.next_seg = new_seg + 1;
        Ok(())
    }

    /// The compacted layout: one concatenated blob plus span metas, or
    /// `None` for an empty corpus.
    fn build_compact(&self) -> Result<Option<CompactLayout>, CorpusError> {
        if self.docs.is_empty() {
            return Ok(None);
        }
        let new_seg = self.next_seg;
        let mut blob = Vec::new();
        let mut metas = Vec::with_capacity(self.docs.len());
        for d in &self.docs {
            let bytes = encode_tree(&d.tree);
            if xfd_hash::digest_bytes(&bytes) != d.meta.digest {
                return Err(CorpusError::Corrupt(format!(
                    "document '{}' re-encoded with a different digest",
                    d.meta.name
                )));
            }
            let off = blob.len() as u64;
            blob.extend_from_slice(&bytes);
            metas.push(DocMeta {
                name: d.meta.name.clone(),
                seg: new_seg,
                digest: d.meta.digest,
                span: Some((off, bytes.len() as u64)),
            });
        }
        Ok(Some((new_seg, blob, metas)))
    }

    /// Bound the relation-pass memo to roughly `bytes` of retained output
    /// (`None` = unbounded). Over budget, stale entries evict first, then
    /// least-recently-used current ones.
    pub fn set_memo_budget(&mut self, bytes: Option<usize>) {
        self.memo.set_budget(bytes);
    }

    /// Run discovery over the whole corpus. Relation passes unchanged since
    /// the previous `discover` on this handle replay from the memo; the
    /// result is byte-identical to a from-scratch
    /// [`discover_collection`](discoverxfd::discover_collection) over the
    /// same documents (timings aside).
    pub fn discover(&mut self, config: &DiscoveryConfig) -> RunOutcome {
        self.discover_with_progress(config, |_| {})
    }

    /// [`discover`](CorpusHandle::discover) with a per-relation progress
    /// callback (the server's NDJSON stream).
    ///
    /// The pipeline never materializes the grafted collection tree:
    ///
    /// 1. **Infer** — per-segment schema tries (cached by segment digest)
    ///    are merged into the collection schema.
    /// 2. **Encode** — per-segment [`SegmentPartial`]s (cached by digest +
    ///    plan fingerprint; missing ones built on a scoped worker pool of
    ///    [`DiscoveryConfig::effective_threads`] threads) are merged into
    ///    the collection forest, which is itself cached per corpus
    ///    generation so a repeat same-config `discover` skips straight to
    ///    the relation passes.
    /// 3. **Discover** — the memoized wave traversal; under
    ///    `config.parallel`, relation passes of one wave run on the worker
    ///    pool with memo hits bypassing the queue.
    ///
    /// Every stage is deterministic in the thread count.
    pub fn discover_with_progress(
        &mut self,
        config: &DiscoveryConfig,
        progress: impl FnMut(RelationProgress<'_>),
    ) -> RunOutcome {
        let plan = self.plan(config);
        let prepared = self.merged_forest(config, &plan);
        self.finish_discover(config, &prepared, progress, None)
    }

    /// Stage 1 of [`discover_with_progress`](CorpusHandle::discover_with_progress):
    /// the collection schema from per-segment summaries (cached by segment
    /// digest), plus the plan fingerprint.
    pub fn plan(&mut self, config: &DiscoveryConfig) -> CorpusPlan {
        let t0 = Instant::now();
        // Drop derived state of segments no longer in the corpus.
        let live: HashSet<u128> = self.docs.iter().map(|d| d.meta.digest).collect();
        self.seg_cache.retain(|digest, _| live.contains(digest));
        for d in &self.docs {
            self.seg_cache
                .entry(d.meta.digest)
                .or_insert_with(|| SegCacheEntry {
                    summary: Arc::new(summarize(&d.tree)),
                    partial: None,
                });
        }
        let summaries: Vec<Arc<SchemaSummary>> = self
            .docs
            .iter()
            .filter_map(|d| {
                self.seg_cache
                    .get(&d.meta.digest)
                    .map(|e| e.summary.clone())
            })
            .collect();
        let schema = infer_schema_from_summaries("collection", summaries.iter().map(Arc::as_ref));
        let plan_fp = plan_fingerprint(&schema, config);
        CorpusPlan {
            schema: Arc::new(schema),
            plan_fp,
            infer: t0.elapsed(),
        }
    }

    /// Digests (deduplicated, in ingest order) of segments that still lack
    /// a [`SegmentPartial`] for `plan_fp` — the cluster coordinator's
    /// encode work list. Empty when the merged forest for the current
    /// corpus state is already cached.
    pub fn pending_partials(&self, plan_fp: u128) -> Vec<u128> {
        let forest_hit = self
            .forest_cache
            .as_ref()
            .is_some_and(|fc| fc.generation == self.generation && fc.plan_fp == plan_fp);
        if forest_hit {
            return Vec::new();
        }
        let mut queued: HashSet<u128> = HashSet::new();
        let mut out = Vec::new();
        for d in &self.docs {
            let hit = self
                .seg_cache
                .get(&d.meta.digest)
                .and_then(|e| e.partial.as_ref())
                .is_some_and(|(fp, _)| *fp == plan_fp);
            if !hit && queued.insert(d.meta.digest) {
                out.push(d.meta.digest);
            }
        }
        out
    }

    /// The decoded document whose segment has `digest`, if still in the
    /// corpus (what a worker encodes when assigned that digest).
    pub fn tree_by_digest(&self, digest: u128) -> Option<&DataTree> {
        self.docs
            .iter()
            .find(|d| d.meta.digest == digest)
            .map(|d| &d.tree)
    }

    /// Store a partial built elsewhere (a cluster worker, across the
    /// socket boundary) for `plan_fp`. Returns `false` — and drops the
    /// partial — when the segment is no longer live.
    pub fn store_partial(&mut self, plan_fp: u128, digest: u128, partial: SegmentPartial) -> bool {
        match self.seg_cache.get_mut(&digest) {
            Some(entry) => {
                entry.partial = Some((plan_fp, Arc::new(partial)));
                true
            }
            None => false,
        }
    }

    /// The cached partial of segment `digest` under `plan_fp`, if present
    /// (what the coordinator broadcasts to workers that lack it).
    pub fn partial(&self, plan_fp: u128, digest: u128) -> Option<Arc<SegmentPartial>> {
        self.seg_cache
            .get(&digest)
            .and_then(|e| e.partial.as_ref())
            .filter(|(fp, _)| *fp == plan_fp)
            .map(|(_, p)| p.clone())
    }

    /// Per-document segment digests in ingest order, duplicates preserved
    /// — the merge consumes one partial per document, so this is the exact
    /// order a worker must replay to reconstruct the coordinator's forest.
    pub fn doc_digests(&self) -> Vec<u128> {
        self.docs.iter().map(|d| d.meta.digest).collect()
    }

    /// One document's raw segment bytes by content digest — what the
    /// coordinator ships to a remote worker whose cache lacks it.
    /// Re-verified against the digest before returning, so a segment file
    /// corrupted on disk can never travel as if authentic.
    pub fn doc_bytes(&self, digest: u128) -> Option<Vec<u8>> {
        let meta = &self.docs.iter().find(|d| d.meta.digest == digest)?.meta;
        let bytes = self.store.read_doc(meta).ok()?;
        (xfd_hash::digest_bytes(&bytes) == digest).then_some(bytes)
    }

    /// Assemble a read-only handle from shipped, digest-verified segments
    /// — a remote worker's substitute for [`CorpusStore::open_readonly`]
    /// when the corpus directory lives on another host. `docs` carries
    /// `(digest, decoded tree)` per document in the coordinator's
    /// manifest order, duplicates included. Document names are
    /// synthesized from the digests; they never influence discovery,
    /// which sees only the trees and the fixed collection name.
    pub fn from_shipped(name: &str, dir: &Path, docs: Vec<(u128, DataTree)>) -> CorpusHandle {
        let docs: Vec<Doc> = docs
            .into_iter()
            .enumerate()
            .map(|(i, (digest, tree))| Doc {
                meta: DocMeta {
                    name: format!("{digest:032x}-{i}"),
                    seg: i as u64,
                    digest,
                    span: None,
                },
                tree,
            })
            .collect();
        let next_seg = docs.len() as u64;
        CorpusHandle {
            name: name.to_string(),
            store: StoreDir::attach(dir),
            docs,
            next_seg,
            memo: RelationMemo::new(),
            generation: 0,
            seg_cache: HashMap::new(),
            forest_cache: None,
            readonly: true,
            kernel_products_error_only: 0,
            kernel_products_materialized: 0,
            kernel_early_exits: 0,
            kernel_summary_hits: 0,
        }
    }

    /// Stage 2: the collection forest, from the generation cache when the
    /// corpus and plan are unchanged, else merged from per-segment
    /// partials. Partials not prefilled via
    /// [`store_partial`](CorpusHandle::store_partial) are built here on
    /// the in-process worker pool, so a cluster run degrades gracefully to
    /// local encoding when workers die.
    pub fn merged_forest(&mut self, config: &DiscoveryConfig, plan: &CorpusPlan) -> PreparedCorpus {
        let threads = config.effective_threads();
        let t1 = Instant::now();
        let cached = self
            .forest_cache
            .as_ref()
            .filter(|fc| fc.generation == self.generation && fc.plan_fp == plan.plan_fp)
            .map(|fc| (fc.schema.clone(), fc.forest.clone()));
        let mut merge_t = Duration::ZERO;
        let (schema, forest) = match cached {
            Some(hit) => hit,
            None => {
                let map = SchemaMap::new(&plan.schema);
                let mut to_build: Vec<(u128, &DataTree)> = Vec::new();
                let mut queued: HashSet<u128> = HashSet::new();
                for d in &self.docs {
                    let hit = self
                        .seg_cache
                        .get(&d.meta.digest)
                        .and_then(|e| e.partial.as_ref())
                        .is_some_and(|(fp, _)| *fp == plan.plan_fp);
                    if !hit && queued.insert(d.meta.digest) {
                        to_build.push((d.meta.digest, &d.tree));
                    }
                }
                let trees: Vec<&DataTree> = to_build.iter().map(|(_, t)| *t).collect();
                let built = build_partials(&trees, &map, &config.encode, threads);
                for ((digest, _), partial) in to_build.iter().zip(built) {
                    if let Some(entry) = self.seg_cache.get_mut(digest) {
                        entry.partial = Some((plan.plan_fp, Arc::new(partial)));
                    }
                }
                let parts: Vec<Arc<SegmentPartial>> = self
                    .docs
                    .iter()
                    .filter_map(|d| {
                        self.seg_cache
                            .get(&d.meta.digest)
                            .and_then(|e| e.partial.as_ref())
                            .map(|(_, p)| p.clone())
                    })
                    .collect();
                let refs: Vec<&SegmentPartial> = parts.iter().map(Arc::as_ref).collect();
                let tm = Instant::now();
                let forest = Arc::new(merge_partials(map, &config.encode, &refs, threads));
                merge_t = tm.elapsed();
                let schema = plan.schema.clone();
                self.forest_cache = Some(ForestCache {
                    generation: self.generation,
                    plan_fp: plan.plan_fp,
                    schema: schema.clone(),
                    forest: forest.clone(),
                });
                (schema, forest)
            }
        };
        PreparedCorpus {
            schema,
            forest,
            infer: plan.infer,
            merge: merge_t,
            encode: t1.elapsed().saturating_sub(merge_t),
        }
    }

    /// Stage 3: the memoized (and, under `config.parallel`, pooled) wave
    /// traversal plus redundancy analysis. `runner` optionally executes
    /// memo-missing relation passes out of process (the cluster
    /// coordinator); `None` keeps everything local. Output is identical
    /// either way, timings aside.
    pub fn finish_discover(
        &mut self,
        config: &DiscoveryConfig,
        prepared: &PreparedCorpus,
        progress: impl FnMut(RelationProgress<'_>),
        runner: Option<&mut dyn PassRunner>,
    ) -> RunOutcome {
        let mut outcome = discover_prepared_with(
            &prepared.schema,
            &prepared.forest,
            config,
            &mut self.memo,
            progress,
            runner,
        );
        outcome.profile.merge = prepared.merge;
        outcome.profile.infer = prepared.infer;
        outcome.profile.encode = prepared.encode;
        // Lifetime kernel counters for `corpus status` / the server's
        // corpus JSON (replayed passes contribute their recorded stats).
        self.kernel_products_error_only += outcome.stats.lattice.products_error_only as u64;
        self.kernel_products_materialized += outcome.stats.lattice.products_materialized as u64;
        self.kernel_early_exits += outcome.stats.lattice.early_exits as u64;
        self.kernel_summary_hits += outcome.stats.lattice.summary_hits as u64;
        // Entries from superseded corpus states can never hit again.
        self.memo.prune_stale();
        outcome
    }

    /// Current on-disk and cache state.
    pub fn status(&self) -> CorpusStatus {
        let mut segment_bytes = 0u64;
        let segs: HashSet<u64> = self.docs.iter().map(|d| d.meta.seg).collect();
        for seg in &segs {
            if let Ok(md) = fs::metadata(self.store.seg_path(*seg)) {
                segment_bytes += md.len();
            }
        }
        CorpusStatus {
            name: self.name.clone(),
            docs: self
                .docs
                .iter()
                .map(|d| {
                    (
                        d.meta.name.clone(),
                        xfd_hash::format_digest(d.meta.digest),
                        d.tree.node_count(),
                    )
                })
                .collect(),
            segment_bytes,
            memo_entries: self.memo.len(),
            memo_hits: self.memo.hits(),
            memo_misses: self.memo.misses(),
            memo_evictions: self.memo.evictions(),
            memo_resident_bytes: self.memo.resident_bytes(),
            forest_cached: self
                .forest_cache
                .as_ref()
                .is_some_and(|fc| fc.generation == self.generation),
            kernel_products_error_only: self.kernel_products_error_only,
            kernel_products_materialized: self.kernel_products_materialized,
            kernel_early_exits: self.kernel_early_exits,
            kernel_summary_hits: self.kernel_summary_hits,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xfd_xml::parse;

    fn tmp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("xfd-corpus-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    /// Rendered report with the one wall-clock field (`total_ms`) dropped;
    /// everything else — FDs, keys, redundancies, work counters — must be
    /// byte-identical between incremental and from-scratch runs.
    fn render_stable(r: &RunOutcome) -> String {
        let json = discoverxfd::report::render_json(r);
        json.split("\"total_ms\"").next().unwrap().to_string()
    }

    fn doc(i: u64) -> DataTree {
        parse(&format!(
            "<shop><book><i>{i}</i><t>T{}</t></book><book><i>{i}</i><t>T{}</t></book></shop>",
            i % 3,
            i % 3
        ))
        .unwrap()
    }

    #[test]
    fn create_open_delete_lifecycle() {
        let root = tmp_root("lifecycle");
        let store = CorpusStore::new(&root);
        assert!(store.list().unwrap().is_empty());
        let mut c = store.create("orders").unwrap();
        assert!(matches!(
            store.create("orders"),
            Err(CorpusError::CorpusExists(_))
        ));
        c.add_doc("d1", &doc(1)).unwrap();
        drop(c);
        assert_eq!(store.list().unwrap(), vec!["orders".to_string()]);
        let reopened = store.open("orders").unwrap();
        assert_eq!(reopened.doc_names(), vec!["d1"]);
        store.delete("orders").unwrap();
        assert!(matches!(
            store.open("orders"),
            Err(CorpusError::CorpusNotFound(_))
        ));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn documents_round_trip_through_reopen() {
        let root = tmp_root("roundtrip");
        let store = CorpusStore::new(&root);
        let mut c = store.create("c").unwrap();
        c.add_doc("a", &doc(1)).unwrap();
        c.add_doc("b", &doc(2)).unwrap();
        assert!(matches!(
            c.add_doc("a", &doc(3)),
            Err(CorpusError::DocExists(_))
        ));
        drop(c);
        let c = store.open("c").unwrap();
        assert_eq!(c.doc_names(), vec!["a", "b"]);
        assert!(xfd_relation::trees_equal(c.trees()[0], &doc(1)));
        assert!(xfd_relation::trees_equal(c.trees()[1], &doc(2)));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn removal_persists_and_unlinks_the_segment() {
        let root = tmp_root("removal");
        let store = CorpusStore::new(&root);
        let mut c = store.create("c").unwrap();
        c.add_doc("a", &doc(1)).unwrap();
        c.add_doc("b", &doc(2)).unwrap();
        c.remove_doc("a").unwrap();
        assert!(matches!(
            c.remove_doc("a"),
            Err(CorpusError::DocNotFound(_))
        ));
        drop(c);
        let c = store.open("c").unwrap();
        assert_eq!(c.doc_names(), vec!["b"]);
        assert_eq!(c.status().docs.len(), 1);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn bad_names_never_touch_the_filesystem() {
        let root = tmp_root("badnames");
        let store = CorpusStore::new(&root);
        for bad in ["../evil", "a/b", ".", "..", "", "café"] {
            assert!(matches!(store.create(bad), Err(CorpusError::BadName(_))));
            assert!(matches!(store.open(bad), Err(CorpusError::BadName(_))));
            assert!(matches!(store.delete(bad), Err(CorpusError::BadName(_))));
        }
        assert!(!root.exists(), "no directory may be created for bad names");
        let mut c = store.create("ok").unwrap();
        assert!(matches!(
            c.add_doc("../traversal", &doc(1)),
            Err(CorpusError::BadName(_))
        ));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn incremental_discover_matches_from_scratch() {
        let root = tmp_root("parity");
        let store = CorpusStore::new(&root);
        let mut c = store.create("c").unwrap();
        let config = DiscoveryConfig::default();
        for i in 0..4 {
            c.add_doc(&format!("d{i}"), &doc(i)).unwrap();
        }
        let warm_base = c.discover(&config);
        assert!(c.status().memo_hits == 0);
        // Add one more document; the warm handle reuses cached passes…
        c.add_doc("d4", &doc(4)).unwrap();
        let incremental = c.discover(&config);
        assert!(
            c.status().memo_hits > 0,
            "warm discover must replay some relation passes"
        );
        // …and matches (1) a cold handle over the same directory and
        // (2) plain discover_collection over the same trees.
        let mut cold = store.open("c").unwrap();
        let scratch = cold.discover(&config);
        let via_collection = {
            let trees: Vec<DataTree> = (0..5).map(doc).collect();
            let refs: Vec<&DataTree> = trees.iter().collect();
            discoverxfd::discover_collection(&refs, &config)
        };
        assert_eq!(render_stable(&incremental), render_stable(&scratch));
        assert_eq!(render_stable(&incremental), render_stable(&via_collection));
        drop(warm_base);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn compact_preserves_reports_and_survives_reopen() {
        let root = tmp_root("compact");
        let store = CorpusStore::new(&root);
        let mut c = store.create("c").unwrap();
        let config = DiscoveryConfig::default();
        for i in 0..4 {
            c.add_doc(&format!("d{i}"), &doc(i)).unwrap();
        }
        let before = c.discover(&config);
        let stats = c.compact().unwrap();
        assert_eq!(stats.docs, 4);
        assert_eq!(stats.segments_before, 4);
        assert!(stats.bytes > 0);
        // Same handle: every derived cache stays valid (the forest cache
        // in particular — compaction must not bump the generation).
        assert!(c.status().forest_cached);
        let after = c.discover(&config);
        assert_eq!(render_stable(&before), render_stable(&after));
        // Exactly one segment file remains on disk.
        let seg_files = fs::read_dir(root.join("c").join("segments"))
            .unwrap()
            .count();
        assert_eq!(seg_files, 1);
        // Reopen from disk: same documents, byte-identical report.
        drop(c);
        let mut cold = store.open("c").unwrap();
        assert_eq!(cold.doc_names(), vec!["d0", "d1", "d2", "d3"]);
        assert_eq!(
            render_stable(&before),
            render_stable(&cold.discover(&config))
        );
        // Removing one document must not unlink the shared segment…
        cold.remove_doc("d1").unwrap();
        assert_eq!(
            fs::read_dir(root.join("c").join("segments"))
                .unwrap()
                .count(),
            1
        );
        // …and the survivors still load.
        drop(cold);
        let survivors = store.open("c").unwrap();
        assert_eq!(survivors.doc_names(), vec!["d0", "d2", "d3"]);
        // Compacting an empty corpus is a no-op.
        let mut empty = store.create("empty").unwrap();
        let stats = empty.compact().unwrap();
        assert_eq!(stats.docs, 0);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn staged_compaction_completes_on_reopen() {
        let root = tmp_root("compact-crash");
        let store = CorpusStore::new(&root);
        let mut c = store.create("c").unwrap();
        let config = DiscoveryConfig::default();
        for i in 0..3 {
            c.add_doc(&format!("d{i}"), &doc(i)).unwrap();
        }
        let before = c.discover(&config);
        // Crash between WAL append and manifest rewrite.
        c.stage_compact().unwrap();
        drop(c);
        let mut reopened = store.open("c").unwrap();
        assert_eq!(reopened.doc_names(), vec!["d0", "d1", "d2"]);
        assert_eq!(
            fs::read_dir(root.join("c").join("segments"))
                .unwrap()
                .count(),
            1,
            "replay must finish the compaction and GC the old segments"
        );
        assert_eq!(
            render_stable(&before),
            render_stable(&reopened.discover(&config))
        );
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn readonly_handle_reads_but_rejects_mutation() {
        let root = tmp_root("readonly");
        let store = CorpusStore::new(&root);
        let mut owner = store.create("c").unwrap();
        let config = DiscoveryConfig::default();
        for i in 0..3 {
            owner.add_doc(&format!("d{i}"), &doc(i)).unwrap();
        }
        let baseline = owner.discover(&config);
        let mut ro = store.open_readonly("c").unwrap();
        assert_eq!(ro.doc_names(), vec!["d0", "d1", "d2"]);
        assert_eq!(
            render_stable(&baseline),
            render_stable(&ro.discover(&config))
        );
        assert!(matches!(
            ro.add_doc("d3", &doc(3)),
            Err(CorpusError::ReadOnly(_))
        ));
        assert!(matches!(ro.remove_doc("d0"), Err(CorpusError::ReadOnly(_))));
        assert!(matches!(ro.compact(), Err(CorpusError::ReadOnly(_))));
        let _ = fs::remove_dir_all(&root);
    }

    /// The staged pipeline (`plan` → `pending_partials` → `store_partial`
    /// → `merged_forest` → `finish_discover`) with partials built "out of
    /// process" must be byte-identical to the one-shot `discover` — this
    /// is exactly what a cluster run does over the socket.
    #[test]
    fn staged_discovery_matches_the_one_shot_path() {
        let root = tmp_root("staged");
        let store = CorpusStore::new(&root);
        let mut c = store.create("c").unwrap();
        let config = DiscoveryConfig::default();
        for i in 0..4 {
            c.add_doc(&format!("d{i}"), &doc(i)).unwrap();
        }
        let plan = c.plan(&config);
        let pending = c.pending_partials(plan.plan_fp());
        assert!(!pending.is_empty());
        // Build each pending partial the way a worker would: from the
        // document tree under the shared plan, then ship it back.
        let map = SchemaMap::new(plan.schema());
        for digest in pending {
            let part = xfd_relation::build_partial(
                c.tree_by_digest(digest).unwrap(),
                &map,
                &config.encode,
            );
            assert!(c.store_partial(plan.plan_fp(), digest, part));
        }
        assert!(c.pending_partials(plan.plan_fp()).is_empty());
        let prepared = c.merged_forest(&config, &plan);
        let staged = c.finish_discover(&config, &prepared, |_| {}, None);
        // The coordinator can fetch every partial back for broadcast.
        for digest in c.doc_digests() {
            assert!(c.partial(plan.plan_fp(), digest).is_some());
        }
        let mut cold = store.open("c").unwrap();
        assert_eq!(
            render_stable(&staged),
            render_stable(&cold.discover(&config))
        );
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn removal_invalidates_only_what_changed() {
        let root = tmp_root("rm-incr");
        let store = CorpusStore::new(&root);
        let mut c = store.create("c").unwrap();
        let config = DiscoveryConfig::default();
        for i in 0..4 {
            c.add_doc(&format!("d{i}"), &doc(i)).unwrap();
        }
        c.discover(&config);
        c.remove_doc("d3").unwrap();
        let after_rm = c.discover(&config);
        let mut cold = store.open("c").unwrap();
        assert_eq!(
            render_stable(&after_rm),
            render_stable(&cold.discover(&config))
        );
        let _ = fs::remove_dir_all(&root);
    }
}
