#![warn(missing_docs)]
//! # xfd-corpus
//!
//! A named, durable, multi-document corpus store with incremental XFD
//! discovery — the stateful layer that turns DiscoverXFD from a
//! run-per-request function into a discovery *service*.
//!
//! * **On disk** each corpus is an append-only segment directory: one
//!   [`TreeTuple`](xfd_relation::treetuple) block per ingested document, a
//!   `MANIFEST` carrying per-segment 128-bit FNV-1a digests, and a small
//!   WAL so a crash mid-ingest never corrupts the manifest (see
//!   [`store`] for the exact protocol).
//! * **In memory** a [`CorpusHandle`] keeps the decoded documents plus a
//!   [`RelationMemo`](discoverxfd::RelationMemo): re-running
//!   [`CorpusHandle::discover`] after adding or removing one document
//!   replays every relation pass whose partition inputs did not change and
//!   recomputes only the rest — output byte-identical to a from-scratch
//!   run over the same documents.
//!
//! ```no_run
//! use xfd_corpus::CorpusStore;
//! use discoverxfd::DiscoveryConfig;
//!
//! let store = CorpusStore::new("./corpora");
//! let mut corpus = store.create("orders").unwrap();
//! let doc = xfd_xml::parse("<shop><book><i>1</i></book></shop>").unwrap();
//! corpus.add_doc("day-1", &doc).unwrap();
//! let outcome = corpus.discover(&DiscoveryConfig::default());
//! println!("{} FDs", outcome.fds.len());
//! ```

pub mod names;
pub mod store;

pub use names::{validate_name, NameError};
pub use store::{DocMeta, StoreDir, StoreError, WalRecord};

use std::collections::{HashMap, HashSet};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

use discoverxfd::memo::{RelationMemo, RelationProgress};
use discoverxfd::{discover_prepared, DiscoveryConfig, RunOutcome};
use xfd_relation::treetuple::{decode_tree, encode_tree, DecodeError};
use xfd_relation::{build_partials, merge_partials, Forest, SegmentPartial};
use xfd_schema::{infer_schema_from_summaries, summarize, Schema, SchemaMap, SchemaSummary};
use xfd_xml::DataTree;

/// Errors from the corpus layer.
#[derive(Debug)]
pub enum CorpusError {
    /// Filesystem failure.
    Io(io::Error),
    /// A corpus or document name failed [`validate_name`].
    BadName(NameError),
    /// `create` on an existing corpus.
    CorpusExists(String),
    /// `open`/`delete` on a missing corpus.
    CorpusNotFound(String),
    /// `add_doc` with a name already in the corpus.
    DocExists(String),
    /// `remove_doc` with an unknown name.
    DocNotFound(String),
    /// On-disk state failed verification (manifest, WAL, or a segment
    /// whose bytes no longer match their manifest digest).
    Corrupt(String),
    /// A segment failed to decode.
    Decode(DecodeError),
    /// The in-memory handle was abandoned after a panic mid-operation
    /// (e.g. a poisoned server-side lock); durable state is intact and the
    /// corpus reopens from the manifest + WAL on the next request.
    Poisoned(String),
}

impl From<io::Error> for CorpusError {
    fn from(e: io::Error) -> Self {
        CorpusError::Io(e)
    }
}

impl From<StoreError> for CorpusError {
    fn from(e: StoreError) -> Self {
        match e {
            StoreError::Io(e) => CorpusError::Io(e),
            StoreError::Corrupt(what) => CorpusError::Corrupt(what),
        }
    }
}

impl std::fmt::Display for CorpusError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CorpusError::Io(e) => write!(f, "i/o error: {e}"),
            CorpusError::BadName(e) => write!(f, "invalid name: {e}"),
            CorpusError::CorpusExists(n) => write!(f, "corpus '{n}' already exists"),
            CorpusError::CorpusNotFound(n) => write!(f, "corpus '{n}' not found"),
            CorpusError::DocExists(n) => write!(f, "document '{n}' already exists"),
            CorpusError::DocNotFound(n) => write!(f, "document '{n}' not found"),
            CorpusError::Corrupt(what) => write!(f, "corrupt corpus: {what}"),
            CorpusError::Decode(e) => write!(f, "segment decode failed: {e}"),
            CorpusError::Poisoned(n) => write!(
                f,
                "corpus '{n}' was abandoned after a panic; retry to reopen it"
            ),
        }
    }
}

impl std::error::Error for CorpusError {}

/// A root directory holding corpora, one subdirectory each.
#[derive(Debug, Clone)]
pub struct CorpusStore {
    root: PathBuf,
}

impl CorpusStore {
    /// A store rooted at `root` (created lazily on first `create`).
    pub fn new(root: impl Into<PathBuf>) -> CorpusStore {
        CorpusStore { root: root.into() }
    }

    /// The root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn corpus_dir(&self, name: &str) -> Result<PathBuf, CorpusError> {
        validate_name(name).map_err(CorpusError::BadName)?;
        Ok(self.root.join(name))
    }

    /// Whether a corpus of that name exists (invalid names simply don't).
    pub fn exists(&self, name: &str) -> bool {
        validate_name(name).is_ok() && self.root.join(name).join("MANIFEST").is_file()
    }

    /// Create a new empty corpus.
    pub fn create(&self, name: &str) -> Result<CorpusHandle, CorpusError> {
        let dir = self.corpus_dir(name)?;
        if dir.exists() {
            return Err(CorpusError::CorpusExists(name.to_string()));
        }
        StoreDir::init(&dir)?;
        CorpusHandle::load(name, &dir)
    }

    /// Open an existing corpus, replaying its WAL and verifying every
    /// segment digest.
    pub fn open(&self, name: &str) -> Result<CorpusHandle, CorpusError> {
        let dir = self.corpus_dir(name)?;
        if !dir.join("MANIFEST").is_file() {
            return Err(CorpusError::CorpusNotFound(name.to_string()));
        }
        CorpusHandle::load(name, &dir)
    }

    /// Open the corpus, creating it first if missing.
    pub fn open_or_create(&self, name: &str) -> Result<CorpusHandle, CorpusError> {
        if self.exists(name) {
            self.open(name)
        } else {
            self.create(name)
        }
    }

    /// Delete a corpus and everything under it.
    pub fn delete(&self, name: &str) -> Result<(), CorpusError> {
        let dir = self.corpus_dir(name)?;
        if !dir.exists() {
            return Err(CorpusError::CorpusNotFound(name.to_string()));
        }
        fs::remove_dir_all(&dir)?;
        Ok(())
    }

    /// Names of all corpora under the root, sorted.
    pub fn list(&self) -> io::Result<Vec<String>> {
        let mut names = Vec::new();
        let entries = match fs::read_dir(&self.root) {
            Ok(e) => e,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(names),
            Err(e) => return Err(e),
        };
        for entry in entries {
            let entry = entry?;
            if let Some(name) = entry.file_name().to_str() {
                if validate_name(name).is_ok() && entry.path().join("MANIFEST").is_file() {
                    names.push(name.to_string());
                }
            }
        }
        names.sort();
        Ok(names)
    }
}

struct Doc {
    meta: DocMeta,
    tree: DataTree,
}

/// Point-in-time description of a corpus, for `corpus status` and the
/// server's `GET /v1/corpora/{name}`.
#[derive(Debug, Clone)]
pub struct CorpusStatus {
    /// Corpus name.
    pub name: String,
    /// Per document: name, segment digest (hex), node count.
    pub docs: Vec<(String, String, usize)>,
    /// Total bytes across segment files.
    pub segment_bytes: u64,
    /// Cached relation passes currently held.
    pub memo_entries: usize,
    /// Lifetime relation passes replayed from cache.
    pub memo_hits: u64,
    /// Lifetime relation passes computed.
    pub memo_misses: u64,
    /// Lifetime relation passes evicted under the memo byte budget.
    pub memo_evictions: u64,
    /// Approximate bytes of memoized relation passes currently resident.
    pub memo_resident_bytes: usize,
    /// Whether the merged forest for the current corpus state is cached
    /// (the next same-config `discover` skips merge+infer+encode).
    pub forest_cached: bool,
}

/// Per-segment derived state, keyed by the segment's content digest so
/// identical documents (and re-ingested ones) share one entry.
struct SegCacheEntry {
    /// Schema trie of the segment, valid for any configuration.
    summary: Arc<SchemaSummary>,
    /// Encoded partial, valid only for the plan fingerprint it was built
    /// under (collection schema + encode configuration).
    partial: Option<(u128, Arc<SegmentPartial>)>,
}

/// The merged collection forest of one corpus state under one plan.
struct ForestCache {
    generation: u64,
    plan_fp: u128,
    schema: Arc<Schema>,
    forest: Arc<Forest>,
}

/// Everything a [`SegmentPartial`] depends on besides the document bytes:
/// the collection schema and the encode configuration.
fn plan_fingerprint(schema: &Schema, config: &DiscoveryConfig) -> u128 {
    xfd_hash::digest_bytes(format!("{schema:?}|{:?}", config.encode).as_bytes())
}

/// An open corpus: committed documents decoded in memory, plus the
/// relation-pass memo that makes repeat discovery incremental. One handle
/// assumes exclusive ownership of its directory (the server keeps one per
/// corpus; the CLI opens, mutates, exits).
pub struct CorpusHandle {
    name: String,
    store: StoreDir,
    docs: Vec<Doc>,
    next_seg: u64,
    memo: RelationMemo,
    /// Bumped on every add/remove; cached forests from older generations
    /// can never be reused.
    generation: u64,
    seg_cache: HashMap<u128, SegCacheEntry>,
    forest_cache: Option<ForestCache>,
}

impl CorpusHandle {
    fn load(name: &str, dir: &Path) -> Result<CorpusHandle, CorpusError> {
        let (store, metas) = StoreDir::open(dir)?;
        let mut docs = Vec::with_capacity(metas.len());
        let mut next_seg = 0u64;
        for meta in metas {
            let bytes = store.read_segment(meta.seg)?;
            if xfd_hash::digest_bytes(&bytes) != meta.digest {
                return Err(CorpusError::Corrupt(format!(
                    "segment {} of document '{}' does not match its manifest digest",
                    meta.seg, meta.name
                )));
            }
            let tree = decode_tree(&bytes).map_err(CorpusError::Decode)?;
            next_seg = next_seg.max(meta.seg + 1);
            docs.push(Doc { meta, tree });
        }
        Ok(CorpusHandle {
            name: name.to_string(),
            store,
            docs,
            next_seg,
            memo: RelationMemo::new(),
            generation: 0,
            seg_cache: HashMap::new(),
            forest_cache: None,
        })
    }

    /// Corpus name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Document names in ingest order.
    pub fn doc_names(&self) -> Vec<&str> {
        self.docs.iter().map(|d| d.meta.name.as_str()).collect()
    }

    /// Number of documents.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// True when the corpus holds no documents.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// The decoded documents, in ingest order.
    pub fn trees(&self) -> Vec<&DataTree> {
        self.docs.iter().map(|d| &d.tree).collect()
    }

    /// Stage a document without committing it: segment written and fsynced,
    /// WAL record appended and fsynced, manifest **not** rewritten and the
    /// in-memory state **not** updated. This is the state an ingest crash
    /// leaves behind; reopening the corpus replays the WAL and surfaces the
    /// document. Exists for crash-injection tests (`--crash-after-wal`).
    pub fn stage_doc(&mut self, doc_name: &str, tree: &DataTree) -> Result<(), CorpusError> {
        let meta = self.stage(doc_name, tree)?;
        self.next_seg = meta.seg + 1;
        Ok(())
    }

    fn stage(&self, doc_name: &str, tree: &DataTree) -> Result<DocMeta, CorpusError> {
        validate_name(doc_name).map_err(CorpusError::BadName)?;
        if self.docs.iter().any(|d| d.meta.name == doc_name) {
            return Err(CorpusError::DocExists(doc_name.to_string()));
        }
        let bytes = encode_tree(tree);
        let meta = DocMeta {
            name: doc_name.to_string(),
            seg: self.next_seg,
            digest: xfd_hash::digest_bytes(&bytes),
        };
        self.store.write_segment(meta.seg, &bytes)?;
        self.store.append_wal(&WalRecord::Add(meta.clone()))?;
        Ok(meta)
    }

    /// Ingest a document: segment → WAL → manifest, then update the
    /// in-memory state. Fails with [`CorpusError::DocExists`] if the name
    /// is taken.
    pub fn add_doc(&mut self, doc_name: &str, tree: &DataTree) -> Result<(), CorpusError> {
        let meta = self.stage(doc_name, tree)?;
        self.next_seg = meta.seg + 1;
        let mut metas: Vec<DocMeta> = self.docs.iter().map(|d| d.meta.clone()).collect();
        metas.push(meta.clone());
        self.store.commit(&metas)?;
        self.docs.push(Doc {
            meta,
            tree: tree.clone(),
        });
        self.generation += 1;
        Ok(())
    }

    /// Remove a document: WAL → manifest → segment unlink.
    pub fn remove_doc(&mut self, doc_name: &str) -> Result<(), CorpusError> {
        let idx = self
            .docs
            .iter()
            .position(|d| d.meta.name == doc_name)
            .ok_or_else(|| CorpusError::DocNotFound(doc_name.to_string()))?;
        self.store
            .append_wal(&WalRecord::Remove(doc_name.to_string()))?;
        let removed = self.docs.remove(idx);
        let metas: Vec<DocMeta> = self.docs.iter().map(|d| d.meta.clone()).collect();
        self.store.commit(&metas)?;
        // xfdlint:allow(error_hygiene, reason = "the manifest no longer references this segment; a failed unlink only leaves an orphan for GC on the next open")
        let _ = fs::remove_file(self.store.seg_path(removed.meta.seg));
        self.generation += 1;
        Ok(())
    }

    /// Bound the relation-pass memo to roughly `bytes` of retained output
    /// (`None` = unbounded). Over budget, stale entries evict first, then
    /// least-recently-used current ones.
    pub fn set_memo_budget(&mut self, bytes: Option<usize>) {
        self.memo.set_budget(bytes);
    }

    /// Run discovery over the whole corpus. Relation passes unchanged since
    /// the previous `discover` on this handle replay from the memo; the
    /// result is byte-identical to a from-scratch
    /// [`discover_collection`](discoverxfd::discover_collection) over the
    /// same documents (timings aside).
    pub fn discover(&mut self, config: &DiscoveryConfig) -> RunOutcome {
        self.discover_with_progress(config, |_| {})
    }

    /// [`discover`](CorpusHandle::discover) with a per-relation progress
    /// callback (the server's NDJSON stream).
    ///
    /// The pipeline never materializes the grafted collection tree:
    ///
    /// 1. **Infer** — per-segment schema tries (cached by segment digest)
    ///    are merged into the collection schema.
    /// 2. **Encode** — per-segment [`SegmentPartial`]s (cached by digest +
    ///    plan fingerprint; missing ones built on a scoped worker pool of
    ///    [`DiscoveryConfig::effective_threads`] threads) are merged into
    ///    the collection forest, which is itself cached per corpus
    ///    generation so a repeat same-config `discover` skips straight to
    ///    the relation passes.
    /// 3. **Discover** — the memoized wave traversal; under
    ///    `config.parallel`, relation passes of one wave run on the worker
    ///    pool with memo hits bypassing the queue.
    ///
    /// Every stage is deterministic in the thread count.
    pub fn discover_with_progress(
        &mut self,
        config: &DiscoveryConfig,
        progress: impl FnMut(RelationProgress<'_>),
    ) -> RunOutcome {
        let threads = config.effective_threads();

        // Drop derived state of segments no longer in the corpus.
        let live: HashSet<u128> = self.docs.iter().map(|d| d.meta.digest).collect();
        self.seg_cache.retain(|digest, _| live.contains(digest));

        // Phase 1: collection schema from per-segment summaries.
        let t0 = Instant::now();
        for d in &self.docs {
            self.seg_cache
                .entry(d.meta.digest)
                .or_insert_with(|| SegCacheEntry {
                    summary: Arc::new(summarize(&d.tree)),
                    partial: None,
                });
        }
        let summaries: Vec<Arc<SchemaSummary>> = self
            .docs
            .iter()
            .filter_map(|d| {
                self.seg_cache
                    .get(&d.meta.digest)
                    .map(|e| e.summary.clone())
            })
            .collect();
        let schema = infer_schema_from_summaries("collection", summaries.iter().map(Arc::as_ref));
        let infer_t = t0.elapsed();

        // Phase 2: collection forest, from the generation cache when the
        // corpus and plan are unchanged, else merged from per-segment
        // partials (missing ones built on the worker pool).
        let t1 = Instant::now();
        let plan_fp = plan_fingerprint(&schema, config);
        let cached = self
            .forest_cache
            .as_ref()
            .filter(|fc| fc.generation == self.generation && fc.plan_fp == plan_fp)
            .map(|fc| (fc.schema.clone(), fc.forest.clone()));
        let mut merge_t = std::time::Duration::ZERO;
        let (schema, forest) = match cached {
            Some(hit) => hit,
            None => {
                let map = SchemaMap::new(&schema);
                let mut to_build: Vec<(u128, &DataTree)> = Vec::new();
                let mut queued: HashSet<u128> = HashSet::new();
                for d in &self.docs {
                    let hit = self
                        .seg_cache
                        .get(&d.meta.digest)
                        .and_then(|e| e.partial.as_ref())
                        .is_some_and(|(fp, _)| *fp == plan_fp);
                    if !hit && queued.insert(d.meta.digest) {
                        to_build.push((d.meta.digest, &d.tree));
                    }
                }
                let trees: Vec<&DataTree> = to_build.iter().map(|(_, t)| *t).collect();
                let built = build_partials(&trees, &map, &config.encode, threads);
                for ((digest, _), partial) in to_build.iter().zip(built) {
                    if let Some(entry) = self.seg_cache.get_mut(digest) {
                        entry.partial = Some((plan_fp, Arc::new(partial)));
                    }
                }
                let parts: Vec<Arc<SegmentPartial>> = self
                    .docs
                    .iter()
                    .filter_map(|d| {
                        self.seg_cache
                            .get(&d.meta.digest)
                            .and_then(|e| e.partial.as_ref())
                            .map(|(_, p)| p.clone())
                    })
                    .collect();
                let refs: Vec<&SegmentPartial> = parts.iter().map(Arc::as_ref).collect();
                let tm = Instant::now();
                let forest = Arc::new(merge_partials(map, &config.encode, &refs));
                merge_t = tm.elapsed();
                let schema = Arc::new(schema);
                self.forest_cache = Some(ForestCache {
                    generation: self.generation,
                    plan_fp,
                    schema: schema.clone(),
                    forest: forest.clone(),
                });
                (schema, forest)
            }
        };
        let encode_t = t1.elapsed().saturating_sub(merge_t);

        // Phase 3: memoized (and, under `config.parallel`, pooled) waves.
        let mut outcome = discover_prepared(&schema, &forest, config, &mut self.memo, progress);
        outcome.profile.merge = merge_t;
        outcome.profile.infer = infer_t;
        outcome.profile.encode = encode_t;
        // Entries from superseded corpus states can never hit again.
        self.memo.prune_stale();
        outcome
    }

    /// Current on-disk and cache state.
    pub fn status(&self) -> CorpusStatus {
        let mut segment_bytes = 0u64;
        for d in &self.docs {
            if let Ok(md) = fs::metadata(self.store.seg_path(d.meta.seg)) {
                segment_bytes += md.len();
            }
        }
        CorpusStatus {
            name: self.name.clone(),
            docs: self
                .docs
                .iter()
                .map(|d| {
                    (
                        d.meta.name.clone(),
                        xfd_hash::format_digest(d.meta.digest),
                        d.tree.node_count(),
                    )
                })
                .collect(),
            segment_bytes,
            memo_entries: self.memo.len(),
            memo_hits: self.memo.hits(),
            memo_misses: self.memo.misses(),
            memo_evictions: self.memo.evictions(),
            memo_resident_bytes: self.memo.resident_bytes(),
            forest_cached: self
                .forest_cache
                .as_ref()
                .is_some_and(|fc| fc.generation == self.generation),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xfd_xml::parse;

    fn tmp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("xfd-corpus-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    /// Rendered report with the one wall-clock field (`total_ms`) dropped;
    /// everything else — FDs, keys, redundancies, work counters — must be
    /// byte-identical between incremental and from-scratch runs.
    fn render_stable(r: &RunOutcome) -> String {
        let json = discoverxfd::report::render_json(r);
        json.split("\"total_ms\"").next().unwrap().to_string()
    }

    fn doc(i: u64) -> DataTree {
        parse(&format!(
            "<shop><book><i>{i}</i><t>T{}</t></book><book><i>{i}</i><t>T{}</t></book></shop>",
            i % 3,
            i % 3
        ))
        .unwrap()
    }

    #[test]
    fn create_open_delete_lifecycle() {
        let root = tmp_root("lifecycle");
        let store = CorpusStore::new(&root);
        assert!(store.list().unwrap().is_empty());
        let mut c = store.create("orders").unwrap();
        assert!(matches!(
            store.create("orders"),
            Err(CorpusError::CorpusExists(_))
        ));
        c.add_doc("d1", &doc(1)).unwrap();
        drop(c);
        assert_eq!(store.list().unwrap(), vec!["orders".to_string()]);
        let reopened = store.open("orders").unwrap();
        assert_eq!(reopened.doc_names(), vec!["d1"]);
        store.delete("orders").unwrap();
        assert!(matches!(
            store.open("orders"),
            Err(CorpusError::CorpusNotFound(_))
        ));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn documents_round_trip_through_reopen() {
        let root = tmp_root("roundtrip");
        let store = CorpusStore::new(&root);
        let mut c = store.create("c").unwrap();
        c.add_doc("a", &doc(1)).unwrap();
        c.add_doc("b", &doc(2)).unwrap();
        assert!(matches!(
            c.add_doc("a", &doc(3)),
            Err(CorpusError::DocExists(_))
        ));
        drop(c);
        let c = store.open("c").unwrap();
        assert_eq!(c.doc_names(), vec!["a", "b"]);
        assert!(xfd_relation::trees_equal(c.trees()[0], &doc(1)));
        assert!(xfd_relation::trees_equal(c.trees()[1], &doc(2)));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn removal_persists_and_unlinks_the_segment() {
        let root = tmp_root("removal");
        let store = CorpusStore::new(&root);
        let mut c = store.create("c").unwrap();
        c.add_doc("a", &doc(1)).unwrap();
        c.add_doc("b", &doc(2)).unwrap();
        c.remove_doc("a").unwrap();
        assert!(matches!(
            c.remove_doc("a"),
            Err(CorpusError::DocNotFound(_))
        ));
        drop(c);
        let c = store.open("c").unwrap();
        assert_eq!(c.doc_names(), vec!["b"]);
        assert_eq!(c.status().docs.len(), 1);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn bad_names_never_touch_the_filesystem() {
        let root = tmp_root("badnames");
        let store = CorpusStore::new(&root);
        for bad in ["../evil", "a/b", ".", "..", "", "café"] {
            assert!(matches!(store.create(bad), Err(CorpusError::BadName(_))));
            assert!(matches!(store.open(bad), Err(CorpusError::BadName(_))));
            assert!(matches!(store.delete(bad), Err(CorpusError::BadName(_))));
        }
        assert!(!root.exists(), "no directory may be created for bad names");
        let mut c = store.create("ok").unwrap();
        assert!(matches!(
            c.add_doc("../traversal", &doc(1)),
            Err(CorpusError::BadName(_))
        ));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn incremental_discover_matches_from_scratch() {
        let root = tmp_root("parity");
        let store = CorpusStore::new(&root);
        let mut c = store.create("c").unwrap();
        let config = DiscoveryConfig::default();
        for i in 0..4 {
            c.add_doc(&format!("d{i}"), &doc(i)).unwrap();
        }
        let warm_base = c.discover(&config);
        assert!(c.status().memo_hits == 0);
        // Add one more document; the warm handle reuses cached passes…
        c.add_doc("d4", &doc(4)).unwrap();
        let incremental = c.discover(&config);
        assert!(
            c.status().memo_hits > 0,
            "warm discover must replay some relation passes"
        );
        // …and matches (1) a cold handle over the same directory and
        // (2) plain discover_collection over the same trees.
        let mut cold = store.open("c").unwrap();
        let scratch = cold.discover(&config);
        let via_collection = {
            let trees: Vec<DataTree> = (0..5).map(doc).collect();
            let refs: Vec<&DataTree> = trees.iter().collect();
            discoverxfd::discover_collection(&refs, &config)
        };
        assert_eq!(render_stable(&incremental), render_stable(&scratch));
        assert_eq!(render_stable(&incremental), render_stable(&via_collection));
        drop(warm_base);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn removal_invalidates_only_what_changed() {
        let root = tmp_root("rm-incr");
        let store = CorpusStore::new(&root);
        let mut c = store.create("c").unwrap();
        let config = DiscoveryConfig::default();
        for i in 0..4 {
            c.add_doc(&format!("d{i}"), &doc(i)).unwrap();
        }
        c.discover(&config);
        c.remove_doc("d3").unwrap();
        let after_rm = c.discover(&config);
        let mut cold = store.open("c").unwrap();
        assert_eq!(
            render_stable(&after_rm),
            render_stable(&cold.discover(&config))
        );
        let _ = fs::remove_dir_all(&root);
    }
}
