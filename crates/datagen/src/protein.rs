//! A PIR/PSD-like protein database — the "large, heavily used community
//! resource" the paper's introduction names as anecdotally redundant.
//! Deeply nested entries with reference sets and accession-number sets.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xfd_xml::builder::TreeWriter;
use xfd_xml::DataTree;

/// Generator parameters.
#[derive(Debug, Clone)]
pub struct ProteinSpec {
    /// Number of protein entries.
    pub entries: usize,
    /// Distinct proteins (repeats inject redundancy across entries).
    pub distinct: usize,
    /// Organism pool size.
    pub organisms: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ProteinSpec {
    fn default() -> Self {
        ProteinSpec {
            entries: 80,
            distinct: 50,
            organisms: 10,
            seed: 23,
        }
    }
}

/// Generate the database. Injected constraints:
///
/// * `uid → accession set, protein name, sequence length`;
/// * `organism/source → organism/common` (species naming);
/// * references repeat across entries of the same protein.
pub fn protein_like(spec: &ProteinSpec) -> DataTree {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let organisms: Vec<(String, String)> = (0..spec.organisms)
        .map(|o| (format!("Organismus latinus {o}"), format!("organism {o}")))
        .collect();
    let mut w = TreeWriter::new("ProteinDatabase");
    for _ in 0..spec.entries {
        let i = rng.gen_range(0..spec.distinct);
        let uid = format!("PRF{:06}", i * 13);
        let (source, common) = &organisms[i % spec.organisms];
        w.open("ProteinEntry");
        w.attr("id", &uid);
        w.open("header");
        w.leaf("uid", &uid);
        for a in 0..1 + i % 3 {
            w.leaf("accession", &format!("A{:05}", i * 10 + a));
        }
        w.close();
        w.open("protein");
        w.leaf("name", &format!("protein kinase {i}"));
        if i % 2 == 0 {
            w.leaf(
                "classification",
                &format!("EC 2.7.{}.{}", 1 + i % 9, 1 + i % 20),
            );
        }
        w.close();
        w.open("organism");
        w.leaf("source", source);
        w.leaf("common", common);
        w.close();
        for r in 0..1 + i % 2 {
            w.open("reference");
            w.open("refinfo");
            for a in 0..1 + (i + r) % 3 {
                w.leaf("author", &format!("Scientist {}", (i * 5 + r * 2 + a) % 40));
            }
            w.leaf("title", &format!("Structure of protein {i}, part {r}"));
            w.leaf("year", &format!("{}", 1985 + (i + r) % 20));
            w.close();
            w.close();
        }
        w.leaf("sequence", &seq(i, &mut rng));
        w.close();
    }
    w.finish()
}

fn seq(i: usize, _rng: &mut StdRng) -> String {
    // Deterministic per identity: uid → sequence holds.
    let len = 20 + (i * 7) % 40;
    let alphabet = b"ACDEFGHIKLMNPQRSTVWY";
    (0..len)
        .map(|k| alphabet[(i * 31 + k * 7) % alphabet.len()] as char)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use xfd_xml::Path;

    #[test]
    fn entry_count_matches() {
        let t = protein_like(&ProteinSpec {
            entries: 25,
            ..Default::default()
        });
        assert_eq!(
            "/ProteinDatabase/ProteinEntry"
                .parse::<Path>()
                .unwrap()
                .resolve_all(&t)
                .len(),
            25
        );
    }

    #[test]
    fn uid_determines_sequence() {
        let t = protein_like(&ProteinSpec::default());
        let entries = "/ProteinDatabase/ProteinEntry"
            .parse::<Path>()
            .unwrap()
            .resolve_all(&t);
        let mut seen: std::collections::HashMap<String, String> = Default::default();
        for e in entries {
            let header = t.child_labeled(e, "header").unwrap();
            let uid = t
                .value(t.child_labeled(header, "uid").unwrap())
                .unwrap()
                .to_string();
            let sq = t
                .value(t.child_labeled(e, "sequence").unwrap())
                .unwrap()
                .to_string();
            if let Some(prev) = seen.insert(uid, sq.clone()) {
                assert_eq!(prev, sq);
            }
        }
    }

    #[test]
    fn organism_source_determines_common_name() {
        let t = protein_like(&ProteinSpec::default());
        let orgs = "/ProteinDatabase/ProteinEntry/organism"
            .parse::<Path>()
            .unwrap()
            .resolve_all(&t);
        let mut seen: std::collections::HashMap<String, String> = Default::default();
        for o in orgs {
            let s = t
                .value(t.child_labeled(o, "source").unwrap())
                .unwrap()
                .to_string();
            let c = t
                .value(t.child_labeled(o, "common").unwrap())
                .unwrap()
                .to_string();
            if let Some(prev) = seen.insert(s, c.clone()) {
                assert_eq!(prev, c);
            }
        }
    }

    #[test]
    fn determinism() {
        let a = protein_like(&ProteinSpec::default());
        let b = protein_like(&ProteinSpec::default());
        assert!(xfd_xml::node_value_eq_cross(&a, a.root(), &b, b.root()));
    }
}
