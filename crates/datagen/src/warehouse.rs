//! The paper's running example: the `warehouse` document of Figure 1,
//! exact, and a scaled generator that preserves the paper's constraints.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xfd_xml::builder::TreeWriter;
use xfd_xml::DataTree;

/// The document of Figure 1, node for node (keys differ: the paper skips
/// numbers for elements it elides).
pub fn warehouse_figure1() -> DataTree {
    let mut w = TreeWriter::new("warehouse");
    // state 10 (WA)
    w.open("state");
    w.leaf("name", "WA");
    w.open("store"); // store 12
    w.open("contact");
    w.leaf("name", "Borders");
    w.leaf("address", "Seattle");
    w.close();
    w.open("book"); // book 20
    w.leaf("ISBN", "1-0676-2775-0");
    w.leaf("author", "Post");
    w.leaf("title", "Dreams");
    w.leaf("price", "19.99");
    w.close();
    w.open("book"); // book 30
    w.leaf("ISBN", "1-55860-438-3");
    w.leaf("author", "Ramakrishnan");
    w.leaf("author", "Gehrke");
    w.leaf("title", "DBMS");
    w.leaf("price", "59.99");
    w.close();
    w.close(); // store 12
    w.close(); // state 10
               // state 40 (KY)
    w.open("state");
    w.leaf("name", "KY");
    w.open("store"); // store 42
    w.open("contact");
    w.leaf("name", "Borders");
    w.leaf("address", "Lexington");
    w.close();
    w.open("book"); // book 50
    w.leaf("ISBN", "1-55860-438-3");
    w.leaf("author", "Ramakrishnan");
    w.leaf("author", "Gehrke");
    w.leaf("title", "DBMS");
    w.leaf("price", "59.99");
    w.close();
    w.close(); // store 42
    w.open("store"); // store 72
    w.open("contact");
    w.leaf("name", "WHSmith");
    w.leaf("address", "Lexington");
    w.close();
    w.open("book"); // book 80 — no price
    w.leaf("ISBN", "1-55860-438-3");
    w.leaf("author", "Ramakrishnan");
    w.leaf("author", "Gehrke");
    w.leaf("title", "DBMS");
    w.close();
    w.close(); // store 72
    w.close(); // state 40
    w.finish()
}

/// Parameters for the scaled warehouse.
#[derive(Debug, Clone)]
pub struct WarehouseSpec {
    /// Number of states.
    pub states: usize,
    /// Stores per state.
    pub stores_per_state: usize,
    /// Books per store.
    pub books_per_store: usize,
    /// Size of the ISBN catalog (smaller ⇒ more redundancy).
    pub catalog_size: usize,
    /// Number of distinct store chains.
    pub chains: usize,
    /// Probability that a book's price is missing.
    pub missing_price: f64,
    /// Probability that a book's title is corrupted with a unique typo —
    /// noise for the approximate-FD experiments (0.0 keeps FD 1 exact).
    pub title_noise: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WarehouseSpec {
    fn default() -> Self {
        WarehouseSpec {
            states: 4,
            stores_per_state: 3,
            books_per_store: 8,
            catalog_size: 40,
            chains: 5,
            missing_price: 0.1,
            title_noise: 0.0,
            seed: 42,
        }
    }
}

/// A scaled warehouse preserving the paper's constraints:
///
/// * Constraint 1/3 (FD 1/FD 3): ISBN determines title and the author set
///   (books are drawn from a fixed catalog);
/// * Constraint 4 (FD 4): (author set, title) determines ISBN;
/// * Constraint 2 (FD 2): (store chain name, ISBN) determines price, with
///   per-chain pricing, while ISBN alone does not;
/// * some prices are missing, as for book 80 in Figure 1.
pub fn warehouse_scaled(spec: &WarehouseSpec) -> DataTree {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    // Catalog: ISBN → (title, authors). Distinct titles per ISBN so FD 4
    // holds in reverse as well.
    let catalog: Vec<(String, String, Vec<String>)> = (0..spec.catalog_size)
        .map(|i| {
            let isbn = format!("1-{:05}-{:03}-{}", i * 7919 % 100_000, i, i % 10);
            let title = format!("Title-{i}");
            let n_authors = 1 + (i % 3);
            let authors = (0..n_authors)
                .map(|a| format!("Author-{}", (i * 3 + a) % 50))
                .collect();
            (isbn, title, authors)
        })
        .collect();
    let chain_names: Vec<String> = (0..spec.chains).map(|c| format!("Chain-{c}")).collect();
    // Per (chain, isbn) price.
    let price = |chain: usize, isbn_idx: usize| -> String {
        format!("{}.99", 10 + (chain * 31 + isbn_idx * 17) % 90)
    };

    let mut w = TreeWriter::new("warehouse");
    let mut typo_counter = 0usize;
    for s in 0..spec.states {
        w.open("state");
        w.leaf("name", &format!("State-{s}"));
        for _ in 0..spec.stores_per_state {
            let chain = rng.gen_range(0..spec.chains);
            w.open("store");
            w.open("contact");
            w.leaf("name", &chain_names[chain]);
            w.leaf("address", &format!("City-{}", rng.gen_range(0..20)));
            w.close();
            for _ in 0..spec.books_per_store {
                let idx = rng.gen_range(0..spec.catalog_size);
                let (isbn, title, authors) = &catalog[idx];
                w.open("book");
                w.leaf("ISBN", isbn);
                for a in authors {
                    w.leaf("author", a);
                }
                if spec.title_noise > 0.0 && rng.gen_bool(spec.title_noise) {
                    typo_counter += 1;
                    w.leaf("title", &format!("{title} (typo {typo_counter})"));
                } else {
                    w.leaf("title", title);
                }
                if rng.gen_bool(1.0 - spec.missing_price) {
                    w.leaf("price", &price(chain, idx));
                }
                w.close();
            }
            w.close();
        }
        w.close();
    }
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use xfd_xml::Path;

    #[test]
    fn figure1_has_the_papers_shape() {
        let t = warehouse_figure1();
        let p = |s: &str| s.parse::<Path>().unwrap();
        assert_eq!(p("/warehouse/state").resolve_all(&t).len(), 2);
        assert_eq!(p("/warehouse/state/store").resolve_all(&t).len(), 3);
        assert_eq!(p("/warehouse/state/store/book").resolve_all(&t).len(), 4);
        assert_eq!(
            p("/warehouse/state/store/book/author")
                .resolve_all(&t)
                .len(),
            7
        );
        // Book 80 has no price.
        assert_eq!(
            p("/warehouse/state/store/book/price").resolve_all(&t).len(),
            3
        );
    }

    #[test]
    fn scaled_is_deterministic() {
        let a = warehouse_scaled(&WarehouseSpec::default());
        let b = warehouse_scaled(&WarehouseSpec::default());
        assert_eq!(a.node_count(), b.node_count());
        assert!(xfd_xml::node_value_eq_cross(&a, a.root(), &b, b.root()));
    }

    #[test]
    fn scaled_respects_counts() {
        let spec = WarehouseSpec {
            states: 3,
            stores_per_state: 2,
            books_per_store: 5,
            ..Default::default()
        };
        let t = warehouse_scaled(&spec);
        let p = |s: &str| s.parse::<Path>().unwrap();
        assert_eq!(p("/warehouse/state").resolve_all(&t).len(), 3);
        assert_eq!(p("/warehouse/state/store").resolve_all(&t).len(), 6);
        assert_eq!(p("/warehouse/state/store/book").resolve_all(&t).len(), 30);
    }

    #[test]
    fn catalog_constraint_holds_in_scaled_data() {
        // Same ISBN ⇒ same title (FD 1), by construction.
        let t = warehouse_scaled(&WarehouseSpec::default());
        let books = "/warehouse/state/store/book"
            .parse::<Path>()
            .unwrap()
            .resolve_all(&t);
        let mut seen: std::collections::HashMap<String, String> = Default::default();
        for b in books {
            let isbn = t
                .value(t.child_labeled(b, "ISBN").unwrap())
                .unwrap()
                .to_string();
            let title = t
                .value(t.child_labeled(b, "title").unwrap())
                .unwrap()
                .to_string();
            if let Some(prev) = seen.insert(isbn, title.clone()) {
                assert_eq!(prev, title, "FD 1 violated by the generator");
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = warehouse_scaled(&WarehouseSpec::default());
        let b = warehouse_scaled(&WarehouseSpec {
            seed: 7,
            ..Default::default()
        });
        assert!(!xfd_xml::node_value_eq_cross(&a, a.root(), &b, b.root()));
    }
}
