//! A DBLP-like bibliography: the classic real-life dataset with set
//! elements (multi-author publications) — the shape that motivates the
//! paper's Constraints 3 and 4.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xfd_xml::builder::TreeWriter;
use xfd_xml::DataTree;

/// Generator parameters.
#[derive(Debug, Clone)]
pub struct DblpSpec {
    /// Number of article elements.
    pub articles: usize,
    /// Number of inproceedings elements.
    pub inproceedings: usize,
    /// Distinct publications (identities); repeats inject redundancy.
    pub distinct: usize,
    /// Author pool size.
    pub authors: usize,
    /// Journal/conference pool size.
    pub venues: usize,
    /// Rotate the author list of each duplicate occurrence (author *sets*
    /// stay equal, author *sequences* differ — exercises order modes).
    pub shuffle_authors: bool,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DblpSpec {
    fn default() -> Self {
        DblpSpec {
            articles: 150,
            inproceedings: 100,
            distinct: 120,
            authors: 60,
            venues: 12,
            shuffle_authors: false,
            seed: 11,
        }
    }
}

/// Generate the bibliography. Injected constraints:
///
/// * `@key → title, year, venue, author set` (entries are drawn from a
///   catalog; duplicated entries make titles/author sets redundant);
/// * `(author set, title) → @key` (FD 4 analogue);
/// * `venue` repeats freely (no FD), `year` depends on the entry.
pub fn dblp_like(spec: &DblpSpec) -> DataTree {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let catalog: Vec<(String, String, String, String, Vec<String>)> = (0..spec.distinct)
        .map(|i| {
            let key = format!("entry/{i:05}");
            let title = format!("On the Theory of Topic {i}");
            let year = format!("{}", 1990 + i % 17);
            let venue = format!("Venue-{}", (i * 5) % spec.venues);
            let n_auth = 1 + i % 4;
            let authors = (0..n_auth)
                .map(|a| format!("Writer {}", (i * 7 + a * 3) % spec.authors))
                .collect();
            (key, title, year, venue, authors)
        })
        .collect();

    let mut w = TreeWriter::new("dblp");
    let shuffle = spec.shuffle_authors;
    let emit = |w: &mut TreeWriter, kind: &str, venue_tag: &str, idx: usize, rot: usize| {
        let (key, title, year, venue, authors) = &catalog[idx];
        w.open(kind);
        w.attr("key", key);
        let n = authors.len();
        for k in 0..n {
            let a = if shuffle {
                &authors[(k + rot) % n]
            } else {
                &authors[k]
            };
            w.leaf("author", a);
        }
        w.leaf("title", title);
        w.leaf("year", year);
        w.leaf(venue_tag, venue);
        w.close();
    };
    for _ in 0..spec.articles {
        let idx = rng.gen_range(0..spec.distinct / 2); // articles: first half
        let rot = rng.gen_range(0..4);
        emit(&mut w, "article", "journal", idx, rot);
    }
    for _ in 0..spec.inproceedings {
        let idx = spec.distinct / 2 + rng.gen_range(0..spec.distinct - spec.distinct / 2);
        let rot = rng.gen_range(0..4);
        emit(&mut w, "inproceedings", "booktitle", idx, rot);
    }
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use xfd_xml::Path;

    #[test]
    fn counts_match_spec() {
        let spec = DblpSpec {
            articles: 20,
            inproceedings: 10,
            ..Default::default()
        };
        let t = dblp_like(&spec);
        assert_eq!(
            "/dblp/article"
                .parse::<Path>()
                .unwrap()
                .resolve_all(&t)
                .len(),
            20
        );
        assert_eq!(
            "/dblp/inproceedings"
                .parse::<Path>()
                .unwrap()
                .resolve_all(&t)
                .len(),
            10
        );
    }

    #[test]
    fn key_determines_title() {
        let t = dblp_like(&DblpSpec::default());
        let arts = "/dblp/article".parse::<Path>().unwrap().resolve_all(&t);
        let mut seen: std::collections::HashMap<String, String> = Default::default();
        for a in arts {
            let key = t
                .value(t.child_labeled(a, "@key").unwrap())
                .unwrap()
                .to_string();
            let title = t
                .value(t.child_labeled(a, "title").unwrap())
                .unwrap()
                .to_string();
            if let Some(prev) = seen.insert(key, title.clone()) {
                assert_eq!(prev, title);
            }
        }
    }

    #[test]
    fn multi_author_entries_exist() {
        let t = dblp_like(&DblpSpec::default());
        let arts = "/dblp/article".parse::<Path>().unwrap().resolve_all(&t);
        assert!(arts
            .iter()
            .any(|&a| t.children_labeled(a, "author").count() >= 2));
    }

    #[test]
    fn determinism() {
        let a = dblp_like(&DblpSpec::default());
        let b = dblp_like(&DblpSpec::default());
        assert!(xfd_xml::node_value_eq_cross(&a, a.root(), &b, b.root()));
    }
}
