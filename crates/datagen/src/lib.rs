#![warn(missing_docs)]
//! # xfd-datagen
//!
//! Deterministic XML workload generators for the DiscoverXFD evaluation
//! (reconstructed Section 5; see DESIGN.md for the substitution rationale).
//!
//! All generators are seeded (`rand::rngs::StdRng`) and build
//! [`xfd_xml::DataTree`]s directly; serialize with `xfd_xml::to_xml_string`
//! when actual XML text is needed (e.g. for parser benchmarks).
//!
//! * [`warehouse`] — the paper's Figure 1 document, exact, plus a scaled
//!   version with the paper's constraints (FDs 1–4) injected;
//! * [`xmark`] — an XMark-like auction-site benchmark document driven by a
//!   scale factor (the benchmark dataset of the era);
//! * [`dblp`] — a DBLP-like bibliography (multi-author set elements);
//! * [`protein`] — a PIR/PSD-like protein database (the community resource
//!   the paper's introduction cites as anecdotally redundant);
//! * [`mondial`] — a Mondial-like geography database (deep nesting);
//! * [`synthetic`] — fully parameterised trees for the width/parallel-set
//!   sweeps.

pub mod dblp;
pub mod mondial;
pub mod protein;
pub mod sigmod;
pub mod synthetic;
pub mod warehouse;
pub mod xmark;

pub use dblp::{dblp_like, DblpSpec};
pub use mondial::{mondial_like, MondialSpec};
pub use protein::{protein_like, ProteinSpec};
pub use sigmod::{sigmod_like, SigmodSpec};
pub use synthetic::{parallel_sets, wide_relation, ParallelSetSpec, WideSpec};
pub use warehouse::{warehouse_figure1, warehouse_scaled, WarehouseSpec};
pub use xmark::{xmark_like, XmarkSpec};

/// Dataset descriptors used by Table 1/2 of the experiment harness.
#[derive(Debug, Clone)]
pub struct DatasetInfo {
    /// Short name.
    pub name: &'static str,
    /// The document.
    pub tree: xfd_xml::DataTree,
}

/// The standard small-scale dataset suite (one instance per generator).
pub fn standard_suite() -> Vec<DatasetInfo> {
    vec![
        DatasetInfo {
            name: "warehouse",
            tree: warehouse_figure1(),
        },
        DatasetInfo {
            name: "warehouse-x20",
            tree: warehouse_scaled(&WarehouseSpec {
                states: 8,
                stores_per_state: 5,
                books_per_store: 12,
                ..Default::default()
            }),
        },
        DatasetInfo {
            name: "xmark-like",
            tree: xmark_like(&XmarkSpec::with_scale(1.0)),
        },
        DatasetInfo {
            name: "dblp-like",
            tree: dblp_like(&DblpSpec::default()),
        },
        DatasetInfo {
            name: "psd-like",
            tree: protein_like(&ProteinSpec::default()),
        },
        DatasetInfo {
            name: "mondial-like",
            tree: mondial_like(&MondialSpec::default()),
        },
        DatasetInfo {
            name: "sigmod-like",
            tree: sigmod_like(&SigmodSpec::default()),
        },
    ]
}
