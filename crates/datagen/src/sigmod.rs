//! A SIGMOD-Record-like document: the classic `SigmodRecord.xml` shape
//! (issues → articles → authors) used throughout the early XML literature.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xfd_xml::builder::TreeWriter;
use xfd_xml::DataTree;

/// Generator parameters.
#[derive(Debug, Clone)]
pub struct SigmodSpec {
    /// Number of issues.
    pub issues: usize,
    /// Articles per issue (average).
    pub articles_per_issue: usize,
    /// Distinct articles (repeats across issues inject redundancy —
    /// reprints and corrigenda).
    pub distinct_articles: usize,
    /// Author pool size.
    pub authors: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SigmodSpec {
    fn default() -> Self {
        SigmodSpec {
            issues: 20,
            articles_per_issue: 6,
            distinct_articles: 80,
            authors: 50,
            seed: 17,
        }
    }
}

/// Generate the document. Injected constraints:
///
/// * `(volume, number)` identifies an issue;
/// * `initPage/endPage` and the author set are determined by the article
///   title (articles are drawn from a catalog);
/// * page ranges are consistent (`initPage ≤ endPage`).
pub fn sigmod_like(spec: &SigmodSpec) -> DataTree {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let catalog: Vec<(String, u32, u32, Vec<String>)> = (0..spec.distinct_articles)
        .map(|i| {
            let title = format!("A Study of Query Topic {i}");
            let init = 1 + (i as u32 * 13) % 300;
            let end = init + 5 + (i as u32 % 20);
            let n_auth = 1 + i % 3;
            let authors = (0..n_auth)
                .map(|a| format!("Researcher {}", (i * 11 + a * 5) % spec.authors))
                .collect();
            (title, init, end, authors)
        })
        .collect();

    let mut w = TreeWriter::new("SigmodRecord");
    for i in 0..spec.issues {
        w.open("issue");
        w.leaf("volume", &(11 + i / 4).to_string());
        w.leaf("number", &(1 + i % 4).to_string());
        w.open("articles");
        let n = 1 + rng.gen_range(0..2 * spec.articles_per_issue);
        for _ in 0..n {
            let (title, init, end, authors) = &catalog[rng.gen_range(0..spec.distinct_articles)];
            w.open("article");
            w.leaf("title", title);
            w.leaf("initPage", &init.to_string());
            w.leaf("endPage", &end.to_string());
            w.open("authors");
            for (pos, a) in authors.iter().enumerate() {
                w.open("author");
                w.attr("position", &pos.to_string());
                let id = w.leaf("@text", a);
                let _ = id;
                w.close();
            }
            w.close();
            w.close();
        }
        w.close();
        w.close();
    }
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use xfd_xml::Path;

    #[test]
    fn shape_matches_sigmod_record() {
        let t = sigmod_like(&SigmodSpec::default());
        let p = |s: &str| s.parse::<Path>().unwrap();
        assert_eq!(p("/SigmodRecord/issue").resolve_all(&t).len(), 20);
        assert!(!p("/SigmodRecord/issue/articles/article/authors/author")
            .resolve_all(&t)
            .is_empty());
        assert!(
            !p("/SigmodRecord/issue/articles/article/authors/author/@position")
                .resolve_all(&t)
                .is_empty()
        );
    }

    #[test]
    fn title_determines_pages() {
        let t = sigmod_like(&SigmodSpec::default());
        let arts = "/SigmodRecord/issue/articles/article"
            .parse::<Path>()
            .unwrap()
            .resolve_all(&t);
        let mut seen: std::collections::HashMap<String, String> = Default::default();
        for a in arts {
            let title = t
                .value(t.child_labeled(a, "title").unwrap())
                .unwrap()
                .to_string();
            let init = t
                .value(t.child_labeled(a, "initPage").unwrap())
                .unwrap()
                .to_string();
            if let Some(prev) = seen.insert(title, init.clone()) {
                assert_eq!(prev, init);
            }
        }
    }

    #[test]
    fn determinism() {
        let a = sigmod_like(&SigmodSpec::default());
        let b = sigmod_like(&SigmodSpec::default());
        assert!(xfd_xml::node_value_eq_cross(&a, a.root(), &b, b.root()));
    }
}
