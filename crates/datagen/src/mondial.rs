//! A Mondial-like geography database: three nesting levels
//! (country → province → city), the classic deep-hierarchy dataset.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xfd_xml::builder::TreeWriter;
use xfd_xml::DataTree;

/// Generator parameters.
#[derive(Debug, Clone)]
pub struct MondialSpec {
    /// Number of countries.
    pub countries: usize,
    /// Provinces per country (average).
    pub provinces: usize,
    /// Cities per province (average).
    pub cities: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MondialSpec {
    fn default() -> Self {
        MondialSpec {
            countries: 15,
            provinces: 4,
            cities: 5,
            seed: 31,
        }
    }
}

/// Generate the geography tree. Injected constraints:
///
/// * `country/@car_code → country/name` and vice versa;
/// * within a country, `(province name, city name)` identifies a city but
///   city names repeat across provinces (inter-relation key material);
/// * `city population` is determined by the city identity (duplicated
///   sister-city entries inject redundancy).
pub fn mondial_like(spec: &MondialSpec) -> DataTree {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut w = TreeWriter::new("mondial");
    for c in 0..spec.countries {
        w.open("country");
        w.attr("car_code", &format!("C{c:02}"));
        w.leaf("name", &format!("Country {c}"));
        w.leaf("capital", &format!("City {c}-0-0"));
        let n_prov = 1 + (c + spec.provinces) % (2 * spec.provinces);
        for p in 0..n_prov {
            w.open("province");
            w.leaf("name", &format!("Province {c}-{p}"));
            let n_city = 1 + rng.gen_range(0..2 * spec.cities);
            for k in 0..n_city {
                // Sister cities: identity sometimes repeats across provinces.
                let identity = if rng.gen_bool(0.2) && p > 0 {
                    format!("{c}-0-{k}")
                } else {
                    format!("{c}-{p}-{k}")
                };
                w.open("city");
                w.leaf("name", &format!("City {identity}"));
                let pop = 10_000 + (identity.len() * 7919 + k * 1013) % 5_000_000;
                w.leaf("population", &pop.to_string());
                w.close();
            }
            w.close();
        }
        w.close();
    }
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use xfd_xml::Path;

    #[test]
    fn three_levels_of_nesting() {
        let t = mondial_like(&MondialSpec::default());
        let p = |s: &str| s.parse::<Path>().unwrap();
        assert_eq!(p("/mondial/country").resolve_all(&t).len(), 15);
        assert!(!p("/mondial/country/province/city/name")
            .resolve_all(&t)
            .is_empty());
    }

    #[test]
    fn car_code_determines_name() {
        let t = mondial_like(&MondialSpec::default());
        let countries = "/mondial/country".parse::<Path>().unwrap().resolve_all(&t);
        let mut seen: std::collections::HashMap<String, String> = Default::default();
        for c in countries {
            let code = t
                .value(t.child_labeled(c, "@car_code").unwrap())
                .unwrap()
                .to_string();
            let name = t
                .value(t.child_labeled(c, "name").unwrap())
                .unwrap()
                .to_string();
            if let Some(prev) = seen.insert(code, name.clone()) {
                assert_eq!(prev, name);
            }
        }
    }

    #[test]
    fn determinism() {
        let a = mondial_like(&MondialSpec::default());
        let b = mondial_like(&MondialSpec::default());
        assert!(xfd_xml::node_value_eq_cross(&a, a.root(), &b, b.root()));
    }
}
