//! An XMark-like auction-site document (the standard XML benchmark of the
//! paper's era), driven by a scale factor.
//!
//! The shape follows XMark's `site` document: regional `item`s, `person`s
//! with nested addresses and watched-auction sets, `open_auction`s with
//! `bidder` sets, and `closed_auction`s. Element counts scale linearly
//! with the factor (factor 1.0 ≈ a few thousand nodes here; the real XMark
//! factor 1.0 is ~100 MB — our experiments sweep relative sizes, which is
//! what the scalability figure needs).
//!
//! Injected dependencies (so discovery has something to find):
//!
//! * `item/@id → item/name, item/category` (items are drawn from a
//!   catalog: duplicated listings across regions are redundant);
//! * `person/@id → person/name, person/emailaddress`;
//! * `open_auction`: `itemref/@item → reserve`;
//! * bidder increases depend on (auction, bidder position).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xfd_xml::builder::TreeWriter;
use xfd_xml::DataTree;

/// Scale parameters (all counts are multiplied by `scale`).
#[derive(Debug, Clone)]
pub struct XmarkSpec {
    /// Relative size (1.0 = base counts below).
    pub scale: f64,
    /// Base number of items (split across regions).
    pub base_items: usize,
    /// Base number of persons.
    pub base_persons: usize,
    /// Base number of open auctions.
    pub base_open: usize,
    /// Base number of closed auctions.
    pub base_closed: usize,
    /// Size of the item catalog (distinct item identities).
    pub catalog: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for XmarkSpec {
    fn default() -> Self {
        XmarkSpec {
            scale: 1.0,
            base_items: 120,
            base_persons: 60,
            base_open: 60,
            base_closed: 40,
            catalog: 50,
            seed: 7,
        }
    }
}

impl XmarkSpec {
    /// Spec with everything default but the scale.
    pub fn with_scale(scale: f64) -> Self {
        XmarkSpec {
            scale,
            ..Default::default()
        }
    }

    fn n(&self, base: usize) -> usize {
        ((base as f64 * self.scale).round() as usize).max(1)
    }
}

const REGIONS: [&str; 4] = ["africa", "asia", "europe", "namerica"];
const CATEGORIES: [&str; 8] = [
    "books", "music", "art", "tools", "sports", "toys", "garden", "autos",
];

/// Generate the document.
pub fn xmark_like(spec: &XmarkSpec) -> DataTree {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let n_items = spec.n(spec.base_items);
    let n_persons = spec.n(spec.base_persons);
    let n_open = spec.n(spec.base_open);
    let n_closed = spec.n(spec.base_closed);

    // Item catalog: identity → (name, category, reserve).
    let catalog: Vec<(String, String, &str, String)> = (0..spec.catalog)
        .map(|i| {
            (
                format!("item{i}"),
                format!("Item name {i}"),
                CATEGORIES[i % CATEGORIES.len()],
                format!("{}.00", 10 + (i * 13) % 200),
            )
        })
        .collect();

    let mut w = TreeWriter::new("site");

    w.open("categories");
    for (c, cat) in CATEGORIES.iter().enumerate() {
        w.open("category");
        w.attr("id", &format!("category{c}"));
        w.leaf("name", cat);
        w.leaf("description", &format!("All about {cat}."));
        w.close();
    }
    w.close();

    w.open("regions");
    let mut placed: Vec<usize> = Vec::new(); // catalog indices actually listed
    for (r, region) in REGIONS.iter().enumerate() {
        w.open(region);
        for k in 0..n_items / REGIONS.len() + usize::from(r < n_items % REGIONS.len()) {
            let idx = rng.gen_range(0..spec.catalog);
            placed.push(idx);
            let (id, name, cat, _) = &catalog[idx];
            w.open("item");
            w.attr("id", id);
            w.leaf("name", name);
            w.leaf("category", cat);
            w.leaf("quantity", &format!("{}", 1 + k % 5));
            w.leaf("location", &format!("Loc-{}", rng.gen_range(0..30)));
            if rng.gen_bool(0.4) {
                w.open("mailbox");
                for m in 0..rng.gen_range(1..3usize) {
                    w.open("mail");
                    w.leaf("from", &format!("p{}@example.org", rng.gen_range(0..40)));
                    w.leaf(
                        "date",
                        &format!("2006-0{}-{:02}", 1 + m % 9, 1 + (k + m) % 28),
                    );
                    w.close();
                }
                w.close();
            }
            w.close();
        }
        w.close();
    }
    w.close();

    w.open("people");
    for pidx in 0..n_persons {
        let identity = pidx % (n_persons / 2).max(1); // some duplicate profiles
        w.open("person");
        w.attr("id", &format!("person{identity}"));
        w.leaf("name", &format!("Person {identity}"));
        w.leaf("emailaddress", &format!("mailto:p{identity}@example.org"));
        if rng.gen_bool(0.6) {
            w.leaf("phone", &format!("+1-555-{:04}", identity * 7 % 10_000));
        }
        w.open("address");
        w.leaf("street", &format!("{} Main St", 1 + identity % 99));
        w.leaf("city", &format!("City-{}", identity % 12));
        w.leaf(
            "country",
            if identity.is_multiple_of(3) {
                "US"
            } else {
                "DE"
            },
        );
        w.close();
        if rng.gen_bool(0.5) {
            w.open("watches");
            for _ in 0..rng.gen_range(1..4) {
                w.open("watch");
                w.attr(
                    "open_auction",
                    &format!("auction{}", rng.gen_range(0..n_open.max(1))),
                );
                w.close();
            }
            w.close();
        }
        w.close();
    }
    w.close();

    w.open("open_auctions");
    for a in 0..n_open {
        // Auctions reference items that are actually listed.
        let item = placed[rng.gen_range(0..placed.len())];
        let (id, _, _, reserve) = &catalog[item];
        w.open("open_auction");
        w.attr("id", &format!("auction{a}"));
        w.leaf("initial", &format!("{}.00", 1 + a % 50));
        w.leaf("reserve", reserve);
        for b in 0..rng.gen_range(0..5usize) {
            w.open("bidder");
            w.leaf(
                "date",
                &format!("2006-0{}-{:02}", 1 + b % 9, 1 + (a + b) % 28),
            );
            w.leaf("increase", &format!("{}.50", 1 + b * 3));
            w.open("personref");
            w.attr(
                "person",
                &format!("person{}", rng.gen_range(0..(n_persons / 2).max(1))),
            );
            w.close();
            w.close();
        }
        w.open("itemref");
        w.attr("item", id);
        w.close();
        w.open("seller");
        w.attr(
            "person",
            &format!("person{}", rng.gen_range(0..(n_persons / 2).max(1))),
        );
        w.close();
        w.close();
    }
    w.close();

    w.open("closed_auctions");
    for c in 0..n_closed {
        let item = placed[rng.gen_range(0..placed.len())];
        let (id, _, _, reserve) = &catalog[item];
        w.open("closed_auction");
        w.open("buyer");
        w.attr(
            "person",
            &format!("person{}", rng.gen_range(0..(n_persons / 2).max(1))),
        );
        w.close();
        w.open("itemref");
        w.attr("item", id);
        w.close();
        w.leaf("price", reserve);
        w.leaf("date", &format!("2006-0{}-{:02}", 1 + c % 9, 1 + c % 28));
        w.close();
    }
    w.close();

    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use xfd_xml::Path;

    #[test]
    fn scale_grows_the_document_linearly_ish() {
        let small = xmark_like(&XmarkSpec::with_scale(0.5));
        let big = xmark_like(&XmarkSpec::with_scale(2.0));
        assert!(big.node_count() > small.node_count() * 2);
        assert!(big.node_count() < small.node_count() * 8);
    }

    #[test]
    fn determinism() {
        let a = xmark_like(&XmarkSpec::default());
        let b = xmark_like(&XmarkSpec::default());
        assert!(xfd_xml::node_value_eq_cross(&a, a.root(), &b, b.root()));
    }

    #[test]
    fn structure_has_the_xmark_sections() {
        let t = xmark_like(&XmarkSpec::with_scale(0.2));
        for path in [
            "/site/regions",
            "/site/people/person",
            "/site/open_auctions/open_auction",
        ] {
            assert!(
                !path.parse::<Path>().unwrap().resolve_all(&t).is_empty(),
                "missing {path}"
            );
        }
    }

    #[test]
    fn item_catalog_injects_id_name_dependency() {
        let t = xmark_like(&XmarkSpec::default());
        let items: Vec<_> = "/site/regions/africa/item"
            .parse::<Path>()
            .unwrap()
            .resolve_all(&t);
        let mut seen: std::collections::HashMap<String, String> = Default::default();
        for item in items {
            let id = t
                .value(t.child_labeled(item, "@id").unwrap())
                .unwrap()
                .to_string();
            let name = t
                .value(t.child_labeled(item, "name").unwrap())
                .unwrap()
                .to_string();
            if let Some(prev) = seen.insert(id, name.clone()) {
                assert_eq!(prev, name);
            }
        }
    }
}
