//! Fully parameterised synthetic documents for the controlled sweeps:
//!
//! * [`wide_relation`] — schema-complexity sweep (reconstructed Figure 2
//!   of the evaluation): one set element with a configurable number of
//!   attribute children and a configurable FD structure;
//! * [`parallel_sets`] — representation-blow-up sweep (reconstructed
//!   Figure 5): a record with `k` *parallel* set elements, under which the
//!   flat representation multiplies while the hierarchical one adds.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xfd_xml::builder::TreeWriter;
use xfd_xml::DataTree;

/// Parameters for [`wide_relation`].
#[derive(Debug, Clone)]
pub struct WideSpec {
    /// Number of tuples (repeated `row` elements).
    pub rows: usize,
    /// Number of attribute children per row (`a0..a{width-1}`).
    pub width: usize,
    /// Domain size per attribute (smaller ⇒ larger partition groups and
    /// more satisfied FDs).
    pub domain: u64,
    /// Fraction of attributes that are *derived* from attribute 0
    /// (injects FDs `a0 → ai`).
    pub derived_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WideSpec {
    fn default() -> Self {
        WideSpec {
            rows: 200,
            width: 8,
            domain: 20,
            derived_fraction: 0.25,
            seed: 3,
        }
    }
}

/// One flat set element with `width` attributes per tuple.
pub fn wide_relation(spec: &WideSpec) -> DataTree {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let derived = ((spec.width as f64) * spec.derived_fraction) as usize;
    let mut w = TreeWriter::new("db");
    for _ in 0..spec.rows {
        w.open("row");
        let a0 = rng.gen_range(0..spec.domain);
        for a in 0..spec.width {
            let v = if a == 0 {
                a0
            } else if a <= derived {
                // Derived: a function of a0 (injects a0 → a_i).
                a0.wrapping_mul(a as u64 + 1) % spec.domain
            } else {
                rng.gen_range(0..spec.domain)
            };
            w.leaf(&format!("a{a}"), &v.to_string());
        }
        w.close();
    }
    w.finish()
}

/// Parameters for [`parallel_sets`].
#[derive(Debug, Clone)]
pub struct ParallelSetSpec {
    /// Number of record elements.
    pub records: usize,
    /// Number of parallel set elements per record (`s0..s{k-1}`).
    pub parallel: usize,
    /// Items per set element instance.
    pub items_per_set: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ParallelSetSpec {
    fn default() -> Self {
        ParallelSetSpec {
            records: 20,
            parallel: 3,
            items_per_set: 2,
            seed: 5,
        }
    }
}

/// Records with `parallel` sibling set elements — the flat representation
/// produces `items_per_set ^ parallel` rows per record (the Section 4.1
/// blow-up), the hierarchical one `parallel × items_per_set` tuples.
pub fn parallel_sets(spec: &ParallelSetSpec) -> DataTree {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut w = TreeWriter::new("db");
    for r in 0..spec.records {
        w.open("rec");
        w.leaf("id", &r.to_string());
        for s in 0..spec.parallel {
            for i in 0..spec.items_per_set {
                w.leaf(
                    &format!("s{s}"),
                    &format!("v{}", (r + s * 7 + i + rng.gen_range(0..2)) % 10),
                );
            }
        }
        w.close();
    }
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use xfd_xml::Path;

    #[test]
    fn wide_relation_has_requested_shape() {
        let t = wide_relation(&WideSpec {
            rows: 10,
            width: 5,
            ..Default::default()
        });
        assert_eq!("/db/row".parse::<Path>().unwrap().resolve_all(&t).len(), 10);
        assert_eq!(
            "/db/row/a4".parse::<Path>().unwrap().resolve_all(&t).len(),
            10
        );
        assert!("/db/row/a5"
            .parse::<Path>()
            .unwrap()
            .resolve_all(&t)
            .is_empty());
    }

    #[test]
    fn derived_attributes_follow_a0() {
        let spec = WideSpec {
            rows: 50,
            width: 8,
            derived_fraction: 0.5,
            ..Default::default()
        };
        let t = wide_relation(&spec);
        let rows = "/db/row".parse::<Path>().unwrap().resolve_all(&t);
        let mut seen: std::collections::HashMap<String, String> = Default::default();
        for r in rows {
            let a0 = t
                .value(t.child_labeled(r, "a0").unwrap())
                .unwrap()
                .to_string();
            let a1 = t
                .value(t.child_labeled(r, "a1").unwrap())
                .unwrap()
                .to_string();
            if let Some(prev) = seen.insert(a0, a1.clone()) {
                assert_eq!(prev, a1, "a0 → a1 must hold by construction");
            }
        }
    }

    #[test]
    fn parallel_sets_have_k_siblings() {
        let t = parallel_sets(&ParallelSetSpec {
            records: 3,
            parallel: 4,
            items_per_set: 2,
            seed: 5,
        });
        let recs = "/db/rec".parse::<Path>().unwrap().resolve_all(&t);
        assert_eq!(recs.len(), 3);
        for r in recs {
            for s in 0..4 {
                assert_eq!(t.children_labeled(r, &format!("s{s}")).count(), 2);
            }
        }
    }

    #[test]
    fn determinism() {
        let a = wide_relation(&WideSpec::default());
        let b = wide_relation(&WideSpec::default());
        assert!(xfd_xml::node_value_eq_cross(&a, a.root(), &b, b.root()));
        let c = parallel_sets(&ParallelSetSpec::default());
        let d = parallel_sets(&ParallelSetSpec::default());
        assert!(xfd_xml::node_value_eq_cross(&c, c.root(), &d, d.root()));
    }
}
