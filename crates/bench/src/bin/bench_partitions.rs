//! Partition-machinery benchmark (`scripts/bench_quick.sh`).
//!
//! Sweeps the warehouse and XMark-like SF=1 datasets through the
//! sequential, parallel and byte-budgeted discovery configurations,
//! recording wall time and the partition-cache counters, and counts the
//! heap allocations of the CSR scratch-reusing partition product against a
//! naive per-group-`Vec` product (the classic TANE-style layout). Results
//! land in `BENCH_partitions.json` (or the path given as the first
//! argument).
//!
//! ```sh
//! cargo run --release -p xfd-bench --bin bench_partitions [-- out.json]
//! ```

#![deny(unsafe_op_in_unsafe_fn)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use discoverxfd::{discover, DiscoveryConfig};
use xfd_datagen::{
    warehouse_scaled, wide_relation, xmark_like, WarehouseSpec, WideSpec, XmarkSpec,
};
use xfd_partition::{GroupMap, Partition, ProductScratch};
use xfd_xml::DataTree;

/// Passthrough system allocator that counts allocation events, so the
/// product-hot-path comparison reports real numbers, not estimates.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: `layout` is forwarded unchanged from our caller, which
        // upholds GlobalAlloc's contract (non-zero size, valid alignment).
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr`/`layout` come from our caller's matching `alloc`,
        // which delegated to `System` with this same layout.
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: arguments are forwarded unchanged from our caller, which
        // upholds GlobalAlloc's realloc contract for the `System` block.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// One discovery configuration of the sweep.
struct RunResult {
    config: &'static str,
    kernel: &'static str,
    ms: f64,
    /// Wall time of the lattice-discovery phase alone (the part the
    /// partition kernels run in), excluding parse/encode/redundancy.
    lattice_ms: f64,
    nodes: usize,
    partitions: usize,
    products: usize,
    products_error_only: usize,
    products_materialized: usize,
    early_exits: usize,
    summary_hits: usize,
    cache_hits: usize,
    cache_misses: usize,
    evictions: usize,
    peak_resident_bytes: usize,
    fds: usize,
    keys: usize,
}

fn run_config(
    tree: &DataTree,
    config: &DiscoveryConfig,
    label: &'static str,
    reps: usize,
) -> RunResult {
    // Best-of-`reps` wall time; counters are identical across repetitions.
    let mut best = f64::MAX;
    let mut best_lattice = f64::MAX;
    let mut report = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let r = discover(tree, config);
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
        best_lattice = best_lattice.min(r.profile.discover.as_secs_f64() * 1e3);
        report = Some(r);
    }
    let r = report.expect("at least one run");
    RunResult {
        config: label,
        kernel: if config.error_only_kernel {
            "tiered"
        } else {
            "materializing"
        },
        ms: best,
        lattice_ms: best_lattice,
        nodes: r.stats.lattice.nodes_visited,
        partitions: r.stats.lattice.partitions_built,
        products: r.stats.lattice.products,
        products_error_only: r.stats.lattice.products_error_only,
        products_materialized: r.stats.lattice.products_materialized,
        early_exits: r.stats.lattice.early_exits,
        summary_hits: r.stats.lattice.summary_hits,
        cache_hits: r.stats.lattice.cache_hits,
        cache_misses: r.stats.lattice.cache_misses,
        evictions: r.stats.lattice.evictions,
        peak_resident_bytes: r.stats.lattice.peak_resident_bytes,
        fds: r.fds.len(),
        keys: r.keys.len(),
    }
}

fn sweep(
    name: &str,
    tree: &DataTree,
    budget: usize,
    kernel_gate: Option<f64>,
    inter_relation: bool,
    out: &mut String,
) -> (f64, f64) {
    let mut configs: [(&'static str, DiscoveryConfig); 5] = [
        ("sequential", DiscoveryConfig::default()),
        // Escape hatch: every lattice node materializes its CSR product —
        // the before side of the tiered-kernel comparison.
        (
            "materializing",
            DiscoveryConfig {
                error_only_kernel: false,
                ..Default::default()
            },
        ),
        (
            "parallel-auto",
            DiscoveryConfig {
                parallel: true,
                threads: 0,
                ..Default::default()
            },
        ),
        // Forced two workers: exercises the speculative level precompute
        // even where `available_parallelism` is 1 (pure overhead there).
        (
            "parallel-2",
            DiscoveryConfig {
                parallel: true,
                threads: 2,
                ..Default::default()
            },
        ),
        (
            "budgeted",
            DiscoveryConfig {
                cache_budget: Some(budget),
                ..Default::default()
            },
        ),
    ];
    // Flat synthetic relations hang off a one-row document root; target
    // propagation toward it is busywork that forces every candidate to
    // materialize, so those sweeps switch the inter-relation pass off.
    for (_, cfg) in &mut configs {
        cfg.inter_relation = inter_relation;
    }
    let results: Vec<RunResult> = configs
        .iter()
        .map(|(label, cfg)| {
            // The budgeted run trades time for memory by design; one
            // repetition keeps the quick sweep quick.
            let reps = if *label == "budgeted" { 1 } else { 3 };
            run_config(tree, cfg, label, reps)
        })
        .collect();
    // The whole point of the parallel/budgeted modes: identical output.
    for r in &results[1..] {
        assert_eq!(
            (r.fds, r.keys),
            (results[0].fds, results[0].keys),
            "{name}: {} diverged from sequential",
            r.config
        );
    }
    // The tiered kernel must actually engage, and must not cost memory:
    // summaries are 32 bytes against whole CSR partitions.
    assert!(
        results[0].products_error_only > 0,
        "{name}: tiered run never used the error-only kernel"
    );
    assert_eq!(
        results[1].products_error_only, 0,
        "{name}: materializing run used the error-only kernel"
    );
    assert!(
        results[0].peak_resident_bytes <= results[1].peak_resident_bytes,
        "{name}: tiered peak {} exceeds materializing peak {}",
        results[0].peak_resident_bytes,
        results[1].peak_resident_bytes
    );
    let stats = tree.stats();
    // A 1-core box runs "parallel" rows on the sequential path plus thread
    // overhead; mark them so CI gates skip their speedups.
    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    let _ = writeln!(
        out,
        "    {{\"name\": \"{name}\", \"nodes\": {}, \"runs\": [",
        stats.nodes
    );
    for (i, r) in results.iter().enumerate() {
        let constrained = if cores == 1 && r.config.starts_with("parallel") {
            ", \"constrained\": true"
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "      {{\"config\": \"{}\", \"kernel\": \"{}\", \"ms\": {:.2}, \
             \"lattice_ms\": {:.2}, \
             \"fds\": {}, \"keys\": {}, \
             \"lattice_nodes\": {}, \"partitions\": {}, \"products\": {}, \
             \"products_error_only\": {}, \"products_materialized\": {}, \
             \"early_exits\": {}, \"summary_hits\": {}, \
             \"cache_hits\": {}, \"cache_misses\": {}, \"evictions\": {}, \
             \"peak_resident_bytes\": {}{constrained}}}{}",
            r.config,
            r.kernel,
            r.ms,
            r.lattice_ms,
            r.fds,
            r.keys,
            r.nodes,
            r.partitions,
            r.products,
            r.products_error_only,
            r.products_materialized,
            r.early_exits,
            r.summary_hits,
            r.cache_hits,
            r.cache_misses,
            r.evictions,
            r.peak_resident_bytes,
            if i + 1 < results.len() { "," } else { "" }
        );
    }
    let speedup = results[0].ms / results[2].ms;
    // The kernel comparison is scoped to the lattice phase: parse, encode
    // and redundancy analysis are byte-identical work on both sides and
    // would only dilute the number this benchmark exists to watch.
    let speedup_kernel = results[1].lattice_ms / results[0].lattice_ms;
    if let Some(gate) = kernel_gate {
        assert!(
            speedup_kernel >= gate,
            "{name}: tiered kernel speedup {speedup_kernel:.2}x below the {gate:.1}x gate \
             (lattice {:.2} ms tiered vs {:.2} ms materializing)",
            results[0].lattice_ms,
            results[1].lattice_ms
        );
        assert!(
            results[0].early_exits > 0,
            "{name}: no early exits on a dataset with invalid candidates"
        );
    }
    let _ = write!(
        out,
        "    ], \"speedup_parallel\": {:.3}, \"speedup_kernel\": {:.3}, \
         \"identical_output\": true}}",
        speedup, speedup_kernel
    );
    eprintln!(
        "{name}: tiered {:.2} ms (lattice {:.2}), materializing {:.2} ms (lattice {:.2}, \
         kernel {speedup_kernel:.2}x), parallel {:.2} ms ({speedup:.2}x), \
         budget peak {} -> {} bytes ({} evictions)",
        results[0].ms,
        results[0].lattice_ms,
        results[1].ms,
        results[1].lattice_ms,
        results[2].ms,
        results[0].peak_resident_bytes,
        results[4].peak_resident_bytes,
        results[4].evictions,
    );
    (results[0].ms, results[2].ms)
}

/// The pre-CSR shape of a partition product: one heap `Vec` per output
/// group, collected through a `HashMap` — what the hot path allocated
/// before the flat scratch-reusing layout.
fn naive_product(pa: &Partition, pb: &Partition) -> Vec<Vec<u32>> {
    let gm = GroupMap::new(pb);
    let mut out: Vec<Vec<u32>> = Vec::new();
    for g in pa.groups() {
        let mut by_b: HashMap<u32, Vec<u32>> = HashMap::new();
        for &t in g {
            if let Some(gb) = gm.group_of(t) {
                by_b.entry(gb).or_default().push(t);
            }
        }
        for (_, members) in by_b {
            if members.len() >= 2 {
                out.push(members);
            }
        }
    }
    out
}

/// Count allocations per product for the naive layout vs. the CSR
/// scratch-reusing `product_in` on identical operands.
fn product_allocation_comparison(out: &mut String) {
    // Realistic operands: 50k tuples, a few hundred groups each — the
    // shape of a mid-lattice level on XMark SF=1.
    const N: usize = 50_000;
    const REPS: u64 = 200;
    let col = |m: u64, k: u64| -> Vec<Option<u64>> {
        (0..N as u64)
            .map(|t| Some(t.wrapping_mul(m).rotate_left(17) % k))
            .collect()
    };
    let pa = Partition::from_column(&col(2_654_435_761, 400));
    let pb = Partition::from_column(&col(1_000_003, 350));

    let mut scratch = ProductScratch::new();
    // Warm the scratch so steady-state reuse is measured, not first growth.
    let warm = pa.product_in(&pb, &mut scratch);
    drop(warm);

    let before = allocs();
    for _ in 0..REPS {
        let p = pa.product_in(&pb, &mut scratch);
        std::hint::black_box(&p);
    }
    let csr_per_product = (allocs() - before) as f64 / REPS as f64;

    let before = allocs();
    for _ in 0..REPS {
        let p = naive_product(&pa, &pb);
        std::hint::black_box(&p);
    }
    let naive_per_product = (allocs() - before) as f64 / REPS as f64;

    // The error-only kernel returns a 3-word summary from warmed scratch:
    // steady state must be allocation-free, and this is the assert that
    // keeps it so.
    let warm = pa.product_error_in(&pb, &mut scratch, None);
    std::hint::black_box(&warm);
    let before = allocs();
    for _ in 0..REPS {
        let s = pa.product_error_in(&pb, &mut scratch, None);
        std::hint::black_box(&s);
    }
    let error_only_allocs = allocs() - before;
    assert_eq!(
        error_only_allocs, 0,
        "error-only kernel allocated in steady state ({error_only_allocs} over {REPS} reps)"
    );

    let reduction = naive_per_product / csr_per_product.max(1.0);
    let _ = write!(
        out,
        "  \"product_allocations\": {{\"tuples\": {N}, \"reps\": {REPS}, \
         \"naive_per_product\": {naive_per_product:.1}, \
         \"csr_scratch_per_product\": {csr_per_product:.1}, \
         \"error_only_per_product\": 0.0, \
         \"reduction_factor\": {reduction:.1}}}"
    );
    eprintln!(
        "product hot path: naive {naive_per_product:.1} allocs/product, \
         CSR+scratch {csr_per_product:.1} allocs/product ({reduction:.1}x fewer), \
         error-only 0 allocs/product"
    );
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_partitions.json".to_string());

    let warehouse = warehouse_scaled(&WarehouseSpec {
        states: 6,
        stores_per_state: 4,
        books_per_store: 12,
        ..Default::default()
    });
    let xmark = xmark_like(&XmarkSpec::with_scale(1.0));
    // A deep validation-heavy relation: with domain⁰·⁵ʷⁱᵈᵗʰ ≪ rows the
    // stripped partitions stay near-full-size down to level ~7, no subset
    // is a key until the very top, and no FD holds among the random
    // columns — so nearly every one of the 2^width nodes is validated and
    // most validations exit early. Per level k the tiered kernel refines
    // C(width−1, k) frontier partitions instead of materializing all
    // C(width, k), and every validation is a bare scan of one parent's
    // stripped tuples through a base map instead of a probe-table product.
    let deep = wide_relation(&WideSpec {
        rows: 40_000,
        width: 10,
        domain: 4,
        derived_fraction: 0.0,
        seed: 7,
    });

    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    // On a single-core machine `parallel-auto` degenerates to the
    // sequential path, so `speedup_parallel` hovers around 1.0 there;
    // record the core count so the numbers are interpretable.
    let mut json = format!("{{\n  \"available_parallelism\": {cores},\n  \"datasets\": [\n");
    sweep("warehouse", &warehouse, 1 << 20, None, true, &mut json);
    json.push_str(",\n");
    sweep("xmark-sf1", &xmark, 1 << 20, None, true, &mut json);
    json.push_str(",\n");
    // The deep working set peaks around ~40 MB materializing (stripped
    // partitions stay fat at this domain); a 12 MiB budget shows real
    // eviction pressure without the pathological thrash of tiny budgets.
    // This is the dataset the tiered kernel exists for, so its lattice
    // phase gates at 1.5x.
    sweep("deep-10x40k", &deep, 12 << 20, Some(1.5), false, &mut json);
    json.push_str("\n  ],\n");
    product_allocation_comparison(&mut json);
    json.push_str("\n}\n");

    std::fs::write(&out_path, &json).expect("write benchmark JSON");
    eprintln!("wrote {out_path}");
}
