//! Partition-machinery benchmark (`scripts/bench_quick.sh`).
//!
//! Sweeps the warehouse and XMark-like SF=1 datasets through the
//! sequential, parallel and byte-budgeted discovery configurations,
//! recording wall time and the partition-cache counters, and counts the
//! heap allocations of the CSR scratch-reusing partition product against a
//! naive per-group-`Vec` product (the classic TANE-style layout). Results
//! land in `BENCH_partitions.json` (or the path given as the first
//! argument).
//!
//! ```sh
//! cargo run --release -p xfd-bench --bin bench_partitions [-- out.json]
//! ```

#![deny(unsafe_op_in_unsafe_fn)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use discoverxfd::{discover, DiscoveryConfig};
use xfd_datagen::{
    warehouse_scaled, wide_relation, xmark_like, WarehouseSpec, WideSpec, XmarkSpec,
};
use xfd_partition::{GroupMap, Partition, ProductScratch};
use xfd_xml::DataTree;

/// Passthrough system allocator that counts allocation events, so the
/// product-hot-path comparison reports real numbers, not estimates.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: `layout` is forwarded unchanged from our caller, which
        // upholds GlobalAlloc's contract (non-zero size, valid alignment).
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr`/`layout` come from our caller's matching `alloc`,
        // which delegated to `System` with this same layout.
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: arguments are forwarded unchanged from our caller, which
        // upholds GlobalAlloc's realloc contract for the `System` block.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// One discovery configuration of the sweep.
struct RunResult {
    config: &'static str,
    ms: f64,
    nodes: usize,
    partitions: usize,
    products: usize,
    cache_hits: usize,
    cache_misses: usize,
    evictions: usize,
    peak_resident_bytes: usize,
    fds: usize,
    keys: usize,
}

fn run_config(
    tree: &DataTree,
    config: &DiscoveryConfig,
    label: &'static str,
    reps: usize,
) -> RunResult {
    // Best-of-`reps` wall time; counters are identical across repetitions.
    let mut best = f64::MAX;
    let mut report = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let r = discover(tree, config);
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
        report = Some(r);
    }
    let r = report.expect("at least one run");
    RunResult {
        config: label,
        ms: best,
        nodes: r.stats.lattice.nodes_visited,
        partitions: r.stats.lattice.partitions_built,
        products: r.stats.lattice.products,
        cache_hits: r.stats.lattice.cache_hits,
        cache_misses: r.stats.lattice.cache_misses,
        evictions: r.stats.lattice.evictions,
        peak_resident_bytes: r.stats.lattice.peak_resident_bytes,
        fds: r.fds.len(),
        keys: r.keys.len(),
    }
}

fn sweep(name: &str, tree: &DataTree, budget: usize, out: &mut String) -> (f64, f64) {
    let configs: [(&'static str, DiscoveryConfig); 4] = [
        ("sequential", DiscoveryConfig::default()),
        (
            "parallel-auto",
            DiscoveryConfig {
                parallel: true,
                threads: 0,
                ..Default::default()
            },
        ),
        // Forced two workers: exercises the speculative level precompute
        // even where `available_parallelism` is 1 (pure overhead there).
        (
            "parallel-2",
            DiscoveryConfig {
                parallel: true,
                threads: 2,
                ..Default::default()
            },
        ),
        (
            "budgeted",
            DiscoveryConfig {
                cache_budget: Some(budget),
                ..Default::default()
            },
        ),
    ];
    let results: Vec<RunResult> = configs
        .iter()
        .map(|(label, cfg)| {
            // The budgeted run trades time for memory by design; one
            // repetition keeps the quick sweep quick.
            let reps = if *label == "budgeted" { 1 } else { 3 };
            run_config(tree, cfg, label, reps)
        })
        .collect();
    // The whole point of the parallel/budgeted modes: identical output.
    for r in &results[1..] {
        assert_eq!(
            (r.fds, r.keys),
            (results[0].fds, results[0].keys),
            "{name}: {} diverged from sequential",
            r.config
        );
    }
    let stats = tree.stats();
    let _ = writeln!(
        out,
        "    {{\"name\": \"{name}\", \"nodes\": {}, \"runs\": [",
        stats.nodes
    );
    for (i, r) in results.iter().enumerate() {
        let _ = writeln!(
            out,
            "      {{\"config\": \"{}\", \"ms\": {:.2}, \"fds\": {}, \"keys\": {}, \
             \"lattice_nodes\": {}, \"partitions\": {}, \"products\": {}, \
             \"cache_hits\": {}, \"cache_misses\": {}, \"evictions\": {}, \
             \"peak_resident_bytes\": {}}}{}",
            r.config,
            r.ms,
            r.fds,
            r.keys,
            r.nodes,
            r.partitions,
            r.products,
            r.cache_hits,
            r.cache_misses,
            r.evictions,
            r.peak_resident_bytes,
            if i + 1 < results.len() { "," } else { "" }
        );
    }
    let speedup = results[0].ms / results[1].ms;
    let _ = write!(
        out,
        "    ], \"speedup_parallel\": {:.3}, \"identical_output\": true}}",
        speedup
    );
    eprintln!(
        "{name}: sequential {:.2} ms, parallel {:.2} ms ({speedup:.2}x), \
         budget peak {} -> {} bytes ({} evictions)",
        results[0].ms,
        results[1].ms,
        results[0].peak_resident_bytes,
        results[3].peak_resident_bytes,
        results[3].evictions,
    );
    (results[0].ms, results[1].ms)
}

/// The pre-CSR shape of a partition product: one heap `Vec` per output
/// group, collected through a `HashMap` — what the hot path allocated
/// before the flat scratch-reusing layout.
fn naive_product(pa: &Partition, pb: &Partition) -> Vec<Vec<u32>> {
    let gm = GroupMap::new(pb);
    let mut out: Vec<Vec<u32>> = Vec::new();
    for g in pa.groups() {
        let mut by_b: HashMap<u32, Vec<u32>> = HashMap::new();
        for &t in g {
            if let Some(gb) = gm.group_of(t) {
                by_b.entry(gb).or_default().push(t);
            }
        }
        for (_, members) in by_b {
            if members.len() >= 2 {
                out.push(members);
            }
        }
    }
    out
}

/// Count allocations per product for the naive layout vs. the CSR
/// scratch-reusing `product_in` on identical operands.
fn product_allocation_comparison(out: &mut String) {
    // Realistic operands: 50k tuples, a few hundred groups each — the
    // shape of a mid-lattice level on XMark SF=1.
    const N: usize = 50_000;
    const REPS: u64 = 200;
    let col = |m: u64, k: u64| -> Vec<Option<u64>> {
        (0..N as u64)
            .map(|t| Some(t.wrapping_mul(m).rotate_left(17) % k))
            .collect()
    };
    let pa = Partition::from_column(&col(2_654_435_761, 400));
    let pb = Partition::from_column(&col(1_000_003, 350));

    let mut scratch = ProductScratch::new();
    // Warm the scratch so steady-state reuse is measured, not first growth.
    let warm = pa.product_in(&pb, &mut scratch);
    drop(warm);

    let before = allocs();
    for _ in 0..REPS {
        let p = pa.product_in(&pb, &mut scratch);
        std::hint::black_box(&p);
    }
    let csr_per_product = (allocs() - before) as f64 / REPS as f64;

    let before = allocs();
    for _ in 0..REPS {
        let p = naive_product(&pa, &pb);
        std::hint::black_box(&p);
    }
    let naive_per_product = (allocs() - before) as f64 / REPS as f64;

    let reduction = naive_per_product / csr_per_product.max(1.0);
    let _ = write!(
        out,
        "  \"product_allocations\": {{\"tuples\": {N}, \"reps\": {REPS}, \
         \"naive_per_product\": {naive_per_product:.1}, \
         \"csr_scratch_per_product\": {csr_per_product:.1}, \
         \"reduction_factor\": {reduction:.1}}}"
    );
    eprintln!(
        "product hot path: naive {naive_per_product:.1} allocs/product, \
         CSR+scratch {csr_per_product:.1} allocs/product ({reduction:.1}x fewer)"
    );
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_partitions.json".to_string());

    let warehouse = warehouse_scaled(&WarehouseSpec {
        states: 6,
        stores_per_state: 4,
        books_per_store: 12,
        ..Default::default()
    });
    let xmark = xmark_like(&XmarkSpec::with_scale(1.0));
    // A wide single relation: the lattice dominates, which is the shape
    // the intra-relation level parallelism targets.
    let wide = wide_relation(&WideSpec {
        rows: 2_000,
        width: 14,
        domain: 6,
        derived_fraction: 0.25,
        seed: 7,
    });

    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    // On a single-core machine `parallel-auto` degenerates to the
    // sequential path, so `speedup_parallel` hovers around 1.0 there;
    // record the core count so the numbers are interpretable.
    let mut json = format!("{{\n  \"available_parallelism\": {cores},\n  \"datasets\": [\n");
    sweep("warehouse", &warehouse, 1 << 20, &mut json);
    json.push_str(",\n");
    sweep("xmark-sf1", &xmark, 1 << 20, &mut json);
    json.push_str(",\n");
    // The wide working set peaks at ~21 MB; an 8 MiB budget shows real
    // eviction pressure without the pathological thrash of tiny budgets.
    sweep("wide-14x2k", &wide, 8 << 20, &mut json);
    json.push_str("\n  ],\n");
    product_allocation_comparison(&mut json);
    json.push_str("\n}\n");

    std::fs::write(&out_path, &json).expect("write benchmark JSON");
    eprintln!("wrote {out_path}");
}
