//! Regenerate every table and figure of the (reconstructed) evaluation.
//!
//! ```sh
//! cargo run -p xfd-bench --release --bin experiments           # everything
//! cargo run -p xfd-bench --release --bin experiments -- fig1   # one id
//! ```

fn main() {
    let filter = std::env::args().nth(1);
    let sections = xfd_bench::run_all(filter.as_deref());
    if sections.is_empty() {
        eprintln!("no experiment matches {filter:?} (ids: table1 table2 fig1..fig7)");
        std::process::exit(1);
    }
    for s in sections {
        println!("{}", s.render());
    }
}
