//! Cluster-mode benchmark (`scripts/bench_quick.sh`; `--smoke` for CI).
//!
//! Builds a 16-document corpus spread over 8 distinct schema categories
//! and runs a cold corpus discovery four times: once in-process (the
//! parity baseline) and once each over 1, 2 and 4 worker subprocesses.
//! Every cluster run gets a fresh corpus so segment caches and the
//! relation memo start empty — the measurement is the distributed
//! encode + pass phases, not cache replay. All four reports must agree
//! byte-for-byte on everything before the wall-clock tail, every worker
//! must survive the run, and the 4-worker cold time must beat the
//! 1-worker cold time (asserted when the host has >= 4 cores). Timings
//! and per-run task counters land in `BENCH_cluster.json` (or the path
//! given as the first argument).
//!
//! The intra-pass thread count is pinned to 1 so process-level fan-out
//! is the only parallelism under test.
//!
//! ```sh
//! cargo run --release -p xfd-bench --bin bench_cluster [-- out.json [--smoke]]
//! ```

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use discoverxfd::report::render_json;
use discoverxfd::DiscoveryConfig;
use xfd_cluster::{cluster_discover, ClusterOptions, ClusterStats, PushMode, WorkerPool};
use xfd_corpus::{CorpusHandle, CorpusStore};
use xfd_xml::{parse_reader, DataTree};

fn parse_str(xml: &str) -> Result<DataTree, xfd_xml::ReadError> {
    parse_reader(xml.as_bytes())
}

const CATEGORIES: usize = 8;
const DOCS_PER_CATEGORY: usize = 2;

fn rows_per_doc(smoke: bool) -> usize {
    if smoke {
        500
    } else {
        3000
    }
}

/// Distinct prime moduli (see bench_corpus): no column pair is a key, so
/// every relation's lattice search runs to level 3+ on a 16-wide schema.
/// That per-relation cost is what the worker pool distributes.
const MODULI: [usize; 16] = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53];

/// One document of schema category `cat`. Per-category element names keep
/// the merged corpus's relation sets disjoint, so pass tasks spread
/// evenly over the workers instead of collapsing into one relation.
fn synthetic_doc(cat: usize, doc: usize, smoke: bool) -> String {
    let rows = rows_per_doc(smoke);
    let mut xml = format!("<cat{cat}_data>");
    for i in 0..rows {
        let row = doc * rows + i;
        let _ = write!(xml, "<rec{cat}>");
        for (col, modulus) in MODULI.iter().enumerate() {
            let _ = write!(xml, "<f{col}x{cat}>{}</f{col}x{cat}>", row % modulus);
        }
        let _ = write!(xml, "</rec{cat}>");
    }
    let _ = write!(xml, "</cat{cat}_data>");
    xml
}

/// Resolve the worker command from the binaries sitting next to this
/// benchmark in the target directory: the cluster crate's dedicated
/// worker binary if present, otherwise the full CLI's `worker`
/// subcommand.
fn worker_command() -> Vec<String> {
    let exe = std::env::current_exe().expect("current_exe");
    let dir = exe.parent().expect("target dir").to_path_buf();
    let dedicated = dir.join("xfd-cluster-worker");
    if dedicated.is_file() {
        return vec![dedicated.to_string_lossy().into_owned()];
    }
    let cli = dir.join("discoverxfd");
    if cli.is_file() {
        return vec![cli.to_string_lossy().into_owned(), "worker".into()];
    }
    panic!(
        "no worker binary found in {}; build the workspace first \
         (cargo build --release)",
        dir.display()
    );
}

/// Everything before the wall-clock / memo-counter tail of the stats
/// object. FDs, keys, redundancies and lattice work counters remain.
fn stable(report: &str) -> &str {
    report.split("\"total_ms\"").next().unwrap_or(report)
}

struct Measured {
    workers: usize,
    ms: f64,
    report: String,
    stats: ClusterStats,
}

/// Intra-pass threading pinned to 1: process fan-out is the only
/// parallelism under test.
fn bench_config() -> DiscoveryConfig {
    DiscoveryConfig {
        parallel: false,
        threads: 1,
        ..DiscoveryConfig::default()
    }
}

/// Seed a fresh corpus under `tag` with the full synthetic document set.
fn seed(store: &CorpusStore, tag: &str, smoke: bool) -> CorpusHandle {
    let mut handle = store.create(tag).expect("create corpus");
    for doc in 0..DOCS_PER_CATEGORY {
        for cat in 0..CATEGORIES {
            let tree = parse_str(&synthetic_doc(cat, doc, smoke)).expect("parse synthetic doc");
            handle
                .add_doc(&format!("cat{cat}-doc{doc}"), &tree)
                .expect("add doc");
        }
    }
    handle
}

/// Seed a fresh corpus under `tag` and run one cold discovery over
/// `workers` subprocesses (0 = plain in-process discovery).
fn measure(store: &CorpusStore, tag: &str, workers: usize, smoke: bool) -> Measured {
    measure_with(store, tag, workers, smoke, PushMode::Auto)
}

/// Like [`measure`], with the forest-distribution strategy pinned.
fn measure_with(
    store: &CorpusStore,
    tag: &str,
    workers: usize,
    smoke: bool,
    push_mode: PushMode,
) -> Measured {
    let config = bench_config();
    let mut handle = seed(store, tag, smoke);

    let opts = ClusterOptions {
        workers,
        worker_command: worker_command(),
        push_mode,
        ..ClusterOptions::default()
    };
    let t0 = Instant::now();
    let (outcome, stats) = cluster_discover(&mut handle, &config, &opts).expect("cluster discover");
    let ms = t0.elapsed().as_secs_f64() * 1e3;

    if workers > 0 {
        assert_eq!(
            stats.workers_lost, 0,
            "no worker may die during a clean benchmark run"
        );
        assert_eq!(
            stats.workers_live as usize, workers,
            "all workers must survive"
        );
        assert!(stats.pass_remote > 0, "workers must run relation passes");
    }
    eprintln!("workers={workers}: cold {ms:.1} ms ({})", stats.summary());
    Measured {
        workers,
        ms,
        report: render_json(&outcome),
        stats,
    }
}

fn main() {
    let mut out_path = String::from("BENCH_cluster.json");
    let mut smoke = false;
    for arg in std::env::args().skip(1) {
        if arg == "--smoke" {
            smoke = true;
        } else {
            out_path = arg;
        }
    }
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    let root = std::env::temp_dir().join(format!("xfd-bench-cluster-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let store = CorpusStore::new(&root);
    let docs = CATEGORIES * DOCS_PER_CATEGORY;
    eprintln!(
        "corpus: {docs} docs, {CATEGORIES} categories, {} rows/doc, {cores} core(s){}",
        rows_per_doc(smoke),
        if smoke { ", smoke scale" } else { "" }
    );

    // Priming pass, untimed: the timed runs below pay no first-touch
    // costs (allocator growth, page faults, binary load).
    let _ = measure(&store, "bench-prime", 0, smoke);

    let baseline = measure(&store, "bench-local", 0, smoke);
    let runs: Vec<Measured> = [1usize, 2, 4]
        .iter()
        .map(|&w| measure(&store, &format!("bench-w{w}"), w, smoke))
        .collect();

    for run in &runs {
        if stable(&run.report) != stable(&baseline.report) {
            let _ = std::fs::write("/tmp/bench_cluster_local.json", &baseline.report);
            let _ = std::fs::write("/tmp/bench_cluster_remote.json", &run.report);
            panic!(
                "{}-worker report must be byte-identical to the in-process run",
                run.workers
            );
        }
    }

    let one = runs.first().expect("1-worker run");
    let four = runs.get(2).expect("4-worker run");
    let speedup = one.ms / four.ms;
    eprintln!("4-worker vs 1-worker cold: {speedup:.2}x on {cores} core(s)");
    // A real distributed win needs actual hardware parallelism; on a
    // starved host the 4-worker run is measured and recorded but only
    // required not to regress badly.
    if cores >= 4 {
        assert!(
            speedup > 1.0,
            "4-worker cold discovery must beat 1-worker on {cores} cores \
             (got {speedup:.2}x)"
        );
    }

    // Push economy: the same cold 2-worker run with each forest
    // distribution strategy pinned. Auto ships the merged forest once
    // when a worker misses more than half the distinct partials
    // (missing/distinct > 0.5) and pushes per-partial otherwise; both
    // pinned paths must agree with the baseline byte for byte.
    let push_partials = measure_with(&store, "bench-push-partials", 2, smoke, PushMode::Partials);
    let push_forest = measure_with(&store, "bench-push-forest", 2, smoke, PushMode::Forest);
    for run in [&push_partials, &push_forest] {
        assert_eq!(
            stable(&run.report),
            stable(&baseline.report),
            "pinned push-mode report must stay byte-identical"
        );
    }
    assert!(
        push_partials.stats.partials_pushed > 0 && push_partials.stats.forest_ships == 0,
        "partials mode must push partials only ({})",
        push_partials.stats.summary()
    );
    assert!(
        push_forest.stats.forest_ships > 0,
        "forest mode must ship the merged forest ({})",
        push_forest.stats.summary()
    );
    eprintln!(
        "push economy at 2 workers: partials {:.1} ms ({} pushed), forest {:.1} ms ({} ships)",
        push_partials.ms,
        push_partials.stats.partials_pushed,
        push_forest.ms,
        push_forest.stats.forest_ships
    );

    // Warm pool: the second serve-mode discovery against the same pool
    // skips worker spawn, handshake, and forest distribution entirely.
    let config = bench_config();
    let mut pool_handle = seed(&store, "bench-pool", smoke);
    let pool = WorkerPool::new(
        ClusterOptions {
            workers: 2,
            worker_command: worker_command(),
            ..ClusterOptions::default()
        },
        Duration::from_secs(600),
    );
    let t0 = Instant::now();
    let cold = pool
        .discover(&mut pool_handle, &config)
        .expect("pool cold discover");
    let pool_cold_ms = t0.elapsed().as_secs_f64() * 1e3;
    let t1 = Instant::now();
    let warm = pool
        .discover(&mut pool_handle, &config)
        .expect("pool warm discover");
    let pool_warm_ms = t1.elapsed().as_secs_f64() * 1e3;
    assert!(
        !cold.warm && warm.warm,
        "the second pooled discovery must hit the warm pool"
    );
    assert_eq!(
        stable(&render_json(&cold.outcome)),
        stable(&baseline.report),
        "cold pooled report must match the in-process run"
    );
    assert_eq!(
        stable(&render_json(&warm.outcome)),
        stable(&baseline.report),
        "warm pooled report must match the in-process run"
    );
    assert!(
        pool_warm_ms < pool_cold_ms,
        "a warm pool hit must beat the cold spawn (cold {pool_cold_ms:.1} ms, warm {pool_warm_ms:.1} ms)"
    );
    let pool_speedup = pool_cold_ms / pool_warm_ms;
    eprintln!("pool: cold {pool_cold_ms:.1} ms, warm {pool_warm_ms:.1} ms ({pool_speedup:.2}x)");
    pool.shutdown_all();

    let _ = std::fs::remove_dir_all(&root);

    let mut json = String::from("{\n  \"cluster\": {\n");
    let _ = write!(
        json,
        "    \"docs\": {docs},\n    \"categories\": {CATEGORIES},\n    \
         \"rows_per_doc\": {},\n    \"cores\": {cores},\n    \"smoke\": {smoke},\n    \
         \"single_process_ms\": {:.1},\n    \"speedup_4_over_1\": {speedup:.2},\n",
        rows_per_doc(smoke),
        baseline.ms,
    );
    for run in &runs {
        let s = &run.stats;
        // Multi-worker rows on a 1-core host time-slice one CPU; the
        // marker tells CI gates to skip their speedups.
        let constrained = if run.workers > 1 && cores == 1 {
            "\"constrained\": true, "
        } else {
            ""
        };
        let _ = writeln!(
            json,
            "    \"workers_{}\": {{{constrained}\"workers\": {}, \"cold_ms\": {:.1}, \
             \"encode_remote\": {}, \"pass_remote\": {}, \"retried\": {}, \
             \"fallback\": {}}},",
            run.workers,
            run.workers,
            run.ms,
            s.encode_remote,
            s.pass_remote,
            s.tasks_retried,
            s.tasks_fallback
        );
    }
    let _ = writeln!(
        json,
        "    \"push\": {{\"partials_ms\": {:.1}, \"partials_pushed\": {}, \"forest_ms\": {:.1}, \
         \"forest_ships\": {}, \"auto_crossover_missing_fraction\": 0.5}},",
        push_partials.ms,
        push_partials.stats.partials_pushed,
        push_forest.ms,
        push_forest.stats.forest_ships
    );
    let _ = writeln!(
        json,
        "    \"pool\": {{\"cold_ms\": {pool_cold_ms:.1}, \"warm_ms\": {pool_warm_ms:.1}, \
         \"speedup\": {pool_speedup:.2}, \"warm_hit\": true}},"
    );
    json.push_str("    \"workers_lost\": 0\n  }\n}\n");
    std::fs::write(&out_path, json).expect("write results");
    eprintln!("wrote {out_path}");
}
