//! Serving-mode benchmark (`scripts/bench_quick.sh`).
//!
//! Starts an in-process discovery daemon on an ephemeral port and drives
//! it with concurrent raw-TCP clients through two phases: a *cold* sweep
//! where every request carries a distinct configuration fingerprint (all
//! cache misses, every request runs the full pipeline) and a *warm* sweep
//! replaying one digest (all result-cache hits). Reports throughput and
//! p50/p99 latency per phase to `BENCH_server.json` (or the path given as
//! the first argument).
//!
//! ```sh
//! cargo run --release -p xfd-bench --bin bench_server [-- out.json]
//! ```

use std::fmt::Write as _;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use xfd_datagen::{warehouse_scaled, WarehouseSpec};
use xfd_server::{Server, ServerConfig};
use xfd_xml::to_xml_string;

struct Phase {
    label: &'static str,
    requests: usize,
    clients: usize,
    wall: Duration,
    latencies: Vec<Duration>,
    cache_hits: usize,
}

fn percentile(sorted: &[Duration], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx].as_secs_f64() * 1e3
}

fn one_request(addr: SocketAddr, path: &str, body: &str) -> (u16, bool) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(
            format!(
                "POST {path} HTTP/1.1\r\nHost: bench\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            )
            .as_bytes(),
        )
        .expect("write");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read");
    let status: u16 = response
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status");
    (status, response.contains("X-Cache: hit"))
}

/// Fire `requests` POSTs from `clients` threads; `path_of(i)` varies the
/// query string per request (distinct digests for the cold phase).
fn run_phase(
    label: &'static str,
    addr: SocketAddr,
    body: &str,
    requests: usize,
    clients: usize,
    path_of: impl Fn(usize) -> String + Send + Sync,
) -> Phase {
    let started = Instant::now();
    let mut all_latencies = Vec::with_capacity(requests);
    let mut cache_hits = 0usize;
    std::thread::scope(|scope| {
        let path_of = &path_of;
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                scope.spawn(move || {
                    let mut latencies = Vec::new();
                    let mut hits = 0usize;
                    let mut i = c;
                    while i < requests {
                        let path = path_of(i);
                        let t0 = Instant::now();
                        let (status, hit) = one_request(addr, &path, body);
                        assert_eq!(status, 200, "request {i} failed");
                        latencies.push(t0.elapsed());
                        hits += hit as usize;
                        i += clients;
                    }
                    (latencies, hits)
                })
            })
            .collect();
        for h in handles {
            let (latencies, hits) = h.join().expect("client thread");
            all_latencies.extend(latencies);
            cache_hits += hits;
        }
    });
    let wall = started.elapsed();
    all_latencies.sort_unstable();
    Phase {
        label,
        requests,
        clients,
        wall,
        latencies: all_latencies,
        cache_hits,
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_server.json".into());

    let spec = WarehouseSpec {
        states: 6,
        stores_per_state: 3,
        books_per_store: 12,
        ..Default::default()
    };
    let body = to_xml_string(&warehouse_scaled(&spec));
    eprintln!("document: {} bytes", body.len());

    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".into(),
        queue_depth: 256,
        ..ServerConfig::default()
    })
    .expect("bind");
    let addr = server.local_addr().expect("addr");
    let handle = server.handle();
    let server_thread = std::thread::spawn(move || server.run());

    // Cold: each request a unique config fingerprint → full pipeline runs.
    let cold = run_phase("cold", addr, &body, 64, 8, |i| {
        format!("/v1/discover?cache-budget={}", 100_000_000 + i)
    });
    // Warm: one fixed digest; first request populated it during the warmup
    // below, so every timed request is a cache hit.
    let (status, _) = one_request(addr, "/v1/discover", &body);
    assert_eq!(status, 200);
    let warm = run_phase("warm", addr, &body, 256, 8, |_| "/v1/discover".into());

    handle.shutdown();
    server_thread.join().expect("join").expect("run");

    assert_eq!(cold.cache_hits, 0, "cold phase must not hit the cache");
    assert_eq!(
        warm.cache_hits, warm.requests,
        "warm phase must be all cache hits"
    );

    let mut json = String::from("{\n  \"server\": {\n");
    for (i, phase) in [&cold, &warm].into_iter().enumerate() {
        if i > 0 {
            json.push_str(",\n");
        }
        let rps = phase.requests as f64 / phase.wall.as_secs_f64();
        let _ = write!(
            json,
            "    \"{}\": {{\"requests\": {}, \"clients\": {}, \"wall_ms\": {:.1}, \"rps\": {:.1}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \"cache_hits\": {}}}",
            phase.label,
            phase.requests,
            phase.clients,
            phase.wall.as_secs_f64() * 1e3,
            rps,
            percentile(&phase.latencies, 0.50),
            percentile(&phase.latencies, 0.99),
            phase.cache_hits,
        );
        eprintln!(
            "{}: {} requests, {:.1} req/s, p50 {:.3} ms, p99 {:.3} ms",
            phase.label,
            phase.requests,
            rps,
            percentile(&phase.latencies, 0.50),
            percentile(&phase.latencies, 0.99),
        );
    }
    json.push_str("\n  }\n}\n");
    std::fs::write(&out_path, json).expect("write results");
    eprintln!("wrote {out_path}");
}
