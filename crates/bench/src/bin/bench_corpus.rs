//! Corpus-store benchmark (`scripts/bench_quick.sh`).
//!
//! Builds a 32-document corpus spread over 8 distinct schema categories,
//! warms the per-relation memo with one discovery pass, then measures the
//! cost of ingesting one more document two ways: *incremental* (the corpus
//! handle replays memoised relations whose partitions are unchanged) and
//! *full* (a from-scratch `discover_collection` over all 33 trees). The two
//! reports must be byte-identical modulo the `total_ms` stat, and the
//! incremental path must be at least 3x faster. Results go to
//! `BENCH_corpus.json` (or the path given as the first argument).
//!
//! ```sh
//! cargo run --release -p xfd-bench --bin bench_corpus [-- out.json]
//! ```

use std::fmt::Write as _;
use std::time::Instant;

use discoverxfd::report::render_json;
use discoverxfd::{discover_collection, DiscoveryConfig};
use xfd_corpus::CorpusStore;
use xfd_xml::{parse_reader, DataTree};

fn parse_str(xml: &str) -> Result<DataTree, xfd_xml::ReadError> {
    parse_reader(xml.as_bytes())
}

const CATEGORIES: usize = 8;
const DOCS_PER_CATEGORY: usize = 4;
/// Category 0 — the one the incremental phase touches — stays small; the
/// other seven carry the bulk of the lattice work. That is the workload
/// incremental discovery exists for: a small update must not pay for the
/// large unchanged relations.
fn rows_per_doc(cat: usize) -> usize {
    if cat == 0 {
        250
    } else {
        4000
    }
}

/// Distinct prime moduli: no column set is a key (or yields an FD) until
/// the residues jointly distinguish every row, which by CRT needs the
/// modulus product to exceed the relation's row count. With 2600+ rows per
/// relation no column *pair* is a key, so the lattice search runs to level
/// 3–5 on a 16-wide schema — the combinatorial work that makes per-relation
/// memoisation worth measuring, since merge/infer/encode stay linear.
const MODULI: [usize; 16] = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53];

/// One document of schema category `cat`. Every category gets its own
/// element names so the merged corpus holds disjoint relation sets — the
/// shape where incremental discovery pays off.
fn synthetic_doc(cat: usize, doc: usize) -> String {
    let rows = rows_per_doc(cat);
    let mut xml = format!("<cat{cat}_data>");
    for i in 0..rows {
        let row = doc * rows + i;
        let _ = write!(xml, "<rec{cat}>");
        for (col, modulus) in MODULI.iter().enumerate() {
            let _ = write!(xml, "<f{col}x{cat}>{}</f{col}x{cat}>", row % modulus);
        }
        let _ = write!(xml, "</rec{cat}>");
    }
    let _ = write!(xml, "</cat{cat}_data>");
    xml
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_corpus.json".into());
    let config = DiscoveryConfig::default();

    let root = std::env::temp_dir().join(format!("xfd-bench-corpus-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let store = CorpusStore::new(&root);
    let mut handle = store.create("bench").expect("create corpus");

    let mut trees: Vec<DataTree> = Vec::new();
    for doc in 0..DOCS_PER_CATEGORY {
        for cat in 0..CATEGORIES {
            let tree = parse_str(&synthetic_doc(cat, doc)).expect("parse synthetic doc");
            handle
                .add_doc(&format!("cat{cat}-doc{doc}"), &tree)
                .expect("add doc");
            trees.push(tree);
        }
    }
    eprintln!(
        "corpus: {} docs, {} categories, {} rows/doc ({} for the hot category)",
        handle.len(),
        CATEGORIES,
        rows_per_doc(1),
        rows_per_doc(0)
    );

    // Warm pass: populates the per-relation memo for all 32 documents.
    let t0 = Instant::now();
    handle.discover(&config);
    let warm_ms = t0.elapsed().as_secs_f64() * 1e3;
    eprintln!("warm-up discovery: {warm_ms:.1} ms");

    // Ingest one more category-0 document; only category 0's relations
    // change, the other 7 categories replay from the memo.
    let extra = parse_str(&synthetic_doc(0, DOCS_PER_CATEGORY)).expect("parse extra doc");
    handle.add_doc("cat0-extra", &extra).expect("add extra doc");
    trees.push(extra);

    let t0 = Instant::now();
    let incremental = handle.discover(&config);
    let incremental_ms = t0.elapsed().as_secs_f64() * 1e3;
    let p = &incremental.profile;
    eprintln!(
        "incremental phases: infer {:.1} ms, encode {:.1} ms, discover {:.1} ms, redundancy {:.1} ms",
        p.infer.as_secs_f64() * 1e3,
        p.encode.as_secs_f64() * 1e3,
        p.discover.as_secs_f64() * 1e3,
        p.redundancy.as_secs_f64() * 1e3
    );

    let refs: Vec<&DataTree> = trees.iter().collect();
    let t0 = Instant::now();
    let full = discover_collection(&refs, &config);
    let full_ms = t0.elapsed().as_secs_f64() * 1e3;

    // Byte-identity modulo the one volatile stat.
    let normalize = |report: &str| -> String {
        let Some(start) = report.find("\"total_ms\": ") else {
            return report.to_string();
        };
        let value_start = start + "\"total_ms\": ".len();
        let value_len = report[value_start..]
            .find(|c: char| !c.is_ascii_digit() && c != '.')
            .unwrap_or(0);
        format!(
            "{}X{}",
            &report[..value_start],
            &report[value_start + value_len..]
        )
    };
    let inc_report = render_json(&incremental);
    let full_report = render_json(&full);
    if normalize(&inc_report) != normalize(&full_report) {
        let _ = std::fs::write("/tmp/bench_corpus_incremental.json", &inc_report);
        let _ = std::fs::write("/tmp/bench_corpus_full.json", &full_report);
        panic!("incremental report must be byte-identical to a from-scratch run");
    }

    let speedup = full_ms / incremental_ms;
    eprintln!("full recompute:       {full_ms:.1} ms");
    eprintln!("incremental discover: {incremental_ms:.1} ms ({speedup:.1}x faster)");
    assert!(
        speedup >= 3.0,
        "incremental discovery must be at least 3x faster than full \
         recompute (got {speedup:.2}x)"
    );

    let docs = handle.len();
    let _ = std::fs::remove_dir_all(&root);

    let mut json = String::from("{\n  \"corpus\": {\n");
    let _ = write!(
        json,
        "    \"docs\": {docs},\n    \"categories\": {CATEGORIES},\n    \
         \"rows_per_doc\": {},\n    \"hot_rows_per_doc\": {},\n    \"warm_ms\": {warm_ms:.1},\n    \
         \"full_ms\": {full_ms:.1},\n    \"incremental_ms\": {incremental_ms:.1},\n    \
         \"speedup\": {speedup:.2}\n",
        rows_per_doc(1),
        rows_per_doc(0)
    );
    json.push_str("  }\n}\n");
    std::fs::write(&out_path, json).expect("write results");
    eprintln!("wrote {out_path}");
}
