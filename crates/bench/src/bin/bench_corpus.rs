//! Corpus-store benchmark (`scripts/bench_quick.sh`; `--smoke` for CI).
//!
//! Builds a 32-document corpus spread over 8 distinct schema categories
//! and measures the sharded pipeline twice — serial (1 thread) and
//! pooled (8 threads) — each time as a cold pass (segment caches and the
//! relation memo empty) followed by an incremental pass after one more
//! small document lands: unchanged segments keep their cached summaries
//! and partial relations, and unchanged relation passes replay from the
//! memo. A from-scratch `discover_collection` over all 33 trees is the
//! baseline. All reports must agree byte-for-byte on the discovered
//! FDs/keys/redundancies, the incremental path must beat the full
//! recompute by at least 3x, and per-phase (merge / infer / encode /
//! passes) timings land in `BENCH_corpus.json` (or the path given as the
//! first argument).
//!
//! An untimed priming pass runs first so no timed measurement pays
//! first-touch costs (allocator growth, page faults) — previously the
//! cold corpus pass ran first and absorbed them all, making it look
//! slower than the full recompute it subsumes.
//!
//! ```sh
//! cargo run --release -p xfd-bench --bin bench_corpus [-- out.json [--smoke]]
//! ```

use std::fmt::Write as _;
use std::time::Instant;

use discoverxfd::report::render_json;
use discoverxfd::{discover_collection, DiscoveryConfig, RunOutcome};
use xfd_corpus::CorpusStore;
use xfd_xml::{parse_reader, DataTree};

fn parse_str(xml: &str) -> Result<DataTree, xfd_xml::ReadError> {
    parse_reader(xml.as_bytes())
}

const CATEGORIES: usize = 8;
const DOCS_PER_CATEGORY: usize = 4;

/// Category 0 — the one the incremental phase touches — stays small; the
/// other seven carry the bulk of the lattice work. That is the workload
/// incremental discovery exists for: a small update must not pay for the
/// large unchanged relations.
fn rows_per_doc(cat: usize, smoke: bool) -> usize {
    match (cat, smoke) {
        (0, false) => 250,
        (_, false) => 4000,
        (0, true) => 100,
        (_, true) => 800,
    }
}

/// Distinct prime moduli: no column set is a key (or yields an FD) until
/// the residues jointly distinguish every row, which by CRT needs the
/// modulus product to exceed the relation's row count. Even at smoke
/// scale (3200 rows per relation) no column *pair* is a key (largest
/// pair product 43 * 53 = 2279), so the lattice search runs to level 3+
/// on a 16-wide schema — the combinatorial work that makes per-relation
/// memoisation worth measuring, since merge/infer/encode stay linear.
const MODULI: [usize; 16] = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53];

/// One document of schema category `cat`. Every category gets its own
/// element names so the merged corpus holds disjoint relation sets — the
/// shape where incremental discovery pays off.
fn synthetic_doc(cat: usize, doc: usize, smoke: bool) -> String {
    let rows = rows_per_doc(cat, smoke);
    let mut xml = format!("<cat{cat}_data>");
    for i in 0..rows {
        let row = doc * rows + i;
        let _ = write!(xml, "<rec{cat}>");
        for (col, modulus) in MODULI.iter().enumerate() {
            let _ = write!(xml, "<f{col}x{cat}>{}</f{col}x{cat}>", row % modulus);
        }
        let _ = write!(xml, "</rec{cat}>");
    }
    let _ = write!(xml, "</cat{cat}_data>");
    xml
}

fn config_for(threads: usize) -> DiscoveryConfig {
    DiscoveryConfig {
        parallel: threads > 1,
        threads,
        ..DiscoveryConfig::default()
    }
}

/// Everything before the wall-clock / memo-counter tail of the stats
/// object. FDs, keys, redundancies and lattice work counters remain.
fn stable(report: &str) -> &str {
    report.split("\"total_ms\"").next().unwrap_or(report)
}

/// The report body only — schema, FDs, keys, redundancies — for
/// comparisons across thread counts, where partition-cache work counters
/// legitimately differ.
fn body(report: &str) -> &str {
    report.split("\"stats\"").next().unwrap_or(report)
}

fn phases_json(outcome: &RunOutcome) -> String {
    let p = &outcome.profile;
    let ms = |d: std::time::Duration| d.as_secs_f64() * 1e3;
    format!(
        "{{\"merge_ms\": {:.1}, \"infer_ms\": {:.1}, \"encode_ms\": {:.1}, \
         \"passes_ms\": {:.1}, \"redundancy_ms\": {:.1}}}",
        ms(p.merge),
        ms(p.infer),
        ms(p.encode),
        ms(p.discover),
        ms(p.redundancy)
    )
}

struct Measured {
    threads: usize,
    cold_ms: f64,
    incremental_ms: f64,
    cold: RunOutcome,
    incremental: RunOutcome,
}

/// Cold + incremental corpus discovery at `threads`: 32 documents in, one
/// timed cold pass, one more category-0 document, one timed incremental
/// pass.
fn measure(store: &CorpusStore, tag: &str, threads: usize, smoke: bool) -> Measured {
    let config = config_for(threads);
    let mut handle = store.create(tag).expect("create corpus");
    for doc in 0..DOCS_PER_CATEGORY {
        for cat in 0..CATEGORIES {
            let tree = parse_str(&synthetic_doc(cat, doc, smoke)).expect("parse synthetic doc");
            handle
                .add_doc(&format!("cat{cat}-doc{doc}"), &tree)
                .expect("add doc");
        }
    }

    let t0 = Instant::now();
    let cold = handle.discover(&config);
    let cold_ms = t0.elapsed().as_secs_f64() * 1e3;

    // Ingest one more category-0 document; only category 0's relations
    // change, the other 7 categories replay from the memo and keep their
    // cached partial relations.
    let extra = parse_str(&synthetic_doc(0, DOCS_PER_CATEGORY, smoke)).expect("parse extra doc");
    handle.add_doc("cat0-extra", &extra).expect("add extra doc");

    let t0 = Instant::now();
    let incremental = handle.discover(&config);
    let incremental_ms = t0.elapsed().as_secs_f64() * 1e3;

    let status = handle.status();
    assert!(
        status.memo_hits > 0,
        "incremental pass must replay memoised relation passes"
    );
    eprintln!(
        "threads={threads}: cold {cold_ms:.1} ms, incremental {incremental_ms:.1} ms \
         (memo: {} hits / {} misses)",
        status.memo_hits, status.memo_misses
    );
    eprintln!("  incremental phases: {}", phases_json(&incremental));
    Measured {
        threads,
        cold_ms,
        incremental_ms,
        cold,
        incremental,
    }
}

fn main() {
    let mut out_path = String::from("BENCH_corpus.json");
    let mut smoke = false;
    for arg in std::env::args().skip(1) {
        if arg == "--smoke" {
            smoke = true;
        } else {
            out_path = arg;
        }
    }
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    let root = std::env::temp_dir().join(format!("xfd-bench-corpus-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let store = CorpusStore::new(&root);

    let mut trees: Vec<DataTree> = Vec::new();
    for doc in 0..=DOCS_PER_CATEGORY {
        for cat in 0..CATEGORIES {
            if doc == DOCS_PER_CATEGORY && cat > 0 {
                continue; // the incremental pass only adds one more cat-0 doc
            }
            trees.push(parse_str(&synthetic_doc(cat, doc, smoke)).expect("parse synthetic doc"));
        }
    }
    let refs33: Vec<&DataTree> = trees.iter().collect();
    let refs32: Vec<&DataTree> = refs33
        .iter()
        .copied()
        .take(CATEGORIES * DOCS_PER_CATEGORY)
        .collect();
    eprintln!(
        "corpus: {} docs, {CATEGORIES} categories, {} rows/doc ({} for the hot category), \
         {cores} core(s){}",
        refs33.len(),
        rows_per_doc(1, smoke),
        rows_per_doc(0, smoke),
        if smoke { ", smoke scale" } else { "" }
    );

    // Priming pass, untimed: every timed measurement below runs against a
    // warmed allocator and page cache.
    let serial = config_for(1);
    let _ = discover_collection(&refs32, &serial);

    let ser = measure(&store, "bench-serial", 1, smoke);
    let par = measure(&store, "bench-parallel", 8, smoke);

    // From-scratch baseline over all 33 trees.
    let t0 = Instant::now();
    let full = discover_collection(&refs33, &serial);
    let full_ms = t0.elapsed().as_secs_f64() * 1e3;
    eprintln!("full recompute: {full_ms:.1} ms");

    // Byte-identity: the serial incremental report matches the
    // from-scratch run on everything before the wall-clock/memo tail
    // (work counters included); the parallel runs match on the report
    // body, since partition-cache counters vary with the intra-pass
    // thread count.
    let full_report = render_json(&full);
    let ser_report = render_json(&ser.incremental);
    let par_report = render_json(&par.incremental);
    if stable(&ser_report) != stable(&full_report) {
        let _ = std::fs::write("/tmp/bench_corpus_incremental.json", &ser_report);
        let _ = std::fs::write("/tmp/bench_corpus_full.json", &full_report);
        panic!("incremental report must be byte-identical to a from-scratch run");
    }
    assert_eq!(
        body(&par_report),
        body(&ser_report),
        "parallel incremental report body diverged from serial"
    );
    assert_eq!(
        body(&render_json(&par.cold)),
        body(&render_json(&ser.cold)),
        "parallel cold report body diverged from serial"
    );

    let speedup = full_ms / ser.incremental_ms;
    eprintln!("incremental speedup over full recompute: {speedup:.1}x");
    assert!(
        speedup >= 3.0,
        "incremental discovery must be at least 3x faster than full \
         recompute (got {speedup:.2}x)"
    );
    let parallel_speedup = ser.incremental_ms / par.incremental_ms;
    eprintln!(
        "parallel incremental vs serial incremental: {parallel_speedup:.2}x on {cores} core(s)"
    );
    // Wall-clock parallel speedup needs actual hardware parallelism; on a
    // single-core host the pooled run is measured and recorded but only
    // required not to regress badly.
    if cores >= 8 {
        assert!(
            parallel_speedup >= 2.0,
            "8-thread incremental discovery must be at least 2x faster than \
             serial on {cores} cores (got {parallel_speedup:.2}x)"
        );
    }

    let docs = refs33.len();
    let _ = std::fs::remove_dir_all(&root);

    let mut json = String::from("{\n  \"corpus\": {\n");
    let _ = write!(
        json,
        "    \"docs\": {docs},\n    \"categories\": {CATEGORIES},\n    \
         \"rows_per_doc\": {},\n    \"hot_rows_per_doc\": {},\n    \
         \"cores\": {cores},\n    \"smoke\": {smoke},\n    \
         \"full_ms\": {full_ms:.1},\n    \
         \"speedup\": {speedup:.2},\n    \"parallel_speedup\": {parallel_speedup:.2},\n",
        rows_per_doc(1, smoke),
        rows_per_doc(0, smoke),
    );
    for m in [&ser, &par] {
        let label = if m.threads == 1 { "serial" } else { "parallel" };
        // A multi-thread row on a 1-core host measures overhead, not
        // parallelism; the marker tells CI gates to skip its speedup.
        let constrained = if m.threads > 1 && cores == 1 {
            "\"constrained\": true, "
        } else {
            ""
        };
        let _ = write!(
            json,
            "    \"{label}\": {{{constrained}\"threads\": {}, \"cold_ms\": {:.1}, \
             \"incremental_ms\": {:.1},\n      \"cold_phases\": {},\n      \
             \"incremental_phases\": {}}},\n",
            m.threads,
            m.cold_ms,
            m.incremental_ms,
            phases_json(&m.cold),
            phases_json(&m.incremental)
        );
    }
    // The pooled wave scheduler re-raises any worker panic, aborting the
    // bench — reaching this line proves the whole run saw none.
    json.push_str("    \"worker_panics\": 0\n  }\n}\n");
    std::fs::write(&out_path, json).expect("write results");
    eprintln!("wrote {out_path}");
}
