#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]
//! # xfd-bench
//!
//! The experiment harness: one function per table/figure of the
//! (reconstructed) evaluation — see DESIGN.md's per-experiment index.
//! `cargo run -p xfd-bench --release --bin experiments [-- <filter>]`
//! prints the rows; the Criterion benches in `benches/` time the same
//! sweeps with statistical rigor.

use std::time::{Duration, Instant};

use discoverxfd::baseline::{discover_flat, BaselineError, BaselineOptions};
use discoverxfd::config::PruneConfig;
use discoverxfd::{discover, DiscoveryConfig};
use xfd_datagen::{
    dblp_like, parallel_sets, standard_suite, warehouse_scaled, wide_relation, xmark_like,
    DblpSpec, ParallelSetSpec, WarehouseSpec, WideSpec, XmarkSpec,
};
use xfd_relation::{encode, flatten, EncodeConfig, SetColumnMode};
use xfd_schema::{infer_schema, SchemaMap};
use xfd_xml::DataTree;

/// A printable experiment section.
pub struct Section {
    /// Experiment id (e.g. "table1", "fig3").
    pub id: &'static str,
    /// Title line.
    pub title: &'static str,
    /// Column headers.
    pub header: Vec<&'static str>,
    /// Rows of rendered cells.
    pub rows: Vec<Vec<String>>,
    /// Commentary on the expected shape (the paper-claim being checked).
    pub note: &'static str,
}

impl Section {
    /// Render with aligned columns.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "== {} — {} ==", self.id, self.title);
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<w$}", c, w = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let headers: Vec<String> = self.header.iter().map(|s| s.to_string()).collect();
        let _ = writeln!(out, "{}", fmt_row(&headers));
        let _ = writeln!(
            out,
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
        );
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row));
        }
        let _ = writeln!(out, "note: {}", self.note);
        out
    }
}

fn ms(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e3)
}

/// Table 1: dataset characteristics.
pub fn table1() -> Section {
    let mut rows = Vec::new();
    for ds in standard_suite() {
        let stats = ds.tree.stats();
        let schema = infer_schema(&ds.tree);
        let map = SchemaMap::new(&schema);
        let forest = encode(&ds.tree, &schema, &EncodeConfig::default());
        let fstats = forest.stats();
        rows.push(vec![
            ds.name.to_string(),
            stats.nodes.to_string(),
            stats.max_depth.to_string(),
            map.len().to_string(),
            map.essential_pivots().len().to_string(),
            fstats.relations.to_string(),
            fstats.tuples.to_string(),
            fstats.columns.to_string(),
        ]);
    }
    Section {
        id: "table1",
        title: "dataset characteristics",
        header: vec![
            "dataset",
            "nodes",
            "depth",
            "schema elems",
            "set elems",
            "relations",
            "tuples",
            "columns",
        ],
        rows,
        note: "hierarchical relations stay narrow even for complex schemas (Sec 4.1)",
    }
}

/// Table 2: discovery results per dataset.
pub fn table2() -> Section {
    let mut rows = Vec::new();
    for ds in standard_suite() {
        let report = discover(&ds.tree, &DiscoveryConfig::default());
        let redundant: usize = report.redundancies.iter().map(|r| r.redundant_values).sum();
        rows.push(vec![
            ds.name.to_string(),
            report.fds.len().to_string(),
            report.keys.len().to_string(),
            report.redundancies.len().to_string(),
            redundant.to_string(),
            report.stats.lattice.nodes_visited.to_string(),
            ms(report.profile.total()),
        ]);
    }
    Section {
        id: "table2",
        title: "discovery results per dataset (DiscoverXFD, default config)",
        header: vec![
            "dataset",
            "FDs",
            "keys",
            "redundant FDs",
            "red. values",
            "nodes",
            "ms",
        ],
        rows,
        note: "real-life-shaped data carries discoverable redundancy; runtimes are interactive",
    }
}

/// Table 3: per-relation breakdown on the XMark-like document — where the
/// lattice work actually happens.
pub fn table3() -> Section {
    use discoverxfd::intra::{discover_intra, IntraOptions};
    let tree = xmark_like(&XmarkSpec::with_scale(1.0));
    let schema = infer_schema(&tree);
    let forest = encode(&tree, &schema, &EncodeConfig::default());
    let mut rows = Vec::new();
    for rel in &forest.relations {
        if rel.n_tuples() <= 1 {
            continue;
        }
        let columns: Vec<&[Option<u64>]> = rel.columns.iter().map(|c| c.cells.as_slice()).collect();
        let t0 = Instant::now();
        let res = discover_intra(&columns, rel.n_tuples(), &IntraOptions::default());
        rows.push(vec![
            rel.name.clone(),
            rel.n_tuples().to_string(),
            rel.n_columns().to_string(),
            res.stats.nodes_visited.to_string(),
            res.fds.len().to_string(),
            res.keys.len().to_string(),
            ms(t0.elapsed()),
        ]);
    }
    Section {
        id: "table3",
        title: "per-relation lattice work (xmark-like, intra only)",
        header: vec!["relation", "tuples", "columns", "nodes", "FDs", "keys", "ms"],
        rows,
        note: "work concentrates in the widest relations (person, item); the hierarchical split keeps each lattice small — the structural advantage over the flat whole-schema lattice",
    }
}

/// Fig 1: scalability with data size — DiscoverXFD vs flat+TANE.
pub fn fig1() -> Section {
    let mut rows = Vec::new();
    let cfg = DiscoveryConfig {
        max_lhs_size: Some(3),
        ..Default::default()
    };
    let flat_opts = BaselineOptions {
        max_rows: 2_000_000,
        max_lhs: 3,
        empty_lhs: true,
    };
    for &books in &[4usize, 8, 16, 32, 64] {
        let tree = warehouse_scaled(&WarehouseSpec {
            states: 6,
            stores_per_state: 4,
            books_per_store: books,
            ..Default::default()
        });
        let (xfd_t, flat_t, flat_rows) = head_to_head(&tree, &cfg, &flat_opts);
        rows.push(vec![
            format!("warehouse books/store={books}"),
            tree.node_count().to_string(),
            ms(xfd_t),
            flat_t,
            flat_rows,
        ]);
    }
    for &scale in &[0.5f64, 1.0, 2.0] {
        let tree = xmark_like(&XmarkSpec::with_scale(scale));
        let (xfd_t, flat_t, flat_rows) = head_to_head(&tree, &cfg, &flat_opts);
        rows.push(vec![
            format!("xmark scale={scale}"),
            tree.node_count().to_string(),
            ms(xfd_t),
            flat_t,
            flat_rows,
        ]);
    }
    Section {
        id: "fig1",
        title: "runtime vs document size (max LHS 3): DiscoverXFD vs flat+TANE",
        header: vec!["workload", "nodes", "DiscoverXFD ms", "flat+TANE ms", "flat rows"],
        rows,
        note: "DiscoverXFD scales near-linearly; the flat baseline degrades with document size and is INFEASIBLE on xmark (parallel set elements multiply its rows past any cap)",
    }
}

fn head_to_head(
    tree: &DataTree,
    cfg: &DiscoveryConfig,
    flat_opts: &BaselineOptions,
) -> (Duration, String, String) {
    let t0 = Instant::now();
    let _ = discover(tree, cfg);
    let xfd_t = t0.elapsed();
    let schema = infer_schema(tree);
    let t1 = Instant::now();
    match discover_flat(tree, &schema, flat_opts) {
        Ok(res) => (xfd_t, ms(t1.elapsed()), res.rows.to_string()),
        Err(BaselineError::Flatten(_)) => (xfd_t, "DNF".into(), format!(">{}", flat_opts.max_rows)),
        Err(BaselineError::TooWide { columns }) => {
            (xfd_t, "DNF".into(), format!("{columns} cols > 128"))
        }
    }
}

/// Fig 2: scalability with schema complexity (attribute width).
pub fn fig2() -> Section {
    let mut rows = Vec::new();
    for &width in &[4usize, 6, 8, 10, 12, 14] {
        let tree = wide_relation(&WideSpec {
            rows: 300,
            width,
            ..Default::default()
        });
        let cfg = DiscoveryConfig::default();
        let t0 = Instant::now();
        let report = discover(&tree, &cfg);
        let xfd_t = t0.elapsed();
        let schema = infer_schema(&tree);
        let t1 = Instant::now();
        let flat = discover_flat(&tree, &schema, &BaselineOptions::default()).expect("feasible");
        let flat_t = t1.elapsed();
        rows.push(vec![
            width.to_string(),
            report.stats.lattice.nodes_visited.to_string(),
            ms(xfd_t),
            flat.stats.nodes_visited.to_string(),
            ms(flat_t),
        ]);
    }
    Section {
        id: "fig2",
        title: "runtime vs schema width (one set element, 300 tuples)",
        header: vec!["width", "XFD nodes", "XFD ms", "flat nodes", "flat ms"],
        rows,
        note: "both search an exponential lattice in relation width; the flat baseline additionally carries every OTHER schema element in the same lattice, so on real schemas (fig1) its width is the whole schema",
    }
}

/// Fig 3: runtime vs the max-LHS-size bound.
pub fn fig3() -> Section {
    let tree = xmark_like(&XmarkSpec::with_scale(1.0));
    let mut rows = Vec::new();
    for level in 1..=6usize {
        let cfg = DiscoveryConfig {
            max_lhs_size: Some(level),
            ..Default::default()
        };
        let t0 = Instant::now();
        let report = discover(&tree, &cfg);
        rows.push(vec![
            level.to_string(),
            report.stats.lattice.nodes_visited.to_string(),
            report.fds.len().to_string(),
            report.keys.len().to_string(),
            ms(t0.elapsed()),
        ]);
    }
    Section {
        id: "fig3",
        title: "runtime vs max LHS size (xmark scale 1)",
        header: vec!["max LHS", "nodes", "FDs", "keys", "ms"],
        rows,
        note: "cost grows with the level bound until key/FD pruning saturates the lattice",
    }
}

/// Fig 4: cost and payoff of set-element support.
pub fn fig4() -> Section {
    let mut rows = Vec::new();
    let datasets: Vec<(&str, DataTree)> = vec![
        ("dblp-like", dblp_like(&DblpSpec::default())),
        (
            "warehouse-scaled",
            warehouse_scaled(&WarehouseSpec {
                states: 6,
                stores_per_state: 4,
                books_per_store: 12,
                ..Default::default()
            }),
        ),
    ];
    for (name, tree) in datasets {
        for (mode, label) in [(SetColumnMode::All, "on"), (SetColumnMode::None, "off")] {
            let mut cfg = DiscoveryConfig::default();
            cfg.encode.set_columns = mode;
            let t0 = Instant::now();
            let report = discover(&tree, &cfg);
            rows.push(vec![
                name.to_string(),
                label.to_string(),
                report.fds.len().to_string(),
                report.redundancies.len().to_string(),
                ms(t0.elapsed()),
            ]);
        }
    }
    Section {
        id: "fig4",
        title: "set-element support on/off",
        header: vec!["dataset", "set columns", "FDs", "redundant FDs", "ms"],
        rows,
        note: "set-valued columns add modest cost and surface the Constraint-3/4 class of redundancies that prior notions miss entirely",
    }
}

/// Fig 5: representation blow-up — flat vs hierarchical size.
pub fn fig5() -> Section {
    let mut rows = Vec::new();
    for &parallel in &[1usize, 2, 3, 4, 5, 6] {
        let tree = parallel_sets(&ParallelSetSpec {
            records: 20,
            parallel,
            items_per_set: 3,
            seed: 5,
        });
        let schema = infer_schema(&tree);
        let forest = encode(&tree, &schema, &EncodeConfig::default());
        let h = forest.stats();
        let flat_cells = match flatten(&tree, &schema, 10_000_000) {
            Ok(f) => (f.n_rows().to_string(), f.n_cells().to_string()),
            Err(_) => ("DNF".into(), "DNF".into()),
        };
        rows.push(vec![
            parallel.to_string(),
            h.tuples.to_string(),
            h.cells.to_string(),
            flat_cells.0,
            flat_cells.1,
        ]);
    }
    Section {
        id: "fig5",
        title: "representation size vs parallel set elements (20 records × 3 items/set)",
        header: vec!["parallel sets", "hier tuples", "hier cells", "flat rows", "flat cells"],
        rows,
        note: "flat rows grow as items^parallel per record (Sec 4.1: 'the total number of tuples would double'); hierarchical size grows linearly",
    }
}

/// Fig 6: phase breakdown.
pub fn fig6() -> Section {
    let mut rows = Vec::new();
    for &scale in &[0.5f64, 1.0, 2.0, 4.0] {
        let tree = xmark_like(&XmarkSpec::with_scale(scale));
        let report = discover(&tree, &DiscoveryConfig::default());
        let t = report.profile;
        rows.push(vec![
            format!("{scale}"),
            tree.node_count().to_string(),
            ms(t.infer),
            ms(t.encode),
            ms(t.discover),
            ms(t.redundancy),
        ]);
    }
    Section {
        id: "fig6",
        title: "phase breakdown on xmark (ms)",
        header: vec!["scale", "nodes", "infer", "encode", "discover", "redundancy"],
        rows,
        note: "encoding is linear in document size; discovery dominates and is governed by relation widths, not document size alone",
    }
}

/// Fig 7: pruning-rule ablation.
pub fn fig7() -> Section {
    let tree = warehouse_scaled(&WarehouseSpec {
        states: 6,
        stores_per_state: 4,
        books_per_store: 12,
        ..Default::default()
    });
    let variants: Vec<(&str, PruneConfig)> = vec![
        ("all rules", PruneConfig::default()),
        (
            "no rule1",
            PruneConfig {
                rule1: false,
                ..Default::default()
            },
        ),
        (
            "no key prune",
            PruneConfig {
                key_prune: false,
                ..Default::default()
            },
        ),
        (
            "no pruning",
            PruneConfig {
                rule1: false,
                rule2: false,
                key_prune: false,
            },
        ),
    ];
    let mut rows = Vec::new();
    for (label, prune) in variants {
        let cfg = DiscoveryConfig {
            prune,
            ..Default::default()
        };
        let t0 = Instant::now();
        let report = discover(&tree, &cfg);
        rows.push(vec![
            label.to_string(),
            report.stats.lattice.nodes_visited.to_string(),
            report.stats.lattice.products.to_string(),
            report.fds.len().to_string(),
            ms(t0.elapsed()),
        ]);
    }
    Section {
        id: "fig7",
        title: "pruning ablation (warehouse-scaled)",
        header: vec!["variant", "nodes", "products", "FDs", "ms"],
        rows,
        note: "the Sec-4.2 rules cut lattice nodes and partition products substantially without changing the minimal FDs",
    }
}

/// Fig 8 (extension): sibling-order sensitivity — the Section 4.5
/// discussion the paper defers. With duplicates whose author *sequences*
/// differ but author *sets* agree, ordered mode loses the set FDs.
pub fn fig8() -> Section {
    use xfd_xml::OrderMode;
    let mut rows = Vec::new();
    for (shuffled, label) in [
        (false, "stable author order"),
        (true, "shuffled author order"),
    ] {
        let tree = dblp_like(&DblpSpec {
            shuffle_authors: shuffled,
            ..Default::default()
        });
        for (order, olabel) in [
            (OrderMode::Unordered, "unordered"),
            (OrderMode::Ordered, "ordered"),
        ] {
            let mut cfg = DiscoveryConfig::default();
            cfg.encode.order = order;
            let t0 = Instant::now();
            let report = discover(&tree, &cfg);
            let set_fds = report
                .fds
                .iter()
                .filter(|f| f.rhs.to_string() == "./author")
                .count();
            rows.push(vec![
                label.to_string(),
                olabel.to_string(),
                set_fds.to_string(),
                report.fds.len().to_string(),
                ms(t0.elapsed()),
            ]);
        }
    }
    Section {
        id: "fig8",
        title: "order sensitivity (dblp-like): set FDs found per order mode",
        header: vec!["data", "mode", "FDs with RHS ./author", "all FDs", "ms"],
        rows,
        note: "with reordered duplicates, list semantics loses every author-set dependency — the paper's rationale for choosing unordered sets (Sec 3.1 remark 4)",
    }
}

/// Fig 9 (extension): approximate discovery under injected noise.
pub fn fig9() -> Section {
    use discoverxfd::approximate::discover_approximate_forest;
    use xfd_relation::encode as encode_forest;
    let mut rows = Vec::new();
    for &noise in &[0.0f64, 0.02, 0.05, 0.10] {
        let tree = warehouse_scaled(&WarehouseSpec {
            states: 6,
            stores_per_state: 4,
            books_per_store: 12,
            title_noise: noise,
            ..Default::default()
        });
        let cfg = DiscoveryConfig::default();
        let exact = discover(&tree, &cfg);
        let exact_has = exact
            .fds
            .iter()
            .any(|f| f.to_string() == "{./ISBN} -> ./title w.r.t. C_book");
        let schema = infer_schema(&tree);
        let forest = encode_forest(&tree, &schema, &cfg.encode);
        let approx = discover_approximate_forest(&forest, &cfg, noise.max(0.001) * 2.0);
        let approx_entry = approx
            .iter()
            .find(|(f, _)| f.to_string() == "{./ISBN} -> ./title w.r.t. C_book");
        rows.push(vec![
            format!("{:.0}%", noise * 100.0),
            if exact_has { "yes" } else { "no" }.to_string(),
            match approx_entry {
                Some((_, err)) => format!("yes (g3={err:.3})"),
                None => "no".to_string(),
            },
        ]);
    }
    Section {
        id: "fig9",
        title: "approximate FDs under title noise (warehouse, ISBN→title)",
        header: vec!["noise", "exact finds it", "approximate finds it"],
        rows,
        note: "a single typo kills the exact FD; g3-approximate discovery (extension) recovers it with an error matching the injected noise rate",
    }
}

/// Fig 10 (extension): sample-then-validate on the widest relation of a
/// large warehouse — candidate generation on a sample, one-pass validation
/// on the full data.
pub fn fig10() -> Section {
    use discoverxfd::intra::{discover_intra, IntraOptions};
    use discoverxfd::sampling::{sampled_intra, SampleOptions};
    // A wide relation with many tuples: the regime where candidate
    // generation dominates and sampling pays.
    let tree = wide_relation(&WideSpec {
        rows: 20_000,
        width: 10,
        domain: 40,
        derived_fraction: 0.3,
        seed: 3,
    });
    let schema = infer_schema(&tree);
    let forest = encode(&tree, &schema, &EncodeConfig::default());
    let row_rel = forest
        .relations
        .iter()
        .find(|r| r.name == "row")
        .expect("row relation");
    let columns: Vec<&[Option<u64>]> = row_rel.columns.iter().map(|c| c.cells.as_slice()).collect();
    let n = row_rel.n_tuples();

    let mut rows = Vec::new();
    let t0 = Instant::now();
    let exact = discover_intra(&columns, n, &IntraOptions::default());
    rows.push(vec![
        "exact".to_string(),
        exact.fds.len().to_string(),
        "-".to_string(),
        "-".to_string(),
        ms(t0.elapsed()),
    ]);
    for stride in [2usize, 4, 8, 16] {
        let t1 = Instant::now();
        let res = sampled_intra(
            &columns,
            n,
            &SampleOptions {
                stride,
                ..Default::default()
            },
        );
        rows.push(vec![
            format!("sample 1/{stride}"),
            res.fds.len().to_string(),
            res.rejected.to_string(),
            res.repaired.to_string(),
            ms(t1.elapsed()),
        ]);
    }
    Section {
        id: "fig10",
        title: format!("sample-then-validate on a wide relation ({n} tuples)").leak(),
        header: vec!["variant", "validated FDs", "rejected", "repaired", "ms"],
        rows,
        note: "an honest negative ablation: with partition caching the exact lattice already wins at these scales — validation rebuilds full partitions per candidate, so sample-then-validate only pays on much wider/taller relations; results stay sound either way (every validated FD is exact)",
    }
}

/// Table 4 (extension): large-document stress — the full pipeline
/// (serialize → parse → infer → encode → discover → redundancy) on
/// XMark-like documents up to ~200k nodes.
pub fn table4() -> Section {
    use xfd_xml::{parse, to_xml_string};
    let mut rows = Vec::new();
    for &scale in &[8.0f64, 16.0, 32.0, 64.0] {
        let tree = xmark_like(&XmarkSpec::with_scale(scale));
        let xml = to_xml_string(&tree);
        let t0 = Instant::now();
        let reparsed = parse(&xml).expect("well-formed");
        let parse_t = t0.elapsed();
        let t1 = Instant::now();
        let report = discover(
            &reparsed,
            &DiscoveryConfig {
                max_lhs_size: Some(3),
                ..Default::default()
            },
        );
        let discover_t = t1.elapsed();
        rows.push(vec![
            format!("{scale}"),
            reparsed.node_count().to_string(),
            format!("{:.1} MB", xml.len() as f64 / 1e6),
            ms(parse_t),
            ms(discover_t),
            report.fds.len().to_string(),
            report.redundancies.len().to_string(),
        ]);
    }
    Section {
        id: "table4",
        title: "large-document stress (xmark-like, full pipeline, max LHS 3)",
        header: vec![
            "scale",
            "nodes",
            "XML size",
            "parse ms",
            "discover ms",
            "FDs",
            "red. FDs",
        ],
        rows,
        note: "both parsing and discovery stay near-linear into the hundreds of thousands of nodes",
    }
}

/// All sections, optionally filtered by id substring.
pub fn run_all(filter: Option<&str>) -> Vec<Section> {
    let all: Vec<fn() -> Section> = vec![
        table1, table2, table3, table4, fig1, fig2, fig3, fig4, fig5, fig6, fig7, fig8, fig9, fig10,
    ];
    all.into_iter()
        .map(|f| f())
        .filter(|s| filter.is_none_or(|f| s.id.contains(f)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_section_renders_with_rows() {
        // Smoke: the cheap sections run end to end.
        for s in [table1(), fig5()] {
            assert!(!s.rows.is_empty());
            let text = s.render();
            assert!(text.contains(s.id));
        }
    }

    #[test]
    fn fig5_shows_the_multiplicative_blowup() {
        let s = fig5();
        // flat rows at k=1 vs k=3: 3^1*20=60 vs 3^3*20=540.
        let rows1: usize = s.rows[0][3].parse().unwrap();
        let rows3: usize = s.rows[2][3].parse().unwrap();
        assert_eq!(rows1, 60);
        assert_eq!(rows3, 540);
        // hierarchical grows linearly: 20 + 20*3*k tuples + root.
        let h1: usize = s.rows[0][1].parse().unwrap();
        let h3: usize = s.rows[2][1].parse().unwrap();
        assert!(h3 < h1 * 4);
    }
}
