//! Criterion counterpart of Fig 4: the cost of set-element support.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use discoverxfd::{discover, DiscoveryConfig};
use xfd_datagen::{dblp_like, DblpSpec};
use xfd_relation::SetColumnMode;

fn bench_sets(c: &mut Criterion) {
    let tree = dblp_like(&DblpSpec::default());
    let mut group = c.benchmark_group("set_elements");
    group.sample_size(10);
    for (mode, label) in [(SetColumnMode::All, "on"), (SetColumnMode::None, "off")] {
        let mut cfg = DiscoveryConfig::default();
        cfg.encode.set_columns = mode;
        group.bench_with_input(BenchmarkId::from_parameter(label), &tree, |b, t| {
            b.iter(|| discover(t, &cfg))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sets);
criterion_main!(benches);
