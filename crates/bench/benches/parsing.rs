//! XML substrate benchmarks: parse and encode rates on the XMark-like
//! document (the fixed per-document cost ahead of discovery).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use xfd_relation::{encode, EncodeConfig};
use xfd_schema::infer_schema;
use xfd_xml::{parse, to_xml_string};

fn bench_parse(c: &mut Criterion) {
    let tree = xfd_datagen::xmark_like(&xfd_datagen::XmarkSpec::with_scale(2.0));
    let xml = to_xml_string(&tree);
    let mut group = c.benchmark_group("xml");
    group.throughput(Throughput::Bytes(xml.len() as u64));
    group.bench_function("parse_xmark", |b| b.iter(|| parse(&xml).unwrap()));
    group.bench_function("serialize_xmark", |b| b.iter(|| to_xml_string(&tree)));
    let schema = infer_schema(&tree);
    group.bench_function("infer_schema_xmark", |b| b.iter(|| infer_schema(&tree)));
    group.bench_function("validate_stream_xmark", |b| {
        b.iter(|| xfd_xml::stream::validate(&xml).unwrap())
    });
    let query: xfd_xml::Query = "/site//item[category='books']/name".parse().unwrap();
    group.bench_function("query_xmark", |b| b.iter(|| query.select(&tree)));
    group.bench_function("encode_xmark", |b| {
        b.iter(|| encode(&tree, &schema, &EncodeConfig::default()))
    });
    group.finish();
}

criterion_group!(benches, bench_parse);
criterion_main!(benches);
