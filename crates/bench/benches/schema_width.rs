//! Criterion counterpart of Fig 2: lattice cost vs relation width,
//! DiscoverXFD vs the flat baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use discoverxfd::baseline::{discover_flat, BaselineOptions};
use discoverxfd::{discover, DiscoveryConfig};
use xfd_datagen::{wide_relation, WideSpec};
use xfd_schema::infer_schema;

fn bench_width(c: &mut Criterion) {
    let mut group = c.benchmark_group("schema_width");
    group.sample_size(10);
    for &width in &[6usize, 10, 14] {
        let tree = wide_relation(&WideSpec {
            rows: 300,
            width,
            ..Default::default()
        });
        let schema = infer_schema(&tree);
        group.bench_with_input(BenchmarkId::new("discoverxfd", width), &tree, |b, t| {
            b.iter(|| discover(t, &DiscoveryConfig::default()))
        });
        group.bench_with_input(
            BenchmarkId::new("flat_tane", width),
            &(&tree, &schema),
            |b, (t, s)| b.iter(|| discover_flat(t, s, &BaselineOptions::default()).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_width);
criterion_main!(benches);
