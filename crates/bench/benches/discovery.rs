//! End-to-end discovery variants: exact vs. approximate, inter-relation
//! on/off, order modes — the configuration-space cost profile.

use criterion::{criterion_group, criterion_main, Criterion};
use discoverxfd::approximate::discover_approximate_forest;
use discoverxfd::driver::encode_only;
use discoverxfd::{discover, DiscoveryConfig};
use xfd_datagen::{warehouse_scaled, WarehouseSpec};
use xfd_xml::OrderMode;

fn bench_variants(c: &mut Criterion) {
    let tree = warehouse_scaled(&WarehouseSpec {
        states: 6,
        stores_per_state: 4,
        books_per_store: 12,
        ..Default::default()
    });
    let mut group = c.benchmark_group("discovery_variants");
    group.sample_size(20);

    group.bench_function("exact_full", |b| {
        b.iter(|| discover(&tree, &DiscoveryConfig::default()))
    });
    group.bench_function("exact_intra_only", |b| {
        let cfg = DiscoveryConfig {
            inter_relation: false,
            ..Default::default()
        };
        b.iter(|| discover(&tree, &cfg))
    });
    group.bench_function("exact_ordered", |b| {
        let mut cfg = DiscoveryConfig::default();
        cfg.encode.order = OrderMode::Ordered;
        b.iter(|| discover(&tree, &cfg))
    });
    group.bench_function("approximate_eps_05", |b| {
        let cfg = DiscoveryConfig::default();
        let (_, forest) = encode_only(&tree, &cfg);
        b.iter(|| discover_approximate_forest(&forest, &cfg, 0.05))
    });
    group.finish();
}

criterion_group!(benches, bench_variants);
criterion_main!(benches);
