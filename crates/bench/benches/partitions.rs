//! Micro-benchmarks of the partition machinery (Sec 4.2 primitives).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xfd_partition::Partition;

fn column(n: usize, domain: u64, offset: u64) -> Vec<Option<u64>> {
    (0..n as u64)
        .map(|i| Some((i * 2654435761 + offset) % domain))
        .collect()
}

fn bench_from_column(c: &mut Criterion) {
    let mut group = c.benchmark_group("partition_from_column");
    for &n in &[1_000usize, 10_000, 100_000] {
        let col = column(n, 100, 0);
        group.bench_with_input(BenchmarkId::from_parameter(n), &col, |b, col| {
            b.iter(|| Partition::from_column(col))
        });
    }
    group.finish();
}

fn bench_product(c: &mut Criterion) {
    let mut group = c.benchmark_group("partition_product");
    for &n in &[1_000usize, 10_000, 100_000] {
        let a = Partition::from_column(&column(n, 50, 0));
        let b = Partition::from_column(&column(n, 70, 13));
        group.bench_with_input(
            BenchmarkId::from_parameter(n),
            &(&a, &b),
            |bench, (a, b)| bench.iter(|| a.product(b)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_from_column, bench_product);
criterion_main!(benches);
