//! Criterion counterpart of Fig 1: end-to-end discovery vs document size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use discoverxfd::{discover, DiscoveryConfig};
use xfd_datagen::{warehouse_scaled, xmark_like, WarehouseSpec, XmarkSpec};

fn bench_warehouse(c: &mut Criterion) {
    let mut group = c.benchmark_group("discover_warehouse");
    group.sample_size(10);
    for &books in &[8usize, 16, 32] {
        let tree = warehouse_scaled(&WarehouseSpec {
            states: 6,
            stores_per_state: 4,
            books_per_store: books,
            ..Default::default()
        });
        let cfg = DiscoveryConfig {
            max_lhs_size: Some(3),
            ..Default::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(books), &tree, |b, t| {
            b.iter(|| discover(t, &cfg))
        });
    }
    group.finish();
}

fn bench_xmark(c: &mut Criterion) {
    let mut group = c.benchmark_group("discover_xmark");
    group.sample_size(10);
    for &scale in &[0.5f64, 1.0, 2.0] {
        let tree = xmark_like(&XmarkSpec::with_scale(scale));
        let cfg = DiscoveryConfig {
            max_lhs_size: Some(3),
            ..Default::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(scale), &tree, |b, t| {
            b.iter(|| discover(t, &cfg))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_warehouse, bench_xmark);
criterion_main!(benches);
