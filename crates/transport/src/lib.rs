#![warn(missing_docs)]
//! # xfd-transport
//!
//! The cluster's byte-stream layer: a pluggable [`Stream`]/[`Listener`]
//! pair with two dependency-free implementations — Unix domain sockets
//! (the original single-host transport) and TCP (multi-host) — plus the
//! framed wire protocol in [`frame`] that runs identically over either.
//!
//! The traits exist so the coordinator and worker never name a concrete
//! socket type: a connection is a `Box<dyn Stream>` however it was made,
//! and every guarantee the frame codec gives (every torn prefix is an
//! error, never a panic or a silent success) holds on both transports
//! because the codec only sees `Read`/`Write`.
//!
//! TCP connections are authenticated by a shared-secret token: both
//! `Join` and `Plan` carry a digest derived from the token (never the
//! token itself), each side checks the other's, and a mismatch is a typed
//! rejection — not a hang. Unix-socket clusters inherit the same check
//! with the default empty token; filesystem permissions on the socket
//! remain their real boundary.

pub mod frame;

use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::time::Duration;

/// One established bidirectional connection, transport-agnostic. The
/// frame codec reads and writes through the `Read`/`Write` supertraits;
/// the extra methods are the small set of socket controls the cluster
/// needs (a cloned read half for the reader thread, handshake read
/// timeouts, and directional shutdown for teardown and fault injection).
pub trait Stream: Read + Write + Send {
    /// A second handle to the same connection (shared file descriptor),
    /// so a reader thread can own the read side while the opener keeps
    /// writing.
    fn try_clone_stream(&self) -> io::Result<Box<dyn Stream>>;

    /// Bound every subsequent read; `None` restores blocking reads.
    fn set_read_timeout(&self, dur: Option<Duration>) -> io::Result<()>;

    /// Half-close: signal EOF to the peer's reader while our reads stay
    /// open to drain its final frames.
    fn shutdown_write(&self) -> io::Result<()>;

    /// Full close of both directions — from the peer's perspective this
    /// is indistinguishable from a connection reset, which is exactly
    /// what the fault-injection paths want.
    fn shutdown_both(&self) -> io::Result<()>;
}

impl Stream for UnixStream {
    fn try_clone_stream(&self) -> io::Result<Box<dyn Stream>> {
        Ok(Box::new(self.try_clone()?))
    }

    fn set_read_timeout(&self, dur: Option<Duration>) -> io::Result<()> {
        UnixStream::set_read_timeout(self, dur)
    }

    fn shutdown_write(&self) -> io::Result<()> {
        self.shutdown(std::net::Shutdown::Write)
    }

    fn shutdown_both(&self) -> io::Result<()> {
        self.shutdown(std::net::Shutdown::Both)
    }
}

impl Stream for TcpStream {
    fn try_clone_stream(&self) -> io::Result<Box<dyn Stream>> {
        Ok(Box::new(self.try_clone()?))
    }

    fn set_read_timeout(&self, dur: Option<Duration>) -> io::Result<()> {
        TcpStream::set_read_timeout(self, dur)
    }

    fn shutdown_write(&self) -> io::Result<()> {
        self.shutdown(std::net::Shutdown::Write)
    }

    fn shutdown_both(&self) -> io::Result<()> {
        self.shutdown(std::net::Shutdown::Both)
    }
}

/// A bound, non-blocking accept source for incoming [`Stream`]s.
pub trait Listener: Send {
    /// Accept one pending connection; `Ok(None)` when none is waiting
    /// (the listener is non-blocking so accept loops can interleave
    /// liveness checks).
    fn accept_stream(&self) -> io::Result<Option<Box<dyn Stream>>>;

    /// The bound address, printable — for Unix sockets the path, for TCP
    /// the resolved `host:port` (which pins the ephemeral port when the
    /// caller bound port 0).
    fn local_label(&self) -> String;
}

struct UnixListenerImpl {
    inner: UnixListener,
    path: PathBuf,
}

impl Listener for UnixListenerImpl {
    fn accept_stream(&self) -> io::Result<Option<Box<dyn Stream>>> {
        // xfdlint:allow(deadline_discipline, reason = "listener accept blocks until a peer arrives by design; worker lifetime is bounded by the coordinator killing the process")
        match self.inner.accept() {
            Ok((stream, _)) => Ok(Some(Box::new(stream))),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(None),
            Err(e) => Err(e),
        }
    }

    fn local_label(&self) -> String {
        self.path.display().to_string()
    }
}

struct TcpListenerImpl {
    inner: TcpListener,
}

impl Listener for TcpListenerImpl {
    fn accept_stream(&self) -> io::Result<Option<Box<dyn Stream>>> {
        // xfdlint:allow(deadline_discipline, reason = "listener accept blocks until a peer arrives by design; worker lifetime is bounded by the coordinator killing the process")
        match self.inner.accept() {
            Ok((stream, _)) => {
                // Frames are small and latency-sensitive; never Nagle.
                stream.set_nodelay(true).ok();
                Ok(Some(Box::new(stream)))
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(None),
            Err(e) => Err(e),
        }
    }

    fn local_label(&self) -> String {
        self.inner
            .local_addr()
            .map_or_else(|_| "?".to_string(), |a| a.to_string())
    }
}

/// Where a cluster endpoint lives: a Unix socket path or a TCP
/// `host:port`. Constructing one is cheap; [`Endpoint::listen`] and
/// [`Endpoint::connect_timeout`] do the work.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// A Unix domain socket path (single host, spawned workers).
    Unix(PathBuf),
    /// A TCP `host:port` (multi-host, `worker --listen` peers).
    Tcp(String),
}

impl Endpoint {
    /// Bind and return a non-blocking listener.
    pub fn listen(&self) -> io::Result<Box<dyn Listener>> {
        match self {
            Endpoint::Unix(path) => {
                let inner = UnixListener::bind(path)?;
                inner.set_nonblocking(true)?;
                Ok(Box::new(UnixListenerImpl {
                    inner,
                    path: path.clone(),
                }))
            }
            Endpoint::Tcp(addr) => {
                let inner = TcpListener::bind(addr.as_str())?;
                inner.set_nonblocking(true)?;
                Ok(Box::new(TcpListenerImpl { inner }))
            }
        }
    }

    /// Connect with a deadline. Unix connects are effectively instant
    /// and ignore the timeout; TCP resolves the address and bounds the
    /// connect so an unroutable `--remote` cannot stall a coordinator
    /// past its handshake window.
    pub fn connect_timeout(&self, timeout: Duration) -> io::Result<Box<dyn Stream>> {
        match self {
            // xfdlint:allow(deadline_discipline, reason = "UnixStream has no connect-with-timeout; a local socket connect cannot hang on a live kernel")
            Endpoint::Unix(path) => Ok(Box::new(UnixStream::connect(path)?)),
            Endpoint::Tcp(addr) => {
                let mut last = io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("'{addr}' resolved to no address"),
                );
                for sa in addr.as_str().to_socket_addrs()? {
                    match TcpStream::connect_timeout(&sa, timeout) {
                        Ok(stream) => {
                            stream.set_nodelay(true).ok();
                            return Ok(Box::new(stream));
                        }
                        Err(e) => last = e,
                    }
                }
                Err(last)
            }
        }
    }
}

/// Domain-separation prefix for the `Join` auth digest.
const JOIN_AUTH_DOMAIN: &str = "xfd-join-auth|";
/// Domain-separation prefix for the `Plan` auth digest.
const PLAN_AUTH_DOMAIN: &str = "xfd-plan-auth|";

fn token_digest(domain: &str, token: &str) -> u128 {
    let mut bytes = Vec::with_capacity(domain.len() + token.len());
    bytes.extend_from_slice(domain.as_bytes());
    bytes.extend_from_slice(token.as_bytes());
    xfd_hash::digest_bytes(&bytes)
}

/// The digest a worker puts in its `Join` frame for `token`. The
/// coordinator recomputes it from its own token and rejects mismatches.
pub fn join_auth(token: &str) -> u128 {
    token_digest(JOIN_AUTH_DOMAIN, token)
}

/// The digest a coordinator puts in its `Plan` frame for `token`; the
/// domain prefix differs from [`join_auth`] so one side's frame can
/// never be replayed as the other's.
pub fn plan_auth(token: &str) -> u128 {
    token_digest(PLAN_AUTH_DOMAIN, token)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{read_frame, write_frame, Frame, PROTOCOL_VERSION};
    use std::time::Instant;

    #[test]
    fn auth_digests_are_token_and_direction_specific() {
        assert_ne!(join_auth("a"), join_auth("b"));
        assert_ne!(plan_auth("a"), plan_auth("b"));
        // Same token, different direction: not replayable.
        assert_ne!(join_auth("secret"), plan_auth("secret"));
        // Deterministic across calls (both ends derive independently).
        assert_eq!(join_auth("secret"), join_auth("secret"));
    }

    fn tcp_pair() -> (Box<dyn Stream>, Box<dyn Stream>) {
        let ep = Endpoint::Tcp("127.0.0.1:0".into());
        let listener = ep.listen().unwrap();
        let client = Endpoint::Tcp(listener.local_label())
            .connect_timeout(Duration::from_secs(5))
            .unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        let server = loop {
            if let Some(s) = listener.accept_stream().unwrap() {
                break s;
            }
            assert!(Instant::now() < deadline, "accept timed out");
            std::thread::sleep(Duration::from_millis(2));
        };
        (client, server)
    }

    #[test]
    fn frames_round_trip_over_loopback_tcp() {
        let (mut client, mut server) = tcp_pair();
        let frames = vec![
            Frame::Join {
                version: PROTOCOL_VERSION,
                index: 1,
                auth: join_auth("t"),
            },
            Frame::SegData {
                digest: 42,
                bytes: vec![7; 4096],
            },
            Frame::Ping,
            Frame::Shutdown,
        ];
        for f in &frames {
            write_frame(&mut client, f).unwrap();
        }
        client.shutdown_write().unwrap();
        for f in &frames {
            assert_eq!(read_frame(&mut server).unwrap().as_ref(), Some(f));
        }
        assert_eq!(read_frame(&mut server).unwrap(), None, "clean EOF");
    }

    #[test]
    fn every_tcp_prefix_truncation_is_an_error_not_a_hang() {
        // Encode one frame, then replay every strict prefix over a fresh
        // TCP connection: the reader must see a torn-frame error (EOF
        // mid-frame), never block forever and never panic.
        let mut wire = Vec::new();
        write_frame(
            &mut wire,
            &Frame::Pass {
                task_id: 9,
                task: vec![1, 2, 3, 4, 5],
            },
        )
        .unwrap();
        for cut in 1..wire.len() {
            let (mut client, mut server) = tcp_pair();
            server
                .set_read_timeout(Some(Duration::from_secs(10)))
                .unwrap();
            client.write_all(&wire[..cut]).unwrap();
            client.shutdown_both().unwrap();
            assert!(
                read_frame(&mut server).is_err(),
                "prefix of {cut} bytes must be a torn-frame error"
            );
        }
    }

    #[test]
    fn interleaved_torn_frame_errors_after_the_good_frame() {
        // A complete frame followed by a torn one on the same TCP stream:
        // the first decodes, the second errors at the tear.
        let good = Frame::Encode { digest: 7 };
        let mut wire = Vec::new();
        write_frame(&mut wire, &good).unwrap();
        let mut torn = Vec::new();
        write_frame(
            &mut torn,
            &Frame::Partial {
                digest: 8,
                bytes: vec![1; 64],
            },
        )
        .unwrap();
        wire.extend_from_slice(&torn[..torn.len() / 2]);

        let (mut client, mut server) = tcp_pair();
        client.write_all(&wire).unwrap();
        client.shutdown_both().unwrap();
        assert_eq!(read_frame(&mut server).unwrap(), Some(good));
        assert!(read_frame(&mut server).is_err(), "tear must surface");
    }

    #[test]
    fn unix_endpoint_listens_and_connects() {
        let path =
            std::env::temp_dir().join(format!("xfd-transport-test-{}.sock", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let listener = Endpoint::Unix(path.clone()).listen().unwrap();
        let mut client = Endpoint::Unix(path.clone())
            .connect_timeout(Duration::from_secs(1))
            .unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        let mut server = loop {
            if let Some(s) = listener.accept_stream().unwrap() {
                break s;
            }
            assert!(Instant::now() < deadline);
            std::thread::sleep(Duration::from_millis(2));
        };
        write_frame(&mut client, &Frame::Pong).unwrap();
        assert_eq!(read_frame(&mut server).unwrap(), Some(Frame::Pong));
        let _ = std::fs::remove_file(&path);
    }
}
