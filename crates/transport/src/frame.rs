//! The wire protocol between coordinator and workers: length-prefixed
//! frames over any [`crate::Stream`] (Unix socket or TCP), hand-rolled
//! and dependency-free.
//!
//! ```text
//! [u32 LE payload length][u8 kind][payload]
//! ```
//!
//! Payload integers are little-endian; byte strings are `u32`
//! length-prefixed. The protocol is strictly request/response-free at the
//! frame layer — sequencing lives in the coordinator's phase machine —
//! so a frame needs no correlation header beyond the task id the pass
//! frames carry.
//!
//! Version 2 adds a shared-secret auth digest to both handshake frames
//! (see [`crate::join_auth`]/[`crate::plan_auth`]) and the
//! content-addressed segment-shipping frames (`SegHave`/`SegManifest`/
//! `SegData`) plus the batched `ForestShip` push, for workers with no
//! shared filesystem view of the corpus.

use std::io::{self, Read, Write};

/// Protocol version, checked in the `Join` handshake. Bump on any frame
/// layout change.
pub const PROTOCOL_VERSION: u32 = 2;

/// Hard cap on one frame's payload (a partial of a very large segment
/// stays far below this); anything bigger is a protocol violation, not an
/// allocation request.
const MAX_PAYLOAD: usize = 1 << 30;

/// One protocol frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// Worker → coordinator, first frame on the socket.
    Join {
        /// Must equal [`PROTOCOL_VERSION`].
        version: u32,
        /// The `--index` the worker was spawned with (0 for remote
        /// workers, which the coordinator slots by connection order).
        index: u32,
        /// [`crate::join_auth`] of the worker's token; the coordinator
        /// recomputes it from its own token and rejects mismatches.
        auth: u128,
    },
    /// Coordinator → worker: the job description. The worker re-derives
    /// the plan fingerprint from its own read-only view of `corpus_dir`
    /// (or from shipped segments) and must come to the same answer.
    Plan {
        /// The coordinator's plan fingerprint.
        plan_fp: u128,
        /// [`crate::plan_auth`] of the coordinator's token; the worker
        /// refuses to serve a coordinator whose digest mismatches.
        auth: u128,
        /// Corpus directory to open read-only.
        corpus_dir: String,
        /// `discoverxfd::encode_config` bytes.
        config: Vec<u8>,
    },
    /// Worker → coordinator: the plan fingerprint the worker derived.
    PlanAck {
        /// The worker's independently derived fingerprint.
        plan_fp: u128,
    },
    /// Worker → coordinator, instead of an immediate `PlanAck`: the
    /// corpus directory is not reachable from this host; here is what my
    /// content-addressed segment cache already holds. The coordinator
    /// answers with `SegManifest` and the missing `SegData` frames.
    SegHave {
        /// Segment content digests present in the worker's local cache.
        digests: Vec<u128>,
    },
    /// Coordinator → worker: the corpus's per-document segment digests,
    /// ingest order, duplicates preserved — the complete recipe for
    /// reassembling the coordinator's document view.
    SegManifest {
        /// Per-document segment digests.
        digests: Vec<u128>,
    },
    /// Coordinator → worker: one segment the worker's cache lacks. The
    /// worker verifies `bytes` against `digest` before trusting it.
    SegData {
        /// Segment content digest (FNV-1a over `bytes`).
        digest: u128,
        /// The segment's tuple-block bytes, exactly as stored.
        bytes: Vec<u8>,
    },
    /// Coordinator → worker: build the partial of the segment with this
    /// digest.
    Encode {
        /// Segment content digest.
        digest: u128,
    },
    /// Worker → coordinator: an encoded [`xfd_relation::SegmentPartial`].
    /// Empty `bytes` signals the worker could not build it.
    Partial {
        /// Segment content digest.
        digest: u128,
        /// `xfd_relation::encode_partial` bytes.
        bytes: Vec<u8>,
    },
    /// Coordinator → worker: a partial some *other* worker (or the
    /// coordinator's cache) built, so this worker need not re-encode it.
    Push {
        /// Segment content digest.
        digest: u128,
        /// `xfd_relation::encode_partial` bytes.
        bytes: Vec<u8>,
    },
    /// Coordinator → worker: every distinct partial of the merged forest
    /// in one frame — encoded once and broadcast when a worker is missing
    /// more than half of them, instead of N separate `Push` frames.
    ForestShip {
        /// `(digest, encode_partial bytes)` per distinct segment, in
        /// first-appearance document order.
        partials: Vec<(u128, Vec<u8>)>,
    },
    /// Coordinator → worker: merge the forest from partials, in this
    /// exact per-document digest order, and fingerprint it.
    Build {
        /// The coordinator's forest fingerprint; the worker must match it.
        forest_fp: u128,
        /// Per-document segment digests, duplicates preserved.
        digests: Vec<u128>,
    },
    /// Worker → coordinator: the merged forest's fingerprint (0 when the
    /// worker's document view disagreed with the `Build` order).
    ForestAck {
        /// The worker's forest fingerprint.
        forest_fp: u128,
    },
    /// Coordinator → worker: run one relation pass.
    Pass {
        /// Correlation id, unique per cluster run.
        task_id: u64,
        /// `discoverxfd::WaveTask` bytes.
        task: Vec<u8>,
    },
    /// Worker → coordinator: a relation pass answer. Empty `output`
    /// signals failure; the coordinator recomputes locally.
    TaskResult {
        /// Correlation id from the `Pass` frame.
        task_id: u64,
        /// `RelationOutput` wire bytes.
        output: Vec<u8>,
    },
    /// Coordinator → worker heartbeat probe.
    Ping,
    /// Worker → coordinator heartbeat answer.
    Pong,
    /// Coordinator → worker: drain and exit cleanly.
    Shutdown,
    /// Worker → coordinator: a non-fatal worker-side failure report.
    WorkerError {
        /// Human-readable description.
        message: String,
    },
}

const K_JOIN: u8 = 1;
const K_PLAN: u8 = 2;
const K_PLAN_ACK: u8 = 3;
const K_ENCODE: u8 = 4;
const K_PARTIAL: u8 = 5;
const K_PUSH: u8 = 6;
const K_BUILD: u8 = 7;
const K_FOREST_ACK: u8 = 8;
const K_PASS: u8 = 9;
const K_TASK_RESULT: u8 = 10;
const K_PING: u8 = 11;
const K_PONG: u8 = 12;
const K_SHUTDOWN: u8 = 13;
const K_WORKER_ERROR: u8 = 14;
const K_SEG_HAVE: u8 = 15;
const K_SEG_MANIFEST: u8 = 16;
const K_SEG_DATA: u8 = 17;
const K_FOREST_SHIP: u8 = 18;

fn proto_err(what: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("protocol: {what}"))
}

/// Bounded little-endian payload reader.
struct Cur<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cur<'a> {
    fn new(bytes: &'a [u8]) -> Cur<'a> {
        Cur { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or_else(|| proto_err("length overflow"))?;
        let out = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| proto_err("truncated payload"))?;
        self.pos = end;
        Ok(out)
    }

    fn u32(&mut self) -> io::Result<u32> {
        let b = self.take(4)?;
        <[u8; 4]>::try_from(b)
            .map(u32::from_le_bytes)
            .map_err(|_| proto_err("truncated u32"))
    }

    fn u64(&mut self) -> io::Result<u64> {
        let b = self.take(8)?;
        <[u8; 8]>::try_from(b)
            .map(u64::from_le_bytes)
            .map_err(|_| proto_err("truncated u64"))
    }

    fn u128(&mut self) -> io::Result<u128> {
        let b = self.take(16)?;
        <[u8; 16]>::try_from(b)
            .map(u128::from_le_bytes)
            .map_err(|_| proto_err("truncated u128"))
    }

    /// A `u32`-length-prefixed byte string, capped by what the payload can
    /// actually hold.
    fn bytes(&mut self) -> io::Result<Vec<u8>> {
        let n = self.u32()? as usize;
        Ok(self.take(n)?.to_vec())
    }

    fn string(&mut self) -> io::Result<String> {
        let b = self.bytes()?;
        String::from_utf8(b).map_err(|_| proto_err("bad utf-8"))
    }

    /// A `u32`-count-prefixed digest list; the count must fit in what
    /// remains of the payload before anything is allocated.
    fn digests(&mut self, payload_len: usize) -> io::Result<Vec<u128>> {
        let n = self.u32()? as usize;
        // 16 bytes per digest must fit in what remains.
        if n > payload_len / 16 {
            return Err(proto_err("digest count exceeds payload"));
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.u128()?);
        }
        Ok(out)
    }

    fn finish(&self) -> io::Result<()> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(proto_err("trailing bytes"))
        }
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u128(out: &mut Vec<u8>, v: u128) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    put_u32(out, b.len() as u32);
    out.extend_from_slice(b);
}

fn put_digests(out: &mut Vec<u8>, digests: &[u128]) {
    put_u32(out, digests.len() as u32);
    for d in digests {
        put_u128(out, *d);
    }
}

impl Frame {
    fn kind(&self) -> u8 {
        match self {
            Frame::Join { .. } => K_JOIN,
            Frame::Plan { .. } => K_PLAN,
            Frame::PlanAck { .. } => K_PLAN_ACK,
            Frame::SegHave { .. } => K_SEG_HAVE,
            Frame::SegManifest { .. } => K_SEG_MANIFEST,
            Frame::SegData { .. } => K_SEG_DATA,
            Frame::Encode { .. } => K_ENCODE,
            Frame::Partial { .. } => K_PARTIAL,
            Frame::Push { .. } => K_PUSH,
            Frame::ForestShip { .. } => K_FOREST_SHIP,
            Frame::Build { .. } => K_BUILD,
            Frame::ForestAck { .. } => K_FOREST_ACK,
            Frame::Pass { .. } => K_PASS,
            Frame::TaskResult { .. } => K_TASK_RESULT,
            Frame::Ping => K_PING,
            Frame::Pong => K_PONG,
            Frame::Shutdown => K_SHUTDOWN,
            Frame::WorkerError { .. } => K_WORKER_ERROR,
        }
    }

    fn payload(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Frame::Join {
                version,
                index,
                auth,
            } => {
                put_u32(&mut out, *version);
                put_u32(&mut out, *index);
                put_u128(&mut out, *auth);
            }
            Frame::Plan {
                plan_fp,
                auth,
                corpus_dir,
                config,
            } => {
                put_u128(&mut out, *plan_fp);
                put_u128(&mut out, *auth);
                put_bytes(&mut out, corpus_dir.as_bytes());
                put_bytes(&mut out, config);
            }
            Frame::PlanAck { plan_fp } => put_u128(&mut out, *plan_fp),
            Frame::SegHave { digests } | Frame::SegManifest { digests } => {
                put_digests(&mut out, digests)
            }
            Frame::SegData { digest, bytes } => {
                put_u128(&mut out, *digest);
                put_bytes(&mut out, bytes);
            }
            Frame::Encode { digest } => put_u128(&mut out, *digest),
            Frame::Partial { digest, bytes } | Frame::Push { digest, bytes } => {
                put_u128(&mut out, *digest);
                put_bytes(&mut out, bytes);
            }
            Frame::ForestShip { partials } => {
                put_u32(&mut out, partials.len() as u32);
                for (digest, bytes) in partials {
                    put_u128(&mut out, *digest);
                    put_bytes(&mut out, bytes);
                }
            }
            Frame::Build { forest_fp, digests } => {
                put_u128(&mut out, *forest_fp);
                put_digests(&mut out, digests);
            }
            Frame::ForestAck { forest_fp } => put_u128(&mut out, *forest_fp),
            Frame::Pass { task_id, task } => {
                put_u64(&mut out, *task_id);
                put_bytes(&mut out, task);
            }
            Frame::TaskResult { task_id, output } => {
                put_u64(&mut out, *task_id);
                put_bytes(&mut out, output);
            }
            Frame::Ping | Frame::Pong | Frame::Shutdown => {}
            Frame::WorkerError { message } => put_bytes(&mut out, message.as_bytes()),
        }
        out
    }

    fn decode(kind: u8, payload: &[u8]) -> io::Result<Frame> {
        let mut c = Cur::new(payload);
        let frame = match kind {
            K_JOIN => Frame::Join {
                version: c.u32()?,
                index: c.u32()?,
                auth: c.u128()?,
            },
            K_PLAN => Frame::Plan {
                plan_fp: c.u128()?,
                auth: c.u128()?,
                corpus_dir: c.string()?,
                config: c.bytes()?,
            },
            K_PLAN_ACK => Frame::PlanAck { plan_fp: c.u128()? },
            K_SEG_HAVE => Frame::SegHave {
                digests: c.digests(payload.len())?,
            },
            K_SEG_MANIFEST => Frame::SegManifest {
                digests: c.digests(payload.len())?,
            },
            K_SEG_DATA => Frame::SegData {
                digest: c.u128()?,
                bytes: c.bytes()?,
            },
            K_ENCODE => Frame::Encode { digest: c.u128()? },
            K_PARTIAL => Frame::Partial {
                digest: c.u128()?,
                bytes: c.bytes()?,
            },
            K_PUSH => Frame::Push {
                digest: c.u128()?,
                bytes: c.bytes()?,
            },
            K_FOREST_SHIP => {
                let n = c.u32()? as usize;
                // Each entry needs at least a digest and a length prefix.
                if n > payload.len() / 20 {
                    return Err(proto_err("partial count exceeds payload"));
                }
                let mut partials = Vec::with_capacity(n);
                for _ in 0..n {
                    let digest = c.u128()?;
                    let bytes = c.bytes()?;
                    partials.push((digest, bytes));
                }
                Frame::ForestShip { partials }
            }
            K_BUILD => {
                let forest_fp = c.u128()?;
                let digests = c.digests(payload.len())?;
                Frame::Build { forest_fp, digests }
            }
            K_FOREST_ACK => Frame::ForestAck {
                forest_fp: c.u128()?,
            },
            K_PASS => Frame::Pass {
                task_id: c.u64()?,
                task: c.bytes()?,
            },
            K_TASK_RESULT => Frame::TaskResult {
                task_id: c.u64()?,
                output: c.bytes()?,
            },
            K_PING => Frame::Ping,
            K_PONG => Frame::Pong,
            K_SHUTDOWN => Frame::Shutdown,
            K_WORKER_ERROR => Frame::WorkerError {
                message: c.string()?,
            },
            _ => return Err(proto_err("unknown frame kind")),
        };
        c.finish()?;
        Ok(frame)
    }
}

/// Write one frame. The caller flushes (frames are written from a
/// dedicated thread or between phases, never under a lock).
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> io::Result<()> {
    let payload = frame.payload();
    if payload.len() > MAX_PAYLOAD {
        return Err(proto_err("payload too large"));
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(&[frame.kind()])?;
    w.write_all(&payload)?;
    Ok(())
}

/// Read one frame. `Ok(None)` on clean EOF at a frame boundary; EOF
/// mid-frame is an error (the peer died mid-write).
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Frame>> {
    let mut header = [0u8; 4];
    // Distinguish "no more frames" from "torn frame": only a zero-byte
    // first read is a clean close.
    let mut filled = 0usize;
    while filled < 4 {
        let n = match header.get_mut(filled..) {
            Some(buf) => r.read(buf)?,
            None => 0,
        };
        if n == 0 {
            if filled == 0 {
                return Ok(None);
            }
            return Err(proto_err("eof mid-header"));
        }
        filled += n;
    }
    let len = u32::from_le_bytes(header) as usize;
    if len > MAX_PAYLOAD {
        return Err(proto_err("payload too large"));
    }
    let mut kind = [0u8; 1];
    r.read_exact(&mut kind)?;
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    let Some(&k) = kind.first() else {
        return Err(proto_err("missing kind"));
    };
    Frame::decode(k, &payload).map(Some)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let frames = vec![
            Frame::Join {
                version: PROTOCOL_VERSION,
                index: 3,
                auth: 0x1234_5678_9abc_def0,
            },
            Frame::Plan {
                plan_fp: 0xdead_beef,
                auth: 0x0bad_cafe,
                corpus_dir: "/tmp/corpora/orders".into(),
                config: vec![1, 2, 3],
            },
            Frame::PlanAck { plan_fp: 7 },
            Frame::SegHave {
                digests: vec![1, 2, 3],
            },
            Frame::SegManifest {
                digests: vec![3, 3, 1],
            },
            Frame::SegData {
                digest: 3,
                bytes: vec![0xAB; 57],
            },
            Frame::Encode { digest: 42 },
            Frame::Partial {
                digest: 42,
                bytes: vec![9; 100],
            },
            Frame::Push {
                digest: 43,
                bytes: vec![],
            },
            Frame::ForestShip {
                partials: vec![(42, vec![9; 10]), (43, vec![])],
            },
            Frame::Build {
                forest_fp: 1,
                digests: vec![42, 43, 42],
            },
            Frame::ForestAck { forest_fp: 1 },
            Frame::Pass {
                task_id: 17,
                task: vec![4, 5],
            },
            Frame::TaskResult {
                task_id: 17,
                output: vec![6],
            },
            Frame::Ping,
            Frame::Pong,
            Frame::Shutdown,
            Frame::WorkerError {
                message: "bad".into(),
            },
        ];
        let mut wire = Vec::new();
        for f in &frames {
            write_frame(&mut wire, f).unwrap();
        }
        let mut r = wire.as_slice();
        for f in &frames {
            assert_eq!(read_frame(&mut r).unwrap().as_ref(), Some(f));
        }
        assert_eq!(read_frame(&mut r).unwrap(), None);
    }

    #[test]
    fn torn_and_corrupt_frames_are_errors_not_panics() {
        let mut wire = Vec::new();
        write_frame(
            &mut wire,
            &Frame::Pass {
                task_id: 1,
                task: vec![1, 2, 3, 4],
            },
        )
        .unwrap();
        // Every strict prefix is torn (EOF mid-frame) — an error, never a
        // panic or a silent success.
        for cut in 1..wire.len() {
            let mut r = &wire[..cut];
            assert!(read_frame(&mut r).is_err(), "cut at {cut}");
        }
        // Unknown kind byte.
        let mut bad = wire.clone();
        bad[4] = 200;
        assert!(read_frame(&mut bad.as_slice()).is_err());
        // Absurd length prefix is rejected before allocating.
        let huge = (u32::MAX).to_le_bytes();
        let mut r: &[u8] = &huge;
        assert!(read_frame(&mut r).is_err());
    }

    #[test]
    fn shipping_frame_prefixes_are_errors_too() {
        // The v2 frames get the same every-prefix guarantee as the rest.
        for frame in [
            Frame::SegHave {
                digests: vec![7, 8, 9],
            },
            Frame::SegData {
                digest: 7,
                bytes: vec![1; 33],
            },
            Frame::ForestShip {
                partials: vec![(7, vec![2; 12]), (8, vec![3; 5])],
            },
        ] {
            let mut wire = Vec::new();
            write_frame(&mut wire, &frame).unwrap();
            for cut in 1..wire.len() {
                let mut r = &wire[..cut];
                assert!(read_frame(&mut r).is_err(), "cut at {cut} of {frame:?}");
            }
        }
        // A forged count that exceeds the payload is rejected before any
        // oversized allocation.
        let mut forged = Vec::new();
        write_frame(
            &mut forged,
            &Frame::SegHave {
                digests: vec![1, 2],
            },
        )
        .unwrap();
        forged[5..9].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(read_frame(&mut forged.as_slice()).is_err());
    }
}
