//! Algebraic laws of stripped partitions, checked on random columns.

use proptest::prelude::*;
use xfd_partition::{ErrorOnlyProduct, GroupMap, PairSet, Partition, ProductScratch};

fn column() -> impl Strategy<Value = Vec<Option<u64>>> {
    proptest::collection::vec(
        prop_oneof![3 => (0u64..5).prop_map(Some), 1 => Just(None)],
        0..40,
    )
}

/// Reference implementation: group rows by exact cell vectors.
fn naive_product(a: &[Option<u64>], b: &[Option<u64>]) -> Partition {
    let mut groups: std::collections::HashMap<(u64, u64), Vec<u32>> = Default::default();
    for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
        if let (Some(x), Some(y)) = (x, y) {
            groups.entry((*x, *y)).or_default().push(i as u32);
        }
    }
    let mut gs: Vec<Vec<u32>> = groups.into_values().collect();
    gs.sort_by_key(|g| g[0]);
    Partition::from_groups(gs, a.len())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    #[test]
    fn product_matches_naive(a in column(), b in column()) {
        let n = a.len().min(b.len());
        let (a, b) = (&a[..n], &b[..n]);
        let pa = Partition::from_column(a);
        let pb = Partition::from_column(b);
        prop_assert_eq!(pa.product(&pb), naive_product(a, b));
    }

    #[test]
    fn product_is_commutative(a in column(), b in column()) {
        let n = a.len().min(b.len());
        let pa = Partition::from_column(&a[..n]);
        let pb = Partition::from_column(&b[..n]);
        prop_assert_eq!(pa.product(&pb), pb.product(&pa));
    }

    #[test]
    fn product_refines_both_operands(a in column(), b in column()) {
        let n = a.len().min(b.len());
        let pa = Partition::from_column(&a[..n]);
        let pb = Partition::from_column(&b[..n]);
        let prod = pa.product(&pb);
        prop_assert!(prod.refines(&pa));
        prop_assert!(prod.refines(&pb));
        prop_assert!(prod.error() <= pa.error());
        prop_assert!(prod.error() <= pb.error());
    }

    #[test]
    fn product_is_idempotent(a in column()) {
        let pa = Partition::from_column(&a);
        prop_assert_eq!(pa.product(&pa), pa);
    }

    #[test]
    fn universal_is_identity(a in column()) {
        let pa = Partition::from_column(&a);
        let u = Partition::universal(a.len());
        prop_assert_eq!(pa.product(&u), pa.clone());
        prop_assert!(pa.refines(&u) || a.len() < 2);
    }

    #[test]
    fn error_counts_strippable_tuples(a in column()) {
        let pa = Partition::from_column(&a);
        let expected: usize = pa.groups().map(|g| g.len() - 1).sum();
        prop_assert_eq!(pa.error(), expected);
    }

    #[test]
    fn group_map_agrees_with_group_membership(a in column()) {
        let pa = Partition::from_column(&a);
        let gm = GroupMap::new(&pa);
        for (gi, g) in pa.groups().enumerate() {
            for &t in g {
                prop_assert_eq!(gm.group_of(t), Some(gi as u32));
            }
        }
    }

    /// Canonical-order regression: every constructor output lists groups
    /// by ascending first member with ascending members inside.
    #[test]
    fn canonical_group_order_is_pinned(a in column(), b in column()) {
        let n = a.len().min(b.len());
        let pa = Partition::from_column(&a[..n]);
        let pb = Partition::from_column(&b[..n]);
        for p in [&pa, &pb, &pa.product(&pb)] {
            let mut prev_first: Option<u32> = None;
            for g in p.groups() {
                prop_assert!(g.windows(2).all(|w| w[0] < w[1]),
                    "members not ascending: {:?}", g);
                if let Some(pf) = prev_first {
                    prop_assert!(pf < g[0], "groups not sorted by first member");
                }
                prev_first = Some(g[0]);
            }
        }
    }

    /// Scratch reuse never changes results: a long chain of mixed
    /// column-builds and products through one scratch matches fresh
    /// allocations.
    #[test]
    fn scratch_reuse_matches_fresh(cols in proptest::collection::vec(column(), 2..5)) {
        let n = cols.iter().map(Vec::len).min().unwrap_or(0);
        let mut scratch = ProductScratch::new();
        let fresh: Vec<Partition> =
            cols.iter().map(|c| Partition::from_column(&c[..n])).collect();
        let reused: Vec<Partition> = cols
            .iter()
            .map(|c| Partition::from_column_in(&c[..n], &mut scratch))
            .collect();
        prop_assert_eq!(&fresh, &reused);
        for x in &fresh {
            for y in &fresh {
                prop_assert_eq!(x.product(y), x.product_in(y, &mut scratch));
            }
        }
    }

    /// CSR product over a chain of attributes equals the partition built
    /// directly from the combined column values (Π over the union of the
    /// attribute sets).
    #[test]
    fn chained_product_matches_union_column(cols in proptest::collection::vec(column(), 2..5)) {
        let n = cols.iter().map(Vec::len).min().unwrap_or(0);
        let mut scratch = ProductScratch::new();
        let mut acc = Partition::universal(n);
        for c in &cols {
            let p = Partition::from_column_in(&c[..n], &mut scratch);
            acc = acc.product_in(&p, &mut scratch);
        }
        // Combined key per tuple: None if any attribute is ⊥.
        let combined: Vec<Option<u64>> = (0..n)
            .map(|t| {
                cols.iter().try_fold(0u64, |h, c| {
                    c[t].map(|v| h.wrapping_mul(1_000_003).wrapping_add(v + 1))
                })
            })
            .collect();
        prop_assert_eq!(acc, Partition::from_column(&combined));
    }

    /// Kernel parity: the error-only product reports exactly the error,
    /// group count and widest group of the materialized product — including
    /// empty and stripped-to-empty operands.
    #[test]
    fn error_only_kernel_matches_materialized(a in column(), b in column()) {
        let n = a.len().min(b.len());
        let pa = Partition::from_column(&a[..n]);
        let pb = Partition::from_column(&b[..n]);
        let mut scratch = ProductScratch::new();
        let full = pa.product_in(&pb, &mut scratch);
        prop_assert_eq!(
            pa.product_error_in(&pb, &mut scratch, None),
            ErrorOnlyProduct::Exact(full.summary())
        );
        // Symmetric call: scan-side selection never changes the summary.
        prop_assert_eq!(
            pb.product_error_in(&pa, &mut scratch, None),
            ErrorOnlyProduct::Exact(full.summary())
        );
    }

    /// Early-exit soundness against every possible bound: `BelowBound` is
    /// returned exactly when the true product error is in `1..bound`, and
    /// an exact summary otherwise.
    #[test]
    fn error_only_kernel_early_exit_is_exact(a in column(), b in column()) {
        let n = a.len().min(b.len());
        let pa = Partition::from_column(&a[..n]);
        let pb = Partition::from_column(&b[..n]);
        let mut scratch = ProductScratch::new();
        let full = pa.product_in(&pb, &mut scratch);
        let true_error = full.error();
        for bound in 0..=pa.error().min(pb.error()) + 1 {
            let got = pa.product_error_in(&pb, &mut scratch, Some(bound));
            if true_error > 0 && true_error < bound {
                prop_assert_eq!(got, ErrorOnlyProduct::BelowBound, "bound {}", bound);
            } else {
                prop_assert_eq!(
                    got,
                    ErrorOnlyProduct::Exact(full.summary()),
                    "bound {}", bound
                );
            }
        }
    }

    /// The base-map refinement kernel is a drop-in for the probing kernel:
    /// identical exact summaries without a bound, and identical early-exit
    /// verdicts for every possible bound — including empty operands.
    #[test]
    fn refine_kernel_matches_probing_kernel(a in column(), b in column()) {
        let n = a.len().min(b.len());
        let pa = Partition::from_column(&a[..n]);
        let pb = Partition::from_column(&b[..n]);
        let gm = GroupMap::new(&pb);
        let mut scratch = ProductScratch::new();
        let full = pa.product_in(&pb, &mut scratch);
        prop_assert_eq!(
            pa.error_refine_in(&gm, &mut scratch, None),
            ErrorOnlyProduct::Exact(full.summary())
        );
        let true_error = full.error();
        for bound in 0..=pa.error().min(pb.error()) + 1 {
            let got = pa.error_refine_in(&gm, &mut scratch, Some(bound));
            if true_error > 0 && true_error < bound {
                prop_assert_eq!(got, ErrorOnlyProduct::BelowBound, "bound {}", bound);
            } else {
                prop_assert_eq!(
                    got,
                    ErrorOnlyProduct::Exact(full.summary()),
                    "bound {}", bound
                );
            }
        }
    }

    #[test]
    fn pairset_satisfaction_matches_separation(a in column()) {
        prop_assume!(a.len() >= 2);
        let pa = Partition::from_column(&a);
        let gm = GroupMap::new(&pa);
        let mut all = PairSet::new();
        for t1 in 0..a.len() as u32 {
            for t2 in t1 + 1..a.len() as u32 {
                all.insert(t1, t2);
            }
        }
        let unsat = all.unsatisfied_under(&gm);
        // Unsatisfied pairs are exactly the within-group pairs.
        let within: usize = pa.groups().map(|g| g.len() * (g.len() - 1) / 2).sum();
        prop_assert_eq!(unsat.len(), within);
        prop_assert_eq!(all.satisfied_by(&gm), within == 0);
    }
}
