//! Algebraic laws of stripped partitions, checked on random columns.

use proptest::prelude::*;
use xfd_partition::{GroupMap, PairSet, Partition};

fn column() -> impl Strategy<Value = Vec<Option<u64>>> {
    proptest::collection::vec(
        prop_oneof![3 => (0u64..5).prop_map(Some), 1 => Just(None)],
        0..40,
    )
}

/// Reference implementation: group rows by exact cell vectors.
fn naive_product(a: &[Option<u64>], b: &[Option<u64>]) -> Partition {
    let mut groups: std::collections::HashMap<(u64, u64), Vec<u32>> = Default::default();
    for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
        if let (Some(x), Some(y)) = (x, y) {
            groups.entry((*x, *y)).or_default().push(i as u32);
        }
    }
    let mut gs: Vec<Vec<u32>> = groups.into_values().collect();
    gs.sort_by_key(|g| g[0]);
    Partition::from_groups(gs, a.len())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    #[test]
    fn product_matches_naive(a in column(), b in column()) {
        let n = a.len().min(b.len());
        let (a, b) = (&a[..n], &b[..n]);
        let pa = Partition::from_column(a);
        let pb = Partition::from_column(b);
        prop_assert_eq!(pa.product(&pb), naive_product(a, b));
    }

    #[test]
    fn product_is_commutative(a in column(), b in column()) {
        let n = a.len().min(b.len());
        let pa = Partition::from_column(&a[..n]);
        let pb = Partition::from_column(&b[..n]);
        prop_assert_eq!(pa.product(&pb), pb.product(&pa));
    }

    #[test]
    fn product_refines_both_operands(a in column(), b in column()) {
        let n = a.len().min(b.len());
        let pa = Partition::from_column(&a[..n]);
        let pb = Partition::from_column(&b[..n]);
        let prod = pa.product(&pb);
        prop_assert!(prod.refines(&pa));
        prop_assert!(prod.refines(&pb));
        prop_assert!(prod.error() <= pa.error());
        prop_assert!(prod.error() <= pb.error());
    }

    #[test]
    fn product_is_idempotent(a in column()) {
        let pa = Partition::from_column(&a);
        prop_assert_eq!(pa.product(&pa), pa);
    }

    #[test]
    fn universal_is_identity(a in column()) {
        let pa = Partition::from_column(&a);
        let u = Partition::universal(a.len());
        prop_assert_eq!(pa.product(&u), pa.clone());
        prop_assert!(pa.refines(&u) || a.len() < 2);
    }

    #[test]
    fn error_counts_strippable_tuples(a in column()) {
        let pa = Partition::from_column(&a);
        let expected: usize = pa.groups().iter().map(|g| g.len() - 1).sum();
        prop_assert_eq!(pa.error(), expected);
    }

    #[test]
    fn group_map_agrees_with_group_membership(a in column()) {
        let pa = Partition::from_column(&a);
        let gm = GroupMap::new(&pa);
        for (gi, g) in pa.groups().iter().enumerate() {
            for &t in g {
                prop_assert_eq!(gm.group_of(t), Some(gi as u32));
            }
        }
    }

    #[test]
    fn pairset_satisfaction_matches_separation(a in column()) {
        prop_assume!(a.len() >= 2);
        let pa = Partition::from_column(&a);
        let gm = GroupMap::new(&pa);
        let mut all = PairSet::new();
        for t1 in 0..a.len() as u32 {
            for t2 in t1 + 1..a.len() as u32 {
                all.insert(t1, t2);
            }
        }
        let unsat = all.unsatisfied_under(&gm);
        // Unsatisfied pairs are exactly the within-group pairs.
        let within: usize = pa.groups().iter().map(|g| g.len() * (g.len() - 1) / 2).sum();
        prop_assert_eq!(unsat.len(), within);
        prop_assert_eq!(all.satisfied_by(&gm), within == 0);
    }
}
