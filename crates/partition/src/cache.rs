//! Memoized partitions per attribute set: sharded, memory-bounded, with
//! traversal and residency counters.
//!
//! The lattice algorithms construct `Π_A` for many attribute sets `A`; the
//! cache avoids recomputation when several lattice edges need the same
//! partition and exposes the counters the pruning-ablation experiment
//! (reconstructed Figure 7) reports.
//!
//! ## Shards
//!
//! Entries live in [`N_SHARDS`] independent FxHash maps selected by
//! [`AttrSet::shard`]. Sharding keeps per-map probe chains short on wide
//! lattices and gives the intra-relation parallel pass (which reads the
//! cache from several workers between levels) shard-granular structure to
//! reason about; all mutation still happens on the owning thread.
//!
//! ## Memory bound and eviction
//!
//! Every resident partition's CSR heap footprint is accounted. A level-wise
//! traversal calls [`PartitionCache::evict_below`] after finishing level
//! `k`, dropping partitions of size ≤ k−2 TANE-style (bases, i.e. size
//! ≤ 1, always stay). Independently, an optional byte budget evicts
//! shallowest-first whenever residency exceeds it. Eviction never breaks
//! correctness: `ensure` in the traversal layer refolds any evicted
//! partition from the bases.

use xfd_hash::FxHashMap;

use crate::attrset::AttrSet;
use crate::partition::{ErrorOnlyProduct, GroupMap, Partition, PartitionSummary};
use crate::scratch::ProductScratch;

/// Number of cache shards (power of two).
pub const N_SHARDS: usize = 16;

/// Accounted bytes per summary-tier entry: the [`PartitionSummary`]
/// payload plus its `AttrSet` key.
pub const SUMMARY_BYTES: usize = 32;

/// Counters describing how much work a lattice traversal did and how much
/// memory its partitions held.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lattice nodes whose partition was materialized.
    pub partitions_built: usize,
    /// Partition products computed.
    pub products: usize,
    /// Cache hits (partition already present).
    pub hits: usize,
    /// Cache misses (lookup of an absent partition that forced a build).
    pub misses: usize,
    /// Partitions dropped by level eviction or the byte budget.
    pub evictions: usize,
    /// High-water mark of resident partition bytes.
    pub peak_resident_bytes: usize,
    /// Products answered by the error-only kernel (no CSR result built).
    pub products_error_only: usize,
    /// Products that materialized a full CSR partition.
    pub products_materialized: usize,
    /// Error-only products that stopped at the first provable violation.
    pub early_exits: usize,
    /// Lookups answered from the 16-byte summary tier.
    pub summary_hits: usize,
}

impl CacheStats {
    /// Fold counters from another traversal (peak takes the max).
    pub fn absorb(&mut self, other: &CacheStats) {
        self.partitions_built += other.partitions_built;
        self.products += other.products;
        self.hits += other.hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
        self.peak_resident_bytes = self.peak_resident_bytes.max(other.peak_resident_bytes);
        self.products_error_only += other.products_error_only;
        self.products_materialized += other.products_materialized;
        self.early_exits += other.early_exits;
        self.summary_hits += other.summary_hits;
    }
}

/// A sharded memo table `AttrSet → Partition` with an optional byte budget.
#[derive(Debug)]
pub struct PartitionCache {
    shards: [FxHashMap<AttrSet, Partition>; N_SHARDS],
    /// Summary tier: 16-byte digests for attribute sets whose full CSR
    /// partition was never materialized (validation-only lattice nodes).
    summaries: FxHashMap<AttrSet, PartitionSummary>,
    stats: CacheStats,
    resident_bytes: usize,
    budget_bytes: Option<usize>,
    scratch: ProductScratch,
    /// Tuple → group lookup per base attribute, built lazily on first use
    /// by the refinement kernel and valid for the lifetime of the base
    /// partition. Like `scratch`, these are working-state for the kernels
    /// (one `u32` per tuple per touched attribute, never evicted) and are
    /// not charged against `resident_bytes` — the budget governs the
    /// rebuildable partition payload, not fixed per-attribute overhead.
    base_maps: Vec<Option<GroupMap>>,
}

impl Default for PartitionCache {
    fn default() -> Self {
        PartitionCache {
            shards: std::array::from_fn(|_| FxHashMap::default()),
            summaries: FxHashMap::default(),
            stats: CacheStats::default(),
            resident_bytes: 0,
            budget_bytes: None,
            scratch: ProductScratch::new(),
            base_maps: Vec::new(),
        }
    }
}

impl PartitionCache {
    /// Empty cache, unbounded.
    pub fn new() -> Self {
        PartitionCache::default()
    }

    /// Empty cache evicting down to `budget_bytes` of resident partitions
    /// (`None` = unbounded). Bases are never evicted, so tiny budgets are
    /// soft floors, not hard caps.
    pub fn with_budget(budget_bytes: Option<usize>) -> Self {
        PartitionCache {
            budget_bytes,
            ..PartitionCache::default()
        }
    }

    fn shard(&self, attrs: AttrSet) -> usize {
        attrs.shard(N_SHARDS)
    }

    /// Insert a base partition (single attribute or `Π_∅`).
    pub fn insert(&mut self, attrs: AttrSet, partition: Partition) {
        self.stats.partitions_built += 1;
        self.account_insert(attrs, partition);
    }

    /// Build `Π_{attrs}` from a value column through the reusable scratch
    /// and cache it.
    pub fn insert_column(&mut self, attrs: AttrSet, values: &[Option<u64>]) {
        let p = Partition::from_column_in(values, &mut self.scratch);
        self.insert(attrs, p);
    }

    fn account_insert(&mut self, attrs: AttrSet, partition: Partition) {
        // Replacing a base partition invalidates its cached group map.
        if attrs.len() == 1 {
            if let Some(slot) = attrs.iter().next().and_then(|a| self.base_maps.get_mut(a)) {
                *slot = None;
            }
        }
        // A full partition supersedes any summary for the same key.
        if self.summaries.remove(&attrs).is_some() {
            self.resident_bytes -= SUMMARY_BYTES;
        }
        let shard = self.shard(attrs);
        let bytes = partition.heap_bytes();
        if let Some(old) = self.shards[shard].insert(attrs, partition) {
            self.resident_bytes -= old.heap_bytes();
        }
        self.resident_bytes += bytes;
        self.stats.peak_resident_bytes = self.stats.peak_resident_bytes.max(self.resident_bytes);
        if let Some(budget) = self.budget_bytes {
            if self.resident_bytes > budget {
                self.enforce_budget(attrs);
            }
        }
    }

    /// Evict non-base partitions, shallowest level first (deterministic
    /// tie-break on the bitset), until residency fits the budget. The
    /// just-inserted `keep` entry is spared so an oversized insert does not
    /// evict itself.
    fn enforce_budget(&mut self, keep: AttrSet) {
        let budget = self.budget_bytes.expect("called only with a budget");
        let mut victims: Vec<(usize, u128, AttrSet)> = self
            .shards
            .iter()
            .flat_map(|m| m.keys())
            .filter(|k| k.len() >= 2 && **k != keep)
            .map(|k| (k.len(), k.bits(), *k))
            .collect();
        victims.sort_unstable();
        for (_, _, key) in victims {
            if self.resident_bytes <= budget {
                break;
            }
            let shard = self.shard(key);
            if let Some(old) = self.shards[shard].remove(&key) {
                self.resident_bytes -= old.heap_bytes();
                self.stats.evictions += 1;
            }
        }
    }

    /// Lookup.
    pub fn get(&self, attrs: AttrSet) -> Option<&Partition> {
        self.shards[self.shard(attrs)].get(&attrs)
    }

    /// Remove and return `Π_{attrs}`. Not an eviction: the caller takes
    /// ownership (typically to pin the partition across inserts that could
    /// evict it under a byte budget) and usually [`Self::adopt`]s it back.
    pub fn take(&mut self, attrs: AttrSet) -> Option<Partition> {
        let shard = self.shard(attrs);
        let taken = self.shards[shard].remove(&attrs);
        if let Some(p) = &taken {
            self.resident_bytes -= p.heap_bytes();
        }
        taken
    }

    /// Adopt a partition computed elsewhere (a speculative level worker)
    /// without bumping `partitions_built` — the worker already counted it
    /// in the stats it hands back. No-op if `attrs` is already resident,
    /// so merge order only decides which of two *equal* duplicates stays.
    pub fn adopt(&mut self, attrs: AttrSet, partition: Partition) {
        if self.get(attrs).is_none() {
            self.account_insert(attrs, partition);
        }
    }

    /// Is a partition cached for `attrs`?
    pub fn contains(&mut self, attrs: AttrSet) -> bool {
        let hit = self.shards[self.shard(attrs)].contains_key(&attrs);
        if hit {
            self.stats.hits += 1;
        }
        hit
    }

    /// Get `Π_{a∪b}`, computing `Π_a · Π_b` and caching it if necessary.
    ///
    /// # Panics
    /// Panics if `Π_a` or `Π_b` is not already cached.
    pub fn product(&mut self, a: AttrSet, b: AttrSet) -> &Partition {
        let target = a.union(b);
        let shard = self.shard(target);
        if !self.shards[shard].contains_key(&target) {
            self.stats.misses += 1;
            // Move the scratch out so the operand borrows (into the shard
            // maps) and the scratch borrow don't alias through `self`.
            let mut scratch = std::mem::take(&mut self.scratch);
            let pa = self.get(a).expect("operand partition must be cached");
            let pb = self.get(b).expect("operand partition must be cached");
            let prod = pa.product_in(pb, &mut scratch);
            self.scratch = scratch;
            self.stats.products += 1;
            self.stats.products_materialized += 1;
            self.stats.partitions_built += 1;
            self.account_insert(target, prod);
        } else {
            self.stats.hits += 1;
        }
        self.get(target).expect("just inserted")
    }

    /// Exact summary of `Π_{attrs}` if it is known without computing
    /// anything: from the summary tier (counted as a `summary_hit`) or
    /// derived from a resident full partition (not counted — mirror of the
    /// non-counting [`Self::get`]).
    pub fn summary_of(&mut self, attrs: AttrSet) -> Option<PartitionSummary> {
        if let Some(&s) = self.summaries.get(&attrs) {
            self.stats.summary_hits += 1;
            return Some(s);
        }
        self.get(attrs).map(Partition::summary)
    }

    /// Exact error of `Π_{attrs}` if known, O(1) from either tier (no
    /// group scan, unlike [`Self::summary_of`] on a full partition).
    pub fn error_of(&mut self, attrs: AttrSet) -> Option<usize> {
        if let Some(s) = self.summaries.get(&attrs) {
            self.stats.summary_hits += 1;
            return Some(s.error);
        }
        self.get(attrs).map(Partition::error)
    }

    /// Run the error-only kernel on `Π_a · Π_b` and file the exact outcome
    /// in the summary tier. An early exit ([`ErrorOnlyProduct::BelowBound`])
    /// stores nothing: the result is a proof about the *bound*, not a
    /// reusable digest.
    ///
    /// # Panics
    /// Panics if `Π_a` or `Π_b` is not already cached in the full tier.
    pub fn product_summary(
        &mut self,
        a: AttrSet,
        b: AttrSet,
        bound: Option<usize>,
    ) -> ErrorOnlyProduct {
        let target = a.union(b);
        // Move the scratch out so the operand borrows (into the shard
        // maps) and the scratch borrow don't alias through `self`.
        let mut scratch = std::mem::take(&mut self.scratch);
        let pa = self.get(a).expect("operand partition must be cached");
        let pb = self.get(b).expect("operand partition must be cached");
        let outcome = pa.product_error_in(pb, &mut scratch, bound);
        self.scratch = scratch;
        self.stats.products += 1;
        self.stats.products_error_only += 1;
        match outcome {
            ErrorOnlyProduct::Exact(s) => self.insert_summary(target, s),
            ErrorOnlyProduct::BelowBound => self.stats.early_exits += 1,
        }
        outcome
    }

    /// Error-only summary of `Π_{parent ∪ {attr}}` by refining the resident
    /// `Π_parent` through the cached base map of `attr` — the fast path of
    /// the tiered kernel. Unlike [`Self::product_summary`] there is no probe
    /// table to fill or reset per call: the base lookup is built once per
    /// attribute (O(n), amortized) and the product costs only a scan of the
    /// parent's stripped tuples, stopping early under `bound`. Outcomes are
    /// filed exactly like `product_summary`.
    ///
    /// # Panics
    /// Panics if `Π_parent` or the base `Π_{attr}` is not cached.
    pub fn product_summary_base(
        &mut self,
        parent: AttrSet,
        attr: usize,
        bound: Option<usize>,
    ) -> ErrorOnlyProduct {
        let target = parent.union(AttrSet::single(attr));
        if self.base_maps.len() <= attr {
            self.base_maps.resize_with(attr + 1, || None);
        }
        if self.base_maps[attr].is_none() {
            let base = self
                .get(AttrSet::single(attr))
                .expect("base partition must be cached");
            self.base_maps[attr] = Some(GroupMap::new(base));
        }
        // Move the scratch and map out so the parent borrow (into the shard
        // maps) and the mutable scratch borrow don't alias through `self`.
        let mut scratch = std::mem::take(&mut self.scratch);
        let map = self.base_maps[attr].take().expect("just built");
        let pa = self.get(parent).expect("parent partition must be cached");
        let outcome = pa.error_refine_in(&map, &mut scratch, bound);
        self.scratch = scratch;
        self.base_maps[attr] = Some(map);
        self.stats.products += 1;
        self.stats.products_error_only += 1;
        match outcome {
            ErrorOnlyProduct::Exact(s) => self.insert_summary(target, s),
            ErrorOnlyProduct::BelowBound => self.stats.early_exits += 1,
        }
        outcome
    }

    /// File an exact summary in the summary tier (no-op if the full
    /// partition is resident — the full tier already answers for it).
    pub fn insert_summary(&mut self, attrs: AttrSet, summary: PartitionSummary) {
        if self.get(attrs).is_some() {
            return;
        }
        if self.summaries.insert(attrs, summary).is_none() {
            self.resident_bytes += SUMMARY_BYTES;
            self.stats.peak_resident_bytes =
                self.stats.peak_resident_bytes.max(self.resident_bytes);
        }
    }

    /// Drop partitions for attribute sets of size `level` or smaller except
    /// the bases (size ≤ 1); level-wise algorithms never revisit them.
    /// Stale summaries are dropped on the same schedule but are not counted
    /// as evictions (nothing rebuildable was lost — 32 bytes of digest).
    pub fn evict_below(&mut self, level: usize) {
        let mut freed = 0usize;
        let mut evicted = 0usize;
        for shard in &mut self.shards {
            shard.retain(|k, v| {
                let n = k.len();
                let keep = n <= 1 || n > level;
                if !keep {
                    freed += v.heap_bytes();
                    evicted += 1;
                }
                keep
            });
        }
        let mut freed_summaries = 0usize;
        self.summaries.retain(|k, _| {
            let n = k.len();
            let keep = n <= 1 || n > level;
            if !keep {
                freed_summaries += 1;
            }
            keep
        });
        self.resident_bytes -= freed + freed_summaries * SUMMARY_BYTES;
        self.stats.evictions += evicted;
    }

    /// Work counters so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Bytes of partition payload currently resident.
    pub fn resident_bytes(&self) -> usize {
        self.resident_bytes
    }

    /// The configured byte budget, if any.
    pub fn budget_bytes(&self) -> Option<usize> {
        self.budget_bytes
    }

    /// Number of cached partitions.
    pub fn len(&self) -> usize {
        self.shards.iter().map(FxHashMap::len).sum()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(FxHashMap::is_empty)
    }

    /// Fold another traversal's counters into this cache's stats (used
    /// when parallel workers run against scoped caches).
    pub fn absorb_stats(&mut self, other: &CacheStats) {
        self.stats.absorb(other);
    }

    /// Move all entries of `other` into `self` (deterministic: entries are
    /// keyed, not ordered). Used to merge worker results after a parallel
    /// level pass.
    pub fn merge(&mut self, other: PartitionCache) {
        for shard in other.shards {
            for (attrs, partition) in shard {
                if self.get(attrs).is_none() {
                    self.account_insert(attrs, partition);
                }
            }
        }
        for (attrs, summary) in other.summaries {
            self.insert_summary(attrs, summary);
        }
        self.stats.absorb(&other.stats);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn product_builds_and_caches() {
        let mut c = PartitionCache::new();
        let a = AttrSet::single(0);
        let b = AttrSet::single(1);
        c.insert(
            a,
            Partition::from_column(&[Some(1), Some(1), Some(2), Some(2)]),
        );
        c.insert(
            b,
            Partition::from_column(&[Some(1), Some(2), Some(1), Some(1)]),
        );
        let ab = c.product(a, b).clone();
        assert_eq!(ab.n_groups(), 1);
        assert_eq!(ab.group(0), &[2, 3]);
        // Second call hits the cache.
        let before = c.stats().products;
        let _ = c.product(a, b);
        assert_eq!(c.stats().products, before);
        assert!(c.stats().hits >= 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    #[should_panic(expected = "must be cached")]
    fn product_requires_operands() {
        let mut c = PartitionCache::new();
        let _ = c.product(AttrSet::single(0), AttrSet::single(1));
    }

    #[test]
    fn evict_below_keeps_bases_and_upper_levels() {
        let mut c = PartitionCache::new();
        let a = AttrSet::single(0);
        let b = AttrSet::single(1);
        let d = AttrSet::single(2);
        for s in [a, b, d] {
            c.insert(s, Partition::universal(3));
        }
        let _ = c.product(a, b);
        let _ = c.product(a.union(b), d);
        assert_eq!(c.len(), 5);
        c.evict_below(2);
        // Bases (3) stay, {a,b} evicted, {a,b,d} stays.
        assert_eq!(c.len(), 4);
        assert!(c.get(a.union(b)).is_none());
        assert!(c.get(a.union(b).union(d)).is_some());
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn residency_accounting_matches_contents() {
        let mut c = PartitionCache::new();
        let col: Vec<Option<u64>> = (0..100).map(|i| Some(i % 7)).collect();
        c.insert_column(AttrSet::single(0), &col);
        c.insert_column(AttrSet::single(1), &col);
        let expected: usize = [AttrSet::single(0), AttrSet::single(1)]
            .iter()
            .map(|&s| c.get(s).unwrap().heap_bytes())
            .sum();
        assert_eq!(c.resident_bytes(), expected);
        assert!(c.stats().peak_resident_bytes >= expected);
        c.evict_below(usize::MAX);
        // Bases survive a full eviction sweep.
        assert_eq!(c.len(), 2);
        assert_eq!(c.resident_bytes(), expected);
    }

    #[test]
    fn budget_evicts_lower_levels_first() {
        // Budget below total forces eviction; bases and the newest entry
        // must survive.
        let col_a: Vec<Option<u64>> = (0..200).map(|i| Some(i % 2)).collect();
        let col_b: Vec<Option<u64>> = (0..200).map(|i| Some(i % 4)).collect();
        let col_c: Vec<Option<u64>> = (0..200).map(|i| Some(i % 8)).collect();
        let a = AttrSet::single(0);
        let b = AttrSet::single(1);
        let d = AttrSet::single(2);
        let mut unbounded = PartitionCache::new();
        unbounded.insert_column(a, &col_a);
        unbounded.insert_column(b, &col_b);
        unbounded.insert_column(d, &col_c);
        let base_bytes = unbounded.resident_bytes();

        let mut c = PartitionCache::with_budget(Some(base_bytes + 900));
        c.insert_column(a, &col_a);
        c.insert_column(b, &col_b);
        c.insert_column(d, &col_c);
        let _ = c.product(a, b);
        let _ = c.product(a.union(b), d);
        // The pair {a,b} (level 2) is the designated victim once the
        // budget trips; the level-3 result must still be present.
        assert!(c.get(a.union(b).union(d)).is_some());
        assert!(c.stats().evictions > 0 || c.resident_bytes() <= base_bytes + 900);
        for s in [a, b, d] {
            assert!(c.get(s).is_some(), "bases are never evicted");
        }
    }

    #[test]
    fn summary_tier_answers_without_materializing() {
        let mut c = PartitionCache::new();
        let a = AttrSet::single(0);
        let b = AttrSet::single(1);
        c.insert(
            a,
            Partition::from_column(&[Some(1), Some(1), Some(2), Some(2)]),
        );
        c.insert(
            b,
            Partition::from_column(&[Some(1), Some(2), Some(1), Some(1)]),
        );
        let ab = a.union(b);
        let outcome = c.product_summary(a, b, None);
        let expected = c.get(a).unwrap().product(c.get(b).unwrap()).summary();
        assert_eq!(outcome, ErrorOnlyProduct::Exact(expected));
        assert!(c.get(ab).is_none(), "no CSR partition was built");
        assert_eq!(c.summary_of(ab), Some(expected));
        assert_eq!(c.error_of(ab), Some(expected.error));
        let s = c.stats();
        assert_eq!(s.products, 1);
        assert_eq!(s.products_error_only, 1);
        assert_eq!(s.products_materialized, 0);
        assert_eq!(s.partitions_built, 2, "only the bases");
        assert!(s.summary_hits >= 2);
        // Materializing the same node later replaces the summary and keeps
        // residency accounting balanced.
        let resident_with_summary = c.resident_bytes();
        let full = c.product(a, b).clone();
        assert_eq!(full.summary(), expected);
        assert_eq!(
            c.resident_bytes(),
            resident_with_summary - SUMMARY_BYTES + full.heap_bytes()
        );
    }

    #[test]
    fn product_summary_early_exit_stores_nothing() {
        let mut c = PartitionCache::new();
        let a = AttrSet::single(0);
        let b = AttrSet::single(1);
        // One big group split in two by `b`: error drops 4 → 3.
        c.insert(a, Partition::universal(6));
        c.insert(
            b,
            Partition::from_column(&[Some(1), Some(1), Some(1), Some(2), Some(2), Some(2)]),
        );
        let outcome = c.product_summary(a, b, Some(5));
        assert_eq!(outcome, ErrorOnlyProduct::BelowBound);
        assert_eq!(c.summary_of(a.union(b)), None);
        assert_eq!(c.stats().early_exits, 1);
        // Eviction drops stale summaries without counting them.
        let exact = c.product_summary(a, b, None);
        assert!(matches!(exact, ErrorOnlyProduct::Exact(_)));
        let resident = c.resident_bytes();
        c.evict_below(2);
        assert_eq!(c.summary_of(a.union(b)), None);
        assert_eq!(c.resident_bytes(), resident - SUMMARY_BYTES);
        assert_eq!(c.stats().evictions, 0);
    }

    #[test]
    fn merge_prefers_existing_entries_and_folds_stats() {
        let mut left = PartitionCache::new();
        let mut right = PartitionCache::new();
        let a = AttrSet::single(0);
        let b = AttrSet::single(1);
        left.insert(a, Partition::universal(4));
        right.insert(a, Partition::universal(4));
        right.insert(b, Partition::universal(4));
        let right_built = right.stats().partitions_built;
        left.merge(right);
        assert_eq!(left.len(), 2);
        assert_eq!(left.stats().partitions_built, 1 + right_built);
    }
}
