//! Memoized partitions per attribute set, with traversal counters.
//!
//! The lattice algorithms construct `Π_A` for many attribute sets `A`; the
//! cache avoids recomputation when several lattice edges need the same
//! partition and exposes the counters the pruning-ablation experiment
//! (reconstructed Figure 7) reports.

use std::collections::HashMap;

use crate::attrset::AttrSet;
use crate::partition::Partition;

/// Counters describing how much work a lattice traversal did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lattice nodes whose partition was materialized.
    pub partitions_built: usize,
    /// Partition products computed.
    pub products: usize,
    /// Cache hits (partition already present).
    pub hits: usize,
}

/// A memo table `AttrSet → Partition`.
#[derive(Debug, Default)]
pub struct PartitionCache {
    map: HashMap<AttrSet, Partition>,
    stats: CacheStats,
}

impl PartitionCache {
    /// Empty cache.
    pub fn new() -> Self {
        PartitionCache::default()
    }

    /// Insert a base partition (single attribute or `Π_∅`).
    pub fn insert(&mut self, attrs: AttrSet, partition: Partition) {
        self.stats.partitions_built += 1;
        self.map.insert(attrs, partition);
    }

    /// Lookup.
    pub fn get(&self, attrs: AttrSet) -> Option<&Partition> {
        self.map.get(&attrs)
    }

    /// Is a partition cached for `attrs`?
    pub fn contains(&mut self, attrs: AttrSet) -> bool {
        let hit = self.map.contains_key(&attrs);
        if hit {
            self.stats.hits += 1;
        }
        hit
    }

    /// Get `Π_{a∪b}`, computing `Π_a · Π_b` and caching it if necessary.
    ///
    /// # Panics
    /// Panics if `Π_a` or `Π_b` is not already cached.
    pub fn product(&mut self, a: AttrSet, b: AttrSet) -> &Partition {
        let target = a.union(b);
        if !self.map.contains_key(&target) {
            let pa = self.map.get(&a).expect("operand partition must be cached");
            let pb = self.map.get(&b).expect("operand partition must be cached");
            let prod = pa.product(pb);
            self.stats.products += 1;
            self.stats.partitions_built += 1;
            self.map.insert(target, prod);
        } else {
            self.stats.hits += 1;
        }
        self.map.get(&target).expect("just inserted")
    }

    /// Drop partitions for attribute sets of size `level` or smaller except
    /// the bases (size ≤ 1); level-wise algorithms never revisit them.
    pub fn evict_below(&mut self, level: usize) {
        self.map.retain(|k, _| {
            let n = k.len();
            n <= 1 || n > level
        });
    }

    /// Work counters so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Number of cached partitions.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn product_builds_and_caches() {
        let mut c = PartitionCache::new();
        let a = AttrSet::single(0);
        let b = AttrSet::single(1);
        c.insert(
            a,
            Partition::from_column(&[Some(1), Some(1), Some(2), Some(2)]),
        );
        c.insert(
            b,
            Partition::from_column(&[Some(1), Some(2), Some(1), Some(1)]),
        );
        let ab = c.product(a, b).clone();
        assert_eq!(ab.groups(), &[vec![2, 3]]);
        // Second call hits the cache.
        let before = c.stats().products;
        let _ = c.product(a, b);
        assert_eq!(c.stats().products, before);
        assert!(c.stats().hits >= 1);
    }

    #[test]
    #[should_panic(expected = "must be cached")]
    fn product_requires_operands() {
        let mut c = PartitionCache::new();
        let _ = c.product(AttrSet::single(0), AttrSet::single(1));
    }

    #[test]
    fn evict_below_keeps_bases_and_upper_levels() {
        let mut c = PartitionCache::new();
        let a = AttrSet::single(0);
        let b = AttrSet::single(1);
        let d = AttrSet::single(2);
        for s in [a, b, d] {
            c.insert(s, Partition::universal(3));
        }
        let _ = c.product(a, b);
        let _ = c.product(a.union(b), d);
        assert_eq!(c.len(), 5);
        c.evict_below(2);
        // Bases (3) stay, {a,b} evicted, {a,b,d} stays.
        assert_eq!(c.len(), 4);
        assert!(c.get(a.union(b)).is_none());
        assert!(c.get(a.union(b).union(d)).is_some());
    }
}
