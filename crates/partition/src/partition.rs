//! Stripped attribute partitions and their products (Section 4.2).
//!
//! An *attribute partition* `Π_X` groups the tuples of a relation by their
//! values at attribute set `X`. Following the paper's footnote 5 we use
//! **stripped** partitions: singleton groups are dropped; they can never
//! witness an FD violation nor a key violation.
//!
//! Two facts drive the discovery algorithms (Lemmas 1 and 2):
//!
//! * `X → A` holds iff `Π_X ⊑ Π_{X∪{A}}` iff `Π_{X∪{A}} = Π_X`;
//! * since `Π_{X∪{A}} = Π_X · Π_{A}` always refines `Π_X`, equality can be
//!   tested in O(1) by comparing the *error measure* `e(Π) = Σ(|g| − 1)`.

/// Index of a tuple within one relation.
pub type Tuple = u32;

/// A stripped partition of a relation's tuples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    groups: Vec<Vec<Tuple>>,
    n_tuples: usize,
    error: usize,
}

impl Partition {
    /// Build from per-tuple *value identifiers*: tuples with equal
    /// `Some(v)` share a group; `None` (a missing element, i.e. ⊥) is
    /// distinct from everything including other ⊥s (strong satisfaction,
    /// Section 3.1), so those tuples are singletons and get stripped.
    pub fn from_column(values: &[Option<u64>]) -> Partition {
        let mut index: std::collections::HashMap<u64, Vec<Tuple>> =
            std::collections::HashMap::new();
        for (t, v) in values.iter().enumerate() {
            if let Some(v) = v {
                index.entry(*v).or_default().push(t as Tuple);
            }
        }
        let mut groups: Vec<Vec<Tuple>> = index.into_values().filter(|g| g.len() >= 2).collect();
        // Deterministic order: by first member.
        groups.sort_by_key(|g| g[0]);
        Partition::from_groups(groups, values.len())
    }

    /// Build from explicit groups (singletons are stripped automatically).
    pub fn from_groups(groups: Vec<Vec<Tuple>>, n_tuples: usize) -> Partition {
        let groups: Vec<Vec<Tuple>> = groups.into_iter().filter(|g| g.len() >= 2).collect();
        let error = groups.iter().map(|g| g.len() - 1).sum();
        Partition {
            groups,
            n_tuples,
            error,
        }
    }

    /// The partition `Π_∅`: all tuples in one group (or empty if the
    /// relation has fewer than two tuples).
    pub fn universal(n_tuples: usize) -> Partition {
        let groups = if n_tuples >= 2 {
            vec![(0..n_tuples as Tuple).collect()]
        } else {
            Vec::new()
        };
        Partition::from_groups(groups, n_tuples)
    }

    /// The stripped groups (each of size ≥ 2).
    pub fn groups(&self) -> &[Vec<Tuple>] {
        &self.groups
    }

    /// Number of tuples in the underlying relation.
    pub fn n_tuples(&self) -> usize {
        self.n_tuples
    }

    /// The error measure `e(Π) = Σ(|g| − 1)` over stripped groups.
    pub fn error(&self) -> usize {
        self.error
    }

    /// Size of the largest group (0 when stripped empty). The paper's
    /// `maxGrpSize == 1` key test corresponds to `max_group_size() == 0`
    /// on stripped partitions.
    pub fn max_group_size(&self) -> usize {
        self.groups.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Is the attribute set a key (every tuple distinguished)?
    pub fn is_key(&self) -> bool {
        self.groups.is_empty()
    }

    /// Linear-time stripped-partition product `Π_self · Π_other`
    /// (the TANE construction behind the paper's lines 9–10).
    pub fn product(&self, other: &Partition) -> Partition {
        debug_assert_eq!(self.n_tuples, other.n_tuples);
        // Probe table: tuple → group index in `self`.
        let mut t_of: Vec<u32> = vec![u32::MAX; self.n_tuples];
        for (i, g) in self.groups.iter().enumerate() {
            for &t in g {
                t_of[t as usize] = i as u32;
            }
        }
        let mut buckets: Vec<Vec<Tuple>> = vec![Vec::new(); self.groups.len()];
        let mut out: Vec<Vec<Tuple>> = Vec::new();
        let mut touched: Vec<u32> = Vec::new();
        for g in &other.groups {
            for &t in g {
                let i = t_of[t as usize];
                if i != u32::MAX {
                    if buckets[i as usize].is_empty() {
                        touched.push(i);
                    }
                    buckets[i as usize].push(t);
                }
            }
            for &i in &touched {
                let b = &mut buckets[i as usize];
                if b.len() >= 2 {
                    out.push(std::mem::take(b));
                } else {
                    b.clear();
                }
            }
            touched.clear();
        }
        out.sort_by_key(|g| g[0]);
        Partition::from_groups(out, self.n_tuples)
    }

    /// Does `self` refine `other` (`Π_self ⊑ Π_other`)? Every group of
    /// `self` must be contained in one group of `other`, treating stripped
    /// singletons as their own groups. Exact (not error-based); used as the
    /// Lemma 1 oracle in tests and for unrelated attribute sets.
    pub fn refines(&self, other: &Partition) -> bool {
        debug_assert_eq!(self.n_tuples, other.n_tuples);
        let gm = GroupMap::new(other);
        self.groups.iter().all(|g| {
            let first = gm.group_of(g[0]);
            // A stripped singleton in `other` cannot contain a group of ≥2.
            first.is_some() && g.iter().all(|&t| gm.group_of(t) == first)
        })
    }

    /// Lemma 2 test specialized to a product: given `sup = self · Π_other`,
    /// `self → other` holds iff the errors agree.
    pub fn same_as_refining(&self, sup: &Partition) -> bool {
        debug_assert!(sup.error <= self.error, "sup must refine self");
        self.error == sup.error
    }
}

/// Tuple → group lookup for one partition; `None` means the tuple is a
/// stripped singleton.
pub struct GroupMap {
    map: Vec<u32>,
}

impl GroupMap {
    /// Build the lookup (O(n) in the relation size).
    pub fn new(p: &Partition) -> GroupMap {
        let mut map = vec![u32::MAX; p.n_tuples()];
        for (i, g) in p.groups().iter().enumerate() {
            for &t in g {
                map[t as usize] = i as u32;
            }
        }
        GroupMap { map }
    }

    /// Group index of `t`, or `None` if `t` is in a stripped singleton.
    pub fn group_of(&self, t: Tuple) -> Option<u32> {
        match self.map[t as usize] {
            u32::MAX => None,
            g => Some(g),
        }
    }

    /// Does the partition separate `t1` and `t2` (put them in different
    /// groups)? Singletons are separate from everything.
    pub fn separates(&self, t1: Tuple, t2: Tuple) -> bool {
        debug_assert_ne!(t1, t2, "a tuple is never separated from itself");
        match (self.group_of(t1), self.group_of(t2)) {
            (Some(a), Some(b)) => a != b,
            _ => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col(vals: &[Option<u64>]) -> Partition {
        Partition::from_column(vals)
    }

    #[test]
    fn from_column_groups_equal_values_and_strips_singletons() {
        // Values: a a b c c c, null
        let p = col(&[Some(1), Some(1), Some(2), Some(3), Some(3), Some(3), None]);
        assert_eq!(p.groups().len(), 2);
        assert_eq!(p.groups()[0], vec![0, 1]);
        assert_eq!(p.groups()[1], vec![3, 4, 5]);
        assert_eq!(p.error(), 1 + 2);
        assert_eq!(p.max_group_size(), 3);
        assert!(!p.is_key());
    }

    #[test]
    fn nulls_are_distinct_from_each_other() {
        let p = col(&[None, None, None]);
        assert!(p.is_key(), "all-null column distinguishes every tuple");
    }

    #[test]
    fn key_detection() {
        assert!(col(&[Some(1), Some(2), Some(3)]).is_key());
        assert!(!col(&[Some(1), Some(1)]).is_key());
        assert!(Partition::universal(1).is_key());
        assert!(!Partition::universal(2).is_key());
    }

    #[test]
    fn product_intersects_groups() {
        // X: {0,1,2,3} in one group; Y: {0,1} and {2,3}.
        let x = Partition::from_groups(vec![vec![0, 1, 2, 3]], 4);
        let y = Partition::from_groups(vec![vec![0, 1], vec![2, 3]], 4);
        let xy = x.product(&y);
        assert_eq!(xy.groups(), &[vec![0, 1], vec![2, 3]]);
        // Product is commutative on the group structure.
        let yx = y.product(&x);
        assert_eq!(xy, yx);
    }

    #[test]
    fn product_strips_new_singletons() {
        let x = Partition::from_groups(vec![vec![0, 1, 2]], 3);
        let y = Partition::from_groups(vec![vec![0, 1]], 3); // 2 is singleton
        let xy = x.product(&y);
        assert_eq!(xy.groups(), &[vec![0, 1]]);
        assert_eq!(xy.error(), 1);
    }

    #[test]
    fn product_matches_column_product() {
        // Π_{AB} computed by product equals Π computed from paired values.
        let a = [Some(1), Some(1), Some(2), Some(2), Some(1), None];
        let b = [Some(9), Some(9), Some(9), Some(8), Some(8), Some(9)];
        let pa = col(&a);
        let pb = col(&b);
        let prod = pa.product(&pb);
        let paired: Vec<Option<u64>> = a
            .iter()
            .zip(b.iter())
            .map(|(x, y)| match (x, y) {
                (Some(x), Some(y)) => Some(x * 1000 + y),
                _ => None,
            })
            .collect();
        assert_eq!(prod, col(&paired));
    }

    #[test]
    fn refinement_oracle() {
        let coarse = col(&[Some(1), Some(1), Some(1), Some(2), Some(2)]);
        let fine = col(&[Some(1), Some(1), Some(3), Some(2), Some(2)]);
        assert!(fine.refines(&coarse));
        assert!(!coarse.refines(&fine));
        assert!(fine.refines(&fine));
        assert!(
            Partition::from_groups(vec![], 5).refines(&coarse),
            "key refines all"
        );
        assert!(coarse.refines(&Partition::universal(5)));
    }

    #[test]
    fn lemma_2_error_equality_matches_exact_refinement() {
        // X→A iff Π_X = Π_X·Π_A iff errors equal.
        let x = col(&[Some(1), Some(1), Some(2), Some(2)]);
        let a_held = col(&[Some(7), Some(7), Some(8), Some(8)]); // X→A holds
        let a_viol = col(&[Some(7), Some(6), Some(8), Some(8)]); // violated by t0,t1
        let xa1 = x.product(&a_held);
        let xa2 = x.product(&a_viol);
        assert!(x.same_as_refining(&xa1));
        assert!(!x.same_as_refining(&xa2));
    }

    #[test]
    fn group_map_separation() {
        let p = col(&[Some(1), Some(1), Some(2), Some(2), Some(3)]);
        let gm = GroupMap::new(&p);
        assert!(!gm.separates(0, 1));
        assert!(gm.separates(0, 2));
        assert!(gm.separates(0, 4), "singleton separates from everything");
        assert_eq!(gm.group_of(4), None);
    }

    #[test]
    fn universal_partition_separates_nothing() {
        let p = Partition::universal(3);
        let gm = GroupMap::new(&p);
        assert!(!gm.separates(0, 1));
        assert!(!gm.separates(1, 2));
    }
}
