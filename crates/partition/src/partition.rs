//! Stripped attribute partitions and their products (Section 4.2).
//!
//! An *attribute partition* `Π_X` groups the tuples of a relation by their
//! values at attribute set `X`. Following the paper's footnote 5 we use
//! **stripped** partitions: singleton groups are dropped; they can never
//! witness an FD violation nor a key violation.
//!
//! Two facts drive the discovery algorithms (Lemmas 1 and 2):
//!
//! * `X → A` holds iff `Π_X ⊑ Π_{X∪{A}}` iff `Π_{X∪{A}} = Π_X`;
//! * since `Π_{X∪{A}} = Π_X · Π_{A}` always refines `Π_X`, equality can be
//!   tested in O(1) by comparing the *error measure* `e(Π) = Σ(|g| − 1)`.
//!
//! ## Representation
//!
//! A partition is stored CSR-style: one contiguous `tuples` array holding
//! every group member back to back, plus an `offsets` array with group
//! boundaries (`group g = tuples[offsets[g]..offsets[g+1]]`). Compared to
//! the textbook `Vec<Vec<Tuple>>` this is one allocation instead of one
//! per group, keeps a whole partition in two cache-friendly streams, and
//! lets the product loop write its output with plain `extend` calls.
//!
//! ## Canonical group order
//!
//! Partitions are kept in a canonical order — groups sorted by their first
//! (smallest) member, members ascending within a group — so structurally
//! equal partitions are representationally equal (`==` on the CSR arrays)
//! and every traversal order downstream is deterministic.
//!
//! * [`Partition::from_column`] gets this for free: groups are emitted in
//!   first-touch order of a forward scan, which is exactly ascending
//!   first-member order. No sort is needed.
//! * [`Partition::product`] emits, per left-operand group, sub-groups in
//!   first-touch order of that group's (ascending) member scan — sorted
//!   *within* the run, but runs from different left groups interleave:
//!   with left groups `{0,100,101}`, `{1,2}` and a right operand joining
//!   `{100,101}` and `{1,2}`, the runs come out `[100,101]` then `[1,2]`.
//!   The product therefore sorts *group descriptors* (start/len pairs) by
//!   first member — O(G log G) on descriptors, never on tuples — and skips
//!   even that when the emission happened to be globally sorted (common:
//!   products against few-group operands).

use crate::scratch::ProductScratch;

/// Index of a tuple within one relation.
pub type Tuple = u32;

/// A stripped partition of a relation's tuples in CSR layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// Group members, back to back, in canonical order.
    tuples: Vec<Tuple>,
    /// Group boundaries: group `g` is `tuples[offsets[g]..offsets[g+1]]`.
    /// Always non-empty; a partition with no groups stores `[0]`.
    offsets: Vec<u32>,
    n_tuples: usize,
    error: usize,
}

impl Partition {
    /// Build from per-tuple *value identifiers*: tuples with equal
    /// `Some(v)` share a group; `None` (a missing element, i.e. ⊥) is
    /// distinct from everything including other ⊥s (strong satisfaction,
    /// Section 3.1), so those tuples are singletons and get stripped.
    ///
    /// Allocates fresh scratch; hot paths should prefer
    /// [`Partition::from_column_in`] with a reused [`ProductScratch`].
    pub fn from_column(values: &[Option<u64>]) -> Partition {
        Partition::from_column_in(values, &mut ProductScratch::new())
    }

    /// [`Partition::from_column`] against caller-owned scratch. In steady
    /// state the only allocations are the two result arrays.
    ///
    /// A forward scan assigns group slots in first-touch order and counts
    /// members; a second pass places tuples. First-touch order *is*
    /// ascending first-member order, so the result is canonical without
    /// sorting.
    pub fn from_column_in(values: &[Option<u64>], scratch: &mut ProductScratch) -> Partition {
        let n = values.len();
        let slots = &mut scratch.column_slots;
        let counts = &mut scratch.counts;
        let slot_of = &mut scratch.slot_of;
        slots.clear();
        counts.clear();
        slot_of.clear();
        slot_of.reserve(n);

        for v in values {
            match v {
                Some(v) => {
                    let next = counts.len() as u32;
                    let slot = *slots.entry(*v).or_insert(next);
                    if slot == next {
                        counts.push(0);
                    }
                    counts[slot as usize] += 1;
                    slot_of.push(slot);
                }
                None => slot_of.push(u32::MAX),
            }
        }

        // Turn counts into output cursors, dropping singleton slots.
        let mut n_members = 0usize;
        let mut n_groups = 0usize;
        for c in counts.iter() {
            if *c >= 2 {
                n_members += *c as usize;
                n_groups += 1;
            }
        }
        let mut tuples: Vec<Tuple> = vec![0; n_members];
        let mut offsets: Vec<u32> = Vec::with_capacity(n_groups + 1);
        offsets.push(0);
        let mut cursor = 0u32;
        for c in counts.iter_mut() {
            let size = *c;
            if size >= 2 {
                *c = cursor; // slot's write cursor
                cursor += size;
                offsets.push(cursor);
            } else {
                *c = u32::MAX; // stripped singleton slot
            }
        }
        for (t, &slot) in slot_of.iter().enumerate() {
            if slot != u32::MAX {
                let cur = counts[slot as usize];
                if cur != u32::MAX {
                    tuples[cur as usize] = t as Tuple;
                    counts[slot as usize] = cur + 1;
                }
            }
        }
        let error = n_members - n_groups;
        Partition {
            tuples,
            offsets,
            n_tuples: n,
            error,
        }
    }

    /// Build from explicit groups (singletons are stripped automatically).
    /// Group order is preserved; pass groups in canonical order if the
    /// partition will be compared with `==`.
    pub fn from_groups(groups: Vec<Vec<Tuple>>, n_tuples: usize) -> Partition {
        let mut tuples = Vec::new();
        let mut offsets = vec![0u32];
        for g in groups {
            if g.len() >= 2 {
                tuples.extend_from_slice(&g);
                offsets.push(tuples.len() as u32);
            }
        }
        let error = tuples.len() - (offsets.len() - 1);
        Partition {
            tuples,
            offsets,
            n_tuples,
            error,
        }
    }

    /// The partition `Π_∅`: all tuples in one group (or empty if the
    /// relation has fewer than two tuples).
    pub fn universal(n_tuples: usize) -> Partition {
        if n_tuples >= 2 {
            Partition {
                tuples: (0..n_tuples as Tuple).collect(),
                offsets: vec![0, n_tuples as u32],
                n_tuples,
                error: n_tuples - 1,
            }
        } else {
            Partition {
                tuples: Vec::new(),
                offsets: vec![0],
                n_tuples,
                error: 0,
            }
        }
    }

    /// Number of stripped groups.
    pub fn n_groups(&self) -> usize {
        self.offsets.len() - 1
    }

    /// The `i`-th stripped group (size ≥ 2).
    pub fn group(&self, i: usize) -> &[Tuple] {
        &self.tuples[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Iterate the stripped groups (each of size ≥ 2) in canonical order.
    pub fn groups(&self) -> Groups<'_> {
        Groups {
            tuples: &self.tuples,
            offsets: &self.offsets,
            front: 0,
            back: self.offsets.len() - 1,
        }
    }

    /// All group members, back to back (CSR payload).
    pub fn members(&self) -> &[Tuple] {
        &self.tuples
    }

    /// Number of tuples in the underlying relation.
    pub fn n_tuples(&self) -> usize {
        self.n_tuples
    }

    /// The error measure `e(Π) = Σ(|g| − 1)` over stripped groups.
    pub fn error(&self) -> usize {
        self.error
    }

    /// Heap footprint of the CSR arrays, for cache budget accounting.
    pub fn heap_bytes(&self) -> usize {
        self.tuples.capacity() * std::mem::size_of::<Tuple>()
            + self.offsets.capacity() * std::mem::size_of::<u32>()
    }

    /// Size of the largest group (0 when stripped empty). The paper's
    /// `maxGrpSize == 1` key test corresponds to `max_group_size() == 0`
    /// on stripped partitions.
    pub fn max_group_size(&self) -> usize {
        self.groups().map(<[Tuple]>::len).max().unwrap_or(0)
    }

    /// Is the attribute set a key (every tuple distinguished)?
    pub fn is_key(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Linear-time stripped-partition product `Π_self · Π_other`
    /// (the TANE construction behind the paper's lines 9–10).
    ///
    /// Allocates fresh scratch; hot paths should prefer
    /// [`Partition::product_in`] with a reused [`ProductScratch`].
    pub fn product(&self, other: &Partition) -> Partition {
        self.product_in(other, &mut ProductScratch::new())
    }

    /// [`Partition::product`] against caller-owned scratch. In steady
    /// state the only allocations are the two result arrays.
    pub fn product_in(&self, other: &Partition, scratch: &mut ProductScratch) -> Partition {
        debug_assert_eq!(self.n_tuples, other.n_tuples);
        // Probe table: tuple → group index in `self`. Entries are reset
        // after the scan (only `self`'s members were written), so the
        // buffer carries over between products without a full clear.
        let probe = &mut scratch.probe;
        if probe.len() < self.n_tuples {
            probe.resize(self.n_tuples, u32::MAX);
        }
        for (i, g) in self.groups().enumerate() {
            for &t in g {
                probe[t as usize] = i as u32;
            }
        }
        if scratch.bucket_spans.len() < self.n_groups() {
            scratch.bucket_spans.resize(self.n_groups(), (0, 0));
        }
        let out_tuples = &mut scratch.out_tuples;
        let out_groups = &mut scratch.out_groups;
        out_tuples.clear();
        out_groups.clear();
        let mut sorted = true;
        let mut prev_first = 0 as Tuple;
        for g in other.groups() {
            // Pass 1: count this group's members per left bucket.
            for &t in g {
                let i = probe[t as usize];
                if i != u32::MAX {
                    let span = &mut scratch.bucket_spans[i as usize];
                    if span.1 == 0 {
                        scratch.touched.push(i);
                    }
                    span.1 += 1;
                }
            }
            // Lay the buckets out back to back in the flat arena,
            // first-touch order; the span start doubles as pass 2's write
            // cursor (ending at the bucket's end).
            let mut cursor = 0u32;
            for &i in &scratch.touched {
                let span = &mut scratch.bucket_spans[i as usize];
                span.0 = cursor;
                cursor += span.1;
            }
            if scratch.bucket_data.len() < cursor as usize {
                scratch.bucket_data.resize(cursor as usize, 0);
            }
            // Pass 2: place members (ascending within each bucket).
            for &t in g {
                let i = probe[t as usize];
                if i != u32::MAX {
                    let span = &mut scratch.bucket_spans[i as usize];
                    scratch.bucket_data[span.0 as usize] = t;
                    span.0 += 1;
                }
            }
            // Touch order is first-member-ascending *within* this group's
            // scan (members ascend), so each run lands sorted; see the
            // module docs for why runs can interleave across groups.
            for &i in &scratch.touched {
                let (end, len) = scratch.bucket_spans[i as usize];
                if len >= 2 {
                    let bucket = &scratch.bucket_data[(end - len) as usize..end as usize];
                    let first = bucket[0];
                    if out_groups.is_empty() || first > prev_first {
                        prev_first = first;
                    } else {
                        sorted = false;
                    }
                    let start = out_tuples.len() as u32;
                    out_tuples.extend_from_slice(bucket);
                    out_groups.push((start, len));
                }
                scratch.bucket_spans[i as usize] = (0, 0);
            }
            scratch.touched.clear();
        }
        // Reset only the probe entries this product wrote.
        for &t in &self.tuples {
            probe[t as usize] = u32::MAX;
        }
        if !sorted {
            out_groups.sort_unstable_by_key(|&(start, _)| out_tuples[start as usize]);
        }
        // Materialize: exactly two allocations.
        let mut tuples: Vec<Tuple> = Vec::with_capacity(out_tuples.len());
        let mut offsets: Vec<u32> = Vec::with_capacity(out_groups.len() + 1);
        offsets.push(0);
        for &(start, len) in out_groups.iter() {
            tuples.extend_from_slice(&out_tuples[start as usize..(start + len) as usize]);
            offsets.push(tuples.len() as u32);
        }
        let error = tuples.len() - (offsets.len() - 1);
        Partition {
            tuples,
            offsets,
            n_tuples: self.n_tuples,
            error,
        }
    }

    /// Does `self` refine `other` (`Π_self ⊑ Π_other`)? Every group of
    /// `self` must be contained in one group of `other`, treating stripped
    /// singletons as their own groups. Exact (not error-based); used as the
    /// Lemma 1 oracle in tests and for unrelated attribute sets.
    pub fn refines(&self, other: &Partition) -> bool {
        debug_assert_eq!(self.n_tuples, other.n_tuples);
        let gm = GroupMap::new(other);
        self.groups().all(|g| {
            let first = gm.group_of(g[0]);
            // A stripped singleton in `other` cannot contain a group of ≥2.
            first.is_some() && g.iter().all(|&t| gm.group_of(t) == first)
        })
    }

    /// Lemma 2 test specialized to a product: given `sup = self · Π_other`,
    /// `self → other` holds iff the errors agree.
    pub fn same_as_refining(&self, sup: &Partition) -> bool {
        debug_assert!(sup.error <= self.error, "sup must refine self");
        self.error == sup.error
    }

    /// The 16-byte digest of this partition: everything the Lemma 2
    /// validation path consumes, without the CSR payload.
    pub fn summary(&self) -> PartitionSummary {
        PartitionSummary {
            error: self.error,
            n_groups: self.n_groups() as u32,
            max_group: self.max_group_size() as u32,
        }
    }

    /// Error-only product kernel: the [`PartitionSummary`] of
    /// `Π_self · Π_other` with **zero** allocations in steady state — no
    /// `out_tuples` staging, no result arrays, no descriptor sort. Only the
    /// probe table and per-bucket counters are touched.
    ///
    /// With `bound = Some(m)` the kernel may stop early: the operand with
    /// the smaller error is scanned group by group, maintaining
    ///
    /// * `error` — the product error contributed by scanned groups (a lower
    ///   bound on the final error, since contributions are non-negative);
    /// * `deficit` — the error the scanned groups have already lost
    ///   relative to the scan operand (`Σ (|g|−1) − contribution`), so
    ///   `scan.error − deficit` is an upper bound on the final error
    ///   (unscanned groups can only lose more).
    ///
    /// As soon as `error > 0` and `scan.error − deficit < m`, the final
    /// error is provably in `1..m`: the node is not a key and every
    /// candidate FD with `e(Π_lhs) ≥ m` fails, so the scan returns
    /// [`ErrorOnlyProduct::BelowBound`] without visiting the remaining
    /// groups. A bound of 0 never triggers (errors are non-negative), so
    /// key detection always gets an exact summary.
    pub fn product_error_in(
        &self,
        other: &Partition,
        scratch: &mut ProductScratch,
        bound: Option<usize>,
    ) -> ErrorOnlyProduct {
        debug_assert_eq!(self.n_tuples, other.n_tuples);
        // Scan the smaller-error operand: its error caps the deficit, so
        // the early exit fires after fewer groups.
        let (scan, probe_side) = if other.error < self.error {
            (other, self)
        } else {
            (self, other)
        };
        let probe = &mut scratch.probe;
        if probe.len() < probe_side.n_tuples {
            probe.resize(probe_side.n_tuples, u32::MAX);
        }
        for (i, g) in probe_side.groups().enumerate() {
            for &t in g {
                probe[t as usize] = i as u32;
            }
        }
        if scratch.bucket_spans.len() < probe_side.n_groups() {
            scratch.bucket_spans.resize(probe_side.n_groups(), (0, 0));
        }
        let mut error = 0usize;
        let mut deficit = 0usize;
        let mut n_groups = 0u32;
        let mut max_group = 0u32;
        let mut exited = false;
        for g in scan.groups() {
            for &t in g {
                let i = probe[t as usize];
                if i != u32::MAX {
                    let span = &mut scratch.bucket_spans[i as usize];
                    if span.1 == 0 {
                        scratch.touched.push(i);
                    }
                    span.1 += 1;
                }
            }
            let mut contribution = 0usize;
            for &i in &scratch.touched {
                let len = scratch.bucket_spans[i as usize].1;
                if len >= 2 {
                    contribution += (len - 1) as usize;
                    n_groups += 1;
                    max_group = max_group.max(len);
                }
                scratch.bucket_spans[i as usize] = (0, 0);
            }
            scratch.touched.clear();
            error += contribution;
            deficit += (g.len() - 1) - contribution;
            if let Some(m) = bound {
                if error > 0 && scan.error - deficit < m {
                    exited = true;
                    break;
                }
            }
        }
        // Reset only the probe entries this product wrote.
        for &t in &probe_side.tuples {
            probe[t as usize] = u32::MAX;
        }
        if exited {
            ErrorOnlyProduct::BelowBound
        } else {
            ErrorOnlyProduct::Exact(PartitionSummary {
                error,
                n_groups,
                max_group,
            })
        }
    }

    /// Error-only refinement kernel against a *prebuilt* [`GroupMap`]:
    /// the summary of `Π_self · Π_base`, where `base` indexes the base
    /// partition of one attribute. Unlike [`Partition::product_error_in`]
    /// there is no probe table to fill or reset — the map is built once per
    /// attribute and amortized over every product that refines through it —
    /// so the cost is `O(|stripped(self)|)` flat, and an early exit really
    /// does stop after a prefix of the scan.
    ///
    /// Correct for the same reason scanning one operand suffices in the
    /// probing kernel: every product group of size ≥ 2 lies inside a
    /// stripped group of *each* operand, so tuples outside `self`'s
    /// stripped groups are product singletons and contribute nothing.
    /// The `bound` semantics are identical to `product_error_in`.
    pub fn error_refine_in(
        &self,
        base: &GroupMap,
        scratch: &mut ProductScratch,
        bound: Option<usize>,
    ) -> ErrorOnlyProduct {
        if scratch.bucket_spans.len() < base.n_groups() {
            scratch.bucket_spans.resize(base.n_groups(), (0, 0));
        }
        let mut error = 0usize;
        let mut deficit = 0usize;
        let mut n_groups = 0u32;
        let mut max_group = 0u32;
        let mut exited = false;
        for g in self.groups() {
            for &t in g {
                if let Some(i) = base.group_of(t) {
                    let span = &mut scratch.bucket_spans[i as usize];
                    if span.1 == 0 {
                        scratch.touched.push(i);
                    }
                    span.1 += 1;
                }
            }
            let mut contribution = 0usize;
            for &i in &scratch.touched {
                let len = scratch.bucket_spans[i as usize].1;
                if len >= 2 {
                    contribution += (len - 1) as usize;
                    n_groups += 1;
                    max_group = max_group.max(len);
                }
                scratch.bucket_spans[i as usize] = (0, 0);
            }
            scratch.touched.clear();
            error += contribution;
            deficit += (g.len() - 1) - contribution;
            if let Some(m) = bound {
                if error > 0 && self.error - deficit < m {
                    exited = true;
                    break;
                }
            }
        }
        if exited {
            ErrorOnlyProduct::BelowBound
        } else {
            ErrorOnlyProduct::Exact(PartitionSummary {
                error,
                n_groups,
                max_group,
            })
        }
    }
}

/// The 16-byte validation digest of a partition: what Lemma 2 checks and
/// key tests consume, without the CSR payload. Stored in the cache's
/// summary tier for nodes that never become product operands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionSummary {
    /// The error measure `e(Π) = Σ(|g| − 1)`.
    pub error: usize,
    /// Number of stripped groups.
    pub n_groups: u32,
    /// Size of the largest group (0 when stripped empty, i.e. a key).
    pub max_group: u32,
}

impl PartitionSummary {
    /// Is the attribute set a key (every tuple distinguished)?
    pub fn is_key(&self) -> bool {
        self.max_group == 0
    }
}

/// Result of [`Partition::product_error_in`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorOnlyProduct {
    /// The scan ran to completion: the product's exact summary.
    Exact(PartitionSummary),
    /// Early exit: the product error is provably `≥ 1` and `< bound`, so
    /// the node is not a key and every candidate edge whose lhs error is
    /// `≥ bound` fails.
    BelowBound,
}

/// Iterator over a partition's groups as slices.
#[derive(Debug, Clone)]
pub struct Groups<'a> {
    tuples: &'a [Tuple],
    offsets: &'a [u32],
    front: usize,
    back: usize,
}

impl<'a> Iterator for Groups<'a> {
    type Item = &'a [Tuple];

    fn next(&mut self) -> Option<&'a [Tuple]> {
        if self.front == self.back {
            return None;
        }
        let g =
            &self.tuples[self.offsets[self.front] as usize..self.offsets[self.front + 1] as usize];
        self.front += 1;
        Some(g)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.back - self.front;
        (n, Some(n))
    }
}

impl ExactSizeIterator for Groups<'_> {}

impl<'a> DoubleEndedIterator for Groups<'a> {
    fn next_back(&mut self) -> Option<&'a [Tuple]> {
        if self.front == self.back {
            return None;
        }
        self.back -= 1;
        Some(&self.tuples[self.offsets[self.back] as usize..self.offsets[self.back + 1] as usize])
    }
}

/// Tuple → group lookup for one partition; `None` means the tuple is a
/// stripped singleton.
#[derive(Debug)]
pub struct GroupMap {
    map: Vec<u32>,
    n_groups: usize,
}

impl GroupMap {
    /// Build the lookup (O(n) in the relation size).
    pub fn new(p: &Partition) -> GroupMap {
        let mut map = vec![u32::MAX; p.n_tuples()];
        for (i, g) in p.groups().enumerate() {
            for &t in g {
                map[t as usize] = i as u32;
            }
        }
        GroupMap {
            map,
            n_groups: p.n_groups(),
        }
    }

    /// Number of stripped groups in the indexed partition.
    pub fn n_groups(&self) -> usize {
        self.n_groups
    }

    /// Heap bytes held by the lookup table.
    pub fn heap_bytes(&self) -> usize {
        self.map.capacity() * std::mem::size_of::<u32>()
    }

    /// Group index of `t`, or `None` if `t` is in a stripped singleton.
    pub fn group_of(&self, t: Tuple) -> Option<u32> {
        match self.map[t as usize] {
            u32::MAX => None,
            g => Some(g),
        }
    }

    /// Does the partition separate `t1` and `t2` (put them in different
    /// groups)? Singletons are separate from everything.
    pub fn separates(&self, t1: Tuple, t2: Tuple) -> bool {
        debug_assert_ne!(t1, t2, "a tuple is never separated from itself");
        match (self.group_of(t1), self.group_of(t2)) {
            (Some(a), Some(b)) => a != b,
            _ => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col(vals: &[Option<u64>]) -> Partition {
        Partition::from_column(vals)
    }

    fn group_vecs(p: &Partition) -> Vec<Vec<Tuple>> {
        p.groups().map(<[Tuple]>::to_vec).collect()
    }

    #[test]
    fn from_column_groups_equal_values_and_strips_singletons() {
        // Values: a a b c c c, null
        let p = col(&[Some(1), Some(1), Some(2), Some(3), Some(3), Some(3), None]);
        assert_eq!(p.n_groups(), 2);
        assert_eq!(p.group(0), &[0, 1]);
        assert_eq!(p.group(1), &[3, 4, 5]);
        assert_eq!(p.error(), 1 + 2);
        assert_eq!(p.max_group_size(), 3);
        assert!(!p.is_key());
    }

    #[test]
    fn nulls_are_distinct_from_each_other() {
        let p = col(&[None, None, None]);
        assert!(p.is_key(), "all-null column distinguishes every tuple");
    }

    #[test]
    fn key_detection() {
        assert!(col(&[Some(1), Some(2), Some(3)]).is_key());
        assert!(!col(&[Some(1), Some(1)]).is_key());
        assert!(Partition::universal(1).is_key());
        assert!(!Partition::universal(2).is_key());
    }

    #[test]
    fn product_intersects_groups() {
        // X: {0,1,2,3} in one group; Y: {0,1} and {2,3}.
        let x = Partition::from_groups(vec![vec![0, 1, 2, 3]], 4);
        let y = Partition::from_groups(vec![vec![0, 1], vec![2, 3]], 4);
        let xy = x.product(&y);
        assert_eq!(group_vecs(&xy), vec![vec![0, 1], vec![2, 3]]);
        // Product is commutative on the group structure.
        let yx = y.product(&x);
        assert_eq!(xy, yx);
    }

    #[test]
    fn product_strips_new_singletons() {
        let x = Partition::from_groups(vec![vec![0, 1, 2]], 3);
        let y = Partition::from_groups(vec![vec![0, 1]], 3); // 2 is singleton
        let xy = x.product(&y);
        assert_eq!(group_vecs(&xy), vec![vec![0, 1]]);
        assert_eq!(xy.error(), 1);
    }

    #[test]
    fn product_matches_column_product() {
        // Π_{AB} computed by product equals Π computed from paired values.
        let a = [Some(1), Some(1), Some(2), Some(2), Some(1), None];
        let b = [Some(9), Some(9), Some(9), Some(8), Some(8), Some(9)];
        let pa = col(&a);
        let pb = col(&b);
        let prod = pa.product(&pb);
        let paired: Vec<Option<u64>> = a
            .iter()
            .zip(b.iter())
            .map(|(x, y)| match (x, y) {
                (Some(x), Some(y)) => Some(x * 1000 + y),
                _ => None,
            })
            .collect();
        assert_eq!(prod, col(&paired));
    }

    #[test]
    fn product_restores_canonical_order_across_runs() {
        // Left groups {0,100,101} and {1,2}; the right operand keeps
        // {100,101} and {1,2} together. The raw emission order is
        // [100,101] then [1,2] (runs per left group); the canonical
        // result must list [1,2] first.
        let left = Partition::from_groups(vec![vec![0, 100, 101], vec![1, 2]], 102);
        let mut right_groups = vec![vec![100, 101], vec![1, 2]];
        right_groups.sort_by_key(|g| g[0]);
        let right = Partition::from_groups(right_groups, 102);
        let prod = left.product(&right);
        assert_eq!(group_vecs(&prod), vec![vec![1, 2], vec![100, 101]]);
        // And the canonical forms compare equal regardless of operand
        // order.
        assert_eq!(prod, right.product(&left));
    }

    #[test]
    fn from_column_is_first_member_sorted_without_sorting() {
        // Values deliberately interleaved: group of value 7 starts at
        // tuple 0, group of value 3 at tuple 1.
        let p = col(&[Some(7), Some(3), Some(7), Some(3), Some(7)]);
        assert_eq!(group_vecs(&p), vec![vec![0, 2, 4], vec![1, 3]]);
    }

    #[test]
    fn scratch_reuse_is_equivalent() {
        let mut scratch = ProductScratch::new();
        let cols: Vec<Vec<Option<u64>>> = vec![
            vec![Some(1), Some(1), Some(2), Some(2), None],
            vec![Some(5), Some(6), Some(5), Some(5), Some(5)],
            vec![Some(9), Some(9), Some(9), Some(8), Some(8)],
        ];
        let fresh: Vec<Partition> = cols.iter().map(|c| Partition::from_column(c)).collect();
        let reused: Vec<Partition> = cols
            .iter()
            .map(|c| Partition::from_column_in(c, &mut scratch))
            .collect();
        assert_eq!(fresh, reused);
        for a in &fresh {
            for b in &fresh {
                assert_eq!(a.product(b), a.product_in(b, &mut scratch));
            }
        }
    }

    #[test]
    fn refinement_oracle() {
        let coarse = col(&[Some(1), Some(1), Some(1), Some(2), Some(2)]);
        let fine = col(&[Some(1), Some(1), Some(3), Some(2), Some(2)]);
        assert!(fine.refines(&coarse));
        assert!(!coarse.refines(&fine));
        assert!(fine.refines(&fine));
        assert!(
            Partition::from_groups(vec![], 5).refines(&coarse),
            "key refines all"
        );
        assert!(coarse.refines(&Partition::universal(5)));
    }

    #[test]
    fn lemma_2_error_equality_matches_exact_refinement() {
        // X→A iff Π_X = Π_X·Π_A iff errors equal.
        let x = col(&[Some(1), Some(1), Some(2), Some(2)]);
        let a_held = col(&[Some(7), Some(7), Some(8), Some(8)]); // X→A holds
        let a_viol = col(&[Some(7), Some(6), Some(8), Some(8)]); // violated by t0,t1
        let xa1 = x.product(&a_held);
        let xa2 = x.product(&a_viol);
        assert!(x.same_as_refining(&xa1));
        assert!(!x.same_as_refining(&xa2));
    }

    #[test]
    fn group_map_separation() {
        let p = col(&[Some(1), Some(1), Some(2), Some(2), Some(3)]);
        let gm = GroupMap::new(&p);
        assert!(!gm.separates(0, 1));
        assert!(gm.separates(0, 2));
        assert!(gm.separates(0, 4), "singleton separates from everything");
        assert_eq!(gm.group_of(4), None);
    }

    #[test]
    fn universal_partition_separates_nothing() {
        let p = Partition::universal(3);
        let gm = GroupMap::new(&p);
        assert!(!gm.separates(0, 1));
        assert!(!gm.separates(1, 2));
    }

    #[test]
    fn groups_iterator_is_exact_size_and_double_ended() {
        let p = col(&[Some(1), Some(1), Some(2), Some(2), Some(3), Some(3)]);
        assert_eq!(p.groups().len(), 3);
        let forward: Vec<_> = p.groups().collect();
        let mut backward: Vec<_> = p.groups().rev().collect();
        backward.reverse();
        assert_eq!(forward, backward);
    }

    #[test]
    fn summary_digests_the_partition() {
        let p = col(&[Some(1), Some(1), Some(2), Some(2), Some(2), None]);
        let s = p.summary();
        assert_eq!(s.error, p.error());
        assert_eq!(s.n_groups as usize, p.n_groups());
        assert_eq!(s.max_group as usize, p.max_group_size());
        assert!(!s.is_key());
        assert!(col(&[Some(1), Some(2)]).summary().is_key());
    }

    #[test]
    fn product_error_matches_materialized_product() {
        let mut scratch = ProductScratch::new();
        let cols: Vec<Vec<Option<u64>>> = vec![
            vec![Some(1), Some(1), Some(2), Some(2), None, Some(1)],
            vec![Some(5), Some(6), Some(5), Some(5), Some(5), Some(6)],
            vec![Some(9), Some(9), Some(9), Some(8), Some(8), Some(9)],
            vec![Some(1), Some(2), Some(3), Some(4), Some(5), Some(6)],
            vec![None, None, None, None, None, None],
        ];
        let parts: Vec<Partition> = cols.iter().map(|c| Partition::from_column(c)).collect();
        for a in &parts {
            for b in &parts {
                let full = a.product_in(b, &mut scratch);
                let got = a.product_error_in(b, &mut scratch, None);
                assert_eq!(got, ErrorOnlyProduct::Exact(full.summary()));
            }
        }
    }

    #[test]
    fn product_error_early_exit_is_sound() {
        // X = {0..5} in one group; A splits it into {0,1,2} and {3,4,5}.
        let x = Partition::from_groups(vec![vec![0, 1, 2, 3, 4, 5]], 6);
        let a = col(&[Some(1), Some(1), Some(1), Some(2), Some(2), Some(2)]);
        let true_error = x.product(&a).error(); // 4
        let mut scratch = ProductScratch::new();
        for bound in 0..=x.error() + 1 {
            let got = x.product_error_in(&a, &mut scratch, Some(bound));
            if true_error < bound {
                assert_eq!(got, ErrorOnlyProduct::BelowBound, "bound {bound}");
            } else {
                assert_eq!(
                    got,
                    ErrorOnlyProduct::Exact(x.product(&a).summary()),
                    "bound {bound}"
                );
            }
        }
        // A key product never exits early, whatever the bound: the exit
        // requires error > 0.
        let key_side = col(&[Some(1), Some(2), Some(3), Some(4), Some(5), Some(6)]);
        let got = x.product_error_in(&key_side, &mut scratch, Some(usize::MAX));
        assert_eq!(got, ErrorOnlyProduct::Exact(x.product(&key_side).summary()));
        assert!(x.product(&key_side).is_key());
    }

    #[test]
    fn heap_bytes_tracks_payload() {
        let p = col(&[Some(1), Some(1), Some(2), Some(2)]);
        // 4 members + 3 offsets, 4 bytes each; capacity may round up.
        assert!(p.heap_bytes() >= (4 + 3) * 4);
    }
}
