//! Attribute sets as 128-bit bitsets.
//!
//! Relations produced from XML schemas are narrow (each holds only the
//! non-repeatable elements under one set element — see Figure 6), so 128
//! attributes per relation is a comfortable bound; [`AttrSet::single`]
//! asserts it. The flat baseline uses the same type over *all* schema
//! elements, where the bound actually bites — one more reason it does not
//! scale to complex schemas.

use std::fmt;

/// A set of attribute indices `0..128` of one relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct AttrSet(u128);

/// Maximum number of attributes per relation.
pub const MAX_ATTRS: usize = 128;

impl AttrSet {
    /// The empty set.
    pub fn empty() -> Self {
        AttrSet(0)
    }

    /// The singleton `{attr}`.
    ///
    /// # Panics
    /// Panics if `attr >= 128`.
    pub fn single(attr: usize) -> Self {
        assert!(attr < MAX_ATTRS, "relation exceeds {MAX_ATTRS} attributes");
        AttrSet(1 << attr)
    }

    /// Raw bits.
    pub fn bits(self) -> u128 {
        self.0
    }

    /// Membership test.
    pub fn contains(self, attr: usize) -> bool {
        attr < MAX_ATTRS && self.0 & (1 << attr) != 0
    }

    /// `self ∪ other`.
    pub fn union(self, other: AttrSet) -> AttrSet {
        AttrSet(self.0 | other.0)
    }

    /// `self ∩ other`.
    pub fn intersect(self, other: AttrSet) -> AttrSet {
        AttrSet(self.0 & other.0)
    }

    /// `self ∖ other`.
    pub fn minus(self, other: AttrSet) -> AttrSet {
        AttrSet(self.0 & !other.0)
    }

    /// `self ∪ {attr}`.
    pub fn insert(self, attr: usize) -> AttrSet {
        self.union(AttrSet::single(attr))
    }

    /// `self ∖ {attr}`.
    pub fn remove(self, attr: usize) -> AttrSet {
        AttrSet(self.0 & !(1u128 << attr))
    }

    /// Is `self ⊆ other`?
    pub fn is_subset_of(self, other: AttrSet) -> bool {
        self.0 & !other.0 == 0
    }

    /// Cardinality.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Is this the empty set?
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Largest attribute index in the set, if non-empty.
    pub fn max_attr(self) -> Option<usize> {
        if self.0 == 0 {
            None
        } else {
            Some(127 - self.0.leading_zeros() as usize)
        }
    }

    /// Iterate member indices in ascending order.
    pub fn iter(self) -> AttrIter {
        AttrIter(self.0)
    }

    /// Deterministic shard index in `[0, n_shards)` for the sharded
    /// partition cache. Mixes both halves of the bitset through the
    /// workspace FxHash so adjacent lattice nodes spread across shards.
    pub fn shard(self, n_shards: usize) -> usize {
        debug_assert!(n_shards > 0);
        let mixed = xfd_hash::fx_hash_u64((self.0 as u64) ^ ((self.0 >> 64) as u64).rotate_left(1));
        (mixed % n_shards as u64) as usize
    }
}

impl FromIterator<usize> for AttrSet {
    /// Set from attribute indices: `AttrSet::from_iter([0, 2, 5])`.
    fn from_iter<I: IntoIterator<Item = usize>>(attrs: I) -> Self {
        attrs
            .into_iter()
            .fold(AttrSet::empty(), |s, a| s.union(AttrSet::single(a)))
    }
}

/// Iterator over [`AttrSet`] members; see [`AttrSet::iter`].
pub struct AttrIter(u128);

impl Iterator for AttrIter {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        if self.0 == 0 {
            return None;
        }
        let i = self.0.trailing_zeros() as usize;
        self.0 &= self.0 - 1;
        Some(i)
    }
}

impl fmt::Display for AttrSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (k, a) in self.iter().enumerate() {
            if k > 0 {
                write!(f, ",")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_algebra() {
        let a = AttrSet::from_iter([0, 2, 5]);
        let b = AttrSet::from_iter([2, 3]);
        assert_eq!(a.union(b), AttrSet::from_iter([0, 2, 3, 5]));
        assert_eq!(a.intersect(b), AttrSet::from_iter([2]));
        assert_eq!(a.minus(b), AttrSet::from_iter([0, 5]));
        assert!(AttrSet::from_iter([2]).is_subset_of(a));
        assert!(!b.is_subset_of(a));
        assert!(AttrSet::empty().is_subset_of(a));
    }

    #[test]
    fn insert_remove_contains() {
        let s = AttrSet::empty().insert(3).insert(7);
        assert!(s.contains(3));
        assert!(s.contains(7));
        assert!(!s.contains(4));
        assert_eq!(s.remove(3), AttrSet::single(7));
        assert_eq!(s.remove(9), s);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn iteration_is_ascending() {
        let s = AttrSet::from_iter([9, 1, 4]);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![1, 4, 9]);
        assert_eq!(s.max_attr(), Some(9));
        assert_eq!(AttrSet::empty().max_attr(), None);
    }

    #[test]
    fn boundary_attribute_127_works() {
        let s = AttrSet::single(127);
        assert!(s.contains(127));
        assert_eq!(s.max_attr(), Some(127));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![127]);
        let mixed = AttrSet::from_iter([3, 70, 127]);
        assert_eq!(mixed.iter().collect::<Vec<_>>(), vec![3, 70, 127]);
        assert_eq!(mixed.len(), 3);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn attribute_128_panics() {
        let _ = AttrSet::single(128);
    }

    #[test]
    fn shards_are_stable_and_in_range() {
        for n_shards in [1usize, 2, 8, 16] {
            for bits in 0..200u128 {
                let s = AttrSet(bits);
                let shard = s.shard(n_shards);
                assert!(shard < n_shards);
                assert_eq!(shard, s.shard(n_shards), "shard must be deterministic");
            }
        }
        // High-half bits must influence the shard.
        let lo = AttrSet::single(3);
        let hi = AttrSet::single(120);
        assert!(
            (0..64).any(|k| AttrSet::single(k).shard(16) != lo.shard(16))
                || hi.shard(16) != lo.shard(16),
            "shard function ignores its input"
        );
    }

    #[test]
    fn display_is_braced_list() {
        assert_eq!(AttrSet::from_iter([1, 3]).to_string(), "{1,3}");
        assert_eq!(AttrSet::empty().to_string(), "{}");
    }
}
