#![warn(missing_docs)]
//! # xfd-partition
//!
//! Partition machinery for DiscoverXFD (Section 4.2 of the paper):
//!
//! * [`AttrSet`] — small bitset over a relation's attributes; lattice nodes;
//! * [`Partition`] — *stripped* attribute partitions (footnote 5): the
//!   groups of tuples agreeing on an attribute set, with singleton groups
//!   dropped; linear-time partition product (the TANE construction the
//!   paper's lines 9–10 allude to); refinement tests realizing Lemmas 1–2;
//! * [`GroupMap`] — a tuple → group index for fast "does this partition
//!   separate tuples t₁, t₂?" queries;
//! * [`PairSet`] — sets of tuple-pair *inequalities*, the building block of
//!   the paper's partition targets (`FDTarget` / `KeyTarget`, Figure 10),
//!   with the parent-index mapping of `updatePT`;
//! * [`PartitionCache`] — sharded, memory-bounded memoization of
//!   partitions per attribute set, with the visit/product/residency
//!   counters used by the pruning-ablation experiment;
//! * [`ProductScratch`] — reusable per-worker buffers making partition
//!   construction and products allocation-free in steady state.
//!
//! Partitions are stored in a flat CSR layout (one contiguous member
//! array plus group offsets) in a canonical order — groups by first
//! member, members ascending — so equal partitions are representationally
//! equal and traversals are deterministic; see the [`partition`] module
//! docs for the layout and ordering rationale.

pub mod attrset;
pub mod cache;
pub mod pairs;
pub mod partition;
pub mod scratch;

pub use attrset::AttrSet;
pub use cache::{CacheStats, PartitionCache};
pub use pairs::{Collapse, PairSet};
pub use partition::{ErrorOnlyProduct, GroupMap, Groups, Partition, PartitionSummary, Tuple};
pub use scratch::ProductScratch;
