//! Reusable workspace for partition construction and products.
//!
//! [`Partition::product_in`](crate::Partition::product_in) and
//! [`Partition::from_column_in`](crate::Partition::from_column_in) do all
//! their temporary work inside a [`ProductScratch`]: the probe table
//! (tuple → left-group), the flat bucket arena, the touched-group
//! list and the staging buffers for the result. The buffers keep their
//! capacity between calls, so a lattice traversal that computes thousands
//! of products allocates only the two CSR arrays of each *result* —
//! everything else is reused (and the error-only kernel
//! [`Partition::product_error_in`](crate::Partition::product_error_in)
//! allocates nothing at all in steady state). One scratch per worker
//! thread; scratches are never shared.
//!
//! ## Bucket arena
//!
//! Products bucket one right-operand group's members by their left-operand
//! group. Instead of one `Vec<Tuple>` per left group (a heap allocation
//! each, scattered across the heap), buckets live back to back in a single
//! flat `bucket_data` arena with per-left-group `(cursor, len)` spans:
//! pass 1 counts members per bucket, the spans are laid out prefix-sum
//! style, pass 2 places the members. Steady-state products touch one
//! contiguous buffer regardless of group count.

use xfd_hash::FxHashMap;

use crate::partition::Tuple;

/// Reusable buffers for partition products and column builds.
///
/// Contents between calls are unspecified except for two invariants the
/// product relies on: every `probe` entry is `u32::MAX` on entry and is
/// restored to `u32::MAX` before returning (only the left operand's
/// members are ever written, and exactly those are reset), and every
/// `bucket_spans` entry is `(0, 0)` on entry and restored before
/// returning (only touched groups are written, and exactly those are
/// reset).
#[derive(Debug, Default)]
pub struct ProductScratch {
    /// tuple → group index in the product's left operand; `u32::MAX`
    /// outside a product call.
    pub(crate) probe: Vec<u32>,
    /// Flat bucket arena: members of the current right group, laid out
    /// back to back per left-group bucket.
    pub(crate) bucket_data: Vec<Tuple>,
    /// Per-left-group `(cursor, len)` spans over `bucket_data`; `(0, 0)`
    /// outside calls. During a product, `len` is the bucket's member
    /// count and `cursor` walks from the bucket's start to its end.
    pub(crate) bucket_spans: Vec<(u32, u32)>,
    /// Left groups with a non-empty bucket for the current right group.
    pub(crate) touched: Vec<u32>,
    /// Staging area for result members before canonical reordering.
    pub(crate) out_tuples: Vec<Tuple>,
    /// Staged `(start, len)` group descriptors over `out_tuples`.
    pub(crate) out_groups: Vec<(u32, u32)>,
    /// value → group slot for `from_column_in`.
    pub(crate) column_slots: FxHashMap<u64, u32>,
    /// Per-slot member counts, then per-slot write cursors.
    pub(crate) counts: Vec<u32>,
    /// Per-tuple slot assignment (`u32::MAX` for ⊥).
    pub(crate) slot_of: Vec<u32>,
}

impl ProductScratch {
    /// Fresh, empty scratch.
    pub fn new() -> Self {
        ProductScratch::default()
    }

    /// Resident heap footprint of the scratch buffers.
    pub fn heap_bytes(&self) -> usize {
        let words = self.probe.capacity()
            + self.touched.capacity()
            + self.out_tuples.capacity()
            + self.counts.capacity()
            + self.slot_of.capacity()
            + self.bucket_data.capacity();
        words * std::mem::size_of::<u32>()
            + (self.out_groups.capacity() + self.bucket_spans.capacity())
                * std::mem::size_of::<(u32, u32)>()
            + self.column_slots.capacity() * std::mem::size_of::<(u64, u32)>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::Partition;

    #[test]
    fn probe_invariant_holds_after_products() {
        let mut scratch = ProductScratch::new();
        let a = Partition::from_column(&[Some(1), Some(1), Some(2), Some(2), Some(3), Some(3)]);
        let b = Partition::from_column(&[Some(1), Some(2), Some(1), Some(2), Some(1), Some(2)]);
        let _ = a.product_in(&b, &mut scratch);
        assert!(scratch.probe.iter().all(|&x| x == u32::MAX));
        let _ = b.product_in(&a, &mut scratch);
        assert!(scratch.probe.iter().all(|&x| x == u32::MAX));
    }

    #[test]
    fn span_invariant_holds_after_products() {
        let mut scratch = ProductScratch::new();
        let a = Partition::from_column(&[Some(1), Some(1), Some(2), Some(2), Some(3), Some(3)]);
        let b = Partition::from_column(&[Some(1), Some(2), Some(1), Some(2), Some(1), Some(2)]);
        let _ = a.product_in(&b, &mut scratch);
        assert!(scratch.bucket_spans.iter().all(|&s| s == (0, 0)));
        let _ = a.product_error_in(&b, &mut scratch, None);
        assert!(scratch.bucket_spans.iter().all(|&s| s == (0, 0)));
        assert!(scratch.probe.iter().all(|&x| x == u32::MAX));
    }

    #[test]
    fn capacity_is_retained_between_calls() {
        let mut scratch = ProductScratch::new();
        let vals: Vec<Option<u64>> = (0..1000).map(|i| Some(i % 10)).collect();
        let p = Partition::from_column_in(&vals, &mut scratch);
        let _ = p.product_in(&p, &mut scratch);
        let probe_cap = scratch.probe.capacity();
        let out_cap = scratch.out_tuples.capacity();
        let arena_cap = scratch.bucket_data.capacity();
        let _ = p.product_in(&p, &mut scratch);
        assert_eq!(scratch.probe.capacity(), probe_cap);
        assert_eq!(scratch.out_tuples.capacity(), out_cap);
        assert_eq!(scratch.bucket_data.capacity(), arena_cap);
    }
}
