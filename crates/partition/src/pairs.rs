//! Tuple-pair inequality sets — the substance of the paper's partition
//! targets (Figure 10).
//!
//! A candidate inter-relation FD is carried upward through the relation
//! tree as a set of inequalities `t₁ ≠ t₂` over the *current* relation's
//! tuples: the pairs that some ancestor attribute set must separate for the
//! FD (`FDTarget`) or the Key (`KeyTarget`) to be satisfied. `updatePT`
//! maps still-unsatisfied pairs through the tuple→parent index; a pair
//! whose two tuples collapse onto the same parent tuple can never be
//! separated — the FD becomes impossible, or the KeyTarget becomes invalid.

use xfd_hash::FxHashSet;

use crate::partition::{GroupMap, Tuple};

/// Result of mapping a pair set to the parent relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Collapse {
    /// All pairs survived; here they are in parent-tuple space.
    Mapped(PairSet),
    /// Some pair collapsed onto a single parent tuple: unsatisfiable.
    Impossible,
}

/// A set of inequalities `t₁ ≠ t₂` (normalized `t₁ < t₂`, deduplicated).
#[derive(Debug, Clone, Default)]
pub struct PairSet {
    pairs: Vec<(Tuple, Tuple)>,
    // Deduplication via the deterministic workspace hasher: pair sets are
    // built in tight loops over partition groups (`createPT`), where
    // SipHash dominated the profile.
    seen: FxHashSet<(Tuple, Tuple)>,
}

impl PartialEq for PairSet {
    fn eq(&self, other: &Self) -> bool {
        self.pairs == other.pairs
    }
}

impl Eq for PairSet {}

impl PairSet {
    /// The empty (vacuously satisfied) set.
    pub fn new() -> Self {
        PairSet::default()
    }

    /// Add the inequality `a ≠ b`.
    ///
    /// # Panics
    /// Panics if `a == b` (an unsatisfiable inequality must be handled by
    /// the caller as a collapse, not stored).
    pub fn insert(&mut self, a: Tuple, b: Tuple) {
        assert_ne!(a, b, "a tuple cannot be unequal to itself");
        let pair = (a.min(b), a.max(b));
        if self.seen.insert(pair) {
            self.pairs.push(pair);
        }
    }

    /// Add every unordered pair of distinct tuples from `group` — the
    /// paper's `addKeyIneqs` over one partition group.
    pub fn insert_all_pairs(&mut self, group: &[Tuple]) {
        for i in 0..group.len() {
            for j in i + 1..group.len() {
                self.insert(group[i], group[j]);
            }
        }
    }

    /// The pairs, normalized.
    pub fn pairs(&self) -> &[(Tuple, Tuple)] {
        &self.pairs
    }

    /// Number of inequalities.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Vacuously satisfied?
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Does the partition behind `gm` separate *every* pair?
    pub fn satisfied_by(&self, gm: &GroupMap) -> bool {
        self.pairs.iter().all(|&(a, b)| gm.separates(a, b))
    }

    /// The pairs `gm` does *not* separate.
    pub fn unsatisfied_under(&self, gm: &GroupMap) -> PairSet {
        let pairs: Vec<(Tuple, Tuple)> = self
            .pairs
            .iter()
            .copied()
            .filter(|&(a, b)| !gm.separates(a, b))
            .collect();
        PairSet {
            seen: pairs.iter().copied().collect(),
            pairs,
        }
    }

    /// Map every pair through the tuple→parent index (`updatePT`). Pairs
    /// that land on the same parent tuple make the target [`Collapse::Impossible`].
    pub fn map_to_parent(&self, parent_of: &[Tuple]) -> Collapse {
        let mut out = PairSet::new();
        for &(a, b) in &self.pairs {
            let pa = parent_of[a as usize];
            let pb = parent_of[b as usize];
            if pa == pb {
                return Collapse::Impossible;
            }
            out.insert(pa, pb);
        }
        Collapse::Mapped(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::Partition;

    #[test]
    fn normalization_and_dedup() {
        let mut p = PairSet::new();
        p.insert(3, 1);
        p.insert(1, 3);
        p.insert(2, 4);
        assert_eq!(p.pairs(), &[(1, 3), (2, 4)]);
        assert_eq!(p.len(), 2);
    }

    #[test]
    #[should_panic(expected = "unequal to itself")]
    fn reflexive_inequality_panics() {
        PairSet::new().insert(2, 2);
    }

    #[test]
    fn insert_all_pairs_is_complete() {
        let mut p = PairSet::new();
        p.insert_all_pairs(&[5, 1, 3]);
        assert_eq!(p.pairs(), &[(1, 5), (3, 5), (1, 3)]);
    }

    #[test]
    fn satisfaction_against_partitions() {
        // Partition {0,1},{2,3}; pair (0,2) separated; (0,1) not.
        let part = Partition::from_groups(vec![vec![0, 1], vec![2, 3]], 4);
        let gm = GroupMap::new(&part);
        let mut sat = PairSet::new();
        sat.insert(0, 2);
        sat.insert(1, 3);
        assert!(sat.satisfied_by(&gm));
        let mut unsat = PairSet::new();
        unsat.insert(0, 2);
        unsat.insert(0, 1);
        assert!(!unsat.satisfied_by(&gm));
        let remaining = unsat.unsatisfied_under(&gm);
        assert_eq!(remaining.pairs(), &[(0, 1)]);
    }

    #[test]
    fn empty_set_is_vacuously_satisfied() {
        let part = Partition::universal(4);
        assert!(PairSet::new().satisfied_by(&GroupMap::new(&part)));
    }

    #[test]
    fn map_to_parent_translates_pairs() {
        // tuples 0,1 → parent 0; tuples 2,3 → parent 1.
        let parent_of = vec![0, 0, 1, 1];
        let mut p = PairSet::new();
        p.insert(0, 2);
        p.insert(1, 3);
        match p.map_to_parent(&parent_of) {
            Collapse::Mapped(mapped) => assert_eq!(mapped.pairs(), &[(0, 1)]),
            Collapse::Impossible => panic!("should map"),
        }
    }

    #[test]
    fn collapse_when_siblings_must_differ() {
        let parent_of = vec![0, 0, 1, 1];
        let mut p = PairSet::new();
        p.insert(0, 1); // same parent → impossible
        assert_eq!(p.map_to_parent(&parent_of), Collapse::Impossible);
    }
}
