//! Fixture harness: every configured rule ships a positive snippet (one or
//! more violations) and a negative twin (clean), each a self-contained
//! lintable root under `tests/fixtures/<rule>/{positive,negative}/`.
//!
//! The workspace walker deliberately skips directories named `fixtures`,
//! so the positive corpora never pollute the real-tree meta-lint; they are
//! only ever linted here, as roots of their own.

use std::path::PathBuf;
use std::process::{Command, Stdio};

use xfdlint::{config::RULE_NAMES, run_root};

fn fixture_root(rule: &str, kind: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(rule)
        .join(kind)
}

#[test]
fn every_configured_rule_has_both_fixture_kinds() {
    for rule in RULE_NAMES {
        for kind in ["positive", "negative"] {
            let root = fixture_root(rule, kind);
            assert!(
                root.join("xfdlint.toml").is_file(),
                "{rule}/{kind} is missing its xfdlint.toml"
            );
            assert!(
                root.join("src/lib.rs").is_file(),
                "{rule}/{kind} is missing src/lib.rs"
            );
        }
    }
}

#[test]
fn positive_fixtures_violate_their_rule() {
    for rule in RULE_NAMES {
        let outcome = run_root(&fixture_root(rule, "positive"))
            .unwrap_or_else(|e| panic!("{rule}/positive lints: {e}"));
        assert!(
            outcome.violations.iter().any(|v| v.violation.rule == rule),
            "{rule}/positive produced no {rule} violation: {:?}",
            outcome.violations
        );
    }
}

#[test]
fn negative_fixtures_are_clean() {
    for rule in RULE_NAMES {
        let outcome = run_root(&fixture_root(rule, "negative"))
            .unwrap_or_else(|e| panic!("{rule}/negative lints: {e}"));
        assert!(
            outcome.is_clean(),
            "{rule}/negative is not clean: {:?}",
            outcome.violations
        );
    }
}

fn check_exit_code(root: &PathBuf) -> Option<i32> {
    Command::new(env!("CARGO_BIN_EXE_xfdlint"))
        .arg("--check")
        .arg("--root")
        .arg(root)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .expect("xfdlint binary runs")
        .code()
}

/// The acceptance scenario from the ISSUE: deleting a decode arm for a
/// `Frame` variant makes `xfdlint --check` exit nonzero, and restoring it
/// (the negative twin) exits zero.
#[test]
fn deleted_decode_arm_fails_the_check_binary() {
    let positive = fixture_root("protocol_exhaustiveness", "positive");
    assert_eq!(check_exit_code(&positive), Some(1), "missing arm must fail");
    let outcome = run_root(&positive).expect("lints");
    assert!(
        outcome
            .violations
            .iter()
            .any(|v| v.violation.rule == "protocol_exhaustiveness"
                && v.violation.message.contains("Bye")
                && v.violation.message.contains("decode")),
        "expected a Bye-missing-from-decode violation: {:?}",
        outcome.violations
    );
    let negative = fixture_root("protocol_exhaustiveness", "negative");
    assert_eq!(check_exit_code(&negative), Some(0), "full wiring must pass");
}

/// The twin scenario: removing the `set_read_timeout` ahead of a blocking
/// transport call makes `xfdlint --check` exit nonzero.
#[test]
fn removed_read_timeout_fails_the_check_binary() {
    let positive = fixture_root("deadline_discipline", "positive");
    assert_eq!(
        check_exit_code(&positive),
        Some(1),
        "unarmed path must fail"
    );
    let outcome = run_root(&positive).expect("lints");
    assert!(
        outcome
            .violations
            .iter()
            .any(|v| v.violation.rule == "deadline_discipline"
                && v.violation.message.contains("read_frame")),
        "expected an unarmed read_frame violation: {:?}",
        outcome.violations
    );
    let negative = fixture_root("deadline_discipline", "negative");
    assert_eq!(check_exit_code(&negative), Some(0), "armed paths must pass");
}
