//! Meta-test: lint the real workspace with the checked-in `xfdlint.toml`,
//! running the full v2 pipeline — lexical rules plus the call-graph passes
//! (interprocedural lock discipline, deadline domination, frame-protocol
//! exhaustiveness).
//!
//! This is the test the ISSUE calls "every allow matches a live site": a
//! stale `xfdlint:allow` (one whose violation was fixed, or that sits in a
//! file its rule is not in scope for) reports under the `allow-annotation`
//! pseudo-rule, so "zero violations" simultaneously proves the tree is
//! clean *and* that no allow is dead weight.

use std::path::PathBuf;

use xfdlint::{run_root, ALLOW_RULE};

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .canonicalize()
        .expect("workspace root resolves")
}

#[test]
fn workspace_is_clean_and_every_allow_is_live() {
    let root = workspace_root();
    assert!(
        root.join("xfdlint.toml").is_file(),
        "checked-in config missing at {}",
        root.display()
    );
    let outcome = run_root(&root).expect("config parses and tree lints");

    let mut report = String::new();
    for v in &outcome.violations {
        report.push_str(&format!(
            "  {}:{} [{}] {}\n",
            v.path, v.violation.line, v.violation.rule, v.violation.message
        ));
    }
    assert!(
        outcome.is_clean(),
        "workspace has {} xfdlint violation(s):\n{report}",
        outcome.violations.len()
    );

    // Zero *stale-allow* violations specifically: every annotation in the
    // tree suppressed a real hit this run.
    let stale = outcome.stats.get(ALLOW_RULE).copied().unwrap_or_default();
    assert_eq!(stale.violations, 0, "stale or malformed allow annotations");

    // The suppression machinery must actually be exercised — the server and
    // corpus crates carry justified allows by design. If these counts drop
    // to zero the annotations were silently skipped, not cleanly absent.
    let allowed_total: usize = outcome.stats.values().map(|s| s.allowed).sum();
    assert!(
        allowed_total > 0,
        "no allow consumed anywhere — allow parsing is broken"
    );
    // Every consumed allow is reported with its reason, and the two views
    // of suppression agree.
    assert_eq!(
        outcome.allows_live.len(),
        allowed_total,
        "live-allow list and per-rule allowed counts disagree"
    );
    assert!(
        outcome.allows_live.iter().all(|a| !a.reason.is_empty()),
        "a live allow lost its reason"
    );
    assert!(
        outcome.files_scanned > 20,
        "only {} files scanned — scope globs or the walker regressed",
        outcome.files_scanned
    );
}

#[test]
fn every_configured_rule_has_a_stats_row() {
    let outcome = run_root(&workspace_root()).expect("lint runs");
    for rule in xfdlint::config::RULE_NAMES {
        assert!(
            outcome.stats.contains_key(rule),
            "summary table lost rule {rule}"
        );
    }
    assert!(outcome.stats.contains_key(ALLOW_RULE));
}

/// The v2 call-graph rules must demonstrably run against the real tree,
/// not just parse their config sections: the transport/cluster crates
/// carry justified deadline allows (listener accepts, Unix connects) and
/// the server carries lock-discipline allows, so a zero `allowed` count
/// for either rule means the interprocedural pass silently stopped firing.
#[test]
fn call_graph_rules_are_exercised_by_the_real_tree() {
    let outcome = run_root(&workspace_root()).expect("lint runs");
    let allowed = |rule: &str| outcome.stats.get(rule).map_or(0, |s| s.allowed);
    assert!(
        allowed("deadline_discipline") > 0,
        "deadline_discipline consumed no allows — the domination pass regressed"
    );
    assert!(
        allowed("lock_discipline") > 0,
        "lock_discipline consumed no allows — the reachability pass regressed"
    );
    // The frame protocol is fully wired (enum + encoders + decoder + tests
    // all present in crates/transport), so the rule reports zero of both.
    let proto = outcome
        .stats
        .get("protocol_exhaustiveness")
        .copied()
        .unwrap_or_default();
    assert_eq!(proto.violations, 0, "Frame protocol wiring regressed");
}
