//! Violates protocol_exhaustiveness: `Frame::Bye` is encoded and tested
//! but its `decode` arm was deleted.

pub enum Frame {
    Hello,
    Data,
    Bye,
}

impl Frame {
    pub fn kind(&self) -> u8 {
        match self {
            Frame::Hello => 0,
            Frame::Data => 1,
            Frame::Bye => 2,
        }
    }

    pub fn decode(kind: u8) -> Option<Frame> {
        match kind {
            0 => Some(Frame::Hello),
            1 => Some(Frame::Data),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Frame;

    #[test]
    fn kinds_are_distinct() {
        assert_ne!(Frame::Hello.kind(), Frame::Data.kind());
        assert_ne!(Frame::Data.kind(), Frame::Bye.kind());
    }
}
