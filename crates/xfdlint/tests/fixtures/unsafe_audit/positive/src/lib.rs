//! Violates unsafe_audit: the unsafe block carries no SAFETY comment.

pub fn peek(p: *const u32) -> u32 {
    unsafe { *p }
}
