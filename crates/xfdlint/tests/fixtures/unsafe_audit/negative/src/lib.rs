//! Clean under unsafe_audit: the block is justified in place.

pub fn peek(p: *const u32) -> u32 {
    // SAFETY: caller guarantees `p` points to a live, aligned u32.
    unsafe { *p }
}
