//! Violates lock_discipline twice: `hot` reaches file I/O through `spill`
//! while the `outer` guard is live (cross-function), and `backwards` nests
//! the acquisitions against the configured `outer->inner` order.

use std::sync::Mutex;

pub struct State {
    outer: Mutex<u32>,
    inner: Mutex<u32>,
    file: std::fs::File,
}

impl State {
    pub fn hot(&self) {
        let guard = self.outer.lock();
        self.spill();
        drop(guard);
    }

    pub fn backwards(&self) {
        let second = self.inner.lock();
        let first = self.outer.lock();
        drop(first);
        drop(second);
    }

    fn spill(&self) {
        self.file.sync_all().ok();
    }
}
