//! Clean under lock_discipline: the nesting follows the configured
//! `outer->inner` order and the I/O call runs after both guards are gone.

use std::sync::Mutex;

pub struct State {
    outer: Mutex<u32>,
    inner: Mutex<u32>,
    file: std::fs::File,
}

impl State {
    pub fn hot(&self) {
        {
            let guard = self.outer.lock();
            let nested = self.inner.lock();
            drop(nested);
            drop(guard);
        }
        self.spill();
    }

    fn spill(&self) {
        self.file.sync_all().ok();
    }
}
