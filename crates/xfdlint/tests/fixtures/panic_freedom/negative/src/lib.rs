//! Clean under panic_freedom: checked access and explicit defaults.

pub fn pick(xs: &[u32], i: usize) -> Option<u32> {
    xs.get(i).copied()
}

pub fn must(v: Option<u32>) -> u32 {
    v.unwrap_or(0)
}
