//! Violates panic_freedom: direct indexing and `unwrap` on a scoped path.

pub fn pick(xs: &[u32], i: usize) -> u32 {
    xs[i]
}

pub fn must(v: Option<u32>) -> u32 {
    v.unwrap()
}
