//! Violates deadline_discipline: `fetch` is a public entry point that
//! reaches the blocking `read_frame` with no deadline armed anywhere on
//! the path (the `set_read_timeout` call was removed).

use std::io;

pub fn fetch(stream: &mut Stream) -> io::Result<Frame> {
    read_frame(stream)
}
