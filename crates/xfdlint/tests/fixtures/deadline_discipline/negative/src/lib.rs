//! Clean under deadline_discipline: `fetch` arms a read timeout before its
//! own blocking call, and `loop_frames` (private, blocking) is only
//! reachable through `fetch_all`, which arms the deadline before calling.

use std::io;
use std::time::Duration;

const TIMEOUT: Duration = Duration::from_secs(5);

pub fn fetch(stream: &mut Stream) -> io::Result<Frame> {
    stream.set_read_timeout(Some(TIMEOUT))?;
    read_frame(stream)
}

pub fn fetch_all(stream: &mut Stream) -> io::Result<Frame> {
    stream.set_read_timeout(Some(TIMEOUT))?;
    loop_frames(stream)
}

fn loop_frames(stream: &mut Stream) -> io::Result<Frame> {
    read_frame(stream)
}
