//! Clean under error_hygiene: the Result is returned to the caller.

pub fn persist(path: &str, bytes: &[u8]) -> std::io::Result<()> {
    std::fs::write(path, bytes)
}
