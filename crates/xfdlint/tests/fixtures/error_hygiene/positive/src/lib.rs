//! Violates error_hygiene: the write's Result is silently discarded.

pub fn persist(path: &str, bytes: &[u8]) {
    let _ = std::fs::write(path, bytes);
}
