//! A minimal Rust lexer: just enough token structure for xfdlint's rules.
//!
//! The goal is not a faithful grammar but a stream in which quoted text can
//! never be mistaken for code. Comments are kept as tokens because the allow
//! annotations and the `// SAFETY:` audit live in them; strings, chars and
//! lifetimes are disambiguated so that `".unwrap("` inside a string literal
//! or a `'a` lifetime never trips a rule.

/// Coarse token classes; rules only ever look at `Ident`, `Punct` and
/// `Comment` text, but the literal classes must exist so their contents are
/// opaque.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Identifier or keyword (including raw identifiers and `_`).
    Ident,
    /// Numeric literal.
    Num,
    /// String, raw string, byte string or C string literal.
    Str,
    /// Character or byte literal.
    Char,
    /// Lifetime such as `'a`.
    Lifetime,
    /// Any single punctuation byte.
    Punct,
    /// Line or (nested) block comment, text included.
    Comment,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Token {
    /// Token class.
    pub kind: Kind,
    /// Source text of the token (for `Punct`, a single byte).
    pub text: String,
    /// 1-based line of the token's first byte.
    pub line: usize,
}

impl Token {
    /// True for a punct token of exactly `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == Kind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }

    /// True for an ident token of exactly `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == Kind::Ident && self.text == name
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lex `src` into a token stream. The lexer never fails: malformed input
/// (unterminated literals and the like) degrades to best-effort tokens,
/// which is acceptable because the workspace it scans must already compile.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        src,
        bytes: src.as_bytes(),
        pos: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: usize,
    out: Vec<Token>,
}

impl<'a> Lexer<'a> {
    fn run(mut self) -> Vec<Token> {
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                b if b.is_ascii_whitespace() => self.pos += 1,
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'"' => self.string(self.pos),
                b'\'' => self.char_or_lifetime(),
                b if b.is_ascii_digit() => self.number(),
                b if is_ident_start(b) => self.ident_or_prefixed_literal(),
                _ => {
                    let end = next_char_boundary(self.src, self.pos);
                    self.emit(Kind::Punct, self.pos, end, self.line);
                    self.pos = end;
                }
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    fn emit(&mut self, kind: Kind, start: usize, end: usize, line: usize) {
        self.out.push(Token {
            kind,
            text: self.src[start..end].to_string(),
            line,
        });
    }

    fn line_comment(&mut self) {
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b'\n' {
                break;
            }
            self.pos += 1;
        }
        self.emit(Kind::Comment, start, self.pos, self.line);
    }

    fn block_comment(&mut self) {
        let start = self.pos;
        let start_line = self.line;
        let mut depth = 1u32;
        self.pos += 2;
        while depth > 0 {
            match (self.bytes.get(self.pos), self.peek(1)) {
                (Some(b'/'), Some(b'*')) => {
                    depth += 1;
                    self.pos += 2;
                }
                (Some(b'*'), Some(b'/')) => {
                    depth -= 1;
                    self.pos += 2;
                }
                (Some(&b), _) => {
                    if b == b'\n' {
                        self.line += 1;
                    }
                    self.pos += 1;
                }
                (None, _) => break,
            }
        }
        self.emit(Kind::Comment, start, self.pos, start_line);
    }

    /// Plain string literal starting at the current `"`; `start` is where the
    /// token began (possibly at a `b`/`c` prefix).
    fn string(&mut self, start: usize) {
        let start_line = self.line;
        self.pos += 1; // opening quote
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'\\' => self.pos += 2,
                b'"' => {
                    self.pos += 1;
                    break;
                }
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ => self.pos += 1,
            }
        }
        let end = self.pos.min(self.bytes.len());
        self.emit(Kind::Str, start, end, start_line);
    }

    /// Raw string body: current position is at the opening `#`s or `"`;
    /// `start` is the token start (at the `r`/`br` prefix).
    fn raw_string(&mut self, start: usize) {
        let start_line = self.line;
        let mut hashes = 0usize;
        while self.bytes.get(self.pos) == Some(&b'#') {
            hashes += 1;
            self.pos += 1;
        }
        self.pos += 1; // opening quote
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b'\n' {
                self.line += 1;
                self.pos += 1;
                continue;
            }
            if b == b'"' {
                let tail = &self.bytes[self.pos + 1..];
                if tail.len() >= hashes && tail[..hashes].iter().all(|&h| h == b'#') {
                    self.pos += 1 + hashes;
                    break;
                }
            }
            self.pos += 1;
        }
        let end = self.pos.min(self.bytes.len());
        self.emit(Kind::Str, start, end, start_line);
    }

    fn char_or_lifetime(&mut self) {
        let start = self.pos;
        // `'X'` (and only that form, or an escape) is a char literal; a tick
        // followed by an ident that is not closed by a quote is a lifetime.
        let second = self.peek(1);
        let third = self.peek(2);
        let is_char = match second {
            Some(b'\\') => true,
            Some(b) if is_ident_continue(b) => third == Some(b'\''),
            Some(_) => true, // e.g. '(' or '.' — punctuation char literal
            None => false,
        };
        if is_char {
            self.pos += 1;
            while let Some(&b) = self.bytes.get(self.pos) {
                match b {
                    b'\\' => self.pos += 2,
                    b'\'' => {
                        self.pos += 1;
                        break;
                    }
                    b'\n' => break, // stray tick; bail out
                    _ => self.pos += 1,
                }
            }
            let end = self.pos.min(self.bytes.len());
            self.emit(Kind::Char, start, end, self.line);
        } else {
            self.pos += 1;
            while self
                .bytes
                .get(self.pos)
                .is_some_and(|&b| is_ident_continue(b))
            {
                self.pos += 1;
            }
            self.emit(Kind::Lifetime, start, self.pos, self.line);
        }
    }

    fn number(&mut self) {
        let start = self.pos;
        let mut prev = 0u8;
        while let Some(&b) = self.bytes.get(self.pos) {
            let take = b.is_ascii_alphanumeric()
                || b == b'_'
                || (b == b'.'
                    && self.peek(1).is_some_and(|n| n.is_ascii_digit())
                    && !self.src[start..self.pos].contains('.'))
                || ((b == b'+' || b == b'-') && (prev == b'e' || prev == b'E'));
            if !take {
                break;
            }
            prev = b;
            self.pos += 1;
        }
        self.emit(Kind::Num, start, self.pos, self.line);
    }

    fn ident_or_prefixed_literal(&mut self) {
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|&b| is_ident_continue(b))
        {
            self.pos += 1;
        }
        let ident = &self.src[start..self.pos];
        match (ident, self.bytes.get(self.pos)) {
            // Raw strings and byte strings: r"..", r#".."#, br".."…
            ("r" | "br" | "cr", Some(b'"')) => self.raw_string(start),
            ("b" | "c", Some(b'"')) => self.string(start),
            ("r" | "br" | "cr", Some(b'#')) => {
                // Either a raw string `r#"…"#` or a raw identifier `r#ident`.
                if ident == "r" && self.peek(1).is_some_and(is_ident_start) {
                    self.pos += 1; // the '#'
                    while self
                        .bytes
                        .get(self.pos)
                        .is_some_and(|&b| is_ident_continue(b))
                    {
                        self.pos += 1;
                    }
                    self.emit(Kind::Ident, start, self.pos, self.line);
                } else {
                    self.raw_string(start);
                }
            }
            // Byte char b'x'.
            ("b", Some(b'\'')) => {
                self.char_or_lifetime();
                // Re-tag: char_or_lifetime emitted starting at the tick.
                if let Some(last) = self.out.last_mut() {
                    last.text.insert(0, 'b');
                }
            }
            _ => self.emit(Kind::Ident, start, self.pos, self.line),
        }
    }
}

fn next_char_boundary(src: &str, pos: usize) -> usize {
    let mut end = pos + 1;
    while end < src.len() && !src.is_char_boundary(end) {
        end += 1;
    }
    end
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(Kind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn strings_hide_their_contents() {
        let toks = kinds(r#"let x = ".unwrap(" ;"#);
        assert_eq!(
            toks,
            vec![
                (Kind::Ident, "let".into()),
                (Kind::Ident, "x".into()),
                (Kind::Punct, "=".into()),
                (Kind::Str, "\".unwrap(\"".into()),
                (Kind::Punct, ";".into()),
            ]
        );
    }

    #[test]
    fn raw_strings_and_hashes() {
        let toks = kinds(r###"r#"panic!("x")"# ; br"y""###);
        assert_eq!(toks[0].0, Kind::Str);
        assert_eq!(toks[0].1, r##"r#"panic!("x")"#"##);
        assert_eq!(toks[1], (Kind::Punct, ";".into()));
        assert_eq!(toks[2].0, Kind::Str);
    }

    #[test]
    fn lifetimes_are_not_chars() {
        let toks = kinds("fn f<'a>(x: &'a str) { 'x'; b'y'; }");
        let lifetimes: Vec<_> = toks.iter().filter(|t| t.0 == Kind::Lifetime).collect();
        let chars: Vec<_> = toks.iter().filter(|t| t.0 == Kind::Char).collect();
        assert_eq!(lifetimes.len(), 2);
        assert_eq!(chars.len(), 2);
        assert_eq!(chars[0].1, "'x'");
        assert_eq!(chars[1].1, "b'y'");
    }

    #[test]
    fn nested_block_comments_and_lines() {
        let toks = lex("a /* one /* two */ still */ b\n// tail\nc");
        assert_eq!(toks.len(), 5);
        assert_eq!(toks[1].kind, Kind::Comment);
        assert_eq!(toks[2].text, "b");
        assert_eq!(toks[3].kind, Kind::Comment);
        assert_eq!(toks[4].text, "c");
        assert_eq!(toks[4].line, 3);
    }

    #[test]
    fn raw_identifiers_stay_idents() {
        let toks = kinds("r#type = 1");
        assert_eq!(toks[0], (Kind::Ident, "r#type".into()));
    }

    #[test]
    fn escaped_quote_in_char_literal() {
        let toks = kinds(r"let q = '\''; let n = 0;");
        assert_eq!(toks[3].0, Kind::Char);
        assert_eq!(toks.iter().filter(|t| t.0 == Kind::Ident).count(), 4);
    }

    #[test]
    fn numbers_with_suffixes_and_floats() {
        let toks = kinds("1_000u64 + 3.25e-2 + 0xFFusize + 1..4");
        let nums: Vec<_> = toks
            .iter()
            .filter(|t| t.0 == Kind::Num)
            .map(|t| t.1.as_str())
            .collect();
        assert_eq!(nums, vec!["1_000u64", "3.25e-2", "0xFFusize", "1", "4"]);
    }

    #[test]
    fn line_numbers_survive_multiline_strings() {
        let toks = lex("let s = \"a\nb\nc\";\nlet t = 1;");
        let t_tok = toks.iter().find(|t| t.text == "t").expect("t token");
        assert_eq!(t_tok.line, 4);
    }
}
