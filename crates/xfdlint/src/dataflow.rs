//! Interprocedural analyses over the workspace call graph: guard-to-I/O
//! reachability, the global lock-order graph with cycle detection,
//! deadline domination for blocking transport calls, and frame-protocol
//! exhaustiveness.
//!
//! All walks are bounded ([`MAX_DEPTH`]) and cycle-safe (visited sets);
//! unresolved calls simply contribute no edges, so the analyses degrade
//! toward silence, never toward nontermination.

use std::collections::{BTreeMap, BTreeSet};

use crate::config::RuleCfg;
use crate::graph::Workspace;
use crate::rules::{GuardedCall, NestedAcq, Violation};

/// Call-chain depth bound for reachability walks.
const MAX_DEPTH: usize = 8;

fn hit(rule: &'static str, line: usize, message: String) -> Violation {
    Violation {
        rule,
        line,
        message,
    }
}

fn fn_label(ws: &Workspace, id: usize) -> String {
    let node = &ws.fns[id];
    format!(
        "`{}` ({}:{})",
        node.item.name, ws.files[node.file].rel, node.item.line
    )
}

// ---------------------------------------------------------------------------
// Interprocedural lock discipline
// ---------------------------------------------------------------------------

/// Violations from calls made under a live guard whose call chains reach
/// I/O or further lock acquisitions, plus cycles in the combined
/// (configured + observed) lock-order graph. The second return component
/// carries cycle reports that have no source site (config-only cycles);
/// the driver attaches them to `xfdlint.toml`.
pub fn lock_graph_violations(
    ws: &Workspace,
    cfg: &RuleCfg,
    guarded: &[(usize, GuardedCall)],
    nested: &[(usize, NestedAcq)],
) -> (Vec<(usize, Violation)>, Vec<Violation>) {
    const RULE: &str = "lock_discipline";
    let mut out: Vec<(usize, Violation)> = Vec::new();
    // Edge → a witness site (file index, line), configured edges have none.
    let mut edges: BTreeMap<(String, String), Option<(usize, usize)>> = BTreeMap::new();
    for (outer, inner) in &cfg.order {
        edges.entry((outer.clone(), inner.clone())).or_insert(None);
    }
    for (file, n) in nested {
        edges
            .entry((n.outer.clone(), n.inner.clone()))
            .or_insert(Some((*file, n.line)));
    }

    // Configured guard helpers are acquisition syntax, not callees: their
    // internal `.lock()` is credited to each call site's receiver, so the
    // walk must not descend into them and double-count their generic lock.
    let is_helper = |id: usize| cfg.lock_helpers.iter().any(|h| h == &ws.fns[id].item.name);
    for (file, gc) in guarded {
        let mut queue: Vec<(usize, usize)> = ws
            .resolve(&gc.name, gc.method, gc.qualifier.as_deref(), Some(*file))
            .into_iter()
            .filter(|&id| !is_helper(id))
            .map(|id| (id, 1))
            .collect();
        let mut visited: BTreeSet<usize> = queue.iter().map(|&(id, _)| id).collect();
        let mut io_reported = false;
        let mut acq_reported: BTreeSet<String> = BTreeSet::new();
        while let Some((id, depth)) = queue.pop() {
            let node = &ws.fns[id];
            if !io_reported {
                if let Some((io_name, io_line)) = node.facts.io.first() {
                    let (_, gname, gline) = gc.guards.last().cloned().unwrap_or_default();
                    out.push((
                        *file,
                        hit(
                            RULE,
                            gc.line,
                            format!(
                                "`{}()` called while lock guard `{gname}` (bound line {gline}) \
                                 is live reaches I/O `{io_name}()` in {} at line {io_line}",
                                gc.name,
                                fn_label(ws, id),
                            ),
                        ),
                    ));
                    io_reported = true;
                }
            }
            // Reached acquisitions get their own per-site report but do NOT
            // feed the cycle graph: a call chain can pass through branches
            // the guard never lexically crosses (e.g. a poisoned-lock arm),
            // so only configured pairs and direct lexical nestings are
            // trusted as lock-order edges.
            for (recv2, acq_line) in &node.facts.acquires {
                for (outer_recv, _, gline) in &gc.guards {
                    let allowed = cfg.order.iter().any(|(o, i)| o == outer_recv && i == recv2);
                    if !allowed && acq_reported.insert(format!("{outer_recv}->{recv2}")) {
                        out.push((
                            *file,
                            hit(
                                RULE,
                                gc.line,
                                format!(
                                    "`{}()` called while lock guard on `{outer_recv}` (bound \
                                     line {gline}) is live acquires lock `{recv2}` in {} at \
                                     line {acq_line}; nesting not in configured order",
                                    gc.name,
                                    fn_label(ws, id),
                                ),
                            ),
                        ));
                    }
                }
            }
            if depth < MAX_DEPTH {
                let from_file = ws.fns[id].file;
                for call in &ws.fns[id].item.calls {
                    if call.in_test {
                        continue;
                    }
                    for target in ws.resolve_call(call, from_file) {
                        if !is_helper(target) && visited.insert(target) {
                            queue.push((target, depth + 1));
                        }
                    }
                }
            }
        }
    }

    let (sited, unsited) = cycle_violations(&edges);
    out.extend(sited);
    (out, unsited)
}

/// Find cycles in the lock-order graph. Each strongly-connected component
/// with a cycle is reported once; the report lands on a witness site when
/// one of its edges was observed in source, otherwise it is site-less.
fn cycle_violations(
    edges: &BTreeMap<(String, String), Option<(usize, usize)>>,
) -> (Vec<(usize, Violation)>, Vec<Violation>) {
    const RULE: &str = "lock_discipline";
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (a, b) in edges.keys() {
        adj.entry(a.as_str()).or_default().push(b.as_str());
    }
    let reachable = |from: &str, to: &str| -> bool {
        let mut stack = vec![from];
        let mut seen: BTreeSet<&str> = BTreeSet::new();
        while let Some(n) = stack.pop() {
            for &m in adj.get(n).map(Vec::as_slice).unwrap_or_default() {
                if m == to {
                    return true;
                }
                if seen.insert(m) {
                    stack.push(m);
                }
            }
        }
        false
    };
    let mut sited = Vec::new();
    let mut unsited = Vec::new();
    let mut reported: BTreeSet<Vec<String>> = BTreeSet::new();
    for ((a, b), _) in edges.iter() {
        if !reachable(b, a) && a != b {
            continue;
        }
        // The SCC containing edge a→b: nodes on some cycle through it.
        let mut scc: Vec<String> = edges
            .keys()
            .flat_map(|(x, y)| [x.clone(), y.clone()])
            .collect::<BTreeSet<_>>()
            .into_iter()
            .filter(|n| n == a || (reachable(a, n) && reachable(n.as_str(), a)))
            .collect();
        scc.sort();
        if !reported.insert(scc.clone()) {
            continue;
        }
        let ring = scc.join(" -> ");
        let witness = edges
            .iter()
            .filter(|((x, y), _)| scc.contains(x) && scc.contains(y))
            .find_map(|(_, site)| *site);
        let message = format!(
            "lock-order cycle: {ring} -> {}; configured `order` pairs and observed \
             nestings together admit a deadlock",
            scc.first().map(String::as_str).unwrap_or("?"),
        );
        match witness {
            Some((file, line)) => sited.push((file, hit(RULE, line, message))),
            None => unsited.push(hit(RULE, 1, message)),
        }
    }
    (sited, unsited)
}

// ---------------------------------------------------------------------------
// Deadline discipline
// ---------------------------------------------------------------------------

/// Every blocking call (configured `blocking` names) must be *dominated* by
/// a deadline-arming call (`deadline_ok` names): one must occur earlier in
/// the same function, or on every non-test call path leading in from the
/// function's entry points. A `pub` function is an entry point — external
/// callers cannot be vetted — and a function with no known callers is
/// treated as one too.
pub fn deadline_violations(
    ws: &Workspace,
    cfg: &RuleCfg,
    in_scope: &dyn Fn(&str) -> bool,
) -> Vec<(usize, Violation)> {
    const RULE: &str = "deadline_discipline";
    let mut out = Vec::new();
    let mut memo: Vec<Option<Option<Vec<usize>>>> = vec![None; ws.fns.len()];
    for id in 0..ws.fns.len() {
        let node = &ws.fns[id];
        if node.is_test(ws.files) || !in_scope(&ws.files[node.file].rel) {
            continue;
        }
        if node.facts.blocking.is_empty() {
            continue;
        }
        for (name, line, site_ci) in node.facts.blocking.clone() {
            if node.facts.deadline_marks.iter().any(|&m| m < site_ci) {
                continue;
            }
            let mut in_progress = vec![false; ws.fns.len()];
            if let Some(chain) = exposed(ws, id, &mut memo, &mut in_progress) {
                let path = chain
                    .iter()
                    .rev()
                    .map(|&f| ws.fns[f].item.name.clone())
                    .collect::<Vec<_>>()
                    .join(" -> ");
                out.push((
                    node.file,
                    hit(
                        RULE,
                        line,
                        format!(
                            "blocking `{name}()` is reachable with no deadline armed via \
                             entry path `{path}`; a `{}` call must dominate it",
                            cfg.deadline_ok.join("`/`"),
                        ),
                    ),
                ));
            }
        }
    }
    out
}

/// Can `id` be *entered* with no deadline armed? Returns the offending
/// chain `[id, caller, ..., entry]` if so. Cycles count as safe (re-entry
/// implies a first entry that is judged on its own merits); results are
/// memoized per function.
fn exposed(
    ws: &Workspace,
    id: usize,
    memo: &mut Vec<Option<Option<Vec<usize>>>>,
    in_progress: &mut Vec<bool>,
) -> Option<Vec<usize>> {
    if let Some(Some(cached)) = memo.get(id) {
        return cached.clone();
    }
    if in_progress[id] {
        return None;
    }
    in_progress[id] = true;
    let result = (|| {
        if ws.fns[id].item.is_pub {
            return Some(vec![id]);
        }
        let callers = ws.callers.get(&id).cloned().unwrap_or_default();
        if callers.is_empty() {
            return Some(vec![id]);
        }
        for (caller, call_ci) in callers {
            if ws.fns[caller]
                .facts
                .deadline_marks
                .iter()
                .any(|&m| m < call_ci)
            {
                continue; // this path arms a deadline before the call
            }
            if let Some(mut chain) = exposed(ws, caller, memo, in_progress) {
                chain.insert(0, id);
                return Some(chain);
            }
        }
        None
    })();
    in_progress[id] = false;
    memo[id] = Some(result.clone());
    result
}

// ---------------------------------------------------------------------------
// Protocol exhaustiveness
// ---------------------------------------------------------------------------

/// Every variant of the configured protocol enum must be mentioned (as
/// `Enum::Variant` or `Self::Variant`) in the encode functions, in the
/// decode functions, and in at least one test. The second return component
/// carries configuration-shaped failures (enum or functions not found).
pub fn protocol_violations(
    ws: &Workspace,
    cfg: &RuleCfg,
    in_scope: &dyn Fn(&str) -> bool,
) -> (Vec<(usize, Violation)>, Vec<Violation>) {
    const RULE: &str = "protocol_exhaustiveness";
    let enum_name = cfg.protocol_enum.as_str();
    let mut unsited = Vec::new();
    let found = ws.files.iter().enumerate().find_map(|(fi, m)| {
        if m.is_test_file || !in_scope(&m.rel) {
            return None;
        }
        m.items
            .enums
            .iter()
            .find(|e| e.name == enum_name)
            .map(|e| (fi, e.clone()))
    });
    let Some((enum_file, item)) = found else {
        unsited.push(hit(
            RULE,
            1,
            format!("protocol enum `{enum_name}` not found in any file in scope"),
        ));
        return (Vec::new(), unsited);
    };

    let side_fns = |names: &[String]| -> Vec<usize> {
        (0..ws.fns.len())
            .filter(|&id| {
                let node = &ws.fns[id];
                !node.is_test(ws.files)
                    && in_scope(&ws.files[node.file].rel)
                    && names.iter().any(|n| n == &node.item.name)
                    && node
                        .item
                        .owner
                        .as_deref()
                        .map(|o| o == enum_name)
                        .unwrap_or(true)
            })
            .collect()
    };
    let encode = side_fns(&cfg.encode_fns);
    let decode = side_fns(&cfg.decode_fns);
    for (side, ids, names) in [
        ("encode", &encode, &cfg.encode_fns),
        ("decode", &decode, &cfg.decode_fns),
    ] {
        if ids.is_empty() {
            unsited.push(hit(
                RULE,
                1,
                format!(
                    "no {side} fn ({}) found for enum `{enum_name}`",
                    names.join("/")
                ),
            ));
        }
    }
    if encode.is_empty() || decode.is_empty() {
        return (Vec::new(), unsited);
    }

    let mentioned_in = |ids: &[usize], variant: &str| -> bool {
        ids.iter().any(|&id| {
            let node = &ws.fns[id];
            let scan = &ws.files[node.file].scan;
            mentions(scan, node.item.body, enum_name, variant)
        })
    };
    let mut out = Vec::new();
    for (variant, line) in &item.variants {
        if !mentioned_in(&encode, variant) {
            out.push((
                enum_file,
                hit(
                    RULE,
                    *line,
                    format!(
                        "`{enum_name}::{variant}` has no arm in encode fn(s) {}",
                        cfg.encode_fns.join("/")
                    ),
                ),
            ));
        }
        if !mentioned_in(&decode, variant) {
            out.push((
                enum_file,
                hit(
                    RULE,
                    *line,
                    format!(
                        "`{enum_name}::{variant}` has no arm in decode fn(s) {}",
                        cfg.decode_fns.join("/")
                    ),
                ),
            ));
        }
        if !mentioned_in_tests(ws, enum_name, variant) {
            out.push((
                enum_file,
                hit(
                    RULE,
                    *line,
                    format!("`{enum_name}::{variant}` is not exercised by any test"),
                ),
            ));
        }
    }
    (out, unsited)
}

/// `Enum::Variant` / `Self::Variant` token pattern inside a body range.
fn mentions(
    scan: &crate::scan::SourceScan,
    body: (usize, usize),
    enum_name: &str,
    variant: &str,
) -> bool {
    let (open, close) = body;
    (open + 1..close).any(|ci| qualified_mention(scan, ci, enum_name, variant))
}

fn qualified_mention(
    scan: &crate::scan::SourceScan,
    ci: usize,
    enum_name: &str,
    variant: &str,
) -> bool {
    ci >= 3
        && scan.code_tok(ci).is_ident(variant)
        && scan.code_tok(ci - 1).is_punct(':')
        && scan.code_tok(ci - 2).is_punct(':')
        && (scan.code_tok(ci - 3).is_ident(enum_name) || scan.code_tok(ci - 3).is_ident("Self"))
}

/// Variant mentioned anywhere in test code (test files or test regions).
fn mentioned_in_tests(ws: &Workspace, enum_name: &str, variant: &str) -> bool {
    ws.files.iter().any(|m| {
        (0..m.scan.code.len()).any(|ci| {
            let fi = m.scan.code[ci];
            (m.is_test_file || m.scan.in_test[fi])
                && qualified_mention(&m.scan, ci, enum_name, variant)
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use crate::graph::FileModel;
    use crate::rules::lock_scan;

    fn setup(files: &[(&str, &str)], cfg_src: &str) -> (Vec<FileModel>, Config) {
        let cfg = Config::parse(cfg_src).expect("config parses");
        let models = files
            .iter()
            .map(|(rel, src)| FileModel::new(rel.to_string(), src))
            .collect();
        (models, cfg)
    }

    type LockInputs = (Vec<(usize, GuardedCall)>, Vec<(usize, NestedAcq)>);

    fn lock_inputs(models: &[FileModel], cfg: &RuleCfg) -> LockInputs {
        let mut guarded = Vec::new();
        let mut nested = Vec::new();
        for (i, m) in models.iter().enumerate() {
            let ls = lock_scan(&m.scan, cfg);
            guarded.extend(ls.guarded_calls.into_iter().map(|g| (i, g)));
            nested.extend(ls.nested.into_iter().map(|n| (i, n)));
        }
        (guarded, nested)
    }

    #[test]
    fn guarded_call_reaching_io_is_flagged() {
        let (models, cfg) = setup(
            &[(
                "crates/a/src/lib.rs",
                "impl S {\n\
                 fn hot(&self) {\n    let g = self.state.lock();\n    self.evict(1);\n}\n\
                 fn evict(&self, n: u64) { spill(n); }\n\
                 }\n\
                 fn spill(n: u64) { file.sync_all(); }\n",
            )],
            "[lock_discipline]\npaths = [\"crates\"]\n",
        );
        let ws = Workspace::build(&models, &cfg);
        let rc = &cfg.rules["lock_discipline"];
        let (guarded, nested) = lock_inputs(&models, rc);
        let (v, unsited) = lock_graph_violations(&ws, rc, &guarded, &nested);
        assert!(unsited.is_empty());
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].1.message.contains("sync_all"));
        assert!(v[0].1.message.contains("spill"));
    }

    #[test]
    fn guarded_call_acquiring_unordered_lock_is_flagged() {
        let src = "impl S {\n\
                   fn hot(&self) {\n    let a = self.first.lock();\n    self.deep();\n}\n\
                   fn deep(&self) { let b = self.second.lock(); b.bump(); }\n\
                   }\n";
        for (order, expect) in [("[]", 1usize), ("[\"first->second\"]", 0)] {
            let (models, cfg) = setup(
                &[("crates/a/src/lib.rs", src)],
                &format!("[lock_discipline]\npaths = [\"crates\"]\norder = {order}\n"),
            );
            let ws = Workspace::build(&models, &cfg);
            let rc = &cfg.rules["lock_discipline"];
            let (guarded, nested) = lock_inputs(&models, rc);
            let (v, _) = lock_graph_violations(&ws, rc, &guarded, &nested);
            assert_eq!(v.len(), expect, "order={order}: {v:?}");
        }
    }

    #[test]
    fn lock_order_cycles_are_reported_once() {
        // Configured a->b plus an observed b->a nesting: a cycle.
        let (models, cfg) = setup(
            &[(
                "crates/a/src/lib.rs",
                "impl S {\nfn f(&self) {\n    let g = self.b.lock();\n    let h = self.a.lock();\n}\n}\n",
            )],
            "[lock_discipline]\npaths = [\"crates\"]\norder = [\"a->b\", \"b->a\"]\n",
        );
        let ws = Workspace::build(&models, &cfg);
        let rc = &cfg.rules["lock_discipline"];
        let (guarded, nested) = lock_inputs(&models, rc);
        let (v, unsited) = lock_graph_violations(&ws, rc, &guarded, &nested);
        let cycles: Vec<_> = v
            .iter()
            .map(|(_, x)| x)
            .chain(unsited.iter())
            .filter(|x| x.message.contains("lock-order cycle"))
            .collect();
        assert_eq!(cycles.len(), 1, "{cycles:?}");
        assert!(cycles[0].message.contains("a -> b"));
    }

    #[test]
    fn config_only_cycle_lands_siteless() {
        let (models, cfg) = setup(
            &[("crates/a/src/lib.rs", "fn f() {}\n")],
            "[lock_discipline]\npaths = [\"crates\"]\norder = [\"a->b\", \"b->a\"]\n",
        );
        let ws = Workspace::build(&models, &cfg);
        let rc = &cfg.rules["lock_discipline"];
        let (v, unsited) = lock_graph_violations(&ws, rc, &[], &[]);
        assert!(v.is_empty());
        assert_eq!(unsited.len(), 1, "{unsited:?}");
    }

    fn deadline_cfg() -> &'static str {
        "[deadline_discipline]\npaths = [\"crates\"]\n"
    }

    fn run_deadline(models: &[FileModel], cfg: &Config) -> Vec<(usize, Violation)> {
        let ws = Workspace::build(models, cfg);
        let rc = &cfg.rules["deadline_discipline"];
        deadline_violations(&ws, rc, &|rel| cfg.in_scope("deadline_discipline", rel))
    }

    #[test]
    fn blocking_call_needs_local_or_caller_deadline() {
        let (models, cfg) = setup(
            &[(
                "crates/a/src/lib.rs",
                "pub fn naked(s: &mut S) { let f = read_frame(s); }\n\
                 pub fn armed(s: &mut S) { s.set_read_timeout(Some(t)); let f = read_frame(s); }\n",
            )],
            deadline_cfg(),
        );
        let v = run_deadline(&models, &cfg);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].1.line, 1);
        assert!(v[0].1.message.contains("naked"));
    }

    #[test]
    fn caller_arming_a_deadline_dominates_private_callee() {
        let (models, cfg) = setup(
            &[(
                "crates/a/src/lib.rs",
                "pub fn session(s: &mut S) { s.set_read_timeout(Some(t)); shipped(s); }\n\
                 fn shipped(s: &mut S) { let f = read_frame(s); }\n",
            )],
            deadline_cfg(),
        );
        let v = run_deadline(&models, &cfg);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn one_unarmed_entry_path_is_enough_to_flag() {
        let (models, cfg) = setup(
            &[(
                "crates/a/src/lib.rs",
                "pub fn good(s: &mut S) { s.set_read_timeout(Some(t)); shipped(s); }\n\
                 pub fn bad(s: &mut S) { shipped(s); }\n\
                 fn shipped(s: &mut S) { let f = read_frame(s); }\n",
            )],
            deadline_cfg(),
        );
        let v = run_deadline(&models, &cfg);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(
            v[0].1.message.contains("bad -> shipped"),
            "{}",
            v[0].1.message
        );
    }

    #[test]
    fn test_only_callers_do_not_count_as_entries() {
        let (models, cfg) = setup(
            &[(
                "crates/a/src/lib.rs",
                "pub fn session(s: &mut S) { s.set_read_timeout(Some(t)); shipped(s); }\n\
                 fn shipped(s: &mut S) { let f = read_frame(s); }\n\
                 #[cfg(test)]\nmod tests {\n    fn t(s: &mut S) { super::shipped(s); }\n}\n",
            )],
            deadline_cfg(),
        );
        let v = run_deadline(&models, &cfg);
        assert!(v.is_empty(), "{v:?}");
    }

    fn protocol_cfg() -> &'static str {
        "[protocol_exhaustiveness]\npaths = [\"crates/t/src\"]\nprotocol_enum = \"Frame\"\n\
         encode_fns = [\"kind\"]\ndecode_fns = [\"decode\"]\n"
    }

    #[test]
    fn missing_arms_and_missing_tests_are_flagged_per_variant() {
        let (models, cfg) = setup(
            &[(
                "crates/t/src/frame.rs",
                "pub enum Frame { Ping, Pong }\n\
                 impl Frame {\n\
                 pub fn kind(&self) -> u8 { match self { Frame::Ping => 1, Frame::Pong => 2 } }\n\
                 pub fn decode(k: u8) -> Frame { match k { 1 => Frame::Ping, _ => Frame::Ping } }\n\
                 }\n\
                 #[cfg(test)]\nmod tests {\n    fn t() { let _f = Frame::Ping; }\n}\n",
            )],
            protocol_cfg(),
        );
        let ws = Workspace::build(&models, &cfg);
        let rc = &cfg.rules["protocol_exhaustiveness"];
        let (v, unsited) =
            protocol_violations(&ws, rc, &|rel| cfg.in_scope("protocol_exhaustiveness", rel));
        assert!(unsited.is_empty(), "{unsited:?}");
        // Pong: missing decode arm and missing test coverage.
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().all(|(_, x)| x.message.contains("Pong")));
        assert!(v.iter().any(|(_, x)| x.message.contains("decode")));
        assert!(v.iter().any(|(_, x)| x.message.contains("test")));
    }

    #[test]
    fn fully_wired_enum_is_clean_and_missing_enum_is_config_shaped() {
        let (models, cfg) = setup(
            &[
                (
                    "crates/t/src/frame.rs",
                    "pub enum Frame { Ping }\n\
                     impl Frame {\n\
                     pub fn kind(&self) -> u8 { match self { Self::Ping => 1 } }\n\
                     pub fn decode(k: u8) -> Frame { Frame::Ping }\n\
                     }\n",
                ),
                (
                    "crates/t/tests/roundtrip.rs",
                    "fn t() { let f = Frame::Ping; }\n",
                ),
            ],
            protocol_cfg(),
        );
        let ws = Workspace::build(&models, &cfg);
        let rc = &cfg.rules["protocol_exhaustiveness"];
        let (v, unsited) =
            protocol_violations(&ws, rc, &|rel| cfg.in_scope("protocol_exhaustiveness", rel));
        assert!(v.is_empty(), "{v:?}");
        assert!(unsited.is_empty());

        let (models, cfg) = setup(&[("crates/t/src/lib.rs", "fn f() {}\n")], protocol_cfg());
        let ws = Workspace::build(&models, &cfg);
        let rc = &cfg.rules["protocol_exhaustiveness"];
        let (_, unsited) =
            protocol_violations(&ws, rc, &|rel| cfg.in_scope("protocol_exhaustiveness", rel));
        assert_eq!(unsited.len(), 1, "{unsited:?}");
    }
}
