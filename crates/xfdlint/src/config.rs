//! `xfdlint.toml` parsing: a hand-rolled subset of TOML, in line with the
//! workspace's no-external-dependencies policy.
//!
//! Supported syntax — exactly what the checked-in config uses:
//!
//! ```toml
//! # comment
//! [rule_name]
//! paths = ["crates/server/src", "crates/core/src/memo.rs"]
//! order = ["registry->handle"]   # lock_discipline only
//! ```
//!
//! Arrays may span lines. Every key is validated; an unknown key or rule
//! name is a configuration error (exit code 2), so a typo cannot silently
//! disable a rule.

use std::collections::BTreeMap;

/// Names of the rules xfdlint knows, in report order.
pub const RULE_NAMES: [&str; 6] = [
    "panic_freedom",
    "lock_discipline",
    "unsafe_audit",
    "error_hygiene",
    "deadline_discipline",
    "protocol_exhaustiveness",
];

/// Per-rule configuration section.
#[derive(Debug, Clone, Default)]
pub struct RuleCfg {
    /// Workspace-relative path prefixes the rule applies to. A file is in
    /// scope when its path equals a prefix or extends one at a `/` boundary.
    pub paths: Vec<String>,
    /// `lock_discipline` only: permitted nested acquisitions, as
    /// `outer->inner` receiver pairs. Any nesting not listed is a violation.
    pub order: Vec<(String, String)>,
    /// `lock_discipline` only: extra guard-returning helper functions
    /// (method receivers are always scanned for `.lock(`).
    pub lock_helpers: Vec<String>,
    /// `deadline_discipline` only: names of blocking calls that need a
    /// deadline. Defaults to `read_frame`/`accept`/`connect`.
    pub blocking: Vec<String>,
    /// `deadline_discipline` only: names of calls that establish a deadline.
    /// Defaults to `set_read_timeout`/`connect_timeout`.
    pub deadline_ok: Vec<String>,
    /// `protocol_exhaustiveness` only: the protocol enum to audit.
    pub protocol_enum: String,
    /// `protocol_exhaustiveness` only: functions whose bodies together must
    /// mention every variant on the encode side.
    pub encode_fns: Vec<String>,
    /// `protocol_exhaustiveness` only: functions whose bodies together must
    /// mention every variant on the decode side.
    pub decode_fns: Vec<String>,
}

/// The parsed config: one section per enabled rule.
#[derive(Debug, Clone, Default)]
pub struct Config {
    /// Rule name → its configuration, in file order.
    pub rules: BTreeMap<String, RuleCfg>,
}

impl Config {
    /// Parse a config file. Errors carry the offending line number.
    pub fn parse(src: &str) -> Result<Config, String> {
        let mut cfg = Config::default();
        let mut current: Option<String> = None;
        let mut lines = src.lines().enumerate().peekable();
        while let Some((idx, raw)) = lines.next() {
            let lineno = idx + 1;
            let line = strip_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                let name = name.trim();
                if !RULE_NAMES.contains(&name) {
                    return Err(format!("line {lineno}: unknown rule section [{name}]"));
                }
                if cfg.rules.contains_key(name) {
                    return Err(format!("line {lineno}: duplicate section [{name}]"));
                }
                cfg.rules.insert(name.to_string(), RuleCfg::default());
                current = Some(name.to_string());
                continue;
            }
            let Some((key, mut value)) = split_key_value(&line) else {
                return Err(format!("line {lineno}: expected `key = value`"));
            };
            let Some(section) = current.as_ref() else {
                return Err(format!(
                    "line {lineno}: key `{key}` outside any [rule] section"
                ));
            };
            // Arrays may continue over following lines until brackets close.
            while bracket_balance(&value) > 0 {
                match lines.next() {
                    Some((_, more)) => {
                        value.push(' ');
                        value.push_str(strip_comment(more).trim());
                    }
                    None => return Err(format!("line {lineno}: unterminated array for `{key}`")),
                }
            }
            let items = parse_string_array(&value)
                .map_err(|e| format!("line {lineno}: value of `{key}`: {e}"))?;
            let Some(rule) = cfg.rules.get_mut(section) else {
                return Err(format!("line {lineno}: section [{section}] vanished"));
            };
            match key {
                "paths" => rule.paths = items,
                "order" if section == "lock_discipline" => {
                    rule.order = items
                        .iter()
                        .map(|pair| {
                            pair.split_once("->")
                                .map(|(a, b)| (a.trim().to_string(), b.trim().to_string()))
                                .ok_or_else(|| {
                                    format!(
                                        "line {lineno}: order entry `{pair}` is not `outer->inner`"
                                    )
                                })
                        })
                        .collect::<Result<_, _>>()?;
                }
                "lock_helpers" if section == "lock_discipline" => rule.lock_helpers = items,
                "blocking" if section == "deadline_discipline" => rule.blocking = items,
                "deadline_ok" if section == "deadline_discipline" => rule.deadline_ok = items,
                "protocol_enum" if section == "protocol_exhaustiveness" => match items.as_slice() {
                    [one] => rule.protocol_enum = one.clone(),
                    _ => {
                        return Err(format!(
                            "line {lineno}: `protocol_enum` must name exactly one enum"
                        ))
                    }
                },
                "encode_fns" if section == "protocol_exhaustiveness" => rule.encode_fns = items,
                "decode_fns" if section == "protocol_exhaustiveness" => rule.decode_fns = items,
                _ => {
                    return Err(format!(
                        "line {lineno}: unknown key `{key}` in section [{section}]"
                    ))
                }
            }
        }
        for (name, rule) in cfg.rules.iter_mut() {
            if rule.paths.is_empty() {
                return Err(format!("section [{name}] has no `paths`"));
            }
            if name == "deadline_discipline" {
                if rule.blocking.is_empty() {
                    rule.blocking = vec![
                        "read_frame".to_string(),
                        "accept".to_string(),
                        "connect".to_string(),
                    ];
                }
                if rule.deadline_ok.is_empty() {
                    rule.deadline_ok = vec![
                        "set_read_timeout".to_string(),
                        "connect_timeout".to_string(),
                    ];
                }
            }
            if name == "protocol_exhaustiveness"
                && (rule.protocol_enum.is_empty()
                    || rule.encode_fns.is_empty()
                    || rule.decode_fns.is_empty())
            {
                return Err(format!(
                    "section [{name}] needs `protocol_enum`, `encode_fns` and `decode_fns`"
                ));
            }
        }
        if cfg.rules.is_empty() {
            return Err("config enables no rules".to_string());
        }
        Ok(cfg)
    }

    /// True when `rel_path` (workspace-relative, `/`-separated) is in scope
    /// for the rule, i.e. equals or extends one of its path prefixes.
    pub fn in_scope(&self, rule: &str, rel_path: &str) -> bool {
        self.rules.get(rule).is_some_and(|r| {
            r.paths.iter().any(|p| {
                rel_path == p
                    || rel_path
                        .strip_prefix(p.as_str())
                        .is_some_and(|rest| rest.starts_with('/'))
            })
        })
    }
}

/// Drop a `#` comment, ignoring `#` inside double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut prev_backslash = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' if !prev_backslash => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
        prev_backslash = c == '\\' && !prev_backslash;
    }
    line
}

fn split_key_value(line: &str) -> Option<(&str, String)> {
    let (key, value) = line.split_once('=')?;
    let key = key.trim();
    if key.is_empty() || !key.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
        return None;
    }
    Some((key, value.trim().to_string()))
}

fn bracket_balance(s: &str) -> i64 {
    let mut balance = 0i64;
    let mut in_str = false;
    for c in s.chars() {
        match c {
            '"' => in_str = !in_str,
            '[' if !in_str => balance += 1,
            ']' if !in_str => balance -= 1,
            _ => {}
        }
    }
    balance
}

/// Parse `["a", "b"]` (or a single `"a"`, promoted to a one-item list).
fn parse_string_array(value: &str) -> Result<Vec<String>, String> {
    let value = value.trim();
    if let Some(single) = parse_string(value) {
        return Ok(vec![single]);
    }
    let inner = value
        .strip_prefix('[')
        .and_then(|v| v.strip_suffix(']'))
        .ok_or_else(|| format!("expected a string or [array], got `{value}`"))?;
    let mut items = Vec::new();
    for part in split_top_level(inner) {
        let part = part.trim();
        if part.is_empty() {
            continue; // trailing comma
        }
        items.push(parse_string(part).ok_or_else(|| format!("expected a string, got `{part}`"))?);
    }
    Ok(items)
}

fn parse_string(s: &str) -> Option<String> {
    let inner = s.strip_prefix('"')?.strip_suffix('"')?;
    if inner.contains('"') {
        return None;
    }
    Some(inner.to_string())
}

/// Split on commas that are outside quotes.
fn split_top_level(s: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut start = 0;
    let mut in_str = false;
    for (i, c) in s.char_indices() {
        match c {
            '"' => in_str = !in_str,
            ',' if !in_str => {
                parts.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    parts.push(&s[start..]);
    parts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_arrays_and_order_pairs() {
        let cfg = Config::parse(
            r#"
# top comment
[panic_freedom]
paths = [
  "crates/server/src",   # hot path
  "crates/core/src/memo.rs",
]

[lock_discipline]
paths = "crates/server/src"
order = ["registry->handle"]
lock_helpers = ["lock_recover"]
"#,
        )
        .expect("config parses");
        let pf = &cfg.rules["panic_freedom"];
        assert_eq!(
            pf.paths,
            vec!["crates/server/src", "crates/core/src/memo.rs"]
        );
        let ld = &cfg.rules["lock_discipline"];
        assert_eq!(
            ld.order,
            vec![("registry".to_string(), "handle".to_string())]
        );
        assert_eq!(ld.lock_helpers, vec!["lock_recover"]);
    }

    #[test]
    fn scope_matches_on_path_boundaries() {
        let cfg = Config::parse("[panic_freedom]\npaths = [\"crates/server/src\"]\n")
            .expect("config parses");
        assert!(cfg.in_scope("panic_freedom", "crates/server/src/http.rs"));
        assert!(cfg.in_scope("panic_freedom", "crates/server/src"));
        assert!(!cfg.in_scope("panic_freedom", "crates/server/srcfoo/x.rs"));
        assert!(!cfg.in_scope("panic_freedom", "crates/server/tests/e2e.rs"));
        assert!(!cfg.in_scope("lock_discipline", "crates/server/src/http.rs"));
    }

    #[test]
    fn rejects_unknown_rules_and_keys() {
        assert!(Config::parse("[no_such_rule]\npaths=[\"x\"]\n").is_err());
        assert!(Config::parse("[panic_freedom]\nfrobnicate = [\"x\"]\n").is_err());
        assert!(Config::parse("paths = [\"x\"]\n").is_err());
        assert!(Config::parse("[panic_freedom]\n").is_err());
        assert!(Config::parse("[error_hygiene]\norder = [\"a->b\"]\n").is_err());
    }

    #[test]
    fn deadline_section_gets_defaults() {
        let cfg = Config::parse("[deadline_discipline]\npaths = [\"crates/x/src\"]\n")
            .expect("config parses");
        let dl = &cfg.rules["deadline_discipline"];
        assert_eq!(dl.blocking, vec!["read_frame", "accept", "connect"]);
        assert_eq!(dl.deadline_ok, vec!["set_read_timeout", "connect_timeout"]);
        let cfg = Config::parse(
            "[deadline_discipline]\npaths = [\"x\"]\nblocking = [\"recv\"]\ndeadline_ok = [\"arm\"]\n",
        )
        .expect("config parses");
        assert_eq!(cfg.rules["deadline_discipline"].blocking, vec!["recv"]);
        assert_eq!(cfg.rules["deadline_discipline"].deadline_ok, vec!["arm"]);
    }

    #[test]
    fn protocol_section_requires_enum_and_fns() {
        let cfg = Config::parse(
            "[protocol_exhaustiveness]\npaths = [\"x\"]\nprotocol_enum = \"Frame\"\n\
             encode_fns = [\"kind\", \"payload\"]\ndecode_fns = [\"decode\"]\n",
        )
        .expect("config parses");
        let pe = &cfg.rules["protocol_exhaustiveness"];
        assert_eq!(pe.protocol_enum, "Frame");
        assert_eq!(pe.encode_fns, vec!["kind", "payload"]);
        assert_eq!(pe.decode_fns, vec!["decode"]);
        assert!(Config::parse("[protocol_exhaustiveness]\npaths = [\"x\"]\n").is_err());
        assert!(Config::parse(
            "[protocol_exhaustiveness]\npaths = [\"x\"]\nprotocol_enum = [\"A\", \"B\"]\n"
        )
        .is_err());
        // Rule-specific keys stay rule-specific.
        assert!(Config::parse("[panic_freedom]\npaths = [\"x\"]\nblocking = [\"y\"]\n").is_err());
    }

    #[test]
    fn comments_inside_strings_survive() {
        let cfg = Config::parse("[panic_freedom]\npaths = [\"cr#ates\"] # real comment\n")
            .expect("config parses");
        assert_eq!(cfg.rules["panic_freedom"].paths, vec!["cr#ates"]);
    }
}
