//! xfdlint: workspace-native static analysis for the DiscoverXFD codebase.
//!
//! Six rules guard the hot and durable paths (see `xfdlint.toml` at the
//! workspace root for the scoped paths and DESIGN.md for the philosophy):
//!
//! * `panic_freedom` — no `unwrap`/`expect`, panic-family macros,
//!   `unchecked` operations or index expressions where a panic would tear
//!   down a worker mid-job or mid-WAL-commit.
//! * `lock_discipline` — no file/socket I/O while a `Mutex` guard is live
//!   (directly *or through any call chain*), nested acquisitions must match
//!   the configured order pairs, and the combined configured + observed
//!   lock-order graph must be acyclic.
//! * `unsafe_audit` — every `unsafe` block carries a `// SAFETY:` comment.
//! * `error_hygiene` — no `let _ =` discards in non-test code.
//! * `deadline_discipline` — blocking transport calls (`read_frame`,
//!   `accept`, `connect`) must be dominated by a deadline-arming call on
//!   every non-test path from their public entry points.
//! * `protocol_exhaustiveness` — every variant of the frame enum appears in
//!   the encode and decode functions and in at least one test.
//!
//! The analyzer runs in two passes: pass one lexes and item-parses every
//! walked file into a workspace model ([`graph::Workspace`]: symbol table,
//! per-function facts, call graph); pass two runs the lexical rules per
//! file and the graph rules ([`dataflow`]) globally.
//!
//! Sites that are deliberate carry
//! `// xfdlint:allow(<rule>, reason = "...")`; the reason is mandatory and
//! a stale allow (one that no longer suppresses anything) is itself an
//! error, so the allowlist can never drift from the code.

#![warn(missing_docs)]

pub mod config;
pub mod dataflow;
pub mod graph;
pub mod lexer;
pub mod parse;
pub mod rules;
pub mod scan;

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use config::Config;
use graph::{FileModel, Workspace};
use rules::Violation;

/// Pseudo-rule under which malformed and stale allow annotations report.
pub const ALLOW_RULE: &str = "allow-annotation";

/// Pseudo-path for violations with no source site (e.g. a lock-order cycle
/// that exists purely between configured `order` pairs).
pub const CONFIG_PATH: &str = "xfdlint.toml";

/// A violation bound to the file it occurred in.
#[derive(Debug, Clone)]
pub struct FileViolation {
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// The underlying rule hit.
    pub violation: Violation,
}

/// A live (consumed) allow annotation.
#[derive(Debug, Clone)]
pub struct LiveAllow {
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// Line of the annotation comment.
    pub line: usize,
    /// Rule it suppresses.
    pub rule: String,
    /// The mandatory justification.
    pub reason: String,
}

/// Per-rule tallies for the summary table.
#[derive(Debug, Clone, Copy, Default)]
pub struct RuleStats {
    /// Violations that survived allow-filtering.
    pub violations: usize,
    /// Violations suppressed by a justified allow annotation.
    pub allowed: usize,
}

/// Result of linting a tree.
#[derive(Debug, Default)]
pub struct Outcome {
    /// Surviving violations, ordered by path then line.
    pub violations: Vec<FileViolation>,
    /// Per-rule statistics (every configured rule has an entry).
    pub stats: BTreeMap<String, RuleStats>,
    /// Number of files scanned.
    pub files_scanned: usize,
    /// Every allow annotation that suppressed a violation, with its reason,
    /// ordered by path then line.
    pub allows_live: Vec<LiveAllow>,
}

impl Outcome {
    /// True when the tree is clean.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Lint the workspace rooted at `root`, reading `<root>/xfdlint.toml`.
pub fn run_root(root: &Path) -> Result<Outcome, String> {
    let cfg_path = root.join("xfdlint.toml");
    let cfg_src = std::fs::read_to_string(&cfg_path)
        .map_err(|e| format!("cannot read {}: {e}", cfg_path.display()))?;
    let cfg = Config::parse(&cfg_src).map_err(|e| format!("{}: {e}", cfg_path.display()))?;
    run_with_config(root, &cfg)
}

/// Lint the tree at `root` with an already-parsed config.
pub fn run_with_config(root: &Path, cfg: &Config) -> Result<Outcome, String> {
    let mut outcome = Outcome::default();
    for name in cfg.rules.keys() {
        outcome.stats.insert(name.clone(), RuleStats::default());
    }
    outcome
        .stats
        .insert(ALLOW_RULE.to_string(), RuleStats::default());

    let mut files = Vec::new();
    walk(root, root, &mut files)?;
    files.sort();

    // Pass 1: parse every file into the workspace model. The graph rules
    // need the whole tree — a call chain does not stop at a scope boundary.
    let mut models = Vec::with_capacity(files.len());
    for rel in files {
        let src = std::fs::read_to_string(root.join(&rel))
            .map_err(|e| format!("cannot read {rel}: {e}"))?;
        models.push(FileModel::new(rel, &src));
    }
    let ws = Workspace::build(&models, cfg);

    // Pass 2a: lexical rules per scoped file; the lock walk also yields the
    // guarded-call and nesting events the graph pass consumes.
    let mut raw: Vec<Vec<Violation>> = models.iter().map(|_| Vec::new()).collect();
    let mut scoped_any = vec![false; models.len()];
    let mut guarded = Vec::new();
    let mut nested = Vec::new();
    for (i, m) in models.iter().enumerate() {
        for rule in cfg.rules.keys() {
            if !cfg.in_scope(rule, &m.rel) {
                continue;
            }
            scoped_any[i] = true;
            match rule.as_str() {
                "panic_freedom" => raw[i].extend(rules::panic_freedom(&m.scan)),
                "unsafe_audit" => raw[i].extend(rules::unsafe_audit(&m.scan)),
                "error_hygiene" => raw[i].extend(rules::error_hygiene(&m.scan)),
                "lock_discipline" => {
                    let rc = &cfg.rules[rule];
                    let ls = rules::lock_scan(&m.scan, rc);
                    raw[i].extend(ls.violations);
                    guarded.extend(ls.guarded_calls.into_iter().map(|g| (i, g)));
                    nested.extend(ls.nested.into_iter().map(|n| (i, n)));
                }
                // Graph rules run globally below; scoping a file still
                // counts it as scanned.
                _ => {}
            }
        }
    }

    // Pass 2b: graph rules.
    let mut siteless: Vec<Violation> = Vec::new();
    if let Some(rc) = cfg.rules.get("lock_discipline") {
        let (sited, unsited) = dataflow::lock_graph_violations(&ws, rc, &guarded, &nested);
        for (file, v) in sited {
            raw[file].push(v);
        }
        siteless.extend(unsited);
    }
    if let Some(rc) = cfg.rules.get("deadline_discipline") {
        let scope = |rel: &str| cfg.in_scope("deadline_discipline", rel);
        for (file, v) in dataflow::deadline_violations(&ws, rc, &scope) {
            raw[file].push(v);
        }
    }
    if let Some(rc) = cfg.rules.get("protocol_exhaustiveness") {
        let scope = |rel: &str| cfg.in_scope("protocol_exhaustiveness", rel);
        let (sited, unsited) = dataflow::protocol_violations(&ws, rc, &scope);
        for (file, v) in sited {
            raw[file].push(v);
        }
        siteless.extend(unsited);
    }

    // Allow-filtering per scoped file; stale and malformed allows report.
    for (i, m) in models.iter().enumerate() {
        if !scoped_any[i] {
            continue;
        }
        filter_allows(m, std::mem::take(&mut raw[i]), &mut outcome);
        outcome.files_scanned += 1;
    }
    for v in siteless {
        bump(&mut outcome, v.rule, |s| s.violations += 1);
        outcome.violations.push(FileViolation {
            path: CONFIG_PATH.to_string(),
            violation: v,
        });
    }
    outcome
        .violations
        .sort_by(|a, b| (&a.path, a.violation.line).cmp(&(&b.path, b.violation.line)));
    outcome
        .allows_live
        .sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    Ok(outcome)
}

fn filter_allows(m: &FileModel, raw: Vec<Violation>, outcome: &mut Outcome) {
    let scan = &m.scan;
    let rel = &m.rel;
    let mut allow_used = vec![false; scan.allows.len()];
    for v in raw {
        let suppressed = scan
            .allows
            .iter()
            .enumerate()
            .find(|(_, a)| a.rule == v.rule && a.covers.contains(&v.line));
        match suppressed {
            Some((i, _)) => {
                allow_used[i] = true;
                bump(outcome, v.rule, |s| s.allowed += 1);
            }
            None => {
                bump(outcome, v.rule, |s| s.violations += 1);
                outcome.violations.push(FileViolation {
                    path: rel.to_string(),
                    violation: v,
                });
            }
        }
    }
    for (i, a) in scan.allows.iter().enumerate() {
        if allow_used[i] {
            outcome.allows_live.push(LiveAllow {
                path: rel.to_string(),
                line: a.line,
                rule: a.rule.clone(),
                reason: a.reason.clone(),
            });
            continue;
        }
        // An allow for a rule this file is not even in scope of is as stale
        // as one whose violation was fixed.
        bump(outcome, ALLOW_RULE, |s| s.violations += 1);
        outcome.violations.push(FileViolation {
            path: rel.to_string(),
            violation: Violation {
                rule: ALLOW_RULE,
                line: a.line,
                message: format!(
                    "stale xfdlint:allow({}) — no violation left to suppress; remove it",
                    a.rule
                ),
            },
        });
    }
    for bad in &scan.bad_allows {
        bump(outcome, ALLOW_RULE, |s| s.violations += 1);
        outcome.violations.push(FileViolation {
            path: rel.to_string(),
            violation: Violation {
                rule: ALLOW_RULE,
                line: bad.line,
                message: bad.message.clone(),
            },
        });
    }
}

fn bump(outcome: &mut Outcome, rule: &str, f: impl FnOnce(&mut RuleStats)) {
    f(outcome.stats.entry(rule.to_string()).or_default());
}

/// Recursively collect workspace-relative paths of `.rs` files, skipping
/// build output, VCS metadata, the vendored stand-in crates (they mirror
/// external APIs and are not held to this workspace's rules) and lint
/// fixture corpora (directories named `fixtures` hold deliberately
/// violating snippets linted only by their own tests).
fn walk(root: &Path, dir: &Path, out: &mut Vec<String>) -> Result<(), String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot list {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("walking {}: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == "vendor" || name == "fixtures" || name.starts_with('.') {
                continue;
            }
            walk(root, &path, out)?;
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                let rel = rel
                    .components()
                    .map(|c| c.as_os_str().to_string_lossy())
                    .collect::<Vec<_>>()
                    .join("/");
                out.push(rel);
            }
        }
    }
    Ok(())
}

/// Stable diagnostic code for a rule name (used by `--format json`).
pub fn diagnostic_code(rule: &str) -> &'static str {
    match rule {
        ALLOW_RULE => "XFD000",
        "panic_freedom" => "XFD001",
        "lock_discipline" => "XFD002",
        "unsafe_audit" => "XFD003",
        "error_hygiene" => "XFD004",
        "deadline_discipline" => "XFD005",
        "protocol_exhaustiveness" => "XFD006",
        _ => "XFD999",
    }
}

/// Render the per-rule summary table shown in CI logs.
pub fn render_summary(outcome: &Outcome) -> String {
    let mut s = String::new();
    let width = outcome
        .stats
        .keys()
        .map(|k| k.len())
        .max()
        .unwrap_or(4)
        .max("rule".len());
    push_row(&mut s, width, "rule", "violations", "allowed");
    for (rule, st) in &outcome.stats {
        push_row(
            &mut s,
            width,
            rule,
            &st.violations.to_string(),
            &st.allowed.to_string(),
        );
    }
    s.push_str(&format!(
        "{} file(s) scanned, {} violation(s), {} live allow(s)\n",
        outcome.files_scanned,
        outcome.violations.len(),
        outcome.allows_live.len()
    ));
    s
}

fn push_row(s: &mut String, width: usize, rule: &str, violations: &str, allowed: &str) {
    s.push_str(&format!("{rule:<width$}  {violations:>10}  {allowed:>7}\n"));
}

/// Render the machine-readable report (`--format json`). The shape is
/// stable: `violations` (code/rule/path/line/message), `stats` per rule,
/// `files_scanned`, and `allows` (every live allow with its reason).
pub fn render_json(outcome: &Outcome) -> String {
    let mut s = String::from("{\n  \"violations\": [");
    for (i, fv) in outcome.violations.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n    {{\"code\": \"{}\", \"rule\": \"{}\", \"path\": \"{}\", \"line\": {}, \
             \"message\": \"{}\"}}",
            diagnostic_code(fv.violation.rule),
            json_escape(fv.violation.rule),
            json_escape(&fv.path),
            fv.violation.line,
            json_escape(&fv.violation.message),
        ));
    }
    if !outcome.violations.is_empty() {
        s.push_str("\n  ");
    }
    s.push_str("],\n  \"stats\": {");
    for (i, (rule, st)) in outcome.stats.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n    \"{}\": {{\"violations\": {}, \"allowed\": {}}}",
            json_escape(rule),
            st.violations,
            st.allowed
        ));
    }
    s.push_str("\n  },\n");
    s.push_str(&format!(
        "  \"files_scanned\": {},\n  \"allows\": [",
        outcome.files_scanned
    ));
    for (i, a) in outcome.allows_live.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n    {{\"path\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"reason\": \"{}\"}}",
            json_escape(&a.path),
            a.line,
            json_escape(&a.rule),
            json_escape(&a.reason),
        ));
    }
    if !outcome.allows_live.is_empty() {
        s.push_str("\n  ");
    }
    s.push_str("]\n}\n");
    s
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Locate the workspace root: the nearest ancestor of `start` (inclusive)
/// containing `xfdlint.toml`.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut cur = Some(start);
    while let Some(dir) = cur {
        if dir.join("xfdlint.toml").is_file() {
            return Some(dir.to_path_buf());
        }
        cur = dir.parent();
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("xfdlint-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(dir.join("crates/demo/src")).expect("mkdir");
        dir
    }

    fn write(dir: &Path, rel: &str, content: &str) {
        std::fs::write(dir.join(rel), content).expect("write fixture");
    }

    #[test]
    fn end_to_end_allow_filtering_and_stale_detection() {
        let dir = tmpdir("e2e");
        write(
            &dir,
            "xfdlint.toml",
            "[panic_freedom]\npaths = [\"crates/demo/src\"]\n",
        );
        write(
            &dir,
            "crates/demo/src/lib.rs",
            "pub fn f(v: &[u8]) -> u8 {\n\
             // xfdlint:allow(panic_freedom, reason = \"demo: index is bounded above\")\n\
             let a = v[0];\n\
             let b = v[1];\n\
             a + b\n\
             }\n\
             // xfdlint:allow(panic_freedom, reason = \"nothing here\")\n\
             pub fn clean() {}\n",
        );
        let outcome = run_root(&dir).expect("lint runs");
        // v[1] survives; the allow on v[0] is consumed; the trailing allow
        // is stale.
        assert_eq!(outcome.stats["panic_freedom"].violations, 1);
        assert_eq!(outcome.stats["panic_freedom"].allowed, 1);
        assert_eq!(outcome.stats[ALLOW_RULE].violations, 1);
        assert_eq!(outcome.violations.len(), 2);
        assert_eq!(outcome.allows_live.len(), 1);
        assert_eq!(outcome.allows_live[0].line, 2);
        assert_eq!(
            outcome.allows_live[0].reason,
            "demo: index is bounded above"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn out_of_scope_files_are_ignored() {
        let dir = tmpdir("scope");
        write(
            &dir,
            "xfdlint.toml",
            "[error_hygiene]\npaths = [\"crates/demo/src/hot.rs\"]\n",
        );
        write(&dir, "crates/demo/src/hot.rs", "fn f() { let _ = g(); }\n");
        write(&dir, "crates/demo/src/cold.rs", "fn f() { let _ = g(); }\n");
        let outcome = run_root(&dir).expect("lint runs");
        assert_eq!(outcome.files_scanned, 1);
        assert_eq!(outcome.stats["error_hygiene"].violations, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fixture_directories_are_not_walked() {
        let dir = tmpdir("fixtures");
        std::fs::create_dir_all(dir.join("crates/demo/tests/fixtures")).expect("mkdir");
        write(
            &dir,
            "xfdlint.toml",
            "[error_hygiene]\npaths = [\"crates\"]\n",
        );
        write(&dir, "crates/demo/src/lib.rs", "pub fn ok() {}\n");
        write(
            &dir,
            "crates/demo/tests/fixtures/bad.rs",
            "fn f() { let _ = g(); }\n",
        );
        let outcome = run_root(&dir).expect("lint runs");
        assert!(outcome.is_clean(), "{:?}", outcome.violations);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cross_file_lock_reachability_is_caught_end_to_end() {
        let dir = tmpdir("xfile");
        write(
            &dir,
            "xfdlint.toml",
            "[lock_discipline]\npaths = [\"crates/demo/src\"]\nlock_helpers = [\"lock_recover\"]\n",
        );
        write(
            &dir,
            "crates/demo/src/lib.rs",
            "mod store;\n\
             pub fn hot(&self) {\n\
             let g = lock_recover(&self.entries);\n\
             persist(g.id);\n\
             }\n",
        );
        write(
            &dir,
            "crates/demo/src/store.rs",
            "pub fn persist(id: u64) { file.sync_all(); }\n",
        );
        let outcome = run_root(&dir).expect("lint runs");
        assert_eq!(outcome.stats["lock_discipline"].violations, 1);
        let v = &outcome.violations[0];
        assert!(v.violation.message.contains("persist"), "{v:?}");
        assert!(v.violation.message.contains("sync_all"), "{v:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn json_report_escapes_and_round_trips_key_fields() {
        let dir = tmpdir("json");
        write(
            &dir,
            "xfdlint.toml",
            "[panic_freedom]\npaths = [\"crates/demo/src\"]\n",
        );
        write(
            &dir,
            "crates/demo/src/lib.rs",
            "pub fn f(v: &[u8]) -> u8 {\n\
             // xfdlint:allow(panic_freedom, reason = \"bounded by caller\")\n\
             v[0]\n\
             }\n",
        );
        let outcome = run_root(&dir).expect("lint runs");
        let json = render_json(&outcome);
        assert!(json.contains("\"violations\": []"), "{json}");
        assert!(json.contains("\"files_scanned\": 1"), "{json}");
        assert!(json.contains("\"rule\": \"panic_freedom\""), "{json}");
        assert!(json.contains("\"reason\": \"bounded by caller\""), "{json}");
        assert_eq!(json_escape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
        // A violation renders with its stable code.
        write(
            &dir,
            "crates/demo/src/bad.rs",
            "pub fn g(v: &[u8]) -> u8 { v[1] }\n",
        );
        let outcome = run_root(&dir).expect("lint runs");
        let json = render_json(&outcome);
        assert!(json.contains("\"code\": \"XFD001\""), "{json}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn summary_table_lists_every_rule() {
        let dir = tmpdir("summary");
        write(
            &dir,
            "xfdlint.toml",
            "[unsafe_audit]\npaths = [\"crates\"]\n",
        );
        write(&dir, "crates/demo/src/lib.rs", "pub fn ok() {}\n");
        let outcome = run_root(&dir).expect("lint runs");
        let table = render_summary(&outcome);
        assert!(table.contains("unsafe_audit"));
        assert!(table.contains("violations"));
        assert!(table.contains("1 file(s) scanned, 0 violation(s)"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
