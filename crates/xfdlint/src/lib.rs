//! xfdlint: workspace-native static analysis for the DiscoverXFD codebase.
//!
//! Four rules guard the hot and durable paths (see `xfdlint.toml` at the
//! workspace root for the scoped paths and DESIGN.md for the philosophy):
//!
//! * `panic_freedom` — no `unwrap`/`expect`, panic-family macros,
//!   `unchecked` operations or index expressions where a panic would tear
//!   down a worker mid-job or mid-WAL-commit.
//! * `lock_discipline` — no file/socket I/O while a `Mutex` guard is live,
//!   and nested lock acquisitions must match the configured order pairs.
//! * `unsafe_audit` — every `unsafe` block carries a `// SAFETY:` comment.
//! * `error_hygiene` — no `let _ =` discards in non-test code.
//!
//! Sites that are deliberate carry
//! `// xfdlint:allow(<rule>, reason = "...")`; the reason is mandatory and
//! a stale allow (one that no longer suppresses anything) is itself an
//! error, so the allowlist can never drift from the code.

#![warn(missing_docs)]

pub mod config;
pub mod lexer;
pub mod rules;
pub mod scan;

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use config::Config;
use rules::Violation;
use scan::SourceScan;

/// Pseudo-rule under which malformed and stale allow annotations report.
pub const ALLOW_RULE: &str = "allow-annotation";

/// A violation bound to the file it occurred in.
#[derive(Debug, Clone)]
pub struct FileViolation {
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// The underlying rule hit.
    pub violation: Violation,
}

/// Per-rule tallies for the summary table.
#[derive(Debug, Clone, Copy, Default)]
pub struct RuleStats {
    /// Violations that survived allow-filtering.
    pub violations: usize,
    /// Violations suppressed by a justified allow annotation.
    pub allowed: usize,
}

/// Result of linting a tree.
#[derive(Debug, Default)]
pub struct Outcome {
    /// Surviving violations, ordered by path then line.
    pub violations: Vec<FileViolation>,
    /// Per-rule statistics (every configured rule has an entry).
    pub stats: BTreeMap<String, RuleStats>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl Outcome {
    /// True when the tree is clean.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Lint the workspace rooted at `root`, reading `<root>/xfdlint.toml`.
pub fn run_root(root: &Path) -> Result<Outcome, String> {
    let cfg_path = root.join("xfdlint.toml");
    let cfg_src = std::fs::read_to_string(&cfg_path)
        .map_err(|e| format!("cannot read {}: {e}", cfg_path.display()))?;
    let cfg = Config::parse(&cfg_src).map_err(|e| format!("{}: {e}", cfg_path.display()))?;
    run_with_config(root, &cfg)
}

/// Lint the tree at `root` with an already-parsed config.
pub fn run_with_config(root: &Path, cfg: &Config) -> Result<Outcome, String> {
    let mut outcome = Outcome::default();
    for name in cfg.rules.keys() {
        outcome.stats.insert(name.clone(), RuleStats::default());
    }
    outcome
        .stats
        .insert(ALLOW_RULE.to_string(), RuleStats::default());

    let mut files = Vec::new();
    walk(root, root, &mut files)?;
    files.sort();
    for rel in files {
        let scoped: Vec<&str> = cfg
            .rules
            .keys()
            .map(String::as_str)
            .filter(|rule| cfg.in_scope(rule, &rel))
            .collect();
        if scoped.is_empty() {
            continue;
        }
        let src = std::fs::read_to_string(root.join(&rel))
            .map_err(|e| format!("cannot read {rel}: {e}"))?;
        lint_file(&rel, &src, &scoped, cfg, &mut outcome);
        outcome.files_scanned += 1;
    }
    outcome
        .violations
        .sort_by(|a, b| (&a.path, a.violation.line).cmp(&(&b.path, b.violation.line)));
    Ok(outcome)
}

fn lint_file(rel: &str, src: &str, scoped: &[&str], cfg: &Config, outcome: &mut Outcome) {
    let scan = SourceScan::new(src);
    let mut raw: Vec<Violation> = Vec::new();
    for &rule in scoped {
        match rule {
            "panic_freedom" => raw.extend(rules::panic_freedom(&scan)),
            "lock_discipline" => {
                if let Some(rule_cfg) = cfg.rules.get(rule) {
                    raw.extend(rules::lock_discipline(&scan, rule_cfg));
                }
            }
            "unsafe_audit" => raw.extend(rules::unsafe_audit(&scan)),
            "error_hygiene" => raw.extend(rules::error_hygiene(&scan)),
            _ => {}
        }
    }

    let mut allow_used = vec![false; scan.allows.len()];
    for v in raw {
        let suppressed = scan
            .allows
            .iter()
            .enumerate()
            .find(|(_, a)| a.rule == v.rule && a.covers.contains(&v.line));
        match suppressed {
            Some((i, _)) => {
                allow_used[i] = true;
                bump(outcome, v.rule, |s| s.allowed += 1);
            }
            None => {
                bump(outcome, v.rule, |s| s.violations += 1);
                outcome.violations.push(FileViolation {
                    path: rel.to_string(),
                    violation: v,
                });
            }
        }
    }
    for (i, a) in scan.allows.iter().enumerate() {
        // An allow for a rule this file is not even in scope of is as stale
        // as one whose violation was fixed.
        if !allow_used[i] {
            bump(outcome, ALLOW_RULE, |s| s.violations += 1);
            outcome.violations.push(FileViolation {
                path: rel.to_string(),
                violation: Violation {
                    rule: ALLOW_RULE,
                    line: a.line,
                    message: format!(
                        "stale xfdlint:allow({}) — no violation left to suppress; remove it",
                        a.rule
                    ),
                },
            });
        }
    }
    for bad in &scan.bad_allows {
        bump(outcome, ALLOW_RULE, |s| s.violations += 1);
        outcome.violations.push(FileViolation {
            path: rel.to_string(),
            violation: Violation {
                rule: ALLOW_RULE,
                line: bad.line,
                message: bad.message.clone(),
            },
        });
    }
}

fn bump(outcome: &mut Outcome, rule: &str, f: impl FnOnce(&mut RuleStats)) {
    f(outcome.stats.entry(rule.to_string()).or_default());
}

/// Recursively collect workspace-relative paths of `.rs` files, skipping
/// build output, VCS metadata and the vendored stand-in crates (they mirror
/// external APIs and are not held to this workspace's rules).
fn walk(root: &Path, dir: &Path, out: &mut Vec<String>) -> Result<(), String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot list {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("walking {}: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == "vendor" || name.starts_with('.') {
                continue;
            }
            walk(root, &path, out)?;
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                let rel = rel
                    .components()
                    .map(|c| c.as_os_str().to_string_lossy())
                    .collect::<Vec<_>>()
                    .join("/");
                out.push(rel);
            }
        }
    }
    Ok(())
}

/// Render the per-rule summary table shown in CI logs.
pub fn render_summary(outcome: &Outcome) -> String {
    let mut s = String::new();
    let width = outcome
        .stats
        .keys()
        .map(|k| k.len())
        .max()
        .unwrap_or(4)
        .max("rule".len());
    push_row(&mut s, width, "rule", "violations", "allowed");
    for (rule, st) in &outcome.stats {
        push_row(
            &mut s,
            width,
            rule,
            &st.violations.to_string(),
            &st.allowed.to_string(),
        );
    }
    s.push_str(&format!(
        "{} file(s) scanned, {} violation(s)\n",
        outcome.files_scanned,
        outcome.violations.len()
    ));
    s
}

fn push_row(s: &mut String, width: usize, rule: &str, violations: &str, allowed: &str) {
    s.push_str(&format!("{rule:<width$}  {violations:>10}  {allowed:>7}\n"));
}

/// Locate the workspace root: the nearest ancestor of `start` (inclusive)
/// containing `xfdlint.toml`.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut cur = Some(start);
    while let Some(dir) = cur {
        if dir.join("xfdlint.toml").is_file() {
            return Some(dir.to_path_buf());
        }
        cur = dir.parent();
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("xfdlint-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(dir.join("crates/demo/src")).expect("mkdir");
        dir
    }

    fn write(dir: &Path, rel: &str, content: &str) {
        std::fs::write(dir.join(rel), content).expect("write fixture");
    }

    #[test]
    fn end_to_end_allow_filtering_and_stale_detection() {
        let dir = tmpdir("e2e");
        write(
            &dir,
            "xfdlint.toml",
            "[panic_freedom]\npaths = [\"crates/demo/src\"]\n",
        );
        write(
            &dir,
            "crates/demo/src/lib.rs",
            "pub fn f(v: &[u8]) -> u8 {\n\
             // xfdlint:allow(panic_freedom, reason = \"demo: index is bounded above\")\n\
             let a = v[0];\n\
             let b = v[1];\n\
             a + b\n\
             }\n\
             // xfdlint:allow(panic_freedom, reason = \"nothing here\")\n\
             pub fn clean() {}\n",
        );
        let outcome = run_root(&dir).expect("lint runs");
        // v[1] survives; the allow on v[0] is consumed; the trailing allow
        // is stale.
        assert_eq!(outcome.stats["panic_freedom"].violations, 1);
        assert_eq!(outcome.stats["panic_freedom"].allowed, 1);
        assert_eq!(outcome.stats[ALLOW_RULE].violations, 1);
        assert_eq!(outcome.violations.len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn out_of_scope_files_are_ignored() {
        let dir = tmpdir("scope");
        write(
            &dir,
            "xfdlint.toml",
            "[error_hygiene]\npaths = [\"crates/demo/src/hot.rs\"]\n",
        );
        write(&dir, "crates/demo/src/hot.rs", "fn f() { let _ = g(); }\n");
        write(&dir, "crates/demo/src/cold.rs", "fn f() { let _ = g(); }\n");
        let outcome = run_root(&dir).expect("lint runs");
        assert_eq!(outcome.files_scanned, 1);
        assert_eq!(outcome.stats["error_hygiene"].violations, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn summary_table_lists_every_rule() {
        let dir = tmpdir("summary");
        write(
            &dir,
            "xfdlint.toml",
            "[unsafe_audit]\npaths = [\"crates\"]\n",
        );
        write(&dir, "crates/demo/src/lib.rs", "pub fn ok() {}\n");
        let outcome = run_root(&dir).expect("lint runs");
        let table = render_summary(&outcome);
        assert!(table.contains("unsafe_audit"));
        assert!(table.contains("violations"));
        assert!(table.contains("1 file(s) scanned, 0 violation(s)"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
