//! The four lint rules. Each walks a [`SourceScan`] and yields raw
//! violations; allow-annotation matching happens in the driver so that
//! stale allows can be detected globally.

use crate::config::RuleCfg;
use crate::lexer::Kind;
use crate::scan::SourceScan;

/// One rule hit, before allow-filtering.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Rule that fired.
    pub rule: &'static str,
    /// 1-based source line.
    pub line: usize,
    /// Human-readable description of the site.
    pub message: String,
}

fn hit(rule: &'static str, line: usize, message: String) -> Violation {
    Violation {
        rule,
        line,
        message,
    }
}

/// Keywords that legitimately precede `[` without forming an index
/// expression (array literals, slice patterns, type positions).
const NON_INDEX_KEYWORDS: [&str; 24] = [
    "let", "mut", "ref", "in", "as", "return", "break", "continue", "match", "if", "else", "while",
    "loop", "for", "move", "fn", "pub", "where", "use", "mod", "impl", "dyn", "box", "yield",
];

/// Panic-freedom: no `unwrap`/`expect`, panic-family macros, `unchecked`
/// operations, or indexing/slicing expressions in designated paths.
pub fn panic_freedom(scan: &SourceScan) -> Vec<Violation> {
    const RULE: &str = "panic_freedom";
    let mut out = Vec::new();
    for ci in 0..scan.code.len() {
        let (_, in_test, in_attr) = scan.code_ctx(ci);
        if in_test || in_attr {
            continue;
        }
        let tok = scan.code_tok(ci);
        let prev = ci.checked_sub(1).map(|p| scan.code_tok(p));
        let next = scan.code.get(ci + 1).map(|_| scan.code_tok(ci + 1));
        match tok.kind {
            Kind::Ident => {
                let name = tok.text.as_str();
                let called = next.is_some_and(|n| n.is_punct('('));
                let after_dot = prev.is_some_and(|p| p.is_punct('.'));
                let after_path = prev.is_some_and(|p| p.is_punct(':'));
                if (name == "unwrap" || name == "expect") && after_dot && called {
                    out.push(hit(
                        RULE,
                        tok.line,
                        format!(".{name}() may panic on a hot/durable path"),
                    ));
                } else if matches!(name, "panic" | "unreachable" | "todo" | "unimplemented")
                    && next.is_some_and(|n| n.is_punct('!'))
                {
                    out.push(hit(
                        RULE,
                        tok.line,
                        format!("{name}! on a hot/durable path"),
                    ));
                } else if name.contains("unchecked") && (after_dot || after_path) {
                    out.push(hit(
                        RULE,
                        tok.line,
                        format!("`{name}` skips the checked variant's guarantees"),
                    ));
                }
            }
            Kind::Punct if tok.is_punct('[') => {
                let indexes = prev.is_some_and(|p| {
                    (p.kind == Kind::Ident && !NON_INDEX_KEYWORDS.contains(&p.text.as_str()))
                        || p.is_punct(')')
                        || p.is_punct(']')
                });
                if indexes && !is_full_range(scan, ci) {
                    out.push(hit(
                        RULE,
                        tok.line,
                        "index/slice expression may panic (use .get()/.get_mut())".to_string(),
                    ));
                }
            }
            _ => {}
        }
    }
    out
}

/// `x[..]` reslices the whole length and cannot panic; everything else can.
fn is_full_range(scan: &SourceScan, open: usize) -> bool {
    let dots =
        |k: usize| scan.code.get(open + k).is_some() && scan.code_tok(open + k).is_punct('.');
    let close = scan.code.get(open + 3).is_some() && scan.code_tok(open + 3).is_punct(']');
    dots(1) && dots(2) && close
}

/// Unsafe audit: every `unsafe { ... }` block needs a `// SAFETY:` comment
/// within the three lines above it (or trailing on the same line).
pub fn unsafe_audit(scan: &SourceScan) -> Vec<Violation> {
    const RULE: &str = "unsafe_audit";
    let mut out = Vec::new();
    for ci in 0..scan.code.len() {
        let (_, in_test, in_attr) = scan.code_ctx(ci);
        if in_test || in_attr {
            continue;
        }
        let tok = scan.code_tok(ci);
        if tok.is_ident("unsafe")
            && scan.code.get(ci + 1).is_some()
            && scan.code_tok(ci + 1).is_punct('{')
            && !scan.comment_nearby(tok.line, 3, "SAFETY:")
        {
            out.push(hit(
                RULE,
                tok.line,
                "unsafe block without a // SAFETY: comment".to_string(),
            ));
        }
    }
    out
}

/// Error-path hygiene: `let _ = expr;` silently discards a value — on
/// monitored paths the discarded value is almost always a `Result`.
pub fn error_hygiene(scan: &SourceScan) -> Vec<Violation> {
    const RULE: &str = "error_hygiene";
    let mut out = Vec::new();
    for ci in 0..scan.code.len() {
        let (_, in_test, in_attr) = scan.code_ctx(ci);
        if in_test || in_attr {
            continue;
        }
        if scan.code_tok(ci).is_ident("let")
            && scan.code.get(ci + 2).is_some()
            && scan.code_tok(ci + 1).is_ident("_")
            && scan.code_tok(ci + 2).is_punct('=')
        {
            out.push(hit(
                RULE,
                scan.code_tok(ci).line,
                "`let _ =` discards a value (likely a Result) on a monitored path".to_string(),
            ));
        }
    }
    out
}

/// File or socket operations that must not run under a held lock guard.
/// Bare `read`/`write` are deliberately absent: they collide with
/// `RwLock::read`/`write` and in-memory writers, and every real I/O site in
/// this workspace goes through one of the listed calls.
pub(crate) const IO_CALLS: [&str; 27] = [
    "write_all",
    "write_fmt",
    "flush",
    "sync_all",
    "sync_data",
    "read_exact",
    "read_to_end",
    "read_to_string",
    "read_line",
    "open",
    "create",
    "create_new",
    "create_dir",
    "create_dir_all",
    "remove_file",
    "remove_dir",
    "remove_dir_all",
    "rename",
    "copy",
    "metadata",
    "read_dir",
    "set_len",
    "canonicalize",
    "accept",
    "connect",
    "set_read_timeout",
    "shutdown",
];

#[derive(Debug)]
struct Guard {
    name: String,
    recv: String,
    depth: u32,
    line: usize,
}

/// A non-I/O, non-acquisition call made while at least one lock guard is
/// lexically live — the seed of the interprocedural reachability pass.
#[derive(Debug, Clone)]
pub struct GuardedCall {
    /// Callee name (last path segment).
    pub name: String,
    /// 1-based line of the call.
    pub line: usize,
    /// Invoked as `recv.name(...)`.
    pub method: bool,
    /// For `Qual::name(...)`, the qualifying segment.
    pub qualifier: Option<String>,
    /// Live guards, outermost first: (receiver, binding name, bind line).
    pub guards: Vec<(String, String, usize)>,
}

/// A nested acquisition observed lexically (whether or not the configured
/// order permits it) — an edge in the global lock-order graph.
#[derive(Debug, Clone)]
pub struct NestedAcq {
    /// Receiver of the guard already held.
    pub outer: String,
    /// Receiver acquired under it.
    pub inner: String,
    /// 1-based line of the inner acquisition.
    pub line: usize,
}

/// Everything the guard-tracking walk yields for one file.
#[derive(Debug, Default)]
pub struct LockScan {
    /// Lexical violations (I/O under guard, out-of-order nesting).
    pub violations: Vec<Violation>,
    /// Calls made under a live guard.
    pub guarded_calls: Vec<GuardedCall>,
    /// Observed direct-nesting edges.
    pub nested: Vec<NestedAcq>,
}

/// Lock discipline, lexical part: flag I/O performed while a `Mutex` guard
/// is live, and nested acquisitions that do not match the configured
/// `outer->inner` order pairs.
pub fn lock_discipline(scan: &SourceScan, cfg: &RuleCfg) -> Vec<Violation> {
    lock_scan(scan, cfg).violations
}

/// One guard-tracking walk feeding both the lexical rule and the
/// interprocedural pass.
pub fn lock_scan(scan: &SourceScan, cfg: &RuleCfg) -> LockScan {
    const RULE: &str = "lock_discipline";
    let mut out = LockScan::default();
    let mut guards: Vec<Guard> = Vec::new();
    // Acquisition sites already credited to a `let` binding, so the generic
    // walk does not double-report them.
    let mut handled: Vec<usize> = Vec::new();
    for ci in 0..scan.code.len() {
        let (depth, in_test, in_attr) = scan.code_ctx(ci);
        let tok = scan.code_tok(ci);
        if tok.is_punct('}') {
            guards.retain(|g| g.depth < depth);
            continue;
        }
        if in_test || in_attr {
            continue;
        }
        if tok.is_ident("drop")
            && scan.code.get(ci + 2).is_some()
            && scan.code_tok(ci + 1).is_punct('(')
        {
            let victim = scan.code_tok(ci + 2).text.clone();
            guards.retain(|g| g.name != victim);
            continue;
        }
        if tok.is_ident("let") {
            if let Some((name, acq_ci, recv)) = binding_acquisition(scan, ci, cfg) {
                check_order(RULE, scan, acq_ci, &recv, &guards, cfg, &mut out.violations);
                record_nesting(scan, acq_ci, &recv, &guards, &mut out.nested);
                handled.push(acq_ci);
                guards.push(Guard {
                    name,
                    recv,
                    depth,
                    line: tok.line,
                });
            }
            continue;
        }
        if let Some(recv) = acquisition_at(scan, ci, cfg) {
            if !handled.contains(&ci) {
                check_order(RULE, scan, ci, &recv, &guards, cfg, &mut out.violations);
                record_nesting(scan, ci, &recv, &guards, &mut out.nested);
            }
            continue;
        }
        if tok.kind == Kind::Ident
            && scan.code.get(ci + 1).is_some()
            && scan.code_tok(ci + 1).is_punct('(')
        {
            if IO_CALLS.contains(&tok.text.as_str()) {
                if let Some(g) = guards.last() {
                    out.violations.push(hit(
                        RULE,
                        tok.line,
                        format!(
                            "`{}()` performs I/O while lock guard `{}` (bound line {}) is live",
                            tok.text, g.name, g.line
                        ),
                    ));
                }
            } else if !guards.is_empty() {
                if crate::parse::KEYWORDS.contains(&tok.text.as_str())
                    || (ci > 0 && scan.code_tok(ci - 1).is_ident("fn"))
                {
                    continue;
                }
                let method = ci > 0 && scan.code_tok(ci - 1).is_punct('.');
                // A method call whose receiver is a live guard binding is the
                // operation the lock protects — its internals are the guarded
                // resource's own business, not unrelated work held across it.
                if method
                    && ci >= 2
                    && scan.code_tok(ci - 2).kind == Kind::Ident
                    && guards.iter().any(|g| g.name == scan.code_tok(ci - 2).text)
                {
                    continue;
                }
                let qualifier = if ci >= 3
                    && scan.code_tok(ci - 1).is_punct(':')
                    && scan.code_tok(ci - 2).is_punct(':')
                    && scan.code_tok(ci - 3).kind == Kind::Ident
                {
                    Some(scan.code_tok(ci - 3).text.clone())
                } else {
                    None
                };
                out.guarded_calls.push(GuardedCall {
                    name: tok.text.clone(),
                    line: tok.line,
                    method,
                    qualifier,
                    guards: guards
                        .iter()
                        .map(|g| (g.recv.clone(), g.name.clone(), g.line))
                        .collect(),
                });
            }
        }
    }
    out
}

fn record_nesting(
    scan: &SourceScan,
    acq_ci: usize,
    recv: &str,
    guards: &[Guard],
    nested: &mut Vec<NestedAcq>,
) {
    for g in guards {
        nested.push(NestedAcq {
            outer: g.recv.clone(),
            inner: recv.to_string(),
            line: scan.code_tok(acq_ci).line,
        });
    }
}

fn check_order(
    rule: &'static str,
    scan: &SourceScan,
    acq_ci: usize,
    recv: &str,
    guards: &[Guard],
    cfg: &RuleCfg,
    out: &mut Vec<Violation>,
) {
    for g in guards {
        let allowed = cfg
            .order
            .iter()
            .any(|(outer, inner)| outer == &g.recv && inner == recv);
        if !allowed {
            out.push(hit(
                rule,
                scan.code_tok(acq_ci).line,
                format!(
                    "lock `{recv}` acquired while holding `{}` (line {}); nesting not in configured order",
                    g.recv, g.line
                ),
            ));
        }
    }
}

/// If the `let` at `ci` binds a lock guard, return (binding name, code index
/// of the acquisition ident, receiver name).
fn binding_acquisition(
    scan: &SourceScan,
    let_ci: usize,
    cfg: &RuleCfg,
) -> Option<(String, usize, String)> {
    let mut ni = let_ci + 1;
    if scan.code.get(ni).is_some() && scan.code_tok(ni).is_ident("mut") {
        ni += 1;
    }
    let name_tok = scan.code.get(ni).map(|_| scan.code_tok(ni))?;
    if name_tok.kind != Kind::Ident {
        return None; // destructuring pattern; not a trackable guard binding
    }
    let name = name_tok.text.clone();
    // Scan the statement for an acquisition, stopping at its `;`.
    let mut nesting = 0i64;
    let mut ci = ni + 1;
    while let Some(&fi) = scan.code.get(ci) {
        let tok = &scan.tokens[fi];
        if tok.is_punct('{') && nesting == 0 {
            // `while let …` / `if let …` body, or a block-expression RHS —
            // either way, past the binding's own acquisition chain.
            return None;
        }
        if tok.is_punct('(') || tok.is_punct('[') || tok.is_punct('{') {
            nesting += 1;
        } else if tok.is_punct(')') || tok.is_punct(']') || tok.is_punct('}') {
            nesting -= 1;
        } else if tok.is_punct(';') && nesting <= 0 {
            return None;
        }
        if let Some(recv) = acquisition_at(scan, ci, cfg) {
            return Some((name, ci, recv));
        }
        ci += 1;
    }
    None
}

/// If the code token at `ci` is a lock acquisition (`.lock(` or a
/// configured helper call), return the receiver name.
pub(crate) fn acquisition_at(scan: &SourceScan, ci: usize, cfg: &RuleCfg) -> Option<String> {
    let tok = scan.code_tok(ci);
    if tok.kind != Kind::Ident {
        return None;
    }
    let called = scan.code.get(ci + 1).is_some() && scan.code_tok(ci + 1).is_punct('(');
    if !called {
        return None;
    }
    if tok.is_ident("lock") && ci >= 1 && scan.code_tok(ci - 1).is_punct('.') {
        return Some(receiver_before(scan, ci - 1));
    }
    if cfg.lock_helpers.iter().any(|h| tok.is_ident(h)) {
        return Some(last_ident_in_parens(scan, ci + 1));
    }
    None
}

/// Receiver name for `<recv>.lock()`: the ident before the dot, looking
/// through a trailing call or index (`shard_for(d).lock()` → `shard_for`).
fn receiver_before(scan: &SourceScan, dot_ci: usize) -> String {
    let mut ci = dot_ci.checked_sub(1);
    if let Some(c) = ci {
        let tok = scan.code_tok(c);
        if tok.is_punct(')') || tok.is_punct(']') {
            let closer = if tok.is_punct(')') { ')' } else { ']' };
            let opener = if closer == ')' { '(' } else { '[' };
            let mut nesting = 0i64;
            let mut k = c;
            loop {
                let t = scan.code_tok(k);
                if t.is_punct(closer) {
                    nesting += 1;
                } else if t.is_punct(opener) {
                    nesting -= 1;
                    if nesting == 0 {
                        break;
                    }
                }
                match k.checked_sub(1) {
                    Some(p) => k = p,
                    None => return "?".to_string(),
                }
            }
            ci = k.checked_sub(1);
        }
    }
    match ci {
        Some(c) if scan.code_tok(c).kind == Kind::Ident => scan.code_tok(c).text.clone(),
        _ => "?".to_string(),
    }
}

/// Receiver name for `helper(&self.handles)`: the last ident inside the
/// argument list.
fn last_ident_in_parens(scan: &SourceScan, open_ci: usize) -> String {
    let mut nesting = 0i64;
    let mut ci = open_ci;
    let mut last = "?".to_string();
    while let Some(&fi) = scan.code.get(ci) {
        let tok = &scan.tokens[fi];
        if tok.is_punct('(') {
            nesting += 1;
        } else if tok.is_punct(')') {
            nesting -= 1;
            if nesting == 0 {
                break;
            }
        } else if tok.kind == Kind::Ident {
            last = tok.text.clone();
        }
        ci += 1;
    }
    last
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RuleCfg;

    fn scan(src: &str) -> SourceScan {
        SourceScan::new(src)
    }

    fn lock_cfg(order: &[(&str, &str)]) -> RuleCfg {
        RuleCfg {
            paths: vec!["x".into()],
            order: order
                .iter()
                .map(|(a, b)| (a.to_string(), b.to_string()))
                .collect(),
            lock_helpers: vec!["lock_recover".into()],
            ..RuleCfg::default()
        }
    }

    #[test]
    fn panic_rule_flags_unwrap_expect_macros_unchecked() {
        let v = panic_freedom(&scan(
            "fn f(m: &M) {\n\
             let a = m.x.unwrap();\n\
             let b = m.y.expect(\"y\");\n\
             panic!(\"boom\");\n\
             unreachable!();\n\
             let c = unsafe { p.add_unchecked(1) };\n\
             }\n",
        ));
        assert_eq!(v.len(), 5);
        assert!(v.iter().all(|x| x.rule == "panic_freedom"));
    }

    #[test]
    fn panic_rule_ignores_unwrap_or_and_strings_and_tests() {
        let v = panic_freedom(&scan(
            "fn f() {\n\
             let a = x.unwrap_or(0);\n\
             let b = x.unwrap_or_else(|| 0);\n\
             let s = \".unwrap()\";\n\
             }\n\
             #[cfg(test)]\nmod tests {\n fn g() { x.unwrap(); v[0]; } \n}\n",
        ));
        assert!(v.is_empty(), "false positives: {v:?}");
    }

    #[test]
    fn panic_rule_flags_indexing_but_not_types_or_patterns() {
        let flagged = panic_freedom(&scan(
            "fn f(v: &[u8], m: &Map) { let a = v[0]; let b = &v[1..3]; let c = m[&k]; }\n",
        ));
        assert_eq!(flagged.len(), 3, "{flagged:?}");
        let clean = panic_freedom(&scan(
            "fn f(x: [u8; 4], v: &Vec<u8>) -> [u8; 2] {\n\
             let [a, b] = pair;\n\
             let w = vec![1, 2];\n\
             let all = &v[..];\n\
             let arr = [0u8; 16];\n\
             [a, b]\n\
             }\n\
             #[derive(Debug)] struct S;\n",
        ));
        assert!(clean.is_empty(), "false positives: {clean:?}");
    }

    #[test]
    fn unsafe_rule_demands_safety_comment() {
        let v = unsafe_audit(&scan("fn f() { unsafe { danger() } }\n"));
        assert_eq!(v.len(), 1);
        let ok = unsafe_audit(&scan(
            "fn f() {\n    // SAFETY: the pointer outlives the call.\n    unsafe { danger() }\n}\n",
        ));
        assert!(ok.is_empty());
        // `unsafe fn`/`unsafe impl` headers are not blocks.
        let hdr = unsafe_audit(&scan("unsafe fn g() {} unsafe impl T for U {}\n"));
        assert!(hdr.is_empty());
    }

    #[test]
    fn hygiene_rule_flags_let_underscore_only() {
        let v = error_hygiene(&scan(
            "fn f() { let _ = fallible(); let _x = fallible(); let y = 1; }\n",
        ));
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "error_hygiene");
    }

    #[test]
    fn lock_rule_flags_io_under_guard() {
        let cfg = lock_cfg(&[]);
        let v = lock_discipline(
            &scan(
                "fn f(&self) {\n\
                 let mut g = self.state.lock();\n\
                 file.write_all(b\"x\");\n\
                 }\n",
            ),
            &cfg,
        );
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("write_all"));
        assert!(v[0].message.contains('g'));
    }

    #[test]
    fn lock_rule_respects_drop_and_block_end() {
        let cfg = lock_cfg(&[]);
        let v = lock_discipline(
            &scan(
                "fn f(&self) {\n\
                 let g = self.state.lock();\n\
                 drop(g);\n\
                 file.write_all(b\"x\");\n\
                 { let h = self.other.lock(); }\n\
                 file.flush();\n\
                 }\n",
            ),
            &cfg,
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn lock_rule_checks_nesting_order() {
        let src = "fn f(&self) {\n\
                   let a = self.registry.lock();\n\
                   let b = self.handle.lock();\n\
                   }\n";
        let bad = lock_discipline(&scan(src), &lock_cfg(&[]));
        assert_eq!(bad.len(), 1, "{bad:?}");
        assert!(bad[0].message.contains("registry"));
        let ok = lock_discipline(&scan(src), &lock_cfg(&[("registry", "handle")]));
        assert!(ok.is_empty(), "{ok:?}");
    }

    #[test]
    fn lock_rule_sees_helper_acquisitions() {
        let cfg = lock_cfg(&[]);
        let v = lock_discipline(
            &scan(
                "fn f(&self) {\n\
                 let g = lock_recover(&self.handles);\n\
                 store.open(name);\n\
                 }\n",
            ),
            &cfg,
        );
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("open"));
    }

    #[test]
    fn lock_rule_ignores_io_outside_guard_scope() {
        let cfg = lock_cfg(&[]);
        let v = lock_discipline(
            &scan(
                "fn f(&self) {\n\
                 if x { let g = self.state.lock(); g.push(1); }\n\
                 file.sync_all();\n\
                 }\n",
            ),
            &cfg,
        );
        assert!(v.is_empty(), "{v:?}");
    }
}
