//! CLI for xfdlint. Run from anywhere inside the workspace:
//!
//! ```text
//! cargo run -p xfdlint -- --check
//! ```
//!
//! Exit codes: 0 clean (or advisory mode without `--check`), 1 violations
//! found under `--check`, 2 usage or configuration error.

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: xfdlint [--check] [--root DIR]\n\n\
  --check      exit nonzero when violations are found (CI mode)\n\
  --root DIR   workspace root (default: nearest ancestor with xfdlint.toml)\n";

fn main() -> ExitCode {
    let mut check = false;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => check = true,
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return usage_error("--root needs a directory"),
            },
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown argument '{other}'")),
        }
    }

    let root = match root {
        Some(dir) => dir,
        None => {
            let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            match xfdlint::find_root(&cwd) {
                Some(dir) => dir,
                None => {
                    eprintln!("error: no xfdlint.toml found from {} upward", cwd.display());
                    return ExitCode::from(2);
                }
            }
        }
    };

    match xfdlint::run_root(&root) {
        Ok(outcome) => {
            for fv in &outcome.violations {
                println!(
                    "{}:{}: [{}] {}",
                    fv.path, fv.violation.line, fv.violation.rule, fv.violation.message
                );
            }
            if !outcome.violations.is_empty() {
                println!();
            }
            print!("{}", xfdlint::render_summary(&outcome));
            if check && !outcome.is_clean() {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("error: {msg}\n\n{USAGE}");
    ExitCode::from(2)
}
