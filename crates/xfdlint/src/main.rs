//! CLI for xfdlint. Run from anywhere inside the workspace:
//!
//! ```text
//! cargo run -p xfdlint -- --check
//! cargo run -p xfdlint -- --format json
//! cargo run -p xfdlint -- --list-allows
//! ```
//!
//! Exit codes: 0 clean (or advisory mode without `--check`), 1 violations
//! found under `--check`, 2 usage or configuration error.

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str =
    "usage: xfdlint [--check] [--root DIR] [--format human|json] [--list-allows]\n\n\
  --check         exit nonzero when violations are found (CI mode)\n\
  --root DIR      workspace root (default: nearest ancestor with xfdlint.toml)\n\
  --format FMT    report format: human (default) or json\n\
  --list-allows   print every live xfdlint:allow with its reason and exit\n";

enum Format {
    Human,
    Json,
}

fn main() -> ExitCode {
    let mut check = false;
    let mut list_allows = false;
    let mut format = Format::Human;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => check = true,
            "--list-allows" => list_allows = true,
            "--format" => match args.next().as_deref() {
                Some("human") => format = Format::Human,
                Some("json") => format = Format::Json,
                Some(other) => {
                    return usage_error(&format!("unknown format '{other}' (human|json)"))
                }
                None => return usage_error("--format needs a value (human|json)"),
            },
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return usage_error("--root needs a directory"),
            },
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown argument '{other}'")),
        }
    }

    let root = match root {
        Some(dir) => dir,
        None => {
            let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            match xfdlint::find_root(&cwd) {
                Some(dir) => dir,
                None => {
                    eprintln!("error: no xfdlint.toml found from {} upward", cwd.display());
                    return ExitCode::from(2);
                }
            }
        }
    };

    let outcome = match xfdlint::run_root(&root) {
        Ok(outcome) => outcome,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };

    if list_allows {
        match format {
            Format::Human => {
                for a in &outcome.allows_live {
                    println!("{}:{}: [{}] {}", a.path, a.line, a.rule, a.reason);
                }
                println!("{} live allow(s)", outcome.allows_live.len());
            }
            Format::Json => print!("{}", xfdlint::render_json(&outcome)),
        }
        return if check && !outcome.is_clean() {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        };
    }

    match format {
        Format::Human => {
            for fv in &outcome.violations {
                println!(
                    "{}:{}: [{}:{}] {}",
                    fv.path,
                    fv.violation.line,
                    xfdlint::diagnostic_code(fv.violation.rule),
                    fv.violation.rule,
                    fv.violation.message
                );
            }
            if !outcome.violations.is_empty() {
                println!();
            }
            print!("{}", xfdlint::render_summary(&outcome));
        }
        Format::Json => print!("{}", xfdlint::render_json(&outcome)),
    }
    if check && !outcome.is_clean() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("error: {msg}\n\n{USAGE}");
    ExitCode::from(2)
}
