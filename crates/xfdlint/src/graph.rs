//! The workspace model: every parsed file, a symbol table of `fn` items,
//! per-function facts (I/O sites, lock acquisitions, deadline arms,
//! blocking calls) and the call graph in both directions.
//!
//! Call resolution is name-based with two precision aids:
//!
//! * a path-qualified call (`Store::open`) prefers functions whose `impl`
//!   owner matches the qualifier, falling back to plain name matching
//!   (the qualifier may be a module or crate path segment);
//! * a *method* call whose name is a common std container/iterator method
//!   (`get`, `insert`, `remove`, ...) is never resolved into the workspace
//!   — `guard.remove(&key)` is a `HashMap` operation, not a call into a
//!   workspace `fn remove`, and resolving it would drown the graph rules
//!   in false edges.
//!
//! Functions defined in test regions or test files never resolve: they are
//! exercise code, not production reachability.

use std::collections::BTreeMap;

use crate::config::{Config, RuleCfg};
use crate::parse::{CallSite, FileItems, FnItem};
use crate::rules;
use crate::scan::SourceScan;

/// Method names resolved to std types rather than workspace functions.
const STD_METHODS: &[&str] = &[
    "all",
    "and_then",
    "any",
    "as_bytes",
    "as_mut",
    "as_ref",
    "as_slice",
    "as_str",
    "bytes",
    "chain",
    "chars",
    "checked_add",
    "checked_mul",
    "checked_sub",
    "clear",
    "clone",
    "cloned",
    "cmp",
    "collect",
    "contains",
    "contains_key",
    "copied",
    "count",
    "dedup",
    "drain",
    "ends_with",
    "entry",
    "enumerate",
    "eq",
    "err",
    "extend",
    "filter",
    "filter_map",
    "find",
    "first",
    "flat_map",
    "flatten",
    "fmt",
    "fold",
    "get",
    "get_mut",
    "get_or_insert_with",
    "hash",
    "insert",
    "into",
    "into_iter",
    "is_empty",
    "iter",
    "iter_mut",
    "join",
    "keys",
    "last",
    "len",
    "lines",
    "lock",
    "map",
    "max",
    "max_by_key",
    "min",
    "min_by_key",
    "next",
    "ok",
    "parse",
    "peek",
    "position",
    "pop",
    "push",
    "push_str",
    "read",
    "recv",
    "recv_timeout",
    "remove",
    "replace",
    "retain",
    "rev",
    "saturating_add",
    "saturating_sub",
    "send",
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "split",
    "split_off",
    "split_once",
    "splitn",
    "starts_with",
    "sum",
    "take",
    "to_owned",
    "to_string",
    "to_vec",
    "trim",
    "try_recv",
    "unwrap_or",
    "unwrap_or_default",
    "unwrap_or_else",
    "values",
    "values_mut",
    "with_capacity",
    "wrapping_add",
    "write",
    "zip",
];

/// One parsed source file.
#[derive(Debug)]
pub struct FileModel {
    /// Workspace-relative `/`-separated path.
    pub rel: String,
    /// Token-level scan.
    pub scan: SourceScan,
    /// Item-level parse.
    pub items: FileItems,
    /// Lives under a `tests/` or `benches/` directory.
    pub is_test_file: bool,
}

impl FileModel {
    /// Parse one file into its model.
    pub fn new(rel: String, src: &str) -> FileModel {
        let scan = SourceScan::new(src);
        let items = crate::parse::parse_items(&scan);
        let is_test_file = rel.split('/').any(|c| c == "tests" || c == "benches");
        FileModel {
            rel,
            scan,
            items,
            is_test_file,
        }
    }
}

/// Derived per-function facts the graph rules query.
#[derive(Debug, Default, Clone)]
pub struct FnFacts {
    /// Direct file/socket I/O calls: (name, line), non-test only.
    pub io: Vec<(String, usize)>,
    /// Direct lock acquisitions: (receiver, line), non-test only.
    pub acquires: Vec<(String, usize)>,
    /// Code indices of deadline-arming calls (`set_read_timeout`, ...).
    pub deadline_marks: Vec<usize>,
    /// Blocking calls needing a deadline: (name, line, code index).
    pub blocking: Vec<(String, usize, usize)>,
}

/// A function in the workspace graph.
#[derive(Debug)]
pub struct FnNode {
    /// Index into the file list.
    pub file: usize,
    /// The parsed item.
    pub item: FnItem,
    /// Derived facts.
    pub facts: FnFacts,
}

impl FnNode {
    /// True when this function is test-only (its own region or its file).
    pub fn is_test(&self, files: &[FileModel]) -> bool {
        self.item.in_test || files[self.file].is_test_file
    }
}

/// Symbol table + call graph over all parsed files.
#[derive(Debug)]
pub struct Workspace<'a> {
    /// The parsed files, in walk order.
    pub files: &'a [FileModel],
    /// All function nodes.
    pub fns: Vec<FnNode>,
    /// name → function ids (production functions only).
    by_name: BTreeMap<String, Vec<usize>>,
    /// callee id → (caller id, call code-index); non-test call sites only.
    pub callers: BTreeMap<usize, Vec<(usize, usize)>>,
}

impl<'a> Workspace<'a> {
    /// Build the graph; rule configs drive which facts are extracted.
    pub fn build(files: &'a [FileModel], cfg: &Config) -> Workspace<'a> {
        let default_lock = RuleCfg::default();
        let lock_cfg = cfg.rules.get("lock_discipline").unwrap_or(&default_lock);
        let deadline_cfg = cfg.rules.get("deadline_discipline");

        let mut fns = Vec::new();
        for (file, model) in files.iter().enumerate() {
            for item in &model.items.fns {
                let facts = fn_facts(&model.scan, item, lock_cfg, deadline_cfg);
                fns.push(FnNode {
                    file,
                    item: item.clone(),
                    facts,
                });
            }
        }

        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (id, node) in fns.iter().enumerate() {
            if !node.is_test(files) {
                by_name.entry(node.item.name.clone()).or_default().push(id);
            }
        }

        let mut ws = Workspace {
            files,
            fns,
            by_name,
            callers: BTreeMap::new(),
        };
        let mut callers: BTreeMap<usize, Vec<(usize, usize)>> = BTreeMap::new();
        for id in 0..ws.fns.len() {
            if ws.fns[id].is_test(files) {
                continue;
            }
            let from_file = ws.fns[id].file;
            for call in ws.fns[id].item.calls.clone() {
                if call.in_test {
                    continue;
                }
                for target in ws.resolve_call(&call, from_file) {
                    callers.entry(target).or_default().push((id, call.ci));
                }
            }
        }
        ws.callers = callers;
        ws
    }

    /// Production function ids a call with this shape may land in.
    ///
    /// `from_file` narrows `Self::name(...)` calls to the calling file —
    /// a `Self` path resolves within its own `impl`, which this parser
    /// always sees in the same file. A type-shaped qualifier (leading
    /// uppercase) that matches no workspace `impl` owner is a foreign type
    /// (`String::new`, `TcpStream::connect`) and resolves to nothing;
    /// module-shaped qualifiers fall back to plain name resolution.
    pub fn resolve(
        &self,
        name: &str,
        method: bool,
        qualifier: Option<&str>,
        from_file: Option<usize>,
    ) -> Vec<usize> {
        if method && STD_METHODS.contains(&name) {
            return Vec::new();
        }
        let Some(ids) = self.by_name.get(name) else {
            return Vec::new();
        };
        match qualifier {
            Some("Self") => ids
                .iter()
                .copied()
                .filter(|&id| from_file.is_none_or(|f| self.fns[id].file == f))
                .collect(),
            Some(q) if q.starts_with(|c: char| c.is_ascii_uppercase()) => ids
                .iter()
                .copied()
                .filter(|&id| self.fns[id].item.owner.as_deref() == Some(q))
                .collect(),
            _ => ids.clone(),
        }
    }

    /// Resolve a parsed call site made from `from_file`.
    pub fn resolve_call(&self, call: &CallSite, from_file: usize) -> Vec<usize> {
        self.resolve(
            &call.name,
            call.method,
            call.qualifier.as_deref(),
            Some(from_file),
        )
    }
}

fn fn_facts(
    scan: &SourceScan,
    item: &FnItem,
    lock_cfg: &RuleCfg,
    deadline_cfg: Option<&RuleCfg>,
) -> FnFacts {
    let mut facts = FnFacts::default();
    let (open, close) = item.body;
    for ci in open + 1..close {
        let (_, in_test, in_attr) = scan.code_ctx(ci);
        if in_test || in_attr {
            continue;
        }
        let tok = scan.code_tok(ci);
        if tok.kind != crate::lexer::Kind::Ident {
            continue;
        }
        let called = scan
            .code
            .get(ci + 1)
            .is_some_and(|_| scan.code_tok(ci + 1).is_punct('('));
        if !called {
            continue;
        }
        if let Some(recv) = rules::acquisition_at(scan, ci, lock_cfg) {
            facts.acquires.push((recv, tok.line));
            continue;
        }
        if rules::IO_CALLS.contains(&tok.text.as_str()) {
            facts.io.push((tok.text.clone(), tok.line));
        }
        if let Some(dl) = deadline_cfg {
            if dl.deadline_ok.iter().any(|n| n == &tok.text) {
                facts.deadline_marks.push(ci);
            } else if dl.blocking.iter().any(|n| n == &tok.text) {
                facts.blocking.push((tok.text.clone(), tok.line, ci));
            }
        }
    }
    facts
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(files: &[(&str, &str)], cfg_src: &str) -> (Vec<FileModel>, Config) {
        let cfg = Config::parse(cfg_src).expect("config parses");
        let models: Vec<FileModel> = files
            .iter()
            .map(|(rel, src)| FileModel::new(rel.to_string(), src))
            .collect();
        (models, cfg)
    }

    #[test]
    fn call_graph_links_callers_and_callees() {
        let (models, cfg) = build(
            &[(
                "crates/a/src/lib.rs",
                "pub fn entry() { helper(); }\nfn helper() { leaf(); }\nfn leaf() {}\n",
            )],
            "[panic_freedom]\npaths = [\"crates\"]\n",
        );
        let ws = Workspace::build(&models, &cfg);
        let id = |n: &str| {
            ws.fns
                .iter()
                .position(|f| f.item.name == n)
                .expect("fn in graph")
        };
        let callers_of = |n: &str| {
            ws.callers
                .get(&id(n))
                .map(|v| v.iter().map(|&(c, _)| c).collect::<Vec<_>>())
                .unwrap_or_default()
        };
        assert_eq!(callers_of("helper"), vec![id("entry")]);
        assert_eq!(callers_of("leaf"), vec![id("helper")]);
        assert!(callers_of("entry").is_empty());
    }

    #[test]
    fn std_container_methods_do_not_resolve() {
        let (models, cfg) = build(
            &[(
                "crates/a/src/lib.rs",
                "pub fn remove(&self) { fs_stuff(); }\n\
                 fn fs_stuff() {}\n\
                 pub fn caller(m: &mut Map) { m.remove(&1); plain_remove(); }\n\
                 pub fn plain_remove() {}\n",
            )],
            "[panic_freedom]\npaths = [\"crates\"]\n",
        );
        let ws = Workspace::build(&models, &cfg);
        assert!(ws.resolve("remove", true, None, None).is_empty());
        assert_eq!(ws.resolve("remove", false, None, None).len(), 1);
        assert_eq!(ws.resolve("plain_remove", false, None, None).len(), 1);
    }

    #[test]
    fn qualifier_prefers_owner_match() {
        let (models, cfg) = build(
            &[(
                "crates/a/src/lib.rs",
                "impl Store { pub fn open(&self) {} }\n\
                 impl Cache { pub fn open(&self) {} }\n",
            )],
            "[panic_freedom]\npaths = [\"crates\"]\n",
        );
        let ws = Workspace::build(&models, &cfg);
        let resolved = ws.resolve("open", false, Some("Store"), None);
        assert_eq!(resolved.len(), 1);
        assert_eq!(ws.fns[resolved[0]].item.owner.as_deref(), Some("Store"));
        // Module-path qualifiers fall back to name resolution.
        assert_eq!(ws.resolve("open", false, Some("store_mod"), None).len(), 2);
    }

    #[test]
    fn facts_capture_io_locks_and_deadlines() {
        let (models, cfg) = build(
            &[(
                "crates/a/src/lib.rs",
                "fn f(&self, s: &mut S) {\n\
                 let g = self.state.lock();\n\
                 drop(g);\n\
                 s.set_read_timeout(None);\n\
                 let fr = read_frame(s);\n\
                 file.sync_all();\n\
                 }\n",
            )],
            "[lock_discipline]\npaths = [\"crates\"]\n\
             [deadline_discipline]\npaths = [\"crates\"]\n",
        );
        let ws = Workspace::build(&models, &cfg);
        let facts = &ws.fns[0].facts;
        assert_eq!(facts.acquires.len(), 1);
        assert_eq!(facts.acquires[0].0, "state");
        // `set_read_timeout` is both a deadline arm and (syscall) I/O.
        assert!(
            facts.io.iter().any(|(n, _)| n == "sync_all"),
            "{:?}",
            facts.io
        );
        assert_eq!(facts.blocking.len(), 1);
        assert_eq!(facts.deadline_marks.len(), 1);
        assert!(facts.deadline_marks[0] < facts.blocking[0].2);
    }

    #[test]
    fn test_functions_neither_resolve_nor_call() {
        let (models, cfg) = build(
            &[
                (
                    "crates/a/src/lib.rs",
                    "pub fn prod() {}\n#[cfg(test)]\nmod tests {\n    fn prod() { helper(); }\n    fn helper() {}\n}\n",
                ),
                ("crates/a/tests/it.rs", "fn prod() {}\nfn case() { prod(); }\n"),
            ],
            "[panic_freedom]\npaths = [\"crates\"]\n",
        );
        let ws = Workspace::build(&models, &cfg);
        assert_eq!(
            ws.resolve("prod", false, None, None).len(),
            1,
            "only the production fn"
        );
        assert!(ws.resolve("helper", false, None, None).is_empty());
        // The integration-test call to `prod` creates no caller edge.
        let prod = ws.resolve("prod", false, None, None)[0];
        assert!(!ws.callers.contains_key(&prod));
    }
}
