//! Item-level parsing: recover `fn` items (with their bodies' call
//! expressions), `impl` ownership and `enum` variants from a token stream.
//!
//! This is deliberately not a full Rust parser. It tracks exactly the
//! structure the interprocedural rules need — function boundaries, who owns
//! a method, which names a body calls — and leans on the same conventions
//! the lexical rules do: brace counting for bodies, token adjacency for
//! calls (`ident (` is a call; `ident ! (` is a macro and is not).
//!
//! Known, documented approximations:
//!
//! * A nested `fn` contributes its calls to the enclosing item too. For
//!   this workspace that is the desired reading — closures passed to
//!   `thread::spawn` belong to the spawning function's behavior.
//! * `pub(crate)`/`pub(super)` functions are treated as private: they are
//!   not entry points an external caller can reach.

use crate::lexer::Kind;
use crate::scan::SourceScan;

/// Reserved words that can never be call or owner names.
pub(crate) const KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "extern", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub",
    "ref", "return", "self", "Self", "static", "struct", "super", "trait", "type", "union",
    "unsafe", "use", "where", "while", "yield",
];

/// A call expression inside a `fn` body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Callee name: the last path segment before the `(`.
    pub name: String,
    /// 1-based source line of the callee token.
    pub line: usize,
    /// Code-token index of the callee, for intra-file ordering.
    pub ci: usize,
    /// Invoked as `recv.name(...)`.
    pub method: bool,
    /// For `Qual::name(...)`, the qualifying segment.
    pub qualifier: Option<String>,
    /// The call sits in a `#[test]`/`#[cfg(test)]` region.
    pub in_test: bool,
}

/// A `fn` item that has a body.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Declared `pub` without a restriction (`pub(crate)` counts private).
    pub is_pub: bool,
    /// Self type of the enclosing `impl`, if any.
    pub owner: Option<String>,
    /// Defined inside a `#[test]`/`#[cfg(test)]` region.
    pub in_test: bool,
    /// Code-token indices of the body braces, `{` and `}` inclusive.
    pub body: (usize, usize),
    /// Call expressions inside the body, in order.
    pub calls: Vec<CallSite>,
}

/// An `enum` item and its variants.
#[derive(Debug, Clone)]
pub struct EnumItem {
    /// Enum name.
    pub name: String,
    /// 1-based line of the `enum` keyword.
    pub line: usize,
    /// Variant names with their definition lines, in order.
    pub variants: Vec<(String, usize)>,
}

/// Everything `parse_items` recovers from one file.
#[derive(Debug, Clone, Default)]
pub struct FileItems {
    /// Function items with bodies, in source order.
    pub fns: Vec<FnItem>,
    /// Enum items, in source order.
    pub enums: Vec<EnumItem>,
}

/// Parse the items of one scanned file.
pub fn parse_items(scan: &SourceScan) -> FileItems {
    let impls = impl_spans(scan);
    let mut items = FileItems::default();
    for ci in 0..scan.code.len() {
        let (_, _, in_attr) = scan.code_ctx(ci);
        if in_attr {
            continue;
        }
        let tok = scan.code_tok(ci);
        if tok.is_ident("fn") {
            if let Some(item) = parse_fn(scan, ci, &impls) {
                items.fns.push(item);
            }
        } else if tok.is_ident("enum") {
            if let Some(item) = parse_enum(scan, ci) {
                items.enums.push(item);
            }
        }
    }
    items
}

/// `impl` blocks as (owner name, code-index body range).
fn impl_spans(scan: &SourceScan) -> Vec<(String, (usize, usize))> {
    let mut spans = Vec::new();
    for ci in 0..scan.code.len() {
        let (_, _, in_attr) = scan.code_ctx(ci);
        if in_attr || !scan.code_tok(ci).is_ident("impl") {
            continue;
        }
        // Owner = last ident at angle-depth 0 before the body brace; a `for`
        // resets it (trait impls name the self type after `for`), a `where`
        // clause ends collection.
        let mut owner: Option<String> = None;
        let mut angle = 0i64;
        let mut open = None;
        let mut k = ci + 1;
        while let Some(&fi) = scan.code.get(k) {
            let tok = &scan.tokens[fi];
            if tok.is_punct('<') {
                angle += 1;
            } else if tok.is_punct('>') {
                angle -= 1;
            } else if angle == 0 {
                if tok.is_punct('{') {
                    open = Some(k);
                    break;
                }
                if tok.is_punct(';') || tok.is_ident("where") {
                    if tok.is_punct(';') {
                        owner = None;
                    }
                    break;
                }
                if tok.is_ident("for") {
                    owner = None;
                } else if tok.kind == Kind::Ident && !KEYWORDS.contains(&tok.text.as_str()) {
                    owner = Some(tok.text.clone());
                }
            }
            k += 1;
        }
        // A `where` clause may still be followed by the body.
        if open.is_none() && owner.is_some() {
            while let Some(&fi) = scan.code.get(k) {
                let tok = &scan.tokens[fi];
                if tok.is_punct('{') {
                    open = Some(k);
                    break;
                }
                if tok.is_punct(';') {
                    break;
                }
                k += 1;
            }
        }
        if let (Some(name), Some(open)) = (owner, open) {
            if let Some(close) = matching_close(scan, open) {
                spans.push((name, (open, close)));
            }
        }
    }
    spans
}

fn parse_fn(scan: &SourceScan, fn_ci: usize, impls: &[(String, (usize, usize))]) -> Option<FnItem> {
    let name_tok = scan.code.get(fn_ci + 1).map(|_| scan.code_tok(fn_ci + 1))?;
    if name_tok.kind != Kind::Ident {
        return None; // `fn(..)` pointer type, not an item
    }
    let name = name_tok.text.clone();
    // Signature: scan forward; the body `{` opens at paren/bracket nesting 0,
    // a `;` there means a bodyless declaration (trait method, extern).
    let mut nesting = 0i64;
    let mut k = fn_ci + 2;
    let mut open = None;
    while let Some(&fi) = scan.code.get(k) {
        let tok = &scan.tokens[fi];
        if tok.is_punct('(') || tok.is_punct('[') {
            nesting += 1;
        } else if tok.is_punct(')') || tok.is_punct(']') {
            nesting -= 1;
        } else if nesting == 0 {
            if tok.is_punct('{') {
                open = Some(k);
                break;
            }
            if tok.is_punct(';') {
                return None;
            }
        }
        k += 1;
    }
    let open = open?;
    let close = matching_close(scan, open)?;
    let owner = impls
        .iter()
        .find(|(_, (a, b))| *a < fn_ci && fn_ci < *b)
        .map(|(n, _)| n.clone());
    Some(FnItem {
        name,
        line: scan.code_tok(fn_ci).line,
        is_pub: fn_is_pub(scan, fn_ci),
        owner,
        in_test: scan.in_test[scan.code[open]],
        body: (open, close),
        calls: calls_in(scan, open, close),
    })
}

/// Look back from the `fn` keyword across qualifiers (`unsafe`, `const`,
/// `async`, `extern "C"`) for an unrestricted `pub`.
fn fn_is_pub(scan: &SourceScan, fn_ci: usize) -> bool {
    let mut k = fn_ci;
    while k > 0 {
        k -= 1;
        let tok = scan.code_tok(k);
        match tok.kind {
            Kind::Ident if matches!(tok.text.as_str(), "unsafe" | "const" | "async" | "extern") => {
                continue;
            }
            Kind::Str => continue, // extern "C"
            Kind::Ident if tok.text == "pub" => return true,
            _ => return false,
        }
    }
    false
}

/// Code index of the `}` matching the `{` at `open`.
fn matching_close(scan: &SourceScan, open: usize) -> Option<usize> {
    let mut braces = 0i64;
    let mut k = open;
    while let Some(&fi) = scan.code.get(k) {
        let tok = &scan.tokens[fi];
        if tok.is_punct('{') {
            braces += 1;
        } else if tok.is_punct('}') {
            braces -= 1;
            if braces == 0 {
                return Some(k);
            }
        }
        k += 1;
    }
    None
}

/// Call expressions strictly inside a body: `name (` adjacency, keywords and
/// definitions excluded; macros are naturally excluded by the `!` between
/// name and `(`.
fn calls_in(scan: &SourceScan, open: usize, close: usize) -> Vec<CallSite> {
    let mut calls = Vec::new();
    for ci in open + 1..close {
        let (_, in_test, in_attr) = scan.code_ctx(ci);
        if in_attr {
            continue;
        }
        let tok = scan.code_tok(ci);
        if tok.kind != Kind::Ident || KEYWORDS.contains(&tok.text.as_str()) {
            continue;
        }
        if !scan
            .code
            .get(ci + 1)
            .is_some_and(|_| scan.code_tok(ci + 1).is_punct('('))
        {
            continue;
        }
        if ci > 0 && scan.code_tok(ci - 1).is_ident("fn") {
            continue; // nested definition, not a call
        }
        let method = ci > 0 && scan.code_tok(ci - 1).is_punct('.');
        let qualifier = if ci >= 3
            && scan.code_tok(ci - 1).is_punct(':')
            && scan.code_tok(ci - 2).is_punct(':')
            && scan.code_tok(ci - 3).kind == Kind::Ident
        {
            Some(scan.code_tok(ci - 3).text.clone())
        } else {
            None
        };
        calls.push(CallSite {
            name: tok.text.clone(),
            line: tok.line,
            ci,
            method,
            qualifier,
            in_test,
        });
    }
    calls
}

fn parse_enum(scan: &SourceScan, enum_ci: usize) -> Option<EnumItem> {
    let name_tok = scan
        .code
        .get(enum_ci + 1)
        .map(|_| scan.code_tok(enum_ci + 1))?;
    if name_tok.kind != Kind::Ident {
        return None;
    }
    let name = name_tok.text.clone();
    let mut k = enum_ci + 2;
    let mut open = None;
    while let Some(&fi) = scan.code.get(k) {
        let tok = &scan.tokens[fi];
        if tok.is_punct('{') {
            open = Some(k);
            break;
        }
        if tok.is_punct(';') {
            return None;
        }
        k += 1;
    }
    let open = open?;
    let close = matching_close(scan, open)?;
    // Variants are idents at nesting 0 in "expect a variant" position: at
    // the body start or right after a top-level comma. Attribute tokens
    // (`#[default]` etc.) are skipped.
    let mut variants = Vec::new();
    let mut nesting = 0i64;
    let mut expect = true;
    for ci in open + 1..close {
        let (_, _, in_attr) = scan.code_ctx(ci);
        if in_attr {
            continue;
        }
        let tok = scan.code_tok(ci);
        if tok.is_punct('(') || tok.is_punct('[') || tok.is_punct('{') {
            nesting += 1;
        } else if tok.is_punct(')') || tok.is_punct(']') || tok.is_punct('}') {
            nesting -= 1;
        } else if nesting == 0 {
            if tok.is_punct(',') {
                expect = true;
            } else if expect && tok.kind == Kind::Ident {
                variants.push((tok.text.clone(), tok.line));
                expect = false;
            }
        }
    }
    Some(EnumItem {
        name,
        line: scan.code_tok(enum_ci).line,
        variants,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> FileItems {
        parse_items(&SourceScan::new(src))
    }

    #[test]
    fn fns_get_names_visibility_and_owners() {
        let items = parse(
            "pub fn free() { helper(); }\n\
             pub(crate) fn scoped() {}\n\
             impl Widget {\n    pub fn method(&self) {}\n    fn private(&self) {}\n}\n\
             impl Draw for Widget {\n    fn draw(&self) {}\n}\n\
             trait Draw { fn draw(&self); }\n\
             pub const unsafe fn tricky() {}\n",
        );
        let by_name = |n: &str| items.fns.iter().find(|f| f.name == n).expect("fn parsed");
        assert!(by_name("free").is_pub);
        assert!(by_name("free").owner.is_none());
        assert!(
            !by_name("scoped").is_pub,
            "pub(crate) is not an entry point"
        );
        assert_eq!(by_name("method").owner.as_deref(), Some("Widget"));
        assert_eq!(by_name("draw").owner.as_deref(), Some("Widget"));
        assert!(by_name("tricky").is_pub);
        // The bodyless trait declaration is not an item with a body.
        assert_eq!(items.fns.iter().filter(|f| f.name == "draw").count(), 1);
    }

    #[test]
    fn calls_track_form_and_qualifier_but_not_macros() {
        let items = parse(
            "fn f() {\n\
             helper(1);\n\
             obj.method(2);\n\
             Widget::assoc(3);\n\
             println!(\"not a call\");\n\
             if cond() { loop {} }\n\
             }\n",
        );
        let calls = &items.fns[0].calls;
        let names: Vec<&str> = calls.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["helper", "method", "assoc", "cond"]);
        assert!(!calls[0].method && calls[0].qualifier.is_none());
        assert!(calls[1].method);
        assert_eq!(calls[2].qualifier.as_deref(), Some("Widget"));
    }

    #[test]
    fn nested_fns_share_calls_with_the_enclosing_item() {
        let items = parse("fn outer() { fn inner() { leaf(); } inner(); }\n");
        let outer = items.fns.iter().find(|f| f.name == "outer").expect("outer");
        let names: Vec<&str> = outer.calls.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["leaf", "inner"]);
        assert!(items.fns.iter().any(|f| f.name == "inner"));
    }

    #[test]
    fn test_region_fns_are_marked() {
        let items = parse(
            "fn prod() {}\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n    #[test]\n    fn case() {}\n}\n",
        );
        let by_name = |n: &str| items.fns.iter().find(|f| f.name == n).expect("fn parsed");
        assert!(!by_name("prod").in_test);
        assert!(by_name("helper").in_test);
        assert!(by_name("case").in_test);
    }

    #[test]
    fn enums_list_variants_across_shapes() {
        let items = parse(
            "pub enum Frame {\n\
             Ping,\n\
             Join { id: u64, token: [u8; 16] },\n\
             Data(Vec<u8>, usize),\n\
             #[allow(dead_code)]\n\
             Legacy = 9,\n\
             }\n",
        );
        let e = &items.enums[0];
        assert_eq!(e.name, "Frame");
        let names: Vec<&str> = e.variants.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["Ping", "Join", "Data", "Legacy"]);
    }

    #[test]
    fn generic_impls_resolve_their_owner() {
        let items = parse(
            "impl<T: Clone> Holder<T> {\n    fn held(&self) {}\n}\n\
             impl<T> Drop for Holder<T> where T: Send {\n    fn drop(&mut self) {}\n}\n",
        );
        let by_name = |n: &str| items.fns.iter().find(|f| f.name == n).expect("fn parsed");
        assert_eq!(by_name("held").owner.as_deref(), Some("Holder"));
        assert_eq!(by_name("drop").owner.as_deref(), Some("Holder"));
    }
}
