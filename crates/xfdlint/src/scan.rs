//! Source scanning: turns a token stream into per-token context (brace
//! depth, `#[cfg(test)]`/`#[test]` regions, attribute interiors) and parses
//! `// xfdlint:allow(rule, reason = "...")` annotations.

use crate::lexer::{lex, Kind, Token};

/// A parsed allow annotation. An allow suppresses violations of `rule` on
/// the comment's own line or on the next line that carries code, and MUST
/// be consumed by a real violation — a stale allow is itself an error.
#[derive(Debug, Clone)]
pub struct Allow {
    /// Rule the annotation suppresses.
    pub rule: String,
    /// Mandatory human-readable justification.
    pub reason: String,
    /// Line of the comment itself.
    pub line: usize,
    /// Lines the allow covers: the comment line and the next code line.
    pub covers: [usize; 2],
}

/// A malformed allow annotation (reported as a violation by the driver).
#[derive(Debug, Clone)]
pub struct BadAllow {
    /// Line of the comment.
    pub line: usize,
    /// What is wrong with it.
    pub message: String,
}

/// Token stream plus the per-token context every rule needs.
#[derive(Debug)]
pub struct SourceScan {
    /// Full token stream, comments included.
    pub tokens: Vec<Token>,
    /// Indices into `tokens` of non-comment tokens, in order.
    pub code: Vec<usize>,
    /// Brace depth before each token (parallel to `tokens`).
    pub depth: Vec<u32>,
    /// Whether each token sits inside a `#[test]`/`#[cfg(test)]` item body.
    pub in_test: Vec<bool>,
    /// Whether each token sits inside a `#[...]` attribute.
    pub in_attr: Vec<bool>,
    /// Well-formed allow annotations found in comments.
    pub allows: Vec<Allow>,
    /// Malformed allow annotations.
    pub bad_allows: Vec<BadAllow>,
}

impl SourceScan {
    /// Lex and scan one source file.
    pub fn new(src: &str) -> SourceScan {
        let tokens = lex(src);
        let n = tokens.len();
        let mut depth_at = vec![0u32; n];
        let mut in_test = vec![false; n];
        let mut in_attr = vec![false; n];
        let mut code = Vec::with_capacity(n);

        let mut depth = 0u32;
        let mut test_stack: Vec<u32> = Vec::new();
        let mut pending_test = false;
        // Paren/bracket depth since the attr, so a `;` inside `[u8; 4]` or a
        // signature does not cancel a pending test attribute.
        let mut pending_parens = 0i64;
        let mut i = 0;
        while i < n {
            depth_at[i] = depth;
            in_test[i] = !test_stack.is_empty();
            let tok = &tokens[i];
            if tok.kind == Kind::Comment {
                i += 1;
                continue;
            }
            code.push(i);
            if tok.is_punct('#') {
                if let Some(end) = scan_attribute(&tokens, i) {
                    let inner = tokens.get(i + 1).is_some_and(|t| t.is_punct('!'));
                    let mut mentions_test = false;
                    for j in i + 1..=end {
                        depth_at[j] = depth;
                        in_test[j] = !test_stack.is_empty();
                        in_attr[j] = true;
                        if tokens[j].kind != Kind::Comment {
                            code.push(j);
                        }
                        if tokens[j].is_ident("test") && !negated_in_attr(&tokens, i, j) {
                            mentions_test = true;
                        }
                    }
                    in_attr[i] = true;
                    if mentions_test && !inner {
                        pending_test = true;
                        pending_parens = 0;
                    }
                    i = end + 1;
                    continue;
                }
            }
            if tok.is_punct('{') {
                if pending_test {
                    test_stack.push(depth);
                    pending_test = false;
                    // The opening brace belongs to the region too.
                    in_test[i] = true;
                }
                depth += 1;
            } else if tok.is_punct('}') {
                depth = depth.saturating_sub(1);
                if test_stack.last() == Some(&depth) {
                    test_stack.pop();
                }
            } else if pending_test {
                if tok.is_punct('(') || tok.is_punct('[') {
                    pending_parens += 1;
                } else if tok.is_punct(')') || tok.is_punct(']') {
                    pending_parens -= 1;
                } else if tok.is_punct(';') && pending_parens == 0 {
                    // Item ended without a body (e.g. `#[cfg(test)] mod t;`).
                    pending_test = false;
                }
            }
            i += 1;
        }

        let (allows, bad_allows) = collect_allows(&tokens);
        SourceScan {
            tokens,
            code,
            depth: depth_at,
            in_test,
            in_attr,
            allows,
            bad_allows,
        }
    }

    /// The code token at `code[ci]`.
    pub fn code_tok(&self, ci: usize) -> &Token {
        &self.tokens[self.code[ci]]
    }

    /// Context lookups for the `ci`-th code token.
    pub fn code_ctx(&self, ci: usize) -> (u32, bool, bool) {
        let fi = self.code[ci];
        (self.depth[fi], self.in_test[fi], self.in_attr[fi])
    }

    /// True if any comment whose line falls in `[line - within, line]`
    /// contains `needle` (used for the `// SAFETY:` audit).
    pub fn comment_nearby(&self, line: usize, within: usize, needle: &str) -> bool {
        self.tokens.iter().any(|t| {
            t.kind == Kind::Comment
                && t.line <= line
                && t.line + within >= line
                && t.text.contains(needle)
        })
    }
}

/// If `tokens[start]` opens an attribute (`#[...]` or `#![...]`), return the
/// index of its closing `]`.
fn scan_attribute(tokens: &[Token], start: usize) -> Option<usize> {
    let mut j = start + 1;
    if tokens.get(j).is_some_and(|t| t.is_punct('!')) {
        j += 1;
    }
    if !tokens.get(j).is_some_and(|t| t.is_punct('[')) {
        return None;
    }
    let mut brackets = 0i64;
    while let Some(tok) = tokens.get(j) {
        if tok.is_punct('[') {
            brackets += 1;
        } else if tok.is_punct(']') {
            brackets -= 1;
            if brackets == 0 {
                return Some(j);
            }
        }
        j += 1;
    }
    None
}

/// True when the `test` ident at `j` inside the attribute starting at
/// `attr_start` is wrapped as `not(... test ...)` — i.e. `#[cfg(not(test))]`
/// marks production-only code, not a test region.
fn negated_in_attr(tokens: &[Token], attr_start: usize, j: usize) -> bool {
    let mut k = attr_start;
    while k < j {
        if tokens[k].is_ident("not") && tokens.get(k + 1).is_some_and(|t| t.is_punct('(')) {
            return true;
        }
        k += 1;
    }
    false
}

fn collect_allows(tokens: &[Token]) -> (Vec<Allow>, Vec<BadAllow>) {
    let mut allows = Vec::new();
    let mut bad = Vec::new();
    for (i, tok) in tokens.iter().enumerate() {
        if tok.kind != Kind::Comment || !tok.text.contains("xfdlint:allow") {
            continue;
        }
        // Annotations are plain `//` comments; doc comments merely *talk*
        // about the grammar (as this one does) and are never annotations.
        if tok.text.starts_with("///") || tok.text.starts_with("//!") || !tok.text.starts_with("//")
        {
            continue;
        }
        let next_code_line = tokens[i + 1..]
            .iter()
            .find(|t| t.kind != Kind::Comment)
            .map_or(tok.line, |t| t.line);
        match parse_allow(&tok.text) {
            Ok((rule, reason)) => allows.push(Allow {
                rule,
                reason,
                line: tok.line,
                covers: [tok.line, next_code_line],
            }),
            Err(message) => bad.push(BadAllow {
                line: tok.line,
                message,
            }),
        }
    }
    (allows, bad)
}

/// Parse `xfdlint:allow(<rule>, reason = "...")` out of a comment.
fn parse_allow(comment: &str) -> Result<(String, String), String> {
    let after = comment
        .split_once("xfdlint:allow")
        .map(|(_, rest)| rest)
        .unwrap_or("");
    let body = after
        .strip_prefix('(')
        .and_then(|rest| rest.rfind(')').map(|end| &rest[..end]))
        .ok_or_else(|| {
            "malformed xfdlint:allow — expected `xfdlint:allow(rule, reason = \"...\")`".to_string()
        })?;
    let (rule, rest) = body.split_once(',').ok_or_else(|| {
        "xfdlint:allow needs a reason: `xfdlint:allow(rule, reason = \"...\")`".to_string()
    })?;
    let rule = rule.trim();
    if rule.is_empty() || !rule.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
        return Err(format!("xfdlint:allow has a malformed rule name `{rule}`"));
    }
    if !crate::config::RULE_NAMES.contains(&rule) {
        return Err(format!("xfdlint:allow names unknown rule `{rule}`"));
    }
    let rest = rest.trim();
    let reason = rest
        .strip_prefix("reason")
        .map(str::trim_start)
        .and_then(|r| r.strip_prefix('='))
        .map(str::trim)
        .and_then(|r| r.strip_prefix('"'))
        .and_then(|r| r.rfind('"').map(|end| &r[..end]))
        .ok_or_else(|| "xfdlint:allow reason must be `reason = \"...\"`".to_string())?;
    if reason.trim().is_empty() {
        return Err("xfdlint:allow reason must not be empty".to_string());
    }
    Ok((rule.to_string(), reason.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_regions_cover_fn_and_mod_bodies() {
        let scan = SourceScan::new(
            "fn prod() { a(); }\n\
             #[cfg(test)]\nmod tests {\n    fn helper() { b(); }\n}\n\
             fn prod2() { c(); }\n",
        );
        let flag = |name: &str| {
            let fi = scan
                .tokens
                .iter()
                .position(|t| t.is_ident(name))
                .expect("token present");
            scan.in_test[fi]
        };
        assert!(!flag("a"));
        assert!(flag("b"));
        assert!(!flag("c"));
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        let scan = SourceScan::new("#[cfg(not(test))]\nfn prod() { a(); }\n");
        let fi = scan
            .tokens
            .iter()
            .position(|t| t.is_ident("a"))
            .expect("token present");
        assert!(!scan.in_test[fi]);
    }

    #[test]
    fn attr_tokens_are_marked() {
        let scan = SourceScan::new("#[derive(Debug)]\nstruct S;\n");
        let derive = scan
            .tokens
            .iter()
            .position(|t| t.is_ident("Debug"))
            .expect("token present");
        let s = scan
            .tokens
            .iter()
            .position(|t| t.is_ident("S"))
            .expect("token present");
        assert!(scan.in_attr[derive]);
        assert!(!scan.in_attr[s]);
    }

    #[test]
    fn allow_annotations_parse_and_cover_next_code_line() {
        let scan = SourceScan::new(
            "// xfdlint:allow(panic_freedom, reason = \"bounded by loop guard\")\n\
             let x = v[0];\n",
        );
        assert_eq!(scan.allows.len(), 1);
        let a = &scan.allows[0];
        assert_eq!(a.rule, "panic_freedom");
        assert_eq!(a.reason, "bounded by loop guard");
        assert_eq!(a.covers, [1, 2]);
        assert!(scan.bad_allows.is_empty());
    }

    #[test]
    fn allow_without_reason_is_malformed() {
        for bad in [
            "// xfdlint:allow(panic_freedom)\nlet x = 1;\n",
            "// xfdlint:allow(panic_freedom, reason = \"\")\nlet x = 1;\n",
            "// xfdlint:allow(no_such_rule, reason = \"r\")\nlet x = 1;\n",
            "// xfdlint:allow panic_freedom\nlet x = 1;\n",
        ] {
            let scan = SourceScan::new(bad);
            assert!(scan.allows.is_empty(), "parsed: {bad}");
            assert_eq!(scan.bad_allows.len(), 1, "not flagged: {bad}");
        }
    }

    #[test]
    fn trailing_allow_covers_its_own_line() {
        let scan =
            SourceScan::new("let x = v[0]; // xfdlint:allow(panic_freedom, reason = \"why\")\n");
        assert_eq!(scan.allows[0].covers, [1, 1]);
    }

    #[test]
    fn depth_tracks_braces() {
        let scan = SourceScan::new("fn f() { if x { y(); } }\n");
        let yi = scan
            .tokens
            .iter()
            .position(|t| t.is_ident("y"))
            .expect("token present");
        assert_eq!(scan.depth[yi], 2);
    }
}
