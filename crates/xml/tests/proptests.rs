//! Property tests for the XML substrate: the parser must never panic on
//! arbitrary input, must accept everything the serializer emits, and the
//! tokenizer's position tracking must stay within bounds.

use proptest::prelude::*;
use xfd_xml::tokenizer::Tokenizer;
use xfd_xml::{parse, Path};

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// Fuzz: arbitrary strings never panic the parser (errors are fine).
    #[test]
    fn parser_never_panics_on_garbage(input in ".{0,200}") {
        let _ = parse(&input);
    }

    /// Fuzz with XML-ish fragments: higher chance of hitting deep paths.
    #[test]
    fn parser_never_panics_on_xmlish(
        parts in proptest::collection::vec(
            prop_oneof![
                Just("<a>".to_string()),
                Just("</a>".to_string()),
                Just("<b x='1'>".to_string()),
                Just("<b x=1>".to_string()),
                Just("</b>".to_string()),
                Just("<c/>".to_string()),
                Just("text".to_string()),
                Just("&amp;".to_string()),
                Just("&bogus;".to_string()),
                Just("&#x41;".to_string()),
                Just("<!-- c -->".to_string()),
                Just("<![CDATA[x]]>".to_string()),
                Just("<?pi?>".to_string()),
                Just("<!DOCTYPE a>".to_string()),
                Just("<".to_string()),
                Just(">".to_string()),
                Just("]]>".to_string()),
            ],
            0..20,
        )
    ) {
        let input: String = parts.concat();
        let _ = parse(&input);
    }

    /// The tokenizer's reported positions never exceed the input length.
    #[test]
    fn tokenizer_positions_stay_in_bounds(input in ".{0,120}") {
        let mut t = Tokenizer::new(&input);
        for _ in 0..200 {
            match t.next_token() {
                Ok(Some(_)) => prop_assert!(t.position().offset <= input.len()),
                Ok(None) => break,
                Err(e) => {
                    prop_assert!(e.position.offset <= input.len() + 1);
                    break;
                }
            }
        }
    }

    /// Path parsing and display round-trip for well-formed path strings.
    #[test]
    fn path_roundtrip(
        abs in proptest::bool::ANY,
        ups in 0usize..3,
        labels in proptest::collection::vec("[a-z][a-z0-9]{0,5}", 1..5),
    ) {
        let s = if abs {
            format!("/{}", labels.join("/"))
        } else if ups > 0 {
            let mut parts = vec![".."; ups];
            let owned: Vec<&str> = labels.iter().map(String::as_str).collect();
            parts.extend(owned);
            parts.join("/")
        } else {
            format!("./{}", labels.join("/"))
        };
        let p: Path = s.parse().unwrap();
        prop_assert_eq!(p.to_string(), s);
    }

    /// to_absolute/relative_to are mutually inverse for in-range paths.
    #[test]
    fn path_absolute_relative_inverse(
        base_labels in proptest::collection::vec("[a-z]{1,4}", 1..5),
        target_labels in proptest::collection::vec("[a-z]{1,4}", 1..5),
        common in 0usize..4,
    ) {
        let common = common.min(base_labels.len()).min(target_labels.len());
        let base = Path::absolute(base_labels.clone());
        let mut target_vec: Vec<String> = base_labels[..common].to_vec();
        target_vec.extend(target_labels.iter().cloned());
        let target = Path::absolute(target_vec);
        let rel = target.relative_to(&base);
        prop_assert_eq!(rel.to_absolute(&base).unwrap(), target);
    }
}
