//! The arena data tree: Definition 2 of the paper.
//!
//! A [`DataTree`] is a rooted labeled tree `T = (N, P, V, n_r)`:
//!
//! * `N` — nodes, each carrying an interned label and a *node key* that
//!   uniquely identifies it. Node keys here are the pre-order indices
//!   assigned at construction (exactly the bracketed keys of the paper's
//!   Figure 1), exposed as [`NodeId`].
//! * `P` — parent-child edges, stored both directions (`parent` pointer and
//!   `children` list, in document order).
//! * `V` — value assignments: every leaf node may carry a simple value.
//! * `n_r` — the root node, always `NodeId(0)`.

use crate::intern::{Interner, Symbol};
use crate::ATTR_PREFIX;

/// Identifier of a node within one [`DataTree`]; its numeric value is the
/// node's pre-order *node key* in the sense of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The arena index of the node.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

#[derive(Debug, Clone)]
struct NodeData {
    label: Symbol,
    parent: Option<NodeId>,
    children: Vec<NodeId>,
    value: Option<Box<str>>,
}

/// Summary statistics of a tree, used by dataset characteristic tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TreeStats {
    /// Total number of nodes (elements + attribute nodes + `@text` nodes).
    pub nodes: usize,
    /// Nodes derived from XML attributes or synthesized `@text` children.
    pub attr_nodes: usize,
    /// Nodes carrying a simple value.
    pub leaf_values: usize,
    /// Maximum depth (root has depth 0).
    pub max_depth: usize,
    /// Number of distinct labels.
    pub distinct_labels: usize,
}

/// An XML database instance: a rooted labeled tree with node keys and
/// value assignments (paper Definition 2).
#[derive(Debug, Clone)]
pub struct DataTree {
    nodes: Vec<NodeData>,
    interner: Interner,
}

impl DataTree {
    /// Create a tree consisting only of a root labeled `root_label`.
    pub fn with_root(root_label: &str) -> Self {
        let mut interner = Interner::new();
        let label = interner.intern(root_label);
        DataTree {
            nodes: vec![NodeData {
                label,
                parent: None,
                children: Vec::new(),
                value: None,
            }],
            interner,
        }
    }

    /// The root node (`n_r`), always `NodeId(0)`.
    pub fn root(&self) -> NodeId {
        NodeId(0)
    }

    /// Total number of nodes in the tree.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Append a new child of `parent` with the given label; returns its id.
    /// Children keep document order. Node ids are assigned sequentially, so
    /// building in document order yields pre-order node keys.
    pub fn add_child(&mut self, parent: NodeId, label: &str) -> NodeId {
        let label = self.interner.intern(label);
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(NodeData {
            label,
            parent: Some(parent),
            children: Vec::new(),
            value: None,
        });
        self.nodes[parent.index()].children.push(id);
        id
    }

    /// Set (or replace) the simple value of `node`.
    pub fn set_value(&mut self, node: NodeId, value: &str) {
        self.nodes[node.index()].value = Some(value.into());
    }

    /// The label of `node` as a string.
    pub fn label(&self, node: NodeId) -> &str {
        self.interner.resolve(self.nodes[node.index()].label)
    }

    /// The interned label symbol of `node`.
    pub fn label_sym(&self, node: NodeId) -> Symbol {
        self.nodes[node.index()].label
    }

    /// The parent of `node` (`None` for the root).
    pub fn parent(&self, node: NodeId) -> Option<NodeId> {
        self.nodes[node.index()].parent
    }

    /// The children of `node`, in document order.
    pub fn children(&self, node: NodeId) -> &[NodeId] {
        &self.nodes[node.index()].children
    }

    /// The simple value of `node`, if assigned.
    pub fn value(&self, node: NodeId) -> Option<&str> {
        self.nodes[node.index()].value.as_deref()
    }

    /// Whether `node` was derived from an XML attribute (or synthesized
    /// `@text`), i.e. its label starts with `@`.
    pub fn is_attr(&self, node: NodeId) -> bool {
        self.label(node).starts_with(ATTR_PREFIX)
    }

    /// The label interner (labels are shared across the tree).
    pub fn interner(&self) -> &Interner {
        &self.interner
    }

    /// Children of `node` whose label equals `label`, in document order.
    pub fn children_labeled<'a>(
        &'a self,
        node: NodeId,
        label: &'a str,
    ) -> impl Iterator<Item = NodeId> + 'a {
        let sym = self.interner.get(label);
        self.children(node)
            .iter()
            .copied()
            .filter(move |&c| Some(self.label_sym(c)) == sym)
    }

    /// The first child of `node` labeled `label`, if any.
    pub fn child_labeled(&self, node: NodeId, label: &str) -> Option<NodeId> {
        self.children_labeled(node, label).next()
    }

    /// Depth of `node` (root = 0).
    pub fn depth(&self, node: NodeId) -> usize {
        let mut d = 0;
        let mut cur = node;
        while let Some(p) = self.parent(cur) {
            d += 1;
            cur = p;
        }
        d
    }

    /// Pre-order traversal of the subtree rooted at `node` (inclusive).
    pub fn descendants(&self, node: NodeId) -> Descendants<'_> {
        Descendants {
            tree: self,
            stack: vec![node],
        }
    }

    /// All node ids in pre-order (document order).
    pub fn all_nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Is `anc` an ancestor of `node` (or the node itself)?
    pub fn is_ancestor_or_self(&self, anc: NodeId, node: NodeId) -> bool {
        let mut cur = Some(node);
        while let Some(c) = cur {
            if c == anc {
                return true;
            }
            cur = self.parent(c);
        }
        false
    }

    /// The absolute label path of `node` from the root, e.g.
    /// `["warehouse", "state", "store"]`.
    pub fn label_path(&self, node: NodeId) -> Vec<&str> {
        let mut labels = Vec::new();
        let mut cur = Some(node);
        while let Some(c) = cur {
            labels.push(self.label(c));
            cur = self.parent(c);
        }
        labels.reverse();
        labels
    }

    /// Compute summary statistics for the whole tree.
    pub fn stats(&self) -> TreeStats {
        let mut stats = TreeStats {
            distinct_labels: self.interner.len(),
            ..Default::default()
        };
        stats.nodes = self.nodes.len();
        for id in self.all_nodes() {
            if self.is_attr(id) {
                stats.attr_nodes += 1;
            }
            if self.value(id).is_some() {
                stats.leaf_values += 1;
            }
            let d = self.depth(id);
            if d > stats.max_depth {
                stats.max_depth = d;
            }
        }
        stats
    }
}

/// Pre-order iterator over a subtree; see [`DataTree::descendants`].
pub struct Descendants<'a> {
    tree: &'a DataTree,
    stack: Vec<NodeId>,
}

impl Iterator for Descendants<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let next = self.stack.pop()?;
        // Push children reversed so they pop in document order.
        for &c in self.tree.children(next).iter().rev() {
            self.stack.push(c);
        }
        Some(next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_tree() -> DataTree {
        // warehouse / state / (name, store / book)
        let mut t = DataTree::with_root("warehouse");
        let state = t.add_child(t.root(), "state");
        let name = t.add_child(state, "name");
        t.set_value(name, "WA");
        let store = t.add_child(state, "store");
        let book = t.add_child(store, "book");
        t.set_value(book, "DBMS");
        t
    }

    #[test]
    fn construction_assigns_preorder_keys() {
        let t = small_tree();
        assert_eq!(t.node_count(), 5);
        let order: Vec<u32> = t.descendants(t.root()).map(|n| n.0).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn parent_child_edges_are_consistent() {
        let t = small_tree();
        for n in t.all_nodes() {
            for &c in t.children(n) {
                assert_eq!(t.parent(c), Some(n));
            }
        }
        assert_eq!(t.parent(t.root()), None);
    }

    #[test]
    fn labels_and_values() {
        let t = small_tree();
        assert_eq!(t.label(NodeId(0)), "warehouse");
        assert_eq!(t.label(NodeId(2)), "name");
        assert_eq!(t.value(NodeId(2)), Some("WA"));
        assert_eq!(t.value(NodeId(0)), None);
    }

    #[test]
    fn label_path_is_root_to_node() {
        let t = small_tree();
        assert_eq!(
            t.label_path(NodeId(4)),
            vec!["warehouse", "state", "store", "book"]
        );
    }

    #[test]
    fn depth_and_ancestry() {
        let t = small_tree();
        assert_eq!(t.depth(t.root()), 0);
        assert_eq!(t.depth(NodeId(4)), 3);
        assert!(t.is_ancestor_or_self(NodeId(1), NodeId(4)));
        assert!(t.is_ancestor_or_self(NodeId(4), NodeId(4)));
        assert!(!t.is_ancestor_or_self(NodeId(2), NodeId(4)));
    }

    #[test]
    fn children_labeled_filters_by_label() {
        let mut t = DataTree::with_root("r");
        let a1 = t.add_child(t.root(), "a");
        let _b = t.add_child(t.root(), "b");
        let a2 = t.add_child(t.root(), "a");
        let found: Vec<_> = t.children_labeled(t.root(), "a").collect();
        assert_eq!(found, vec![a1, a2]);
        assert_eq!(t.child_labeled(t.root(), "a"), Some(a1));
        assert_eq!(t.child_labeled(t.root(), "zzz"), None);
    }

    #[test]
    fn attr_detection() {
        let mut t = DataTree::with_root("r");
        let a = t.add_child(t.root(), "@id");
        let e = t.add_child(t.root(), "id");
        assert!(t.is_attr(a));
        assert!(!t.is_attr(e));
    }

    #[test]
    fn stats_counts() {
        let mut t = DataTree::with_root("r");
        let a = t.add_child(t.root(), "@id");
        t.set_value(a, "1");
        let c = t.add_child(t.root(), "c");
        let d = t.add_child(c, "d");
        t.set_value(d, "x");
        let s = t.stats();
        assert_eq!(s.nodes, 4);
        assert_eq!(s.attr_nodes, 1);
        assert_eq!(s.leaf_values, 2);
        assert_eq!(s.max_depth, 2);
        assert_eq!(s.distinct_labels, 4);
    }

    #[test]
    fn descendants_of_inner_node() {
        let t = small_tree();
        let sub: Vec<u32> = t.descendants(NodeId(3)).map(|n| n.0).collect();
        assert_eq!(sub, vec![3, 4]);
    }
}
