//! Node-value equality (Definition 3) and path-value equality (Definition 4).
//!
//! Two nodes are *node-value equal* iff the subtrees rooted at them are
//! identical up to reordering of siblings — i.e. labels match, simple values
//! match, and there is a one-to-one matching between children that are
//! themselves node-value equal. This is **multiset** equality over children.
//!
//! [`EqClasses`] computes, in one bottom-up pass with hash-consing, an
//! integer *equality class* for every node of a tree such that two nodes are
//! node-value equal iff their classes are equal. Classes are exact (the
//! hash-consing map is keyed on the full canonical shape, not on a hash), so
//! there are no collisions.

use std::collections::HashMap;

use crate::intern::Symbol;
use crate::tree::{DataTree, NodeId};

/// Equality-class identifier: equal ids ⟺ node-value equal subtrees
/// (within the [`EqClasses`] instance that produced them).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ValueClassId(pub u32);

/// Whether sibling order participates in value equality.
///
/// The paper chooses to "treat our collections as unordered sets, and to
/// ignore order in XML" (Section 3.1, Remark 4) but reserves a discussion
/// of "the impact of considering order" for Section 4.5; [`OrderMode::Ordered`]
/// implements that variant: children compare as *lists*, so reordered
/// siblings are no longer value-equal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OrderMode {
    /// Children compare as multisets (the paper's default).
    #[default]
    Unordered,
    /// Children compare as document-order lists.
    Ordered,
}

/// Per-node equality classes for one tree.
#[derive(Debug, Clone)]
pub struct EqClasses {
    class: Vec<ValueClassId>,
    num_classes: u32,
}

#[derive(PartialEq, Eq, Hash)]
struct Shape {
    label: Symbol,
    value: Option<Box<str>>,
    /// Sorted multiset of child classes.
    children: Box<[ValueClassId]>,
}

impl EqClasses {
    /// Compute equality classes for every node of `tree` with the default
    /// unordered (multiset) semantics.
    pub fn compute(tree: &DataTree) -> Self {
        Self::compute_with(tree, OrderMode::Unordered)
    }

    /// Assemble an `EqClasses` from an externally computed class vector
    /// (indexed by node arena index). Used by the sharded collection
    /// encoder, which unifies per-segment [`ClassTable`]s into one global
    /// class space and then needs the ordinary `class_of` interface.
    pub fn from_raw(class: Vec<ValueClassId>, num_classes: u32) -> Self {
        EqClasses { class, num_classes }
    }

    /// Compute equality classes under an explicit [`OrderMode`].
    pub fn compute_with(tree: &DataTree, order: OrderMode) -> Self {
        let n = tree.node_count();
        let mut class = vec![ValueClassId(0); n];
        let mut cons: HashMap<Shape, ValueClassId> = HashMap::new();
        // Parents always have smaller ids than children (arena append
        // discipline), so a reverse scan is a valid bottom-up order.
        for idx in (0..n).rev() {
            let node = NodeId(idx as u32);
            let mut kids: Vec<ValueClassId> = tree
                .children(node)
                .iter()
                .map(|c| class[c.index()])
                .collect();
            if order == OrderMode::Unordered {
                kids.sort_unstable();
            }
            let shape = Shape {
                label: tree.label_sym(node),
                value: tree.value(node).map(Into::into),
                children: kids.into_boxed_slice(),
            };
            let next = ValueClassId(cons.len() as u32);
            let id = *cons.entry(shape).or_insert(next);
            class[idx] = id;
        }
        EqClasses {
            class,
            num_classes: cons.len() as u32,
        }
    }

    /// The equality class of `node`.
    pub fn class_of(&self, node: NodeId) -> ValueClassId {
        self.class[node.index()]
    }

    /// Are two nodes of the same tree node-value equal (Definition 3)?
    pub fn node_value_eq(&self, a: NodeId, b: NodeId) -> bool {
        self.class_of(a) == self.class_of(b)
    }

    /// Number of distinct classes in the tree.
    pub fn num_classes(&self) -> u32 {
        self.num_classes
    }
}

/// One hash-consed shape of a [`ClassTable`], exported so shapes can be
/// re-consed into a *global* class space across several trees. `children`
/// are local class ids of the same table (always smaller than the shape's
/// own id, so tables are topologically ordered by construction).
#[derive(Debug, Clone)]
pub struct ShapeExport {
    /// Node label, resolved to a string (symbols are per-tree).
    pub label: Box<str>,
    /// Simple value, if any.
    pub value: Option<Box<str>>,
    /// Child classes: sorted multiset under [`OrderMode::Unordered`],
    /// document-order list under [`OrderMode::Ordered`].
    pub children: Box<[u32]>,
}

/// Per-tree equality classes in exportable form: class ids are assigned by
/// first appearance in a **reverse pre-order** scan, and every distinct
/// class carries its [`ShapeExport`]. Two properties make this the shard
/// unit of the collection encoder:
///
/// * grafting trees under a fresh root (`TreeWriter::copy_subtree`) assigns
///   pre-order node ids, so the merged tree's reverse arena scan visits
///   exactly these nodes in exactly this order, segment blocks reversed;
/// * re-consing the tables segment-by-segment in reverse segment order
///   therefore reproduces the merged tree's [`EqClasses`] ids *verbatim*.
#[derive(Debug, Clone)]
pub struct ClassTable {
    /// Local class id per node, indexed by pre-order rank.
    pub class_by_rank: Vec<u32>,
    /// Shape of each local class, indexed by class id.
    pub shapes: Vec<ShapeExport>,
}

impl ClassTable {
    /// Compute the class table of `tree` under `order`.
    ///
    /// `preorder` and `rank` must be the tree's pre-order enumeration and
    /// its inverse (`rank[node.index()]` = pre-order position); callers
    /// that already hold them avoid a recompute, see [`preorder_of`].
    pub fn compute(tree: &DataTree, order: OrderMode, preorder: &[NodeId], rank: &[u32]) -> Self {
        let n = tree.node_count();
        debug_assert_eq!(preorder.len(), n);
        let mut class_by_rank = vec![0u32; n];
        let mut cons: HashMap<Shape, u32> = HashMap::new();
        let mut shapes: Vec<ShapeExport> = Vec::new();
        // Children have strictly larger pre-order ranks than their parent,
        // so the reverse scan is a valid bottom-up order.
        for r in (0..n).rev() {
            let node = preorder[r];
            let mut kids: Vec<ValueClassId> = tree
                .children(node)
                .iter()
                .map(|c| ValueClassId(class_by_rank[rank[c.index()] as usize]))
                .collect();
            if order == OrderMode::Unordered {
                kids.sort_unstable();
            }
            let shape = Shape {
                label: tree.label_sym(node),
                value: tree.value(node).map(Into::into),
                children: kids.into_boxed_slice(),
            };
            let next = shapes.len() as u32;
            let id = match cons.entry(shape) {
                std::collections::hash_map::Entry::Occupied(e) => *e.get(),
                std::collections::hash_map::Entry::Vacant(e) => {
                    let key = e.key();
                    shapes.push(ShapeExport {
                        label: tree.label(node).into(),
                        value: key.value.clone(),
                        children: key.children.iter().map(|c| c.0).collect(),
                    });
                    *e.insert(next)
                }
            };
            class_by_rank[r] = id;
        }
        ClassTable {
            class_by_rank,
            shapes,
        }
    }

    /// Number of distinct local classes.
    pub fn num_classes(&self) -> usize {
        self.shapes.len()
    }
}

/// Pre-order enumeration of `tree` plus its inverse: `(preorder, rank)`
/// with `preorder[rank[n.index()]] == n`. Trees built in document order
/// (the parser, `TreeWriter`) have `rank[i] == i`, but nothing here
/// assumes it.
pub fn preorder_of(tree: &DataTree) -> (Vec<NodeId>, Vec<u32>) {
    let preorder: Vec<NodeId> = tree.descendants(tree.root()).collect();
    let mut rank = vec![0u32; tree.node_count()];
    for (r, node) in preorder.iter().enumerate() {
        rank[node.index()] = r as u32;
    }
    (preorder, rank)
}

/// A fully materialized canonical form of a subtree; usable for *cross-tree*
/// node-value equality (Definition 3 across two documents). Ordered so it
/// can key sorted structures.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CanonicalValue {
    /// Node label (as a string, so forms are comparable across interners).
    pub label: String,
    /// Simple value, if any.
    pub value: Option<String>,
    /// Sorted canonical forms of the children (multiset).
    pub children: Vec<CanonicalValue>,
}

/// Build the canonical form of the subtree rooted at `node`.
pub fn canonical_form(tree: &DataTree, node: NodeId) -> CanonicalValue {
    let mut children: Vec<CanonicalValue> = tree
        .children(node)
        .iter()
        .map(|&c| canonical_form(tree, c))
        .collect();
    children.sort();
    CanonicalValue {
        label: tree.label(node).to_string(),
        value: tree.value(node).map(str::to_string),
        children,
    }
}

/// Node-value equality across (possibly different) trees — Definition 3.
pub fn node_value_eq_cross(t1: &DataTree, n1: NodeId, t2: &DataTree, n2: NodeId) -> bool {
    canonical_form(t1, n1) == canonical_form(t2, n2)
}

/// Path-value equality — Definition 4: the nodes matched by `p1` in `t1`
/// and by `p2` in `t2` are in one-to-one node-value-equal correspondence.
pub fn path_value_eq(t1: &DataTree, nodes1: &[NodeId], t2: &DataTree, nodes2: &[NodeId]) -> bool {
    if nodes1.len() != nodes2.len() {
        return false;
    }
    let mut f1: Vec<CanonicalValue> = nodes1.iter().map(|&n| canonical_form(t1, n)).collect();
    let mut f2: Vec<CanonicalValue> = nodes2.iter().map(|&n| canonical_form(t2, n)).collect();
    f1.sort();
    f2.sort();
    f1 == f2
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;
    use crate::Path;

    #[test]
    fn identical_subtrees_share_a_class() {
        let t = parse("<r><b><x>1</x><y>2</y></b><b><y>2</y><x>1</x></b></r>").unwrap();
        let eq = EqClasses::compute(&t);
        let bs = "/r/b".parse::<Path>().unwrap().resolve_all(&t);
        assert!(
            eq.node_value_eq(bs[0], bs[1]),
            "sibling order must not matter"
        );
    }

    #[test]
    fn differing_values_split_classes() {
        let t = parse("<r><b><x>1</x></b><b><x>2</x></b></r>").unwrap();
        let eq = EqClasses::compute(&t);
        let bs = "/r/b".parse::<Path>().unwrap().resolve_all(&t);
        assert!(!eq.node_value_eq(bs[0], bs[1]));
    }

    #[test]
    fn multiset_not_set_semantics() {
        // {x,x} vs {x}: a one-to-one matching is impossible.
        let t = parse("<r><b><x>1</x><x>1</x></b><b><x>1</x></b></r>").unwrap();
        let eq = EqClasses::compute(&t);
        let bs = "/r/b".parse::<Path>().unwrap().resolve_all(&t);
        assert!(!eq.node_value_eq(bs[0], bs[1]));
    }

    #[test]
    fn labels_matter() {
        let t = parse("<r><a>1</a><b>1</b></r>").unwrap();
        let eq = EqClasses::compute(&t);
        let kids = t.children(t.root());
        assert!(!eq.node_value_eq(kids[0], kids[1]));
    }

    #[test]
    fn paper_example_books_30_and_50_are_equal() {
        // Figure 1: book 30 and book 50 carry the same ISBN, authors
        // (in different order), title and price.
        let xml = "<w>\
            <book><ISBN>1-55860-438-3</ISBN><author>Ramakrishnan</author>\
              <author>Gehrke</author><title>DBMS</title><price>59.99</price></book>\
            <book><ISBN>1-55860-438-3</ISBN><author>Gehrke</author>\
              <author>Ramakrishnan</author><title>DBMS</title><price>59.99</price></book>\
            </w>";
        let t = parse(xml).unwrap();
        let eq = EqClasses::compute(&t);
        let books = "/w/book".parse::<Path>().unwrap().resolve_all(&t);
        assert!(eq.node_value_eq(books[0], books[1]));
    }

    #[test]
    fn cross_tree_equality_matches_within_tree_classes() {
        let x1 = "<r><b><x>1</x><y>2</y></b></r>";
        let x2 = "<r><b><y>2</y><x>1</x></b></r>";
        let t1 = parse(x1).unwrap();
        let t2 = parse(x2).unwrap();
        let b1 = "/r/b".parse::<Path>().unwrap().resolve_all(&t1)[0];
        let b2 = "/r/b".parse::<Path>().unwrap().resolve_all(&t2)[0];
        assert!(node_value_eq_cross(&t1, b1, &t2, b2));
    }

    #[test]
    fn path_value_equality_needs_one_to_one_correspondence() {
        let t1 = parse("<r><a>1</a><a>2</a></r>").unwrap();
        let t2 = parse("<r><a>2</a><a>1</a></r>").unwrap();
        let t3 = parse("<r><a>1</a><a>1</a></r>").unwrap();
        let p: Path = "/r/a".parse().unwrap();
        let (n1, n2, n3) = (p.resolve_all(&t1), p.resolve_all(&t2), p.resolve_all(&t3));
        assert!(path_value_eq(&t1, &n1, &t2, &n2));
        assert!(!path_value_eq(&t1, &n1, &t3, &n3));
    }

    #[test]
    fn ordered_mode_distinguishes_reordered_siblings() {
        let t = parse("<r><b><x>1</x><y>2</y></b><b><y>2</y><x>1</x></b></r>").unwrap();
        let unordered = EqClasses::compute_with(&t, OrderMode::Unordered);
        let ordered = EqClasses::compute_with(&t, OrderMode::Ordered);
        let bs = "/r/b".parse::<Path>().unwrap().resolve_all(&t);
        assert!(unordered.node_value_eq(bs[0], bs[1]));
        assert!(!ordered.node_value_eq(bs[0], bs[1]));
    }

    #[test]
    fn ordered_mode_still_equates_identical_order() {
        let t = parse("<r><b><x>1</x><y>2</y></b><b><x>1</x><y>2</y></b></r>").unwrap();
        let ordered = EqClasses::compute_with(&t, OrderMode::Ordered);
        let bs = "/r/b".parse::<Path>().unwrap().resolve_all(&t);
        assert!(ordered.node_value_eq(bs[0], bs[1]));
    }

    #[test]
    fn class_table_matches_eqclasses_ids_verbatim() {
        for order in [OrderMode::Unordered, OrderMode::Ordered] {
            let t = parse("<r><b><x>1</x><y>2</y></b><b><y>2</y><x>1</x></b><b><x>1</x></b></r>")
                .unwrap();
            let eq = EqClasses::compute_with(&t, order);
            let (preorder, rank) = preorder_of(&t);
            let table = ClassTable::compute(&t, order, &preorder, &rank);
            // Parser trees are built in document order, so arena order is
            // pre-order and the ids must line up one-to-one.
            for node in t.all_nodes() {
                assert_eq!(
                    eq.class_of(node).0,
                    table.class_by_rank[rank[node.index()] as usize],
                    "class of node {node:?} under {order:?}"
                );
            }
            assert_eq!(eq.num_classes() as usize, table.num_classes());
        }
    }

    #[test]
    fn class_table_shapes_are_topologically_ordered() {
        let t = parse("<r><a><b>1</b></a><a><b>1</b></a><c>2</c></r>").unwrap();
        let (preorder, rank) = preorder_of(&t);
        let table = ClassTable::compute(&t, OrderMode::Unordered, &preorder, &rank);
        for (id, shape) in table.shapes.iter().enumerate() {
            for &child in shape.children.iter() {
                assert!((child as usize) < id, "child class precedes parent");
            }
        }
    }

    #[test]
    fn class_count_reflects_sharing() {
        let t = parse("<r><a>1</a><a>1</a><a>1</a></r>").unwrap();
        let eq = EqClasses::compute(&t);
        // Classes: the leaf "a=1" (shared) and the root.
        assert_eq!(eq.num_classes(), 2);
    }
}
