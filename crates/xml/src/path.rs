//! Path expressions (paper Section 2.1).
//!
//! A schema or data element is addressed by a path expression
//! `/e1/e2/.../ek`. The paper additionally uses the XPath steps `.` (self)
//! and `..` (parent) to form *relative* paths with regard to a pivot path,
//! e.g. `../contact/name` relative to `/warehouse/state/store/book`.
//!
//! [`Path`] models both absolute and relative paths, supports conversion
//! between the two ([`Path::to_absolute`], [`Path::relative_to`]), and
//! resolves against a [`DataTree`] to the (possibly many) matching nodes.

use std::fmt;
use std::str::FromStr;

use crate::tree::{DataTree, NodeId};

/// One step of a path.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Step {
    /// `..` — move to the parent.
    Parent,
    /// A child label, e.g. `store` or `@isbn`.
    Child(String),
}

/// A path expression: absolute (`/a/b/c`) or relative (`./x`, `../y/z`, `.`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Path {
    absolute: bool,
    steps: Vec<Step>,
}

/// Error produced when parsing a path string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathParseError(pub String);

impl fmt::Display for PathParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid path expression: {}", self.0)
    }
}

impl std::error::Error for PathParseError {}

impl Path {
    /// The empty relative path `.` (self).
    pub fn self_path() -> Self {
        Path {
            absolute: false,
            steps: Vec::new(),
        }
    }

    /// An absolute path from label components, e.g. `["warehouse","state"]`.
    pub fn absolute<I: IntoIterator<Item = S>, S: Into<String>>(labels: I) -> Self {
        Path {
            absolute: true,
            steps: labels.into_iter().map(|l| Step::Child(l.into())).collect(),
        }
    }

    /// A relative path with `ups` leading `..` steps followed by `labels`.
    pub fn relative<I: IntoIterator<Item = S>, S: Into<String>>(ups: usize, labels: I) -> Self {
        let mut steps = vec![Step::Parent; ups];
        steps.extend(labels.into_iter().map(|l| Step::Child(l.into())));
        Path {
            absolute: false,
            steps,
        }
    }

    /// Is this an absolute path (starts at the root)?
    pub fn is_absolute(&self) -> bool {
        self.absolute
    }

    /// The steps of the path.
    pub fn steps(&self) -> &[Step] {
        &self.steps
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True for the empty relative path `.` (or the absolute root path `/`).
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// The trailing label, if the last step is a child step.
    pub fn last_label(&self) -> Option<&str> {
        match self.steps.last() {
            Some(Step::Child(l)) => Some(l),
            _ => None,
        }
    }

    /// Append a child step, returning a new path.
    pub fn child(&self, label: &str) -> Path {
        let mut steps = self.steps.clone();
        steps.push(Step::Child(label.to_string()));
        Path {
            absolute: self.absolute,
            steps,
        }
    }

    /// Drop the final step, returning the parent path. `None` if empty or if
    /// the final step is `..`.
    pub fn parent(&self) -> Option<Path> {
        match self.steps.last() {
            Some(Step::Child(_)) => Some(Path {
                absolute: self.absolute,
                steps: self.steps[..self.steps.len() - 1].to_vec(),
            }),
            _ => None,
        }
    }

    /// For absolute paths: is `self` a (non-strict) prefix of `other`?
    pub fn is_prefix_of(&self, other: &Path) -> bool {
        self.absolute == other.absolute
            && self.steps.len() <= other.steps.len()
            && self.steps == other.steps[..self.steps.len()]
    }

    /// Labels of an absolute path, e.g. `["warehouse", "state"]`.
    ///
    /// # Panics
    /// Panics if the path contains `..` steps (absolute paths never should).
    pub fn labels(&self) -> Vec<&str> {
        self.steps
            .iter()
            .map(|s| match s {
                Step::Child(l) => l.as_str(),
                Step::Parent => panic!("labels() called on a path with `..` steps"),
            })
            .collect()
    }

    /// Convert a relative path to an absolute one against an absolute
    /// `base`. Returns `None` if `..` steps ascend above the root or if a
    /// `..` appears after a child step has been taken (not produced by this
    /// crate, but possible via `FromStr`).
    ///
    /// An absolute `self` is returned unchanged.
    pub fn to_absolute(&self, base: &Path) -> Option<Path> {
        if self.absolute {
            return Some(self.clone());
        }
        debug_assert!(base.absolute, "base must be absolute");
        let mut steps = base.steps.clone();
        for s in &self.steps {
            match s {
                Step::Parent => {
                    steps.pop()?;
                }
                Step::Child(l) => steps.push(Step::Child(l.clone())),
            }
        }
        Some(Path {
            absolute: true,
            steps,
        })
    }

    /// Express an absolute `self` relative to an absolute `base` (the pivot
    /// path), using leading `..` steps — the inverse of [`Path::to_absolute`].
    ///
    /// ```
    /// use xfd_xml::Path;
    /// let name: Path = "/w/state/store/contact/name".parse().unwrap();
    /// let book: Path = "/w/state/store/book".parse().unwrap();
    /// assert_eq!(name.relative_to(&book).to_string(), "../contact/name");
    /// ```
    pub fn relative_to(&self, base: &Path) -> Path {
        debug_assert!(self.absolute && base.absolute);
        let common = self
            .steps
            .iter()
            .zip(base.steps.iter())
            .take_while(|(a, b)| a == b)
            .count();
        let ups = base.steps.len() - common;
        let mut steps = vec![Step::Parent; ups];
        steps.extend(self.steps[common..].iter().cloned());
        Path {
            absolute: false,
            steps,
        }
    }

    /// Longest common prefix of two absolute paths.
    pub fn common_prefix(&self, other: &Path) -> Path {
        debug_assert!(self.absolute && other.absolute);
        let common = self
            .steps
            .iter()
            .zip(other.steps.iter())
            .take_while(|(a, b)| a == b)
            .count();
        Path {
            absolute: true,
            steps: self.steps[..common].to_vec(),
        }
    }

    /// Resolve an absolute path against a tree: all nodes `n` with
    /// `path(n) = self`. The root label must match the first step.
    pub fn resolve_all(&self, tree: &DataTree) -> Vec<NodeId> {
        debug_assert!(self.absolute, "resolve_all requires an absolute path");
        let mut labels = self.steps.iter().map(|s| match s {
            Step::Child(l) => l.as_str(),
            Step::Parent => unreachable!("absolute paths have no `..`"),
        });
        let Some(root_label) = labels.next() else {
            return Vec::new();
        };
        if tree.label(tree.root()) != root_label {
            return Vec::new();
        }
        let mut frontier = vec![tree.root()];
        for label in labels {
            let mut next = Vec::new();
            for n in frontier {
                next.extend(tree.children_labeled(n, label));
            }
            if next.is_empty() {
                return Vec::new();
            }
            frontier = next;
        }
        frontier
    }

    /// Resolve a relative path from a context node. Returns all matching
    /// nodes (a child step may match several siblings). An absolute `self`
    /// falls back to [`Path::resolve_all`].
    pub fn resolve_from(&self, tree: &DataTree, context: NodeId) -> Vec<NodeId> {
        if self.absolute {
            return self.resolve_all(tree);
        }
        let mut frontier = vec![context];
        for step in &self.steps {
            let mut next = Vec::new();
            for n in frontier {
                match step {
                    Step::Parent => {
                        if let Some(p) = tree.parent(n) {
                            next.push(p);
                        }
                    }
                    Step::Child(l) => next.extend(tree.children_labeled(n, l)),
                }
            }
            if next.is_empty() {
                return Vec::new();
            }
            next.dedup();
            frontier = next;
        }
        frontier
    }
}

impl fmt::Display for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.absolute {
            if self.steps.is_empty() {
                return write!(f, "/");
            }
            for s in &self.steps {
                match s {
                    Step::Child(l) => write!(f, "/{l}")?,
                    Step::Parent => write!(f, "/..")?,
                }
            }
            Ok(())
        } else {
            if self.steps.is_empty() {
                return write!(f, ".");
            }
            let parts: Vec<&str> = self
                .steps
                .iter()
                .map(|s| match s {
                    Step::Child(l) => l.as_str(),
                    Step::Parent => "..",
                })
                .collect();
            if matches!(self.steps[0], Step::Parent) {
                write!(f, "{}", parts.join("/"))
            } else {
                write!(f, "./{}", parts.join("/"))
            }
        }
    }
}

impl FromStr for Path {
    type Err = PathParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.is_empty() {
            return Err(PathParseError(s.to_string()));
        }
        if s == "." {
            return Ok(Path::self_path());
        }
        if s == "/" {
            return Ok(Path {
                absolute: true,
                steps: Vec::new(),
            });
        }
        let absolute = s.starts_with('/');
        let body = if absolute { &s[1..] } else { s };
        let mut steps = Vec::new();
        for (i, comp) in body.split('/').enumerate() {
            match comp {
                "" => return Err(PathParseError(s.to_string())),
                "." => {
                    // Only allowed as the leading component of a relative path.
                    if absolute || i != 0 {
                        return Err(PathParseError(s.to_string()));
                    }
                }
                ".." => {
                    if absolute {
                        return Err(PathParseError(s.to_string()));
                    }
                    if steps.iter().any(|st| matches!(st, Step::Child(_))) {
                        return Err(PathParseError(s.to_string()));
                    }
                    steps.push(Step::Parent);
                }
                label => steps.push(Step::Child(label.to_string())),
            }
        }
        Ok(Path { absolute, steps })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn p(s: &str) -> Path {
        s.parse().unwrap()
    }

    #[test]
    fn parse_and_display_roundtrip() {
        for s in [
            "/a/b/c",
            "/warehouse/state/store/book/@isbn",
            "./x",
            "./x/y",
            "../y",
            "../../z/w",
            ".",
        ] {
            assert_eq!(p(s).to_string(), s, "roundtrip of {s}");
        }
    }

    #[test]
    fn rejects_malformed_paths() {
        for s in ["", "//a", "a//b", "/a/../b", "./a/../b", "/."] {
            assert!(s.parse::<Path>().is_err(), "{s:?} should be rejected");
        }
    }

    #[test]
    fn plain_relative_paths_parse() {
        let path = p("a/b");
        assert!(!path.is_absolute());
        assert_eq!(path.len(), 2);
        assert_eq!(path.to_string(), "./a/b");
    }

    #[test]
    fn to_absolute_resolves_parent_steps() {
        let base = p("/warehouse/state/store/book");
        assert_eq!(
            p("./ISBN").to_absolute(&base).unwrap(),
            p("/warehouse/state/store/book/ISBN")
        );
        assert_eq!(
            p("../contact/name").to_absolute(&base).unwrap(),
            p("/warehouse/state/store/contact/name")
        );
        assert_eq!(
            p("../../name").to_absolute(&base).unwrap(),
            p("/warehouse/state/name")
        );
    }

    #[test]
    fn to_absolute_refuses_to_climb_past_root() {
        let base = p("/a");
        assert!(p("../../x").to_absolute(&base).is_none());
    }

    #[test]
    fn relative_to_inverts_to_absolute() {
        let base = p("/w/state/store/book");
        for abs in [
            "/w/state/store/book/ISBN",
            "/w/state/store/contact/name",
            "/w/state/name",
            "/w/state/store/book",
        ] {
            let rel = p(abs).relative_to(&base);
            assert_eq!(
                rel.to_absolute(&base).unwrap(),
                p(abs),
                "roundtrip of {abs}"
            );
        }
        assert_eq!(
            p("/w/state/store/book").relative_to(&base),
            Path::self_path()
        );
    }

    #[test]
    fn prefix_and_common_prefix() {
        let a = p("/x/y");
        let b = p("/x/y/z");
        assert!(a.is_prefix_of(&b));
        assert!(!b.is_prefix_of(&a));
        assert!(a.is_prefix_of(&a));
        assert_eq!(b.common_prefix(&p("/x/q")), p("/x"));
    }

    #[test]
    fn resolve_all_finds_every_match() {
        let t = parse("<a><b><c>1</c><c>2</c></b><b><c>3</c></b></a>").unwrap();
        assert_eq!(p("/a/b/c").resolve_all(&t).len(), 3);
        assert_eq!(p("/a/b").resolve_all(&t).len(), 2);
        assert_eq!(p("/a").resolve_all(&t).len(), 1);
        assert!(p("/z").resolve_all(&t).is_empty());
        assert!(p("/a/zzz").resolve_all(&t).is_empty());
    }

    #[test]
    fn resolve_from_supports_parent_steps() {
        let t = parse("<a><b><c>1</c></b><d>x</d></a>").unwrap();
        let c = p("/a/b/c").resolve_all(&t)[0];
        let found = p("../../d").resolve_from(&t, c);
        assert_eq!(found.len(), 1);
        assert_eq!(t.value(found[0]), Some("x"));
        assert_eq!(p(".").resolve_from(&t, c), vec![c]);
    }

    #[test]
    fn resolve_from_attribute_steps() {
        let t = parse(r#"<a><b id="7">v</b></a>"#).unwrap();
        let b = p("/a/b").resolve_all(&t)[0];
        let attr = p("./@id").resolve_from(&t, b);
        assert_eq!(t.value(attr[0]), Some("7"));
    }

    #[test]
    fn path_helpers() {
        let path = p("/a/b/c");
        assert_eq!(path.last_label(), Some("c"));
        assert_eq!(path.parent().unwrap(), p("/a/b"));
        assert_eq!(path.child("d"), p("/a/b/c/d"));
        assert_eq!(path.labels(), vec!["a", "b", "c"]);
    }
}
