//! Serialization of a [`DataTree`] back to XML text.
//!
//! Attribute nodes (labels starting with `@`) are emitted as XML attributes
//! of their parent; the synthetic `@text` node is emitted as leading text
//! content. Round-tripping `parse ∘ serialize` preserves the tree up to the
//! normalizations the parser applies (see `xfd_xml::parser`).

use crate::escape::{escape_attr, escape_text};
use crate::tree::{DataTree, NodeId};
use crate::TEXT_LABEL;

/// Serialization knobs.
#[derive(Debug, Clone, Copy)]
pub struct SerializeOptions {
    /// Pretty-print with two-space indentation (default `true`).
    pub indent: bool,
    /// Emit the `<?xml version="1.0"?>` declaration (default `false`).
    pub declaration: bool,
}

impl Default for SerializeOptions {
    fn default() -> Self {
        SerializeOptions {
            indent: true,
            declaration: false,
        }
    }
}

/// Serialize the whole tree to an XML string with default options.
pub fn to_xml_string(tree: &DataTree) -> String {
    to_xml_string_with(tree, SerializeOptions::default())
}

/// Serialize the whole tree with explicit options.
pub fn to_xml_string_with(tree: &DataTree, options: SerializeOptions) -> String {
    let mut out = String::new();
    if options.declaration {
        out.push_str("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n");
    }
    write_node(tree, tree.root(), 0, options.indent, &mut out);
    if options.indent {
        out.push('\n');
    }
    out
}

fn write_node(tree: &DataTree, node: NodeId, depth: usize, indent: bool, out: &mut String) {
    let pad = |out: &mut String, d: usize| {
        if indent {
            for _ in 0..d {
                out.push_str("  ");
            }
        }
    };
    pad(out, depth);
    let label = tree.label(node);
    debug_assert!(
        !label.starts_with('@'),
        "attribute nodes are emitted by their parent"
    );
    out.push('<');
    out.push_str(label);

    let mut text_value: Option<&str> = None;
    let mut element_children: Vec<NodeId> = Vec::new();
    for &c in tree.children(node) {
        let cl = tree.label(c);
        if cl == TEXT_LABEL {
            text_value = tree.value(c);
        } else if let Some(attr_name) = cl.strip_prefix('@') {
            out.push(' ');
            out.push_str(attr_name);
            out.push_str("=\"");
            out.push_str(&escape_attr(tree.value(c).unwrap_or("")));
            out.push('"');
        } else {
            element_children.push(c);
        }
    }

    let own_value = tree.value(node);
    if element_children.is_empty() && own_value.is_none() && text_value.is_none() {
        out.push_str("/>");
        return;
    }
    out.push('>');

    if let Some(v) = own_value {
        // A leaf with a value: inline, no indentation inside.
        out.push_str(&escape_text(v));
        out.push_str("</");
        out.push_str(label);
        out.push('>');
        return;
    }
    if let Some(v) = text_value {
        out.push_str(&escape_text(v));
    }
    if !element_children.is_empty() {
        for &c in &element_children {
            if indent {
                out.push('\n');
            }
            write_node(tree, c, depth + 1, indent, out);
        }
        if indent {
            out.push('\n');
            pad(out, depth);
        }
    }
    out.push_str("</");
    out.push_str(label);
    out.push('>');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value_eq::node_value_eq_cross;
    use crate::{parse, TreeBuilder};

    fn roundtrip_preserves(xml: &str) {
        let t1 = parse(xml).unwrap();
        let serialized = to_xml_string(&t1);
        let t2 = parse(&serialized).unwrap_or_else(|e| panic!("reparse of {serialized:?}: {e}"));
        assert!(
            node_value_eq_cross(&t1, t1.root(), &t2, t2.root()),
            "roundtrip changed the tree:\n{serialized}"
        );
    }

    #[test]
    fn roundtrip_simple() {
        roundtrip_preserves("<a><b>1</b><c x=\"2\">3</c></a>");
    }

    #[test]
    fn roundtrip_escapes() {
        roundtrip_preserves("<a><b>1 &lt; 2 &amp; 3</b><c x=\"a&quot;b\"/></a>");
    }

    #[test]
    fn roundtrip_empty_elements() {
        roundtrip_preserves("<a><b/><c></c></a>");
    }

    #[test]
    fn attrs_are_rendered_inline() {
        let t = TreeBuilder::new("a").attr("id", "7").finish();
        let s = to_xml_string_with(
            &t,
            SerializeOptions {
                indent: false,
                declaration: false,
            },
        );
        assert_eq!(s, "<a id=\"7\"/>");
    }

    #[test]
    fn text_child_is_rendered_as_content() {
        let t = parse(r#"<b x="1">hi</b>"#).unwrap();
        let s = to_xml_string_with(
            &t,
            SerializeOptions {
                indent: false,
                declaration: false,
            },
        );
        assert_eq!(s, "<b x=\"1\">hi</b>");
    }

    #[test]
    fn declaration_is_optional() {
        let t = TreeBuilder::new("a").finish();
        let s = to_xml_string_with(
            &t,
            SerializeOptions {
                indent: true,
                declaration: true,
            },
        );
        assert!(s.starts_with("<?xml"));
    }

    #[test]
    fn pretty_printing_indents_nested_elements() {
        let t = parse("<a><b><c>1</c></b></a>").unwrap();
        let s = to_xml_string(&t);
        assert!(s.contains("\n  <b>"), "{s}");
        assert!(s.contains("\n    <c>1</c>"), "{s}");
    }
}
