//! A hand-written XML tokenizer.
//!
//! Produces a flat stream of [`Token`]s (start tags with decoded attributes,
//! end tags, text runs, CDATA sections). Comments, processing instructions,
//! the XML declaration and DOCTYPE declarations (including an internal
//! subset) are recognized and skipped. The tokenizer tracks line/column
//! positions for error reporting.

use crate::error::{ParseError, ParseErrorKind, Position};
use crate::escape::{decode_entities, is_xml_char};

/// One lexical item of the document.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// `<name a="v" ...>` or `<name ... />`.
    StartTag {
        /// Element name.
        name: String,
        /// Attributes in document order, values entity-decoded.
        attrs: Vec<(String, String)>,
        /// True for `<name/>`.
        self_closing: bool,
        /// Position of the `<`.
        pos: Position,
    },
    /// `</name>`.
    EndTag {
        /// Element name.
        name: String,
        /// Position of the `<`.
        pos: Position,
    },
    /// A run of character data with entities decoded.
    Text {
        /// Decoded text.
        text: String,
        /// Position of the first character.
        pos: Position,
    },
    /// A `<![CDATA[...]]>` section (no entity decoding applies).
    CData {
        /// Literal contents.
        text: String,
        /// Position of the `<`.
        pos: Position,
    },
}

/// Streaming tokenizer over a UTF-8 input string.
pub struct Tokenizer<'a> {
    input: &'a str,
    bytes: &'a [u8],
    pos: Position,
}

impl<'a> Tokenizer<'a> {
    /// Create a tokenizer over `input`.
    pub fn new(input: &'a str) -> Self {
        Tokenizer {
            input,
            bytes: input.as_bytes(),
            pos: Position::start(),
        }
    }

    /// Current position (start of the next unread byte).
    pub fn position(&self) -> Position {
        self.pos
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos.offset).copied()
    }

    fn peek_at(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos.offset + ahead).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        // Byte-wise: self.pos.offset may sit mid-character while skipping
        // over multi-byte content (e.g. inside a processing instruction).
        self.bytes[self.pos.offset..].starts_with(s.as_bytes())
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos.offset += 1;
        if b == b'\n' {
            self.pos.line += 1;
            self.pos.column = 1;
        } else if b & 0xC0 != 0x80 {
            // Count one column per character, not per continuation byte.
            self.pos.column += 1;
        }
        Some(b)
    }

    fn advance(&mut self, n: usize) {
        for _ in 0..n {
            if self.bump().is_none() {
                break;
            }
        }
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.bump();
        }
    }

    fn err(&self, kind: ParseErrorKind) -> ParseError {
        ParseError::new(kind, self.pos)
    }

    fn err_at(&self, kind: ParseErrorKind, pos: Position) -> ParseError {
        ParseError::new(kind, pos)
    }

    /// Fetch the next token, or `None` at end of input. Whitespace-only text
    /// runs *are* emitted (the parser decides whether they are ignorable).
    pub fn next_token(&mut self) -> Result<Option<Token>, ParseError> {
        loop {
            if self.pos.offset >= self.bytes.len() {
                return Ok(None);
            }
            if self.peek() == Some(b'<') {
                if self.starts_with("<!--") {
                    self.skip_comment()?;
                    continue;
                }
                if self.starts_with("<![CDATA[") {
                    return Ok(Some(self.read_cdata()?));
                }
                if self.starts_with("<?") {
                    self.skip_pi()?;
                    continue;
                }
                if self.starts_with("<!DOCTYPE") || self.starts_with("<!doctype") {
                    self.skip_doctype()?;
                    continue;
                }
                if self.starts_with("</") {
                    return Ok(Some(self.read_end_tag()?));
                }
                if self.starts_with("<!") {
                    return Err(self.err(ParseErrorKind::MalformedMarkup(
                        "unsupported <! declaration",
                    )));
                }
                return Ok(Some(self.read_start_tag()?));
            }
            return Ok(Some(self.read_text()?));
        }
    }

    fn skip_comment(&mut self) -> Result<(), ParseError> {
        let start = self.pos;
        self.advance(4); // <!--
        loop {
            if self.starts_with("-->") {
                self.advance(3);
                return Ok(());
            }
            if self.starts_with("--") {
                return Err(self.err(ParseErrorKind::MalformedMarkup("`--` inside comment")));
            }
            if self.bump().is_none() {
                return Err(self.err_at(ParseErrorKind::UnexpectedEof("comment"), start));
            }
        }
    }

    fn skip_pi(&mut self) -> Result<(), ParseError> {
        let start = self.pos;
        self.advance(2); // <?
        loop {
            if self.starts_with("?>") {
                self.advance(2);
                return Ok(());
            }
            if self.bump().is_none() {
                return Err(self.err_at(
                    ParseErrorKind::UnexpectedEof("processing instruction"),
                    start,
                ));
            }
        }
    }

    fn skip_doctype(&mut self) -> Result<(), ParseError> {
        let start = self.pos;
        self.advance(9); // <!DOCTYPE
        let mut depth = 0usize; // for an internal subset [ ... ]
        loop {
            match self.peek() {
                Some(b'[') => {
                    depth += 1;
                    self.bump();
                }
                Some(b']') => {
                    depth = depth.saturating_sub(1);
                    self.bump();
                }
                Some(b'>') if depth == 0 => {
                    self.bump();
                    return Ok(());
                }
                Some(_) => {
                    self.bump();
                }
                None => return Err(self.err_at(ParseErrorKind::UnexpectedEof("DOCTYPE"), start)),
            }
        }
    }

    fn read_cdata(&mut self) -> Result<Token, ParseError> {
        let pos = self.pos;
        self.advance(9); // <![CDATA[
        let body_start = self.pos.offset;
        loop {
            if self.starts_with("]]>") {
                let text = self.input[body_start..self.pos.offset].to_string();
                self.advance(3);
                return Ok(Token::CData { text, pos });
            }
            if self.bump().is_none() {
                return Err(self.err_at(ParseErrorKind::UnexpectedEof("CDATA section"), pos));
            }
        }
    }

    fn read_text(&mut self) -> Result<Token, ParseError> {
        let pos = self.pos;
        let start = self.pos.offset;
        while let Some(b) = self.peek() {
            if b == b'<' {
                break;
            }
            self.bump();
        }
        let raw = &self.input[start..self.pos.offset];
        for c in raw.chars() {
            if !is_xml_char(c) {
                return Err(self.err_at(ParseErrorKind::IllegalCharacter(c as u32), pos));
            }
        }
        let text = decode_entities(raw, pos)?;
        Ok(Token::Text { text, pos })
    }

    fn read_name(&mut self) -> Result<String, ParseError> {
        let start = self.pos.offset;
        let pos = self.pos;
        while let Some(b) = self.peek() {
            let ok = matches!(b, b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'_' | b':' | b'-' | b'.')
                || b >= 0x80;
            if !ok {
                break;
            }
            self.bump();
        }
        let name = &self.input[start..self.pos.offset];
        if name.is_empty() || name.starts_with(|c: char| c.is_ascii_digit() || c == '-' || c == '.')
        {
            return Err(self.err_at(ParseErrorKind::InvalidName(name.to_string()), pos));
        }
        Ok(name.to_string())
    }

    fn read_start_tag(&mut self) -> Result<Token, ParseError> {
        let pos = self.pos;
        self.bump(); // <
        let name = self.read_name()?;
        let mut attrs: Vec<(String, String)> = Vec::new();
        loop {
            self.skip_whitespace();
            match self.peek() {
                Some(b'>') => {
                    self.bump();
                    return Ok(Token::StartTag {
                        name,
                        attrs,
                        self_closing: false,
                        pos,
                    });
                }
                Some(b'/') => {
                    if self.peek_at(1) == Some(b'>') {
                        self.advance(2);
                        return Ok(Token::StartTag {
                            name,
                            attrs,
                            self_closing: true,
                            pos,
                        });
                    }
                    return Err(self.err(ParseErrorKind::UnexpectedChar {
                        found: '/',
                        expected: "`>` after `/`",
                    }));
                }
                Some(_) => {
                    let (k, v) = self.read_attribute()?;
                    if attrs.iter().any(|(ek, _)| *ek == k) {
                        return Err(self.err(ParseErrorKind::DuplicateAttribute(k)));
                    }
                    attrs.push((k, v));
                }
                None => return Err(self.err_at(ParseErrorKind::UnexpectedEof("start tag"), pos)),
            }
        }
    }

    fn read_attribute(&mut self) -> Result<(String, String), ParseError> {
        let name = self.read_name()?;
        self.skip_whitespace();
        match self.peek() {
            Some(b'=') => {
                self.bump();
            }
            Some(b) => {
                return Err(self.err(ParseErrorKind::UnexpectedChar {
                    found: b as char,
                    expected: "`=` after attribute name",
                }))
            }
            None => return Err(self.err(ParseErrorKind::UnexpectedEof("attribute"))),
        }
        self.skip_whitespace();
        let quote = match self.peek() {
            Some(q @ (b'"' | b'\'')) => {
                self.bump();
                q
            }
            Some(b) => {
                return Err(self.err(ParseErrorKind::UnexpectedChar {
                    found: b as char,
                    expected: "quoted attribute value",
                }))
            }
            None => return Err(self.err(ParseErrorKind::UnexpectedEof("attribute value"))),
        };
        let vpos = self.pos;
        let start = self.pos.offset;
        loop {
            match self.peek() {
                Some(b) if b == quote => break,
                Some(b'<') => {
                    return Err(self.err(ParseErrorKind::UnexpectedChar {
                        found: '<',
                        expected: "attribute value content",
                    }))
                }
                Some(_) => {
                    self.bump();
                }
                None => {
                    return Err(self.err_at(ParseErrorKind::UnexpectedEof("attribute value"), vpos))
                }
            }
        }
        let raw = &self.input[start..self.pos.offset];
        self.bump(); // closing quote
        let value = decode_entities(raw, vpos)?;
        Ok((name, value))
    }

    fn read_end_tag(&mut self) -> Result<Token, ParseError> {
        let pos = self.pos;
        self.advance(2); // </
        let name = self.read_name()?;
        self.skip_whitespace();
        match self.peek() {
            Some(b'>') => {
                self.bump();
                Ok(Token::EndTag { name, pos })
            }
            Some(b) => Err(self.err(ParseErrorKind::UnexpectedChar {
                found: b as char,
                expected: "`>` in end tag",
            })),
            None => Err(self.err_at(ParseErrorKind::UnexpectedEof("end tag"), pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_tokens(s: &str) -> Vec<Token> {
        let mut t = Tokenizer::new(s);
        let mut out = Vec::new();
        while let Some(tok) = t.next_token().unwrap() {
            out.push(tok);
        }
        out
    }

    #[test]
    fn simple_element_with_text() {
        let toks = all_tokens("<a>hi</a>");
        assert_eq!(toks.len(), 3);
        assert!(matches!(&toks[0], Token::StartTag { name, .. } if name == "a"));
        assert!(matches!(&toks[1], Token::Text { text, .. } if text == "hi"));
        assert!(matches!(&toks[2], Token::EndTag { name, .. } if name == "a"));
    }

    #[test]
    fn attributes_are_decoded_in_order() {
        let toks = all_tokens(r#"<a x="1 &amp; 2" y='three'/>"#);
        match &toks[0] {
            Token::StartTag {
                attrs,
                self_closing,
                ..
            } => {
                assert!(*self_closing);
                assert_eq!(attrs[0], ("x".to_string(), "1 & 2".to_string()));
                assert_eq!(attrs[1], ("y".to_string(), "three".to_string()));
            }
            other => panic!("unexpected token {other:?}"),
        }
    }

    #[test]
    fn comments_pis_doctype_are_skipped() {
        let toks = all_tokens(
            "<?xml version=\"1.0\"?><!DOCTYPE a [ <!ELEMENT a EMPTY> ]><!-- hello --><a/>",
        );
        assert_eq!(toks.len(), 1);
    }

    #[test]
    fn cdata_is_literal() {
        let toks = all_tokens("<a><![CDATA[1 < 2 & so]]></a>");
        assert!(matches!(&toks[1], Token::CData { text, .. } if text == "1 < 2 & so"));
    }

    #[test]
    fn text_entities_are_decoded() {
        let toks = all_tokens("<a>&lt;tag&gt; &#65;</a>");
        assert!(matches!(&toks[1], Token::Text { text, .. } if text == "<tag> A"));
    }

    #[test]
    fn positions_track_lines_and_columns() {
        let mut t = Tokenizer::new("<a>\n  <b/>\n</a>");
        t.next_token().unwrap(); // <a>
        t.next_token().unwrap(); // text "\n  "
        match t.next_token().unwrap().unwrap() {
            Token::StartTag { pos, .. } => {
                assert_eq!(pos.line, 2);
                assert_eq!(pos.column, 3);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn duplicate_attribute_is_rejected() {
        let mut t = Tokenizer::new(r#"<a x="1" x="2"/>"#);
        let e = t.next_token().unwrap_err();
        assert_eq!(e.kind, ParseErrorKind::DuplicateAttribute("x".into()));
    }

    #[test]
    fn bad_comment_is_rejected() {
        let mut t = Tokenizer::new("<!-- a -- b --><a/>");
        assert!(t.next_token().is_err());
    }

    #[test]
    fn unterminated_constructs_are_eof_errors() {
        for src in [
            "<a",
            "<a x=",
            "<a x='1'",
            "</a",
            "<!-- x",
            "<![CDATA[x",
            "<?pi",
        ] {
            let mut t = Tokenizer::new(src);
            let mut res = Ok(None);
            for _ in 0..4 {
                res = t.next_token();
                if res.is_err() {
                    break;
                }
            }
            assert!(res.is_err(), "{src:?} should fail");
        }
    }

    #[test]
    fn unquoted_attribute_value_is_rejected() {
        let mut t = Tokenizer::new("<a x=1/>");
        assert!(t.next_token().is_err());
    }

    #[test]
    fn names_may_contain_unicode() {
        let toks = all_tokens("<caf\u{e9}/>");
        assert!(matches!(&toks[0], Token::StartTag { name, .. } if name == "caf\u{e9}"));
    }

    #[test]
    fn name_may_not_start_with_digit() {
        let mut t = Tokenizer::new("<1a/>");
        assert!(
            matches!(t.next_token(), Err(e) if matches!(e.kind, ParseErrorKind::InvalidName(_)))
        );
    }
}
