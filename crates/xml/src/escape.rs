//! Decoding of entity/character references and encoding for serialization.

use crate::error::{ParseError, ParseErrorKind, Position};

/// Decode the five predefined XML entities plus decimal/hexadecimal
/// character references in `raw`, returning the decoded text.
///
/// `at` is the position of the start of `raw` in the original input and is
/// used only for error reporting (errors inside `raw` are reported at the
/// start of the offending reference, with offsets adjusted).
pub fn decode_entities(raw: &str, at: Position) -> Result<String, ParseError> {
    if !raw.contains('&') {
        return Ok(raw.to_string());
    }
    let mut out = String::with_capacity(raw.len());
    let bytes = raw.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] != b'&' {
            // Copy a maximal run of non-'&' bytes at once.
            let start = i;
            while i < bytes.len() && bytes[i] != b'&' {
                i += 1;
            }
            out.push_str(&raw[start..i]);
            continue;
        }
        let semi = raw[i..]
            .find(';')
            .map(|k| i + k)
            .ok_or_else(|| err_at(ParseErrorKind::UnexpectedEof("entity reference"), at, i))?;
        let body = &raw[i + 1..semi];
        if let Some(num) = body.strip_prefix('#') {
            let cp = parse_char_reference(num)
                .ok_or_else(|| err_at(ParseErrorKind::BadCharReference(num.to_string()), at, i))?;
            let ch = char::from_u32(cp)
                .filter(|c| is_xml_char(*c))
                .ok_or_else(|| err_at(ParseErrorKind::IllegalCharacter(cp), at, i))?;
            out.push(ch);
        } else {
            match body {
                "amp" => out.push('&'),
                "lt" => out.push('<'),
                "gt" => out.push('>'),
                "apos" => out.push('\''),
                "quot" => out.push('"'),
                other => {
                    return Err(err_at(
                        ParseErrorKind::UnknownEntity(other.to_string()),
                        at,
                        i,
                    ))
                }
            }
        }
        i = semi + 1;
    }
    Ok(out)
}

fn parse_char_reference(body: &str) -> Option<u32> {
    if body.is_empty() {
        return None;
    }
    if let Some(hex) = body.strip_prefix('x').or_else(|| body.strip_prefix('X')) {
        u32::from_str_radix(hex, 16).ok()
    } else {
        body.parse::<u32>().ok()
    }
}

fn err_at(kind: ParseErrorKind, base: Position, extra: usize) -> ParseError {
    let mut p = base;
    p.offset += extra;
    // Line/column are kept at the start of the text chunk; good enough for
    // diagnostics without re-scanning for newlines.
    ParseError::new(kind, p)
}

/// Is `c` a character permitted by the XML 1.0 `Char` production?
pub fn is_xml_char(c: char) -> bool {
    matches!(c,
        '\u{9}' | '\u{A}' | '\u{D}'
        | '\u{20}'..='\u{D7FF}'
        | '\u{E000}'..='\u{FFFD}'
        | '\u{10000}'..='\u{10FFFF}')
}

/// Escape text content for serialization (`&`, `<`, `>`).
pub fn escape_text(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            _ => out.push(c),
        }
    }
    out
}

/// Escape an attribute value for serialization with double quotes.
pub fn escape_attr(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '"' => out.push_str("&quot;"),
            '\n' => out.push_str("&#10;"),
            '\t' => out.push_str("&#9;"),
            _ => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dec(s: &str) -> String {
        decode_entities(s, Position::start()).unwrap()
    }

    #[test]
    fn plain_text_is_unchanged_without_allocation_churn() {
        assert_eq!(dec("hello world"), "hello world");
    }

    #[test]
    fn predefined_entities_decode() {
        assert_eq!(
            dec("a &amp; b &lt; c &gt; d &apos;e&apos; &quot;f&quot;"),
            "a & b < c > d 'e' \"f\""
        );
    }

    #[test]
    fn decimal_and_hex_char_refs_decode() {
        assert_eq!(dec("&#65;&#x42;&#x63;"), "ABc");
        assert_eq!(dec("snowman &#9731;"), "snowman \u{2603}");
    }

    #[test]
    fn unknown_entity_is_an_error() {
        let e = decode_entities("&nbsp;", Position::start()).unwrap_err();
        assert_eq!(e.kind, ParseErrorKind::UnknownEntity("nbsp".into()));
    }

    #[test]
    fn unterminated_entity_is_an_error() {
        let e = decode_entities("x &amp y", Position::start()).unwrap_err();
        assert!(matches!(e.kind, ParseErrorKind::UnexpectedEof(_)));
    }

    #[test]
    fn illegal_char_reference_is_rejected() {
        assert!(decode_entities("&#0;", Position::start()).is_err());
        assert!(decode_entities("&#xD800;", Position::start()).is_err());
        assert!(decode_entities("&#xyz;", Position::start()).is_err());
        assert!(decode_entities("&#;", Position::start()).is_err());
    }

    #[test]
    fn escape_roundtrips_through_decode() {
        let original = "a & b < c > \"quoted\" 'apos'";
        assert_eq!(dec(&escape_text(original)), original);
        assert_eq!(dec(&escape_attr(original)), original);
    }

    #[test]
    fn error_offset_points_at_reference() {
        let e = decode_entities("abc&bogus;", Position::start()).unwrap_err();
        assert_eq!(e.position.offset, 3);
    }

    #[test]
    fn xml_char_classification() {
        assert!(is_xml_char('\t'));
        assert!(is_xml_char('\n'));
        assert!(is_xml_char('a'));
        assert!(is_xml_char('\u{10FFFF}'));
        assert!(!is_xml_char('\u{0}'));
        assert!(!is_xml_char('\u{B}'));
        assert!(!is_xml_char('\u{FFFE}'));
    }
}
