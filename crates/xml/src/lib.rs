#![warn(missing_docs)]
//! # xfd-xml
//!
//! XML substrate for the DiscoverXFD system (Yu & Jagadish, VLDB 2006):
//! a from-scratch XML parser, an arena-based data tree implementing the
//! paper's Definition 2 (*rooted labeled tree with node keys, parent-child
//! edges and value assignments*), XPath-style path expressions restricted to
//! the steps the paper uses (`/a/b`, `./x`, `../y`, `@attr`), and
//! node-value / path-value equality (Definitions 3 and 4) computed via
//! bottom-up hash-consing into equality classes.
//!
//! Design notes (mirroring Section 2.1 of the paper):
//!
//! * attributes and elements are treated uniformly; an attribute `a="v"` on
//!   element `e` becomes a child node of `e` labeled `@a` with value `v`;
//! * a mixed-content element with exactly one textual chunk stores that text
//!   under a distinct `@text` child; other textual chunks of mixed-content
//!   elements are ignored;
//! * element order among siblings is recorded (document order) but all value
//!   equality is *unordered* (multiset) equality, per Section 3.1 Remark 4.
//!
//! The crate has no dependencies and is usable on its own:
//!
//! ```
//! use xfd_xml::{parse, Path};
//! let tree = parse("<a><b x='1'>hi</b><b x='2'>ho</b></a>").unwrap();
//! // Nodes: a, b, @x, @text, b, @x, @text
//! assert_eq!(tree.node_count(), 7);
//! let p: Path = "/a/b/@x".parse().unwrap();
//! assert_eq!(p.resolve_all(&tree).len(), 2);
//! ```

pub mod builder;
pub mod error;
pub mod escape;
pub mod intern;
pub mod path;
pub mod query;
pub mod reader;
pub mod serialize;
pub mod stream;
pub mod tokenizer;
pub mod tree;
pub mod value_eq;

mod parser;

pub use builder::TreeBuilder;
pub use error::{ParseError, ParseErrorKind, Position};
pub use intern::{Interner, Symbol};
pub use parser::{parse, parse_with_options, ParseOptions};
pub use path::{Path, Step};
pub use query::Query;
pub use reader::{parse_reader, parse_reader_with_options, ReadError};
pub use serialize::{to_xml_string, to_xml_string_with, SerializeOptions};
pub use tree::{DataTree, NodeId, TreeStats};
pub use value_eq::{
    canonical_form, node_value_eq_cross, path_value_eq, preorder_of, CanonicalValue, ClassTable,
    EqClasses, OrderMode, ShapeExport, ValueClassId,
};

/// Label given to the synthetic child that stores the single textual chunk
/// of a mixed-content element (paper Section 2.1).
pub const TEXT_LABEL: &str = "@text";

/// Prefix that distinguishes attribute-derived nodes from element nodes.
pub const ATTR_PREFIX: char = '@';
