//! Document parser: turns a token stream into a [`DataTree`].
//!
//! The mapping from XML to the paper's data model (Section 2.1):
//!
//! * each element becomes a node labeled with its tag name;
//! * each attribute `a="v"` becomes a child node labeled `@a` with value `v`
//!   (attributes and elements are treated uniformly);
//! * an element with no children stores its (entity-decoded, optionally
//!   trimmed) text as its own simple value;
//! * a mixed-content element with exactly one non-whitespace textual chunk
//!   stores it under a synthesized `@text` child; with more than one chunk
//!   the text is ignored, following the paper.

use crate::error::{ParseError, ParseErrorKind, Position};
use crate::tokenizer::{Token, Tokenizer};
use crate::tree::{DataTree, NodeId};
use crate::TEXT_LABEL;

/// Knobs controlling XML → data-tree conversion.
#[derive(Debug, Clone, Copy)]
pub struct ParseOptions {
    /// Trim leading/trailing ASCII whitespace from leaf values and `@text`
    /// chunks (pretty-printed documents otherwise leak indentation into
    /// values). Default: `true`.
    pub trim_text: bool,
}

impl Default for ParseOptions {
    fn default() -> Self {
        ParseOptions { trim_text: true }
    }
}

/// Parse an XML document with default [`ParseOptions`].
pub fn parse(input: &str) -> Result<DataTree, ParseError> {
    parse_with_options(input, ParseOptions::default())
}

/// Parse an XML document with explicit options. A leading UTF-8 BOM is
/// skipped.
pub fn parse_with_options(input: &str, options: ParseOptions) -> Result<DataTree, ParseError> {
    let input = input.strip_prefix('\u{FEFF}').unwrap_or(input);
    let mut tokens = Tokenizer::new(input);
    let mut assembler = TreeAssembler::new(options);
    while let Some(tok) = tokens.next_token()? {
        assembler.push(tok)?;
    }
    assembler.finish(tokens.position())
}

struct OpenElement {
    node: NodeId,
    /// Non-whitespace text chunks seen directly under this element.
    text_chunks: Vec<String>,
    /// True once an element or attribute child exists.
    has_children: bool,
    pos: Position,
}

/// The token → data-tree state machine, shared by the in-memory parser and
/// the chunked [`crate::reader`] entry point: feed tokens with [`Self::push`]
/// (in document order, from any tokenization strategy), then [`Self::finish`].
pub(crate) struct TreeAssembler {
    options: ParseOptions,
    tree: Option<DataTree>,
    stack: Vec<OpenElement>,
    root_done: bool,
}

impl TreeAssembler {
    pub(crate) fn new(options: ParseOptions) -> Self {
        TreeAssembler {
            options,
            tree: None,
            stack: Vec::new(),
            root_done: false,
        }
    }

    /// Incorporate the next token.
    pub(crate) fn push(&mut self, tok: Token) -> Result<(), ParseError> {
        match tok {
            Token::StartTag {
                name,
                attrs,
                self_closing,
                pos,
            } => {
                self.open(&name, &attrs, pos)?;
                if self_closing {
                    self.close_top();
                }
            }
            Token::EndTag { name, pos } => {
                let top = self.stack.last().ok_or_else(|| {
                    ParseError::new(ParseErrorKind::UnmatchedCloseTag(name.clone()), pos)
                })?;
                let tree = self.tree.as_ref().expect("open element implies tree");
                let open_label = tree.label(top.node).to_string();
                if open_label != name {
                    return Err(ParseError::new(
                        ParseErrorKind::MismatchedTag {
                            open: open_label,
                            close: name,
                        },
                        pos,
                    ));
                }
                self.close_top();
            }
            Token::Text { text, pos } | Token::CData { text, pos } => {
                if self.stack.is_empty() {
                    if !text.trim().is_empty() {
                        return Err(ParseError::new(ParseErrorKind::TrailingContent, pos));
                    }
                    return Ok(());
                }
                if !text.trim().is_empty() {
                    let chunk = if self.options.trim_text {
                        text.trim().to_string()
                    } else {
                        text
                    };
                    self.stack
                        .last_mut()
                        .expect("non-empty stack")
                        .text_chunks
                        .push(chunk);
                }
            }
        }
        Ok(())
    }

    /// Consume the assembler at end of input (`end` positions EOF errors).
    pub(crate) fn finish(mut self, end: Position) -> Result<DataTree, ParseError> {
        if let Some(open) = self.stack.pop() {
            return Err(ParseError::new(
                ParseErrorKind::UnexpectedEof("document"),
                Position {
                    offset: end.offset,
                    ..open.pos
                },
            ));
        }
        self.tree
            .ok_or_else(|| ParseError::new(ParseErrorKind::NoRootElement, end))
    }

    fn open(
        &mut self,
        name: &str,
        attrs: &[(String, String)],
        pos: Position,
    ) -> Result<(), ParseError> {
        let node = match (&mut self.tree, self.stack.last()) {
            (None, _) => {
                if self.root_done {
                    return Err(ParseError::new(ParseErrorKind::TrailingContent, pos));
                }
                self.tree = Some(DataTree::with_root(name));
                self.tree.as_ref().expect("just created").root()
            }
            (Some(tree), Some(parent)) => tree.add_child(parent.node, name),
            (Some(_), None) => {
                // A second top-level element.
                return Err(ParseError::new(ParseErrorKind::TrailingContent, pos));
            }
        };
        let has_attrs = !attrs.is_empty();
        if let Some(tree) = &mut self.tree {
            for (k, v) in attrs {
                let a = tree.add_child(node, &format!("@{k}"));
                tree.set_value(a, v);
            }
        }
        if let Some(parent) = self.stack.last_mut() {
            parent.has_children = true;
        }
        self.stack.push(OpenElement {
            node,
            text_chunks: Vec::new(),
            has_children: has_attrs,
            pos,
        });
        Ok(())
    }

    fn close_top(&mut self) {
        let open = self
            .stack
            .pop()
            .expect("close_top requires an open element");
        let tree = self.tree.as_mut().expect("open element implies tree");
        if !open.text_chunks.is_empty() {
            if open.has_children {
                // Mixed content: keep a single textual chunk under @text,
                // ignore multiple chunks (paper Section 2.1).
                if open.text_chunks.len() == 1 {
                    let t = tree.add_child(open.node, TEXT_LABEL);
                    tree.set_value(t, &open.text_chunks[0]);
                }
            } else {
                let joined = open.text_chunks.join("");
                tree.set_value(open.node, &joined);
            }
        }
        if self.stack.is_empty() {
            self.root_done = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn leaf_text_becomes_node_value() {
        let t = parse("<a><b>hello</b></a>").unwrap();
        let b = t.child_labeled(t.root(), "b").unwrap();
        assert_eq!(t.value(b), Some("hello"));
    }

    #[test]
    fn attributes_become_at_children() {
        let t = parse(r#"<book isbn="1-111"><title>DBMS</title></book>"#).unwrap();
        let isbn = t.child_labeled(t.root(), "@isbn").unwrap();
        assert_eq!(t.value(isbn), Some("1-111"));
        assert!(t.is_attr(isbn));
    }

    #[test]
    fn mixed_content_single_chunk_goes_to_text_child() {
        let t = parse("<p>hello <b>world</b></p>").unwrap();
        let text = t.child_labeled(t.root(), "@text").unwrap();
        assert_eq!(t.value(text), Some("hello"));
    }

    #[test]
    fn mixed_content_multiple_chunks_are_ignored() {
        let t = parse("<p>one <b>x</b> two</p>").unwrap();
        assert!(t.child_labeled(t.root(), "@text").is_none());
    }

    #[test]
    fn element_with_attrs_and_text_stores_text_child() {
        // The element has (attribute) children, so its text cannot be its
        // own value; it goes under @text.
        let t = parse(r#"<b x="1">hi</b>"#).unwrap();
        assert_eq!(t.value(t.root()), None);
        let text = t.child_labeled(t.root(), "@text").unwrap();
        assert_eq!(t.value(text), Some("hi"));
    }

    #[test]
    fn whitespace_between_elements_is_ignored() {
        let t = parse("<a>\n  <b>1</b>\n  <c>2</c>\n</a>").unwrap();
        assert_eq!(t.children(t.root()).len(), 2);
        assert_eq!(t.value(t.root()), None);
    }

    #[test]
    fn leaf_values_are_trimmed_by_default() {
        let t = parse("<a>\n   59.99\n</a>").unwrap();
        assert_eq!(t.value(t.root()), Some("59.99"));
    }

    #[test]
    fn trimming_can_be_disabled() {
        let t = parse_with_options("<a> x </a>", ParseOptions { trim_text: false }).unwrap();
        assert_eq!(t.value(t.root()), Some(" x "));
    }

    #[test]
    fn cdata_contributes_text() {
        let t = parse("<a><![CDATA[1 < 2]]></a>").unwrap();
        assert_eq!(t.value(t.root()), Some("1 < 2"));
    }

    #[test]
    fn mismatched_tags_error() {
        let e = parse("<a><b></a></b>").unwrap_err();
        assert!(matches!(e.kind, ParseErrorKind::MismatchedTag { .. }));
    }

    #[test]
    fn unmatched_close_errors() {
        let e = parse("</a>").unwrap_err();
        assert!(matches!(e.kind, ParseErrorKind::UnmatchedCloseTag(_)));
    }

    #[test]
    fn unclosed_element_errors() {
        let e = parse("<a><b>").unwrap_err();
        assert!(matches!(e.kind, ParseErrorKind::UnexpectedEof(_)));
    }

    #[test]
    fn empty_document_errors() {
        assert!(matches!(
            parse("").unwrap_err().kind,
            ParseErrorKind::NoRootElement
        ));
        assert!(matches!(
            parse("  <!-- c -->  ").unwrap_err().kind,
            ParseErrorKind::NoRootElement
        ));
    }

    #[test]
    fn two_roots_error() {
        let e = parse("<a/><b/>").unwrap_err();
        assert!(matches!(e.kind, ParseErrorKind::TrailingContent));
    }

    #[test]
    fn trailing_text_errors() {
        let e = parse("<a/>junk").unwrap_err();
        assert!(matches!(e.kind, ParseErrorKind::TrailingContent));
    }

    #[test]
    fn self_closing_elements_nest_properly() {
        let t = parse("<a><b/><c><d/></c></a>").unwrap();
        assert_eq!(t.children(t.root()).len(), 2);
        let c = t.child_labeled(t.root(), "c").unwrap();
        assert_eq!(t.children(c).len(), 1);
    }

    #[test]
    fn node_keys_follow_document_order() {
        let t = parse("<a><b>1</b><c><d>2</d></c></a>").unwrap();
        // a=0, b=1, c=2, d=3 in document order.
        assert_eq!(t.label(crate::NodeId(0)), "a");
        assert_eq!(t.label(crate::NodeId(1)), "b");
        assert_eq!(t.label(crate::NodeId(2)), "c");
        assert_eq!(t.label(crate::NodeId(3)), "d");
    }

    #[test]
    fn split_text_around_comment_joins_for_leaves() {
        let t = parse("<a>one<!-- c -->two</a>").unwrap();
        assert_eq!(t.value(t.root()), Some("onetwo"));
    }

    #[test]
    fn utf8_bom_is_skipped() {
        let t = parse("\u{FEFF}<a>x</a>").unwrap();
        assert_eq!(t.value(t.root()), Some("x"));
    }
}
