//! XPath-lite queries: a practical superset of the paper's path
//! expressions for interactive exploration (the CLI's `select`).
//!
//! Supported grammar (a small XPath subset):
//!
//! ```text
//! query     := '/' step ( '/' step | '//' step )*  |  '//' step ( ... )*
//! step      := nametest predicate*
//! nametest  := name | '@' name | '*'
//! predicate := '[' number ']'                       positional (1-based)
//!            | '[' relpath ']'                      existence
//!            | '[' relpath '=' '\'' value '\'' ']'  value equality
//! relpath   := name ( '/' name )*                   (may start with '@')
//! ```
//!
//! Examples: `/site//item[category='books']/name`, `//book[@id='7']`,
//! `/w/state/store/book[2]`, `/w//store[contact/name='Borders']/*`.

use std::fmt;
use std::str::FromStr;

use crate::tree::{DataTree, NodeId};

/// Name test of one step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NameTest {
    /// A specific label (attributes keep their `@`).
    Label(String),
    /// `*` — any element (labels not starting with `@`).
    Any,
}

impl NameTest {
    fn matches(&self, label: &str) -> bool {
        match self {
            NameTest::Label(l) => l == label,
            NameTest::Any => !label.starts_with('@'),
        }
    }
}

/// Axis of one step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Axis {
    /// `/step` — direct children.
    Child,
    /// `//step` — any strict descendant.
    Descendant,
}

/// One predicate `[...]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Predicate {
    /// `\[3\]` — keep the n-th match (1-based, per context node).
    Position(usize),
    /// `[a/b]` — keep nodes with at least one match of the relative path.
    Exists(Vec<String>),
    /// `[a/b='v']` — keep nodes where some match of the path has value `v`.
    ValueEq(Vec<String>, String),
}

/// One step of a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryStep {
    /// Child or descendant axis.
    pub axis: Axis,
    /// The name test.
    pub test: NameTest,
    /// Predicates, applied in order.
    pub predicates: Vec<Predicate>,
}

/// A parsed query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Query {
    steps: Vec<QueryStep>,
}

/// Query parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryParseError(pub String);

impl fmt::Display for QueryParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid query: {}", self.0)
    }
}

impl std::error::Error for QueryParseError {}

impl FromStr for Query {
    type Err = QueryParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || QueryParseError(s.to_string());
        if !s.starts_with('/') {
            return Err(err());
        }
        let mut steps = Vec::new();
        let mut rest = s;
        while !rest.is_empty() {
            let axis = if let Some(r) = rest.strip_prefix("//") {
                rest = r;
                Axis::Descendant
            } else if let Some(r) = rest.strip_prefix('/') {
                rest = r;
                Axis::Child
            } else {
                return Err(err());
            };
            // Name test: up to '[', '/', or end.
            let name_end = rest.find(['[', '/']).unwrap_or(rest.len());
            let name = &rest[..name_end];
            if name.is_empty() {
                return Err(err());
            }
            let test = if name == "*" {
                NameTest::Any
            } else {
                NameTest::Label(name.to_string())
            };
            rest = &rest[name_end..];
            // Predicates.
            let mut predicates = Vec::new();
            while let Some(r) = rest.strip_prefix('[') {
                let close = r.find(']').ok_or_else(err)?;
                let body = &r[..close];
                rest = &r[close + 1..];
                predicates.push(parse_predicate(body).ok_or_else(err)?);
            }
            steps.push(QueryStep {
                axis,
                test,
                predicates,
            });
        }
        if steps.is_empty() {
            return Err(err());
        }
        Ok(Query { steps })
    }
}

fn parse_predicate(body: &str) -> Option<Predicate> {
    let body = body.trim();
    if body.is_empty() {
        return None;
    }
    if let Ok(n) = body.parse::<usize>() {
        return if n >= 1 {
            Some(Predicate::Position(n))
        } else {
            None
        };
    }
    if let Some(eq) = body.find('=') {
        let path = parse_relpath(body[..eq].trim())?;
        let value = body[eq + 1..].trim();
        let value = value.strip_prefix('\'')?.strip_suffix('\'')?;
        return Some(Predicate::ValueEq(path, value.to_string()));
    }
    Some(Predicate::Exists(parse_relpath(body)?))
}

fn parse_relpath(s: &str) -> Option<Vec<String>> {
    if s.is_empty() {
        return None;
    }
    let parts: Vec<String> = s.split('/').map(str::to_string).collect();
    if parts.iter().any(String::is_empty) {
        return None;
    }
    Some(parts)
}

impl Query {
    /// Evaluate against a tree; results in document order, deduplicated.
    pub fn select(&self, tree: &DataTree) -> Vec<NodeId> {
        // Virtual context above the root, so `/root` matches the root.
        let mut context: Vec<NodeId> = vec![];
        for (i, step) in self.steps.iter().enumerate() {
            let mut next: Vec<NodeId> = Vec::new();
            if i == 0 {
                // From the virtual document node.
                match step.axis {
                    Axis::Child => {
                        if step.test.matches(tree.label(tree.root())) {
                            next.push(tree.root());
                        }
                    }
                    Axis::Descendant => {
                        for n in tree.descendants(tree.root()) {
                            if step.test.matches(tree.label(n)) {
                                next.push(n);
                            }
                        }
                    }
                }
                next = apply_predicates(tree, &next, &step.predicates);
            } else {
                for &ctx in &context {
                    let candidates: Vec<NodeId> = match step.axis {
                        Axis::Child => tree
                            .children(ctx)
                            .iter()
                            .copied()
                            .filter(|&c| step.test.matches(tree.label(c)))
                            .collect(),
                        Axis::Descendant => tree
                            .descendants(ctx)
                            .skip(1)
                            .filter(|&c| step.test.matches(tree.label(c)))
                            .collect(),
                    };
                    next.extend(apply_predicates(tree, &candidates, &step.predicates));
                }
            }
            next.sort_unstable();
            next.dedup();
            context = next;
            if context.is_empty() {
                break;
            }
        }
        context
    }
}

fn apply_predicates(tree: &DataTree, nodes: &[NodeId], preds: &[Predicate]) -> Vec<NodeId> {
    let mut current: Vec<NodeId> = nodes.to_vec();
    for p in preds {
        current = match p {
            Predicate::Position(n) => current.iter().copied().skip(n - 1).take(1).collect(),
            Predicate::Exists(path) => current
                .into_iter()
                .filter(|&n| !resolve_rel(tree, n, path).is_empty())
                .collect(),
            Predicate::ValueEq(path, value) => current
                .into_iter()
                .filter(|&n| {
                    resolve_rel(tree, n, path)
                        .iter()
                        .any(|&m| tree.value(m) == Some(value.as_str()))
                })
                .collect(),
        };
    }
    current
}

fn resolve_rel(tree: &DataTree, node: NodeId, path: &[String]) -> Vec<NodeId> {
    let mut frontier = vec![node];
    for label in path {
        let mut next = Vec::new();
        for n in frontier {
            next.extend(tree.children_labeled(n, label));
        }
        frontier = next;
        if frontier.is_empty() {
            break;
        }
    }
    frontier
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn doc() -> DataTree {
        parse(
            "<w>\
             <store id='s1'><name>Borders</name>\
               <book><isbn>1</isbn><title>A</title></book>\
               <book><isbn>2</isbn><title>B</title></book></store>\
             <store id='s2'><name>WHSmith</name>\
               <book><isbn>1</isbn><title>A</title></book></store>\
             </w>",
        )
        .unwrap()
    }

    fn q(s: &str) -> Query {
        s.parse().unwrap()
    }

    #[test]
    fn absolute_child_paths() {
        let t = doc();
        assert_eq!(q("/w/store/book").select(&t).len(), 3);
        assert_eq!(q("/w/store").select(&t).len(), 2);
        assert_eq!(q("/nope").select(&t).len(), 0);
    }

    #[test]
    fn descendant_axis_finds_at_any_depth() {
        let t = doc();
        assert_eq!(q("//book").select(&t).len(), 3);
        assert_eq!(q("//isbn").select(&t).len(), 3);
        assert_eq!(q("/w//title").select(&t).len(), 3);
        assert_eq!(q("//store//isbn").select(&t).len(), 3);
    }

    #[test]
    fn wildcard_matches_elements_not_attributes() {
        let t = doc();
        let all = q("/w/store/*").select(&t);
        // name + 3 books (not @id).
        assert_eq!(all.len(), 5);
        assert!(all.iter().all(|&n| !t.is_attr(n)));
    }

    #[test]
    fn value_predicates_filter() {
        let t = doc();
        assert_eq!(q("/w/store[name='Borders']/book").select(&t).len(), 2);
        assert_eq!(q("//book[isbn='1']").select(&t).len(), 2);
        assert_eq!(q("//book[isbn='1']/title").select(&t).len(), 2);
        assert_eq!(q("//store[@id='s2']/book").select(&t).len(), 1);
        assert_eq!(q("//book[isbn='9']").select(&t).len(), 0);
    }

    #[test]
    fn existence_predicates_filter() {
        let t = doc();
        assert_eq!(q("//store[name]").select(&t).len(), 2);
        assert_eq!(q("//book[price]").select(&t).len(), 0);
        assert_eq!(q("//store[book/isbn]").select(&t).len(), 2);
    }

    #[test]
    fn positional_predicates_are_per_context() {
        let t = doc();
        // Second book *within each store*: store 1 has one, store 2 none.
        let second = q("/w/store/book[2]").select(&t);
        assert_eq!(second.len(), 1);
        assert_eq!(
            t.value(t.child_labeled(second[0], "isbn").unwrap()),
            Some("2")
        );
        // First book per store: two stores → two nodes.
        assert_eq!(q("/w/store/book[1]").select(&t).len(), 2);
    }

    #[test]
    fn chained_predicates() {
        let t = doc();
        assert_eq!(
            q("/w/store[name='Borders']/book[isbn='2']")
                .select(&t)
                .len(),
            1
        );
        // Positional predicates count per *context node*; a leading `//`
        // step has the document as its single context, so [1] is global
        // there (an intentional divergence from full XPath).
        assert_eq!(q("//book[isbn='1'][1]").select(&t).len(), 1);
        assert_eq!(
            q("/w/store/book[isbn='1'][1]").select(&t).len(),
            2,
            "per-store"
        );
    }

    #[test]
    fn attribute_steps_select_attribute_nodes() {
        let t = doc();
        let ids = q("/w/store/@id").select(&t);
        assert_eq!(ids.len(), 2);
        assert!(ids.iter().all(|&n| t.is_attr(n)));
    }

    #[test]
    fn malformed_queries_are_rejected() {
        for s in [
            "",
            "w/store",
            "/",
            "//",
            "/w/[x]",
            "/w/store[",
            "/w/store[]",
            "/w/store[0]",
            "/w/store[name=Borders]",
        ] {
            assert!(s.parse::<Query>().is_err(), "{s:?} should fail");
        }
    }

    #[test]
    fn results_are_document_ordered_and_unique() {
        let t = doc();
        // `//store//isbn` and `//isbn` both visit each node once.
        let a = q("//store//isbn").select(&t);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(a, sorted);
    }
}
