//! Streaming (SAX-style) processing: well-formedness validation and
//! document statistics without materializing a tree.
//!
//! Large data-centric documents (the paper targets multi-hundred-MB
//! scientific databases) can be sanity-checked in O(depth) memory before
//! committing to a full parse. [`validate`] runs the tokenizer with a tag
//! stack only; [`StreamStats`] reports what a parse would produce.

use crate::error::{ParseError, ParseErrorKind, Position};
use crate::tokenizer::{Token, Tokenizer};

/// Statistics gathered by a streaming validation pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StreamStats {
    /// Number of elements.
    pub elements: usize,
    /// Number of attributes.
    pub attributes: usize,
    /// Number of non-whitespace text runs (including CDATA).
    pub text_runs: usize,
    /// Maximum element nesting depth.
    pub max_depth: usize,
    /// Total decoded text bytes.
    pub text_bytes: usize,
}

/// Validate well-formedness in one streaming pass; returns statistics.
pub fn validate(input: &str) -> Result<StreamStats, ParseError> {
    let mut tokens = Tokenizer::new(input);
    let mut stack: Vec<String> = Vec::new();
    let mut stats = StreamStats::default();
    let mut seen_root = false;
    let mut last_pos = Position::start();
    while let Some(tok) = tokens.next_token()? {
        match tok {
            Token::StartTag {
                name,
                attrs,
                self_closing,
                pos,
            } => {
                if stack.is_empty() && seen_root {
                    return Err(ParseError::new(ParseErrorKind::TrailingContent, pos));
                }
                seen_root = true;
                stats.elements += 1;
                stats.attributes += attrs.len();
                if !self_closing {
                    stack.push(name);
                    stats.max_depth = stats.max_depth.max(stack.len());
                } else {
                    stats.max_depth = stats.max_depth.max(stack.len() + 1);
                }
                last_pos = pos;
            }
            Token::EndTag { name, pos } => {
                match stack.pop() {
                    Some(open) if open == name => {}
                    Some(open) => {
                        return Err(ParseError::new(
                            ParseErrorKind::MismatchedTag { open, close: name },
                            pos,
                        ))
                    }
                    None => {
                        return Err(ParseError::new(
                            ParseErrorKind::UnmatchedCloseTag(name),
                            pos,
                        ))
                    }
                }
                last_pos = pos;
            }
            Token::Text { text, pos } | Token::CData { text, pos } => {
                if !text.trim().is_empty() {
                    if stack.is_empty() {
                        return Err(ParseError::new(ParseErrorKind::TrailingContent, pos));
                    }
                    stats.text_runs += 1;
                    stats.text_bytes += text.len();
                }
                last_pos = pos;
            }
        }
    }
    if let Some(open) = stack.pop() {
        let _ = open;
        return Err(ParseError::new(
            ParseErrorKind::UnexpectedEof("document"),
            last_pos,
        ));
    }
    if !seen_root {
        return Err(ParseError::new(
            ParseErrorKind::NoRootElement,
            tokens.position(),
        ));
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_match_a_small_document() {
        let stats = validate("<a x='1'><b>text</b><c/><c/></a>").unwrap();
        assert_eq!(stats.elements, 4);
        assert_eq!(stats.attributes, 1);
        assert_eq!(stats.text_runs, 1);
        assert_eq!(stats.max_depth, 2);
        assert_eq!(stats.text_bytes, 4);
    }

    #[test]
    fn rejects_what_the_parser_rejects() {
        for bad in ["<a><b></a></b>", "</a>", "<a>", "", "<a/><b/>", "<a/>junk"] {
            assert!(validate(bad).is_err(), "{bad:?}");
            assert!(crate::parse(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn accepts_what_the_parser_accepts() {
        for good in [
            "<a/>",
            "<a><!-- c --><b>1</b></a>",
            "<?xml version='1.0'?><a><![CDATA[x]]></a>",
        ] {
            assert!(validate(good).is_ok(), "{good:?}");
            assert!(crate::parse(good).is_ok(), "{good:?}");
        }
    }

    #[test]
    fn element_count_matches_tree_parse() {
        let xml = "<r><a>1</a><b x='2'><c/></b></r>";
        let stats = validate(xml).unwrap();
        let tree = crate::parse(xml).unwrap();
        // Tree nodes = elements + attribute nodes.
        assert_eq!(stats.elements + stats.attributes, tree.node_count());
    }
}
