//! Parse-error types with precise source positions.

use std::fmt;

/// A position in the source text, tracked by the tokenizer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Position {
    /// 0-based byte offset into the input.
    pub offset: usize,
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number (in bytes within the line).
    pub column: u32,
}

impl Position {
    /// The start-of-input position.
    pub fn start() -> Self {
        Position {
            offset: 0,
            line: 1,
            column: 1,
        }
    }
}

impl fmt::Display for Position {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.column)
    }
}

/// What went wrong while parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseErrorKind {
    /// Input ended in the middle of a construct.
    UnexpectedEof(&'static str),
    /// A character that cannot appear here.
    UnexpectedChar {
        /// The character encountered.
        found: char,
        /// What the grammar expected instead.
        expected: &'static str,
    },
    /// `</b>` closed `<a>`.
    MismatchedTag {
        /// Label of the open element.
        open: String,
        /// Label in the close tag.
        close: String,
    },
    /// An end tag with no matching open tag.
    UnmatchedCloseTag(String),
    /// Content after the document element, or multiple roots.
    TrailingContent,
    /// The document contains no element at all.
    NoRootElement,
    /// An attribute appears twice on one element.
    DuplicateAttribute(String),
    /// `&foo;` where `foo` is not a predefined or character entity.
    UnknownEntity(String),
    /// A malformed `&#...;` character reference.
    BadCharReference(String),
    /// A name (element/attribute) that is empty or starts illegally.
    InvalidName(String),
    /// Invalid UTF-8 or an illegal XML character.
    IllegalCharacter(u32),
    /// A comment containing `--`, an unterminated CDATA section, etc.
    MalformedMarkup(&'static str),
}

impl fmt::Display for ParseErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use ParseErrorKind::*;
        match self {
            UnexpectedEof(what) => write!(f, "unexpected end of input while reading {what}"),
            UnexpectedChar { found, expected } => {
                write!(f, "unexpected character {found:?}, expected {expected}")
            }
            MismatchedTag { open, close } => {
                write!(f, "mismatched tags: <{open}> closed by </{close}>")
            }
            UnmatchedCloseTag(name) => write!(f, "close tag </{name}> has no matching open tag"),
            TrailingContent => write!(f, "content after the document element"),
            NoRootElement => write!(f, "document has no root element"),
            DuplicateAttribute(name) => write!(f, "duplicate attribute {name:?}"),
            UnknownEntity(name) => write!(f, "unknown entity &{name};"),
            BadCharReference(body) => write!(f, "malformed character reference &#{body};"),
            InvalidName(name) => write!(f, "invalid XML name {name:?}"),
            IllegalCharacter(cp) => write!(f, "illegal character U+{cp:04X}"),
            MalformedMarkup(what) => write!(f, "malformed markup: {what}"),
        }
    }
}

/// A parse error: a kind plus the position where it was detected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// The classified cause.
    pub kind: ParseErrorKind,
    /// Where in the input the problem was found.
    pub position: Position,
}

impl ParseError {
    /// Construct an error at a position.
    pub fn new(kind: ParseErrorKind, position: Position) -> Self {
        ParseError { kind, position }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XML parse error at {}: {}", self.position, self.kind)
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position_and_kind() {
        let e = ParseError::new(
            ParseErrorKind::MismatchedTag {
                open: "a".into(),
                close: "b".into(),
            },
            Position {
                offset: 10,
                line: 2,
                column: 5,
            },
        );
        let s = e.to_string();
        assert!(s.contains("2:5"), "{s}");
        assert!(s.contains("<a>"), "{s}");
        assert!(s.contains("</b>"), "{s}");
    }

    #[test]
    fn position_default_is_zeroed_but_start_is_one_based() {
        assert_eq!(Position::start().line, 1);
        assert_eq!(Position::start().column, 1);
        assert_eq!(Position::start().offset, 0);
    }

    #[test]
    fn kind_messages_are_specific() {
        let cases: Vec<(ParseErrorKind, &str)> = vec![
            (ParseErrorKind::UnexpectedEof("a tag"), "end of input"),
            (
                ParseErrorKind::TrailingContent,
                "after the document element",
            ),
            (ParseErrorKind::NoRootElement, "no root element"),
            (
                ParseErrorKind::DuplicateAttribute("id".into()),
                "duplicate attribute",
            ),
            (ParseErrorKind::UnknownEntity("nbsp".into()), "&nbsp;"),
            (ParseErrorKind::IllegalCharacter(0x0), "U+0000"),
        ];
        for (kind, needle) in cases {
            let msg = kind.to_string();
            assert!(msg.contains(needle), "{msg} should contain {needle}");
        }
    }
}
