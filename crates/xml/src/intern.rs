//! A compact string interner for element/attribute labels.
//!
//! Labels repeat massively in data-centric XML (every `book` element shares
//! the label `book`), so the tree stores a `Symbol` (u32) per node and the
//! interner owns each distinct string exactly once.

use xfd_hash::FxHashMap;

/// An interned label. Cheap to copy, hash and compare; resolves to a `&str`
/// through the [`Interner`] that produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(pub u32);

impl Symbol {
    /// The raw index of this symbol within its interner.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Owns distinct label strings and hands out [`Symbol`]s for them.
#[derive(Debug, Default, Clone)]
pub struct Interner {
    // Label lookups dominate tree construction; the deterministic
    // multiply-rotate hasher halves their cost vs. SipHash.
    map: FxHashMap<Box<str>, Symbol>,
    strings: Vec<Box<str>>,
}

impl Interner {
    /// Create an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `s`, returning its (possibly pre-existing) symbol.
    pub fn intern(&mut self, s: &str) -> Symbol {
        if let Some(&sym) = self.map.get(s) {
            return sym;
        }
        let sym = Symbol(self.strings.len() as u32);
        let boxed: Box<str> = s.into();
        self.strings.push(boxed.clone());
        self.map.insert(boxed, sym);
        sym
    }

    /// Look up a symbol without interning. Returns `None` if `s` was never
    /// interned.
    pub fn get(&self, s: &str) -> Option<Symbol> {
        self.map.get(s).copied()
    }

    /// Resolve a symbol back to its string.
    ///
    /// # Panics
    /// Panics if `sym` did not come from this interner.
    pub fn resolve(&self, sym: Symbol) -> &str {
        &self.strings[sym.index()]
    }

    /// Number of distinct strings interned.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// True if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Iterate over `(Symbol, &str)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, &str)> {
        self.strings
            .iter()
            .enumerate()
            .map(|(i, s)| (Symbol(i as u32), &**s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("book");
        let b = i.intern("book");
        assert_eq!(a, b);
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn distinct_strings_get_distinct_symbols() {
        let mut i = Interner::new();
        let a = i.intern("book");
        let b = i.intern("author");
        assert_ne!(a, b);
        assert_eq!(i.resolve(a), "book");
        assert_eq!(i.resolve(b), "author");
    }

    #[test]
    fn get_does_not_intern() {
        let mut i = Interner::new();
        assert!(i.get("x").is_none());
        let s = i.intern("x");
        assert_eq!(i.get("x"), Some(s));
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn iter_yields_in_order() {
        let mut i = Interner::new();
        i.intern("a");
        i.intern("b");
        let all: Vec<_> = i.iter().map(|(s, v)| (s.0, v.to_string())).collect();
        assert_eq!(all, vec![(0, "a".to_string()), (1, "b".to_string())]);
    }
}
