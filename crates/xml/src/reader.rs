//! Reader-based streaming parse: build a [`DataTree`] from any
//! [`std::io::Read`] without buffering the whole document.
//!
//! [`parse_reader`] pulls fixed-size chunks, tokenizes every *complete*
//! token in the accumulated tail and feeds it to the same token → tree
//! state machine the in-memory parser uses, so the result is identical to
//! `parse(&whole_input)` byte for byte. Memory held at any moment is
//! O(chunk + largest single token + tree built so far) — the raw document
//! text is never resident at once. This is what lets the HTTP serving mode
//! parse request bodies straight off the socket.
//!
//! A token is *complete* when the tokenizer consumed it without reaching
//! the end of the accumulated buffer (tags are self-delimiting; a text run
//! touching the buffer end may continue in the next chunk, so it is held
//! back until more input arrives or EOF proves it finished). Tokenizer
//! errors while more input remains are treated as "need more data" and
//! retried — a truncated `&amp;` or `<![CDATA[` only fails once EOF makes
//! the truncation real.

use std::io::Read;

use crate::error::{ParseError, ParseErrorKind, Position};
use crate::parser::{ParseOptions, TreeAssembler};
use crate::tokenizer::{Token, Tokenizer};
use crate::tree::DataTree;

/// Bytes requested from the reader per refill.
const CHUNK: usize = 64 * 1024;

/// Failure of a streaming parse: the transport broke, or the XML is bad.
#[derive(Debug)]
pub enum ReadError {
    /// The underlying reader failed.
    Io(std::io::Error),
    /// The document is not well-formed XML (positions are absolute within
    /// the stream).
    Parse(ParseError),
}

impl std::fmt::Display for ReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadError::Io(e) => write!(f, "read error: {e}"),
            ReadError::Parse(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ReadError {}

impl From<ParseError> for ReadError {
    fn from(e: ParseError) -> Self {
        ReadError::Parse(e)
    }
}

impl From<std::io::Error> for ReadError {
    fn from(e: std::io::Error) -> Self {
        ReadError::Io(e)
    }
}

/// Parse a document from a reader with default [`ParseOptions`].
pub fn parse_reader<R: Read>(reader: R) -> Result<DataTree, ReadError> {
    parse_reader_with_options(reader, ParseOptions::default())
}

/// Parse a document from a reader with explicit options. A leading UTF-8
/// BOM is skipped, matching [`crate::parse`].
pub fn parse_reader_with_options<R: Read>(
    mut reader: R,
    options: ParseOptions,
) -> Result<DataTree, ReadError> {
    let mut assembler = TreeAssembler::new(options);
    // Unconsumed, valid-UTF-8 input; `base` is the absolute position of
    // `buf[0]` in the stream, used to rebase token/error positions.
    let mut buf = String::new();
    let mut base = Position::start();
    // Bytes read but not yet validated as UTF-8 (a multi-byte character
    // may straddle a chunk boundary).
    let mut pending: Vec<u8> = Vec::new();
    let mut chunk = vec![0u8; CHUNK];
    let mut at_start = true;
    let mut eof = false;

    loop {
        if !eof {
            let n = read_retrying(&mut reader, &mut chunk)?;
            if n == 0 {
                eof = true;
                if !pending.is_empty() {
                    // The stream ended inside a multi-byte character.
                    return Err(illegal_utf8(&buf, base).into());
                }
            } else {
                pending.extend_from_slice(&chunk[..n]);
                append_valid_utf8(&mut buf, &mut pending, base)?;
                if at_start && !buf.is_empty() {
                    if let Some(rest) = buf.strip_prefix('\u{FEFF}') {
                        buf = rest.to_string();
                    }
                    at_start = false;
                }
            }
        }

        let mut tokens = Tokenizer::new(&buf);
        let mut consumed = 0usize;
        let mut finished = false;
        loop {
            match tokens.next_token() {
                Ok(Some(tok)) => {
                    let after = tokens.position().offset;
                    if !eof && after >= buf.len() && matches!(tok, Token::Text { .. }) {
                        // The run may continue in the next chunk; emitting
                        // it now could split one text run into two.
                        break;
                    }
                    assembler.push(rebase_token(tok, base))?;
                    consumed = after;
                }
                Ok(None) => {
                    finished = true;
                    break;
                }
                Err(e) => {
                    if eof {
                        return Err(ReadError::Parse(rebase_error(e, base)));
                    }
                    // Possibly a token truncated at the buffer end; fetch
                    // more input and retry from the last complete token.
                    break;
                }
            }
        }

        if consumed > 0 {
            base = advance_position(base, &buf[..consumed]);
            buf.drain(..consumed);
        }
        if eof && finished {
            return Ok(assembler.finish(advance_position(base, &buf))?);
        }
        // !eof: fetch more input. (At EOF the inner loop always either
        // finishes cleanly or returns the tokenizer's error.)
    }
}

/// `read` with `Interrupted` retries.
fn read_retrying<R: Read>(reader: &mut R, chunk: &mut [u8]) -> std::io::Result<usize> {
    loop {
        match reader.read(chunk) {
            Ok(n) => return Ok(n),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
}

/// Move the longest valid-UTF-8 prefix of `pending` onto `buf`; keep an
/// (at most 3-byte) incomplete trailing character for the next chunk.
fn append_valid_utf8(
    buf: &mut String,
    pending: &mut Vec<u8>,
    base: Position,
) -> Result<(), ParseError> {
    match std::str::from_utf8(pending) {
        Ok(s) => {
            buf.push_str(s);
            pending.clear();
            Ok(())
        }
        Err(e) => {
            let valid = e.valid_up_to();
            buf.push_str(std::str::from_utf8(&pending[..valid]).expect("validated prefix"));
            if e.error_len().is_some() {
                // Genuinely invalid bytes, not a split character.
                return Err(illegal_utf8(buf, base));
            }
            pending.drain(..valid);
            Ok(())
        }
    }
}

fn illegal_utf8(buf: &str, base: Position) -> ParseError {
    ParseError::new(
        ParseErrorKind::IllegalCharacter(0xFFFD),
        advance_position(base, buf),
    )
}

/// Position of `base + consumed` (tokenizer convention: lines split on
/// `\n`, columns count characters, not continuation bytes).
fn advance_position(mut base: Position, consumed: &str) -> Position {
    base.offset += consumed.len();
    for &b in consumed.as_bytes() {
        if b == b'\n' {
            base.line += 1;
            base.column = 1;
        } else if b & 0xC0 != 0x80 {
            base.column += 1;
        }
    }
    base
}

/// Translate a buffer-relative position to a stream-absolute one.
fn rebase(pos: Position, base: Position) -> Position {
    Position {
        offset: base.offset + pos.offset,
        line: base.line + pos.line - 1,
        column: if pos.line == 1 {
            base.column + pos.column - 1
        } else {
            pos.column
        },
    }
}

fn rebase_token(tok: Token, base: Position) -> Token {
    match tok {
        Token::StartTag {
            name,
            attrs,
            self_closing,
            pos,
        } => Token::StartTag {
            name,
            attrs,
            self_closing,
            pos: rebase(pos, base),
        },
        Token::EndTag { name, pos } => Token::EndTag {
            name,
            pos: rebase(pos, base),
        },
        Token::Text { text, pos } => Token::Text {
            text,
            pos: rebase(pos, base),
        },
        Token::CData { text, pos } => Token::CData {
            text,
            pos: rebase(pos, base),
        },
    }
}

fn rebase_error(mut e: ParseError, base: Position) -> ParseError {
    e.position = rebase(e.position, base);
    e
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    /// A reader delivering at most `step` bytes per `read` call — forces
    /// every possible token split.
    struct Trickle<'a> {
        data: &'a [u8],
        at: usize,
        step: usize,
    }

    impl Read for Trickle<'_> {
        fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
            let n = self.step.min(out.len()).min(self.data.len() - self.at);
            out[..n].copy_from_slice(&self.data[self.at..self.at + n]);
            self.at += n;
            Ok(n)
        }
    }

    const CORPUS: &[&str] = &[
        "<a/>",
        "<a>hi</a>",
        "<a x='1' y=\"two\"><b>text</b><c/><c/></a>",
        "<w><book><i>1</i><t>A&amp;B</t></book><book><i>2</i></book></w>",
        "<a>\n  multi\n  line\n</a>",
        "<?xml version='1.0'?><!-- c --><a><![CDATA[1 < 2]]></a>",
        "<p>hello <b>world</b></p>",
        "<caf\u{e9}>\u{e9}l\u{e9}ment</caf\u{e9}>",
        "\u{FEFF}<a>bom</a>",
        "<r><s>  padded  </s><t>a&#65;b</t></r>",
    ];

    #[test]
    fn equivalent_to_in_memory_parse_at_every_split() {
        for xml in CORPUS {
            let whole = parse(xml).unwrap();
            for step in [1, 2, 3, 5, 7, 64 * 1024] {
                let streamed = parse_reader(Trickle {
                    data: xml.as_bytes(),
                    at: 0,
                    step,
                })
                .unwrap_or_else(|e| panic!("step {step} on {xml:?}: {e}"));
                assert_eq!(
                    crate::to_xml_string(&streamed),
                    crate::to_xml_string(&whole),
                    "step {step} on {xml:?}"
                );
            }
        }
    }

    #[test]
    fn errors_match_in_memory_parse() {
        for bad in [
            "<a><b></a></b>",
            "</a>",
            "<a>",
            "",
            "<a/><b/>",
            "<a/>junk",
            "<a>&bogus;</a>",
            "<!-- never closed",
        ] {
            for step in [1, 3, 4096] {
                let streamed = parse_reader(Trickle {
                    data: bad.as_bytes(),
                    at: 0,
                    step,
                });
                assert!(streamed.is_err(), "step {step} accepted {bad:?}");
                assert!(parse(bad).is_err(), "{bad:?}");
            }
        }
    }

    #[test]
    fn error_positions_are_stream_absolute() {
        // The mismatched close tag sits on line 3.
        let bad = "<a>\n<b>x</b>\n</wrong>";
        let err = match parse_reader(Trickle {
            data: bad.as_bytes(),
            at: 0,
            step: 2,
        }) {
            Err(ReadError::Parse(e)) => e,
            other => panic!("expected parse error, got {other:?}"),
        };
        let whole = parse(bad).unwrap_err();
        assert_eq!(err.position, whole.position);
        assert_eq!(err.position.line, 3);
    }

    #[test]
    fn split_multibyte_characters_reassemble() {
        let xml = "<a>\u{1F600}\u{1F680}</a>"; // 4-byte scalars
        for step in 1..6 {
            let t = parse_reader(Trickle {
                data: xml.as_bytes(),
                at: 0,
                step,
            })
            .unwrap();
            assert_eq!(t.value(t.root()), Some("\u{1F600}\u{1F680}"));
        }
    }

    #[test]
    fn invalid_utf8_is_rejected() {
        let bytes: &[u8] = b"<a>\xFF\xFE</a>";
        let res = parse_reader(Trickle {
            data: bytes,
            at: 0,
            step: 1,
        });
        assert!(matches!(res, Err(ReadError::Parse(_))), "{res:?}");
    }

    #[test]
    fn truncated_multibyte_at_eof_is_rejected() {
        let bytes: &[u8] = b"<a>caf\xC3"; // é missing its continuation byte
        let res = parse_reader(Trickle {
            data: bytes,
            at: 0,
            step: 3,
        });
        assert!(res.is_err());
    }

    #[test]
    fn io_errors_propagate() {
        struct Failing;
        impl Read for Failing {
            fn read(&mut self, _: &mut [u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("boom"))
            }
        }
        assert!(matches!(parse_reader(Failing), Err(ReadError::Io(_))));
    }

    #[test]
    fn large_document_streams() {
        let mut xml = String::from("<r>");
        for i in 0..2_000 {
            xml.push_str(&format!("<b><i>{}</i><t>title {}</t></b>", i % 97, i % 97));
        }
        xml.push_str("</r>");
        let streamed = parse_reader(Trickle {
            data: xml.as_bytes(),
            at: 0,
            step: 1713, // prime, lands splits everywhere
        })
        .unwrap();
        assert_eq!(
            crate::to_xml_string(&streamed),
            crate::to_xml_string(&parse(&xml).unwrap())
        );
    }
}
