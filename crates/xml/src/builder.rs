//! A fluent builder for constructing [`DataTree`]s programmatically.
//!
//! Used heavily by the workload generators, which build trees directly
//! instead of round-tripping through XML text.

use crate::tree::{DataTree, NodeId};

/// Builds a [`DataTree`] with an open/close element discipline.
///
/// ```
/// use xfd_xml::TreeBuilder;
/// let tree = TreeBuilder::new("warehouse")
///     .open("state")
///     .leaf("name", "WA")
///     .open("store")
///     .attr("id", "s1")
///     .leaf("book", "DBMS")
///     .close()
///     .close()
///     .finish();
/// assert_eq!(tree.node_count(), 6);
/// ```
#[derive(Debug)]
pub struct TreeBuilder {
    tree: DataTree,
    stack: Vec<NodeId>,
}

impl TreeBuilder {
    /// Start a tree whose root is labeled `root_label`; the root is the
    /// initially-open element.
    pub fn new(root_label: &str) -> Self {
        let tree = DataTree::with_root(root_label);
        let root = tree.root();
        TreeBuilder {
            tree,
            stack: vec![root],
        }
    }

    fn current(&self) -> NodeId {
        *self
            .stack
            .last()
            .expect("builder stack never empties before finish()")
    }

    /// Open a child element of the current element; it becomes current.
    pub fn open(mut self, label: &str) -> Self {
        let cur = self.current();
        let id = self.tree.add_child(cur, label);
        self.stack.push(id);
        self
    }

    /// Close the current element, returning to its parent.
    ///
    /// # Panics
    /// Panics if only the root is open (the root is closed by `finish`).
    pub fn close(mut self) -> Self {
        assert!(self.stack.len() > 1, "cannot close the root; call finish()");
        self.stack.pop();
        self
    }

    /// Add an attribute `@name = value` to the current element.
    pub fn attr(mut self, name: &str, value: &str) -> Self {
        let cur = self.current();
        let id = self.tree.add_child(cur, &format!("@{name}"));
        self.tree.set_value(id, value);
        self
    }

    /// Add a leaf child element with a simple value.
    pub fn leaf(mut self, label: &str, value: &str) -> Self {
        let cur = self.current();
        let id = self.tree.add_child(cur, label);
        self.tree.set_value(id, value);
        self
    }

    /// Add an empty child element (no value, no children).
    pub fn empty(mut self, label: &str) -> Self {
        let cur = self.current();
        self.tree.add_child(cur, label);
        self
    }

    /// Set the simple value of the *current* element (only meaningful if it
    /// will have no children).
    pub fn value(mut self, value: &str) -> Self {
        let cur = self.current();
        self.tree.set_value(cur, value);
        self
    }

    /// Id of the element currently open (for callers that need to record
    /// positions while building).
    pub fn current_id(&self) -> NodeId {
        self.current()
    }

    /// Finish building; all open elements are implicitly closed.
    pub fn finish(self) -> DataTree {
        self.tree
    }
}

/// Mutable-reference variant of the builder API, convenient inside loops.
///
/// ```
/// use xfd_xml::builder::TreeWriter;
/// let mut w = TreeWriter::new("dblp");
/// for i in 0..3 {
///     w.open("article");
///     w.leaf("title", &format!("Paper {i}"));
///     w.close();
/// }
/// let tree = w.finish();
/// assert_eq!(tree.children(tree.root()).len(), 3);
/// ```
#[derive(Debug)]
pub struct TreeWriter {
    tree: DataTree,
    stack: Vec<NodeId>,
}

impl TreeWriter {
    /// Start a tree rooted at `root_label`.
    pub fn new(root_label: &str) -> Self {
        let tree = DataTree::with_root(root_label);
        let root = tree.root();
        TreeWriter {
            tree,
            stack: vec![root],
        }
    }

    fn current(&self) -> NodeId {
        *self
            .stack
            .last()
            .expect("writer stack never empties before finish()")
    }

    /// Open a child element; returns its id.
    pub fn open(&mut self, label: &str) -> NodeId {
        let cur = self.current();
        let id = self.tree.add_child(cur, label);
        self.stack.push(id);
        id
    }

    /// Close the current element.
    pub fn close(&mut self) {
        assert!(self.stack.len() > 1, "cannot close the root; call finish()");
        self.stack.pop();
    }

    /// Add `@name = value` to the current element.
    pub fn attr(&mut self, name: &str, value: &str) {
        let cur = self.current();
        let id = self.tree.add_child(cur, &format!("@{name}"));
        self.tree.set_value(id, value);
    }

    /// Add a leaf child with a value; returns its id.
    pub fn leaf(&mut self, label: &str, value: &str) -> NodeId {
        let cur = self.current();
        let id = self.tree.add_child(cur, label);
        self.tree.set_value(id, value);
        id
    }

    /// Add an empty child element; returns its id.
    pub fn empty(&mut self, label: &str) -> NodeId {
        let cur = self.current();
        self.tree.add_child(cur, label)
    }

    /// Deep-copy the subtree rooted at `node` of `src` as a child of the
    /// current element (labels, values, attribute children — everything).
    pub fn copy_subtree(&mut self, src: &DataTree, node: NodeId) {
        self.copy_filtered(src, node, &mut |_| true);
    }

    /// Like [`TreeWriter::copy_subtree`] but skipping any node (and its
    /// subtree) for which `keep` returns false.
    pub fn copy_filtered(
        &mut self,
        src: &DataTree,
        node: NodeId,
        keep: &mut dyn FnMut(NodeId) -> bool,
    ) {
        if !keep(node) {
            return;
        }
        let label = src.label(node).to_string();
        if src.children(node).is_empty() {
            let id = self.empty(&label);
            if let Some(v) = src.value(node) {
                self.tree.set_value(id, v);
            }
        } else {
            self.open(&label);
            if let Some(v) = src.value(node) {
                let cur = self.current();
                self.tree.set_value(cur, v);
            }
            for &c in src.children(node) {
                self.copy_filtered(src, c, keep);
            }
            self.close();
        }
    }

    /// Finish building.
    pub fn finish(self) -> DataTree {
        self.tree
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_matches_manual_construction() {
        let built = TreeBuilder::new("a")
            .open("b")
            .leaf("c", "1")
            .close()
            .finish();
        let mut manual = DataTree::with_root("a");
        let b = manual.add_child(manual.root(), "b");
        let c = manual.add_child(b, "c");
        manual.set_value(c, "1");
        assert_eq!(built.node_count(), manual.node_count());
        for n in built.all_nodes() {
            assert_eq!(built.label(n), manual.label(n));
            assert_eq!(built.value(n), manual.value(n));
        }
    }

    #[test]
    fn attrs_get_at_prefix() {
        let t = TreeBuilder::new("a").attr("id", "7").finish();
        let attr = t.children(t.root())[0];
        assert_eq!(t.label(attr), "@id");
        assert_eq!(t.value(attr), Some("7"));
    }

    #[test]
    fn finish_closes_open_elements() {
        let t = TreeBuilder::new("a").open("b").open("c").finish();
        assert_eq!(t.node_count(), 3);
    }

    #[test]
    #[should_panic(expected = "cannot close the root")]
    fn closing_root_panics() {
        let _ = TreeBuilder::new("a").close();
    }

    #[test]
    fn copy_subtree_is_value_equal() {
        let src = crate::parse("<a><b x='1'>hi</b><c><d>2</d></c></a>").unwrap();
        let mut w = TreeWriter::new("root");
        w.copy_subtree(&src, src.root());
        let copied = w.finish();
        let a = copied.children(copied.root())[0];
        assert!(crate::node_value_eq_cross(&src, src.root(), &copied, a));
    }

    #[test]
    fn copy_filtered_drops_subtrees() {
        let src = crate::parse("<a><b>1</b><c>2</c><b>3</b></a>").unwrap();
        let mut w = TreeWriter::new("root");
        w.copy_filtered(&src, src.root(), &mut |n| src.label(n) != "c");
        let copied = w.finish();
        let a = copied.children(copied.root())[0];
        assert_eq!(copied.children(a).len(), 2);
        assert!(copied.child_labeled(a, "c").is_none());
    }

    #[test]
    fn writer_supports_loops() {
        let mut w = TreeWriter::new("r");
        for i in 0..5 {
            w.open("item");
            w.attr("n", &i.to_string());
            w.close();
        }
        let t = w.finish();
        assert_eq!(t.children(t.root()).len(), 5);
    }
}
