//! Schema-refinement suggestions — the application the paper's
//! introduction motivates ("discovery of redundancies … will provide the
//! critical first step for analyzing and refining such schemas").
//!
//! Following the XNF decomposition idea (Arenas & Libkin, which Definition
//! 11 generalizes): for every redundancy-indicating FD `(C_p, LHS, RHS)`,
//! the RHS data can be moved out of `C_p` into a new element keyed by the
//! LHS, storing each `LHS → RHS` association exactly once. Suggestions
//! sharing `(C_p, LHS)` are merged (one new element can absorb several
//! determined paths).

use std::collections::BTreeMap;
use std::fmt;

use xfd_xml::Path;

use crate::redundancy::Redundancy;

/// One refinement suggestion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suggestion {
    /// The tuple class holding redundant data.
    pub tuple_class: Path,
    /// Paths (relative to the pivot) that become the key of the extracted
    /// element.
    pub key_paths: Vec<Path>,
    /// Paths whose values move into the extracted element.
    pub moved_paths: Vec<Path>,
    /// Total redundant values this extraction eliminates.
    pub redundant_values: usize,
}

impl fmt::Display for Suggestion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let keys: Vec<String> = self.key_paths.iter().map(Path::to_string).collect();
        let moved: Vec<String> = self.moved_paths.iter().map(Path::to_string).collect();
        write!(
            f,
            "extract from C_{}: new element keyed by {{{}}} holding {{{}}} (saves {} redundant values)",
            crate::fd::class_name(&self.tuple_class),
            keys.join(", "),
            moved.join(", "),
            self.redundant_values
        )
    }
}

/// Derive merged suggestions from the redundancy findings.
pub fn suggest(redundancies: &[Redundancy]) -> Vec<Suggestion> {
    // Group by (tuple class, LHS path set).
    let mut groups: BTreeMap<(String, Vec<String>), Suggestion> = BTreeMap::new();
    for r in redundancies {
        let mut lhs_strs: Vec<String> = r.fd.lhs.iter().map(Path::to_string).collect();
        lhs_strs.sort();
        let key = (r.fd.tuple_class.to_string(), lhs_strs);
        let entry = groups.entry(key).or_insert_with(|| Suggestion {
            tuple_class: r.fd.tuple_class.clone(),
            key_paths: {
                let mut k = r.fd.lhs.clone();
                k.sort();
                k
            },
            moved_paths: Vec::new(),
            redundant_values: 0,
        });
        if !entry.moved_paths.contains(&r.fd.rhs) {
            entry.moved_paths.push(r.fd.rhs.clone());
            entry.redundant_values += r.redundant_values;
        }
    }
    let mut out: Vec<Suggestion> = groups.into_values().collect();
    // Largest savings first.
    out.sort_by_key(|s| std::cmp::Reverse(s.redundant_values));
    out
}

/// Why a suggestion could not be applied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ApplyError {
    /// The suggestion involves paths outside the pivot's subtree (an
    /// inter-relation LHS like `../contact/name`); the executor only
    /// handles local decompositions.
    NonLocalPath(Path),
    /// The tuple-class path matches no node.
    NoSuchClass(Path),
}

impl fmt::Display for ApplyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ApplyError::NonLocalPath(p) => {
                write!(f, "cannot apply: path {p} reaches outside the tuple class")
            }
            ApplyError::NoSuchClass(p) => write!(f, "tuple class {p} matches no node"),
        }
    }
}

impl std::error::Error for ApplyError {}

/// Apply a decomposition suggestion to the data (XNF-style): the moved
/// elements are deleted from every instance of the tuple class whose key
/// paths are all present, and one `<label>_info` element per distinct key
/// value is appended under the document root, holding the key elements and
/// one copy of the moved elements. Instances with a ⊥ key keep their data
/// in place (nothing determines it).
pub fn apply(
    tree: &xfd_xml::DataTree,
    suggestion: &Suggestion,
) -> Result<xfd_xml::DataTree, ApplyError> {
    use std::collections::{HashMap, HashSet};
    use xfd_xml::builder::TreeWriter;
    use xfd_xml::{canonical_form, CanonicalValue, NodeId};

    for p in suggestion.key_paths.iter().chain(&suggestion.moved_paths) {
        if p.steps().iter().any(|s| matches!(s, xfd_xml::Step::Parent)) {
            return Err(ApplyError::NonLocalPath(p.clone()));
        }
    }
    let pivots = suggestion.tuple_class.resolve_all(tree);
    if pivots.is_empty() {
        return Err(ApplyError::NoSuchClass(suggestion.tuple_class.clone()));
    }
    let label = suggestion
        .tuple_class
        .last_label()
        .expect("tuple classes end in a labeled element");

    // Group pivot instances by the canonical value of their key paths.
    let mut groups: HashMap<Vec<CanonicalValue>, Vec<NodeId>> = HashMap::new();
    for &pivot in &pivots {
        let mut sig: Vec<CanonicalValue> = Vec::new();
        let mut complete = true;
        for kp in &suggestion.key_paths {
            let mut matched: Vec<CanonicalValue> = kp
                .resolve_from(tree, pivot)
                .iter()
                .map(|&n| canonical_form(tree, n))
                .collect();
            if matched.is_empty() {
                complete = false;
                break;
            }
            matched.sort();
            sig.extend(matched);
        }
        if complete {
            groups.entry(sig).or_default().push(pivot);
        }
    }

    // Nodes to drop: moved elements of every grouped instance.
    let mut dropped: HashSet<NodeId> = HashSet::new();
    for members in groups.values() {
        for &pivot in members {
            for mp in &suggestion.moved_paths {
                dropped.extend(mp.resolve_from(tree, pivot));
            }
        }
    }

    // Rebuild: copy everything except dropped nodes, then append the
    // extracted elements under the root.
    let mut w = TreeWriter::new(tree.label(tree.root()));
    if let Some(v) = tree.value(tree.root()) {
        // Value-carrying roots cannot also have children in our model, but
        // preserve it defensively.
        let _ = v;
    }
    for &c in tree.children(tree.root()) {
        w.copy_filtered(tree, c, &mut |n| !dropped.contains(&n));
    }
    let info_label = format!("{label}_info");
    let mut reps: Vec<(&Vec<CanonicalValue>, NodeId)> = groups
        .iter()
        .map(|(sig, members)| (sig, members[0]))
        .collect();
    reps.sort_by_key(|(_, rep)| *rep); // deterministic document order
    for (_, rep) in reps {
        w.open(&info_label);
        for p in suggestion.key_paths.iter().chain(&suggestion.moved_paths) {
            for n in p.resolve_from(tree, rep) {
                w.copy_subtree(tree, n);
            }
        }
        w.close();
    }
    Ok(w.finish())
}

/// XNF status of a document w.r.t. its discovered constraints.
///
/// Following the XML Normal Form of Arenas & Libkin (which Definition 11
/// generalizes): the data witnesses an XNF violation exactly when some
/// satisfied interesting FD's LHS fails to be an XML Key — i.e. when the
/// report carries redundancies. `violations` lists the offending FDs.
#[derive(Debug, Clone)]
pub struct XnfReport {
    /// True when no interesting FD indicates redundancy.
    pub is_xnf: bool,
    /// The FDs whose LHS is not a key (one per redundancy finding).
    pub violations: Vec<crate::fd::Xfd>,
}

/// Assess XNF from a discovery report.
pub fn xnf_report(report: &crate::driver::DiscoveryReport) -> XnfReport {
    let violations: Vec<crate::fd::Xfd> =
        report.redundancies.iter().map(|r| r.fd.clone()).collect();
    XnfReport {
        is_xnf: violations.is_empty(),
        violations,
    }
}

/// One round of [`normalize_fully`].
#[derive(Debug)]
pub struct NormalizeRound {
    /// The suggestion applied this round.
    pub applied: Suggestion,
    /// Total redundant values before the round.
    pub redundant_before: usize,
    /// Total redundant values after the round.
    pub redundant_after: usize,
}

/// Iteratively normalize: discover redundancies, apply the highest-saving
/// *local* suggestion, repeat until no applicable redundancy remains or
/// `max_rounds` is hit. Returns the restructured document and a log of
/// rounds. Suggestions with inter-relation LHSs are skipped (the executor
/// only handles local decompositions) and rounds that fail to reduce the
/// redundancy count stop the loop (guaranteeing termination).
pub fn normalize_fully(
    tree: &xfd_xml::DataTree,
    config: &crate::config::DiscoveryConfig,
    max_rounds: usize,
) -> (xfd_xml::DataTree, Vec<NormalizeRound>) {
    let mut current = tree.clone();
    let mut rounds = Vec::new();
    for _ in 0..max_rounds {
        let report = crate::driver::discover(&current, config);
        let before: usize = report.redundancies.iter().map(|r| r.redundant_values).sum();
        if before == 0 {
            break;
        }
        let suggestions = suggest(&report.redundancies);
        let Some((applied, next)) = suggestions
            .iter()
            .find_map(|s| apply(&current, s).ok().map(|t| (s.clone(), t)))
        else {
            break; // only inter-relation suggestions remain
        };
        let after_report = crate::driver::discover(&next, config);
        let after: usize = after_report
            .redundancies
            .iter()
            .map(|r| r.redundant_values)
            .sum();
        if after >= before {
            break; // no progress; avoid oscillation
        }
        rounds.push(NormalizeRound {
            applied,
            redundant_before: before,
            redundant_after: after,
        });
        current = next;
    }
    (current, rounds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DiscoveryConfig;
    use crate::driver::discover;
    use xfd_xml::parse;

    #[test]
    fn merges_rhs_paths_per_lhs() {
        let t = parse(
            "<w>\
             <book><isbn>1</isbn><title>A</title><year>99</year></book>\
             <book><isbn>1</isbn><title>A</title><year>99</year></book>\
             <book><isbn>2</isbn><title>B</title><year>01</year></book>\
             </w>",
        )
        .unwrap();
        let report = discover(&t, &DiscoveryConfig::default());
        let suggestions = suggest(&report.redundancies);
        let isbn_sugg = suggestions
            .iter()
            .find(|s| s.key_paths.iter().any(|p| p.to_string() == "./isbn"))
            .expect("suggestion keyed by isbn");
        // title and year both move into the extracted element.
        let moved: Vec<String> = isbn_sugg.moved_paths.iter().map(Path::to_string).collect();
        assert!(moved.contains(&"./title".to_string()), "{moved:?}");
        assert!(moved.contains(&"./year".to_string()), "{moved:?}");
        assert!(isbn_sugg.redundant_values >= 2);
    }

    #[test]
    fn suggestions_sorted_by_savings() {
        let t = parse(
            "<w>\
             <book><isbn>1</isbn><title>A</title></book>\
             <book><isbn>1</isbn><title>A</title></book>\
             <book><isbn>1</isbn><title>A</title></book>\
             <book><isbn>2</isbn><title>B</title></book>\
             </w>",
        )
        .unwrap();
        let report = discover(&t, &DiscoveryConfig::default());
        let suggestions = suggest(&report.redundancies);
        for pair in suggestions.windows(2) {
            assert!(pair[0].redundant_values >= pair[1].redundant_values);
        }
    }

    #[test]
    fn apply_removes_the_redundancy() {
        let t = parse(
            "<w>\
             <book><isbn>1</isbn><title>A</title><price>9</price></book>\
             <book><isbn>1</isbn><title>A</title><price>7</price></book>\
             <book><isbn>2</isbn><title>B</title><price>5</price></book>\
             </w>",
        )
        .unwrap();
        let before = discover(&t, &DiscoveryConfig::default());
        let isbn_title = before
            .redundancies
            .iter()
            .find(|r| r.fd.to_string() == "{./isbn} -> ./title w.r.t. C_book")
            .expect("redundancy present before");
        assert_eq!(isbn_title.redundant_values, 1);

        let sugg = Suggestion {
            tuple_class: "/w/book".parse().unwrap(),
            key_paths: vec!["./isbn".parse().unwrap()],
            moved_paths: vec!["./title".parse().unwrap()],
            redundant_values: 1,
        };
        let decomposed = apply(&t, &sugg).unwrap();

        // Titles now live once per ISBN in book_info elements.
        let infos = "/w/book_info"
            .parse::<xfd_xml::Path>()
            .unwrap()
            .resolve_all(&decomposed);
        assert_eq!(infos.len(), 2);
        // Books lost their titles.
        let books = "/w/book"
            .parse::<xfd_xml::Path>()
            .unwrap()
            .resolve_all(&decomposed);
        assert_eq!(books.len(), 3);
        for b in books {
            assert!(decomposed.child_labeled(b, "title").is_none());
        }
        // The isbn→title redundancy is gone in rediscovery.
        let after = discover(&decomposed, &DiscoveryConfig::default());
        assert!(
            !after
                .redundancies
                .iter()
                .any(|r| r.fd.to_string() == "{./isbn} -> ./title w.r.t. C_book"),
            "{:#?}",
            after
                .redundancies
                .iter()
                .map(|r| r.fd.to_string())
                .collect::<Vec<_>>()
        );
        // No information lost: every (isbn, title) association is present.
        let assoc: Vec<(String, String)> = "/w/book_info"
            .parse::<xfd_xml::Path>()
            .unwrap()
            .resolve_all(&decomposed)
            .iter()
            .map(|&i| {
                (
                    decomposed
                        .value(decomposed.child_labeled(i, "isbn").unwrap())
                        .unwrap()
                        .to_string(),
                    decomposed
                        .value(decomposed.child_labeled(i, "title").unwrap())
                        .unwrap()
                        .to_string(),
                )
            })
            .collect();
        let mut assoc = assoc;
        assoc.sort();
        assert_eq!(
            assoc,
            vec![
                ("1".to_string(), "A".to_string()),
                ("2".to_string(), "B".to_string())
            ]
        );
    }

    #[test]
    fn apply_preserves_null_key_instances() {
        let t = parse(
            "<w>\
             <book><isbn>1</isbn><title>A</title></book>\
             <book><title>Orphan</title></book>\
             </w>",
        )
        .unwrap();
        let sugg = Suggestion {
            tuple_class: "/w/book".parse().unwrap(),
            key_paths: vec!["./isbn".parse().unwrap()],
            moved_paths: vec!["./title".parse().unwrap()],
            redundant_values: 0,
        };
        let decomposed = apply(&t, &sugg).unwrap();
        let books = "/w/book"
            .parse::<xfd_xml::Path>()
            .unwrap()
            .resolve_all(&decomposed);
        // The orphan keeps its title in place.
        let orphan = books
            .iter()
            .find(|&&b| decomposed.child_labeled(b, "isbn").is_none())
            .copied()
            .expect("orphan book");
        assert_eq!(
            decomposed.value(decomposed.child_labeled(orphan, "title").unwrap()),
            Some("Orphan")
        );
    }

    #[test]
    fn apply_handles_set_valued_moves() {
        // Moving an author *set* copies every member once.
        let t = parse(
            "<w>\
             <book><isbn>1</isbn><a>R</a><a>G</a></book>\
             <book><isbn>1</isbn><a>G</a><a>R</a></book>\
             </w>",
        )
        .unwrap();
        let sugg = Suggestion {
            tuple_class: "/w/book".parse().unwrap(),
            key_paths: vec!["./isbn".parse().unwrap()],
            moved_paths: vec!["./a".parse().unwrap()],
            redundant_values: 1,
        };
        let decomposed = apply(&t, &sugg).unwrap();
        let infos = "/w/book_info"
            .parse::<xfd_xml::Path>()
            .unwrap()
            .resolve_all(&decomposed);
        assert_eq!(infos.len(), 1);
        assert_eq!(decomposed.children_labeled(infos[0], "a").count(), 2);
        let books = "/w/book"
            .parse::<xfd_xml::Path>()
            .unwrap()
            .resolve_all(&decomposed);
        for b in books {
            assert_eq!(decomposed.children_labeled(b, "a").count(), 0);
        }
    }

    #[test]
    fn normalize_fully_converges_and_reduces() {
        let t = parse(
            "<w>\
             <book><isbn>1</isbn><title>A</title><year>99</year></book>\
             <book><isbn>1</isbn><title>A</title><year>99</year></book>\
             <book><isbn>1</isbn><title>A</title><year>99</year></book>\
             <book><isbn>2</isbn><title>B</title><year>01</year></book>\
             </w>",
        )
        .unwrap();
        let cfg = DiscoveryConfig::default();
        let (normalized, rounds) = normalize_fully(&t, &cfg, 10);
        assert!(!rounds.is_empty());
        for r in &rounds {
            assert!(r.redundant_after < r.redundant_before, "{r:?}");
        }
        let before: usize = discover(&t, &cfg)
            .redundancies
            .iter()
            .map(|r| r.redundant_values)
            .sum();
        let after: usize = discover(&normalized, &cfg)
            .redundancies
            .iter()
            .map(|r| r.redundant_values)
            .sum();
        assert!(after < before, "{after} !< {before}");
        // The associations survive: every original title reachable.
        let titles = "/w/book_info/title".parse::<xfd_xml::Path>().unwrap();
        assert!(!titles.resolve_all(&normalized).is_empty());
    }

    #[test]
    fn normalization_reaches_xnf_on_simple_data() {
        let t = parse(
            "<w>\
             <book><isbn>1</isbn><title>A</title></book>\
             <book><isbn>1</isbn><title>A</title></book>\
             <book><isbn>2</isbn><title>B</title></book>\
             </w>",
        )
        .unwrap();
        let cfg = DiscoveryConfig::default();
        let before = xnf_report(&discover(&t, &cfg));
        assert!(!before.is_xnf);
        assert!(!before.violations.is_empty());
        let (normalized, _) = normalize_fully(&t, &cfg, 10);
        let after = xnf_report(&discover(&normalized, &cfg));
        assert!(
            after.is_xnf,
            "still violating: {:?}",
            after
                .violations
                .iter()
                .map(|f| f.to_string())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn normalize_fully_is_a_noop_on_clean_data() {
        let t = parse("<w><book><isbn>1</isbn></book><book><isbn>2</isbn></book></w>").unwrap();
        let (normalized, rounds) = normalize_fully(&t, &DiscoveryConfig::default(), 10);
        assert!(rounds.is_empty());
        assert_eq!(normalized.node_count(), t.node_count());
    }

    #[test]
    fn apply_rejects_inter_relation_suggestions() {
        let t = parse("<w><book><isbn>1</isbn></book></w>").unwrap();
        let sugg = Suggestion {
            tuple_class: "/w/book".parse().unwrap(),
            key_paths: vec!["../name".parse().unwrap()],
            moved_paths: vec!["./isbn".parse().unwrap()],
            redundant_values: 0,
        };
        assert!(matches!(apply(&t, &sugg), Err(ApplyError::NonLocalPath(_))));
    }

    #[test]
    fn display_is_actionable() {
        let s = Suggestion {
            tuple_class: "/w/book".parse().unwrap(),
            key_paths: vec!["./isbn".parse().unwrap()],
            moved_paths: vec!["./title".parse().unwrap()],
            redundant_values: 3,
        };
        let text = s.to_string();
        assert!(text.contains("C_book"));
        assert!(text.contains("./isbn"));
        assert!(text.contains("3 redundant values"));
    }
}
