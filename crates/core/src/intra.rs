//! `DiscoverFD` (Figure 8): minimal intra-relation FDs and keys of a single
//! relation, by level-wise traversal of the attribute-set lattice with
//! stripped-partition refinement tests (Lemmas 1–2).
//!
//! The function is generic over "a table" (columns of nullable value ids),
//! so the same engine drives the per-relation passes of `DiscoverXFD` *and*
//! the flat-representation baseline of Section 4.1.
//!
//! ## Level structure, eviction and parallelism
//!
//! The traversal is explicitly level-wise: all nodes of size `k` are
//! processed before any node of size `k+1` (node order within a level is
//! generation order, which matches the former FIFO queue exactly). That
//! structure buys two things:
//!
//! * **TANE-style eviction** — processing level `k` touches only
//!   partitions of sizes `k` and `k−1`, so partitions of size ≤ `k−2`
//!   (except the never-evicted bases) are dropped at each level boundary,
//!   bounding resident partition memory.
//! * **Intra-relation parallelism** — with `threads > 1`, each level's
//!   partitions are speculatively precomputed on scoped workers against a
//!   read-only view of the cache, merged in deterministic node order, and
//!   the decision logic then replays sequentially over the warm cache.
//!   Discovered FDs/keys are bit-identical to the sequential run (see
//!   `crate::lattice::precompute_level` for the argument); only the work
//!   counters may report extra speculative products.

use xfd_partition::{AttrSet, ErrorOnlyProduct, Partition, PartitionCache};

use crate::config::PruneConfig;
use crate::lattice::{
    candidate_error, candidate_lhs, ensure, ensure_summary, materialize_frontier, precompute_level,
    IntraFd,
};

/// Options for a single-table run.
#[derive(Debug, Clone, Copy)]
pub struct IntraOptions {
    /// Maximum LHS size (lattice nodes up to `max_lhs + 1` attributes).
    pub max_lhs: usize,
    /// Pruning rules.
    pub prune: PruneConfig,
    /// Apply (repaired) rule 2 — `candidateLHS` vs. `candidateLHS2`.
    pub use_rule2: bool,
    /// Consider `∅ → a` edges (constant columns).
    pub empty_lhs: bool,
    /// Worker threads for the per-level speculative partition precompute:
    /// `1` = fully sequential, `0` = auto-detect. Discovered FDs/keys are
    /// bit-identical regardless.
    pub threads: usize,
    /// Byte budget for resident partitions (`None` = unbounded). Eviction
    /// never changes results: evicted partitions are refolded from the
    /// bases on demand.
    pub cache_budget: Option<usize>,
    /// Use the tiered partition kernel: error-only products with early
    /// exit for validation, full CSR materialization only for next-level
    /// operands. Results are bit-identical either way.
    pub error_only_kernel: bool,
}

impl Default for IntraOptions {
    fn default() -> Self {
        IntraOptions {
            max_lhs: usize::MAX,
            prune: PruneConfig::default(),
            use_rule2: true,
            empty_lhs: true,
            threads: 1,
            cache_budget: None,
            error_only_kernel: true,
        }
    }
}

/// Resolve a thread-count knob: `0` = auto-detect from the machine.
pub(crate) fn resolve_threads(threads: usize) -> usize {
    match threads {
        0 => std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1),
        n => n,
    }
}

/// Work counters of one lattice traversal.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Lattice nodes dequeued and processed.
    pub nodes_visited: usize,
    /// Nodes skipped at dequeue because a subset was already a key.
    pub nodes_key_skipped: usize,
    /// Partition products computed.
    pub products: usize,
    /// Partitions materialized (bases + products).
    pub partitions_built: usize,
    /// Highest lattice level processed.
    pub max_level: usize,
    /// Partition-cache hits (lookup of an already-resident partition).
    pub cache_hits: usize,
    /// Partition-cache misses (lookup that forced a build).
    pub cache_misses: usize,
    /// Partitions dropped by level eviction or the byte budget.
    pub evictions: usize,
    /// High-water mark of resident partition bytes.
    pub peak_resident_bytes: usize,
    /// Products answered by the error-only kernel (no CSR result built).
    pub products_error_only: usize,
    /// Products that materialized a full CSR partition.
    pub products_materialized: usize,
    /// Error-only products that stopped at the first provable violation.
    pub early_exits: usize,
    /// Lookups answered from the 16-byte summary tier.
    pub summary_hits: usize,
}

impl RunStats {
    /// Merge counters from another run (used to total over relations).
    pub fn absorb(&mut self, other: &RunStats) {
        self.nodes_visited += other.nodes_visited;
        self.nodes_key_skipped += other.nodes_key_skipped;
        self.products += other.products;
        self.partitions_built += other.partitions_built;
        self.max_level = self.max_level.max(other.max_level);
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.evictions += other.evictions;
        self.peak_resident_bytes = self.peak_resident_bytes.max(other.peak_resident_bytes);
        self.products_error_only += other.products_error_only;
        self.products_materialized += other.products_materialized;
        self.early_exits += other.early_exits;
        self.summary_hits += other.summary_hits;
    }

    /// Copy the partition-cache counters into this run's stats.
    pub(crate) fn adopt_cache(&mut self, cs: &xfd_partition::CacheStats) {
        self.products = cs.products;
        self.partitions_built = cs.partitions_built;
        self.cache_hits = cs.hits;
        self.cache_misses = cs.misses;
        self.evictions = cs.evictions;
        self.peak_resident_bytes = cs.peak_resident_bytes;
        self.products_error_only = cs.products_error_only;
        self.products_materialized = cs.products_materialized;
        self.early_exits = cs.early_exits;
        self.summary_hits = cs.summary_hits;
    }
}

/// Output of [`discover_intra`]: minimal FDs and minimal keys, in attribute
/// indices of the input table.
#[derive(Debug, Clone, Default)]
pub struct IntraResult {
    /// Minimal satisfied FDs (superkey LHSs are *not* enumerated as FDs —
    /// they are implied by the reported keys, per Figure 8 line 11).
    pub fds: Vec<IntraFd>,
    /// Minimal keys.
    pub keys: Vec<AttrSet>,
    /// Work counters.
    pub stats: RunStats,
}

impl IntraResult {
    /// Is `a_set` a superset of some discovered key?
    pub fn covered_by_key(&self, a_set: AttrSet) -> bool {
        self.keys.iter().any(|k| k.is_subset_of(a_set))
    }
}

/// Run `DiscoverFD` over a table given as columns of nullable value ids.
///
/// # Panics
/// Panics if the table has more than 128 columns (see `xfd_partition::attrset`).
pub fn discover_intra(
    columns: &[&[Option<u64>]],
    n_tuples: usize,
    opts: &IntraOptions,
) -> IntraResult {
    let mut result = IntraResult::default();
    let mut cache = PartitionCache::with_budget(opts.cache_budget);
    cache.insert(AttrSet::empty(), Partition::universal(n_tuples));
    if n_tuples <= 1 {
        // Every attribute set, including ∅, identifies the lone tuple.
        result.keys.push(AttrSet::empty());
        return result;
    }
    for (i, col) in columns.iter().enumerate() {
        debug_assert_eq!(col.len(), n_tuples);
        cache.insert_column(AttrSet::single(i), col);
    }
    let threads = resolve_threads(opts.threads);

    let mut current: Vec<AttrSet> = (0..columns.len()).map(AttrSet::single).collect();
    let mut level = 1usize;
    while !current.is_empty() {
        // Level k touches only partitions of sizes k and k−1; everything of
        // size ≤ k−2 (bar the bases) is dead — drop it TANE-style.
        cache.evict_below(level.saturating_sub(2));
        if threads > 1 && level >= 2 {
            precompute_level(
                &mut cache,
                &current,
                &result.fds,
                &result.keys,
                &opts.prune,
                opts.use_rule2,
                opts.empty_lhs,
                threads,
            );
        }
        let mut next_level: Vec<AttrSet> = Vec::new();
        for &a_set in &current {
            if opts.prune.key_prune && result.covered_by_key(a_set) {
                result.stats.nodes_key_skipped += 1;
                continue;
            }
            let cands = candidate_lhs(
                a_set,
                &result.fds,
                &opts.prune,
                opts.use_rule2,
                opts.empty_lhs,
            );
            if a_set.len() > 1 && cands.is_empty() {
                continue;
            }
            result.stats.nodes_visited += 1;
            result.stats.max_level = result.stats.max_level.max(a_set.len());

            if opts.error_only_kernel {
                if let Some(node_error) = cache.error_of(a_set) {
                    // Node already resident (parallel precompute warmed the
                    // cache, or a frontier pass materialized it): keys skip
                    // candidate work entirely, exactly like the
                    // materializing path.
                    if node_error == 0 {
                        result.keys.push(a_set);
                        continue;
                    }
                    for &al in &cands {
                        let e = candidate_error(
                            &mut cache,
                            al,
                            &result.fds,
                            &opts.prune,
                            opts.use_rule2,
                            opts.empty_lhs,
                        );
                        if e == node_error {
                            let rhs = a_set
                                .minus(al)
                                .max_attr()
                                .expect("al = a_set minus one attr");
                            result.fds.push(IntraFd { lhs: al, rhs });
                        }
                    }
                } else {
                    // Tiered kernel: candidate errors first (O(1) from
                    // either cache tier after the frontier pass), then one
                    // error-only product for the node, early-exiting once
                    // its error provably drops below every candidate's
                    // (Lemma 2: all edges fail, and error ≥ 1 rules out a
                    // key).
                    let mut cand_errors: Vec<usize> = Vec::with_capacity(cands.len());
                    for &al in &cands {
                        cand_errors.push(candidate_error(
                            &mut cache,
                            al,
                            &result.fds,
                            &opts.prune,
                            opts.use_rule2,
                            opts.empty_lhs,
                        ));
                    }
                    let bound = cand_errors.iter().copied().min();
                    let node_error = match ensure_summary(&mut cache, a_set, &cands, bound) {
                        ErrorOnlyProduct::Exact(s) if s.error == 0 => {
                            result.keys.push(a_set);
                            continue;
                        }
                        ErrorOnlyProduct::Exact(s) => Some(s.error),
                        ErrorOnlyProduct::BelowBound => None,
                    };
                    for (&al, &e) in cands.iter().zip(&cand_errors) {
                        if node_error == Some(e) {
                            let rhs = a_set
                                .minus(al)
                                .max_attr()
                                .expect("al = a_set minus one attr");
                            result.fds.push(IntraFd { lhs: al, rhs });
                        }
                    }
                }
            } else {
                ensure(&mut cache, a_set, &cands);
                if cache.get(a_set).expect("ensured").is_key() {
                    result.keys.push(a_set);
                    continue;
                }
                // Candidate partitions are only needed on non-key nodes. Pin
                // `Π_{a_set}` outside the cache while they are refolded: under a
                // byte budget those inserts could otherwise evict it mid-node.
                let pa = cache.take(a_set).expect("ensured");
                for &al in &cands {
                    ensure(&mut cache, al, &[]);
                    let pl = cache.get(al).expect("just ensured");
                    if pl.same_as_refining(&pa) {
                        let rhs = a_set
                            .minus(al)
                            .max_attr()
                            .expect("al = a_set minus one attr");
                        result.fds.push(IntraFd { lhs: al, rhs });
                    }
                }
                cache.adopt(a_set, pa);
            }
            if a_set.len() <= opts.max_lhs {
                let last = a_set.max_attr().expect("non-empty lattice node");
                for next in last + 1..columns.len() {
                    let bigger = a_set.insert(next);
                    if opts.prune.key_prune && result.covered_by_key(bigger) {
                        continue;
                    }
                    next_level.push(bigger);
                }
            }
        }
        // Tiered kernel, sequential: materialize exactly the partitions the
        // next level will use as product operands, while this level's
        // operands are still resident. (With threads > 1 the speculative
        // precompute materializes every node it touches, so the frontier
        // pass is unnecessary.)
        if opts.error_only_kernel && threads <= 1 {
            materialize_frontier(
                &mut cache,
                &next_level,
                &result.fds,
                &result.keys,
                &opts.prune,
                opts.use_rule2,
                opts.empty_lhs,
                false,
            );
        }
        current = next_level;
        level += 1;
    }
    result.stats.adopt_cache(&cache.stats());
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force oracle: minimal FDs and minimal keys by definition.
    fn brute(
        columns: &[&[Option<u64>]],
        n: usize,
        empty_lhs: bool,
    ) -> (Vec<IntraFd>, Vec<AttrSet>) {
        let m = columns.len();
        let all_sets: Vec<AttrSet> = (0..(1u64 << m))
            .map(|bits| AttrSet::from_iter((0..m).filter(|&i| bits & (1 << i) != 0)))
            .collect();
        let holds = |lhs: AttrSet, rhs: usize| -> bool {
            for t1 in 0..n {
                for t2 in t1 + 1..n {
                    let agree = lhs
                        .iter()
                        .all(|a| columns[a][t1].is_some() && columns[a][t1] == columns[a][t2]);
                    if agree {
                        let r1 = columns[rhs][t1];
                        let r2 = columns[rhs][t2];
                        if r1.is_none() || r1 != r2 {
                            return false;
                        }
                    }
                }
            }
            true
        };
        let is_key = |lhs: AttrSet| -> bool {
            for t1 in 0..n {
                for t2 in t1 + 1..n {
                    let agree = lhs
                        .iter()
                        .all(|a| columns[a][t1].is_some() && columns[a][t1] == columns[a][t2]);
                    if agree {
                        return false;
                    }
                }
            }
            true
        };
        let mut keys: Vec<AttrSet> = all_sets.iter().copied().filter(|&s| is_key(s)).collect();
        let minimal_keys: Vec<AttrSet> = keys
            .iter()
            .copied()
            .filter(|&k| !keys.iter().any(|&k2| k2 != k && k2.is_subset_of(k)))
            .collect();
        keys = minimal_keys;
        let mut fds = Vec::new();
        for rhs in 0..m {
            for &lhs in &all_sets {
                if lhs.contains(rhs) || (!empty_lhs && lhs.is_empty()) {
                    continue;
                }
                // Skip superkey LHSs (reported via keys instead).
                if keys.iter().any(|k| k.is_subset_of(lhs)) {
                    continue;
                }
                if !holds(lhs, rhs) {
                    continue;
                }
                // Minimality.
                let minimal = !lhs.iter().any(|a| holds(lhs.remove(a), rhs));
                let minimal =
                    minimal && !(empty_lhs && !lhs.is_empty() && holds(AttrSet::empty(), rhs));
                if minimal {
                    fds.push(IntraFd { lhs, rhs });
                }
            }
        }
        (fds, keys)
    }

    fn norm(mut v: Vec<IntraFd>) -> Vec<(u128, usize)> {
        let mut out: Vec<(u128, usize)> = v.drain(..).map(|f| (f.lhs.bits(), f.rhs)).collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    fn norm_keys(mut v: Vec<AttrSet>) -> Vec<u128> {
        let mut out: Vec<u128> = v.drain(..).map(|k| k.bits()).collect();
        out.sort_unstable();
        out
    }

    fn check_against_brute(cols: Vec<Vec<Option<u64>>>) {
        let n = cols[0].len();
        let refs: Vec<&[Option<u64>]> = cols.iter().map(|c| c.as_slice()).collect();
        let got = discover_intra(&refs, n, &IntraOptions::default());
        let (bfds, bkeys) = brute(&refs, n, true);
        assert_eq!(norm(got.fds.clone()), norm(bfds), "FDs differ for {cols:?}");
        assert_eq!(
            norm_keys(got.keys.clone()),
            norm_keys(bkeys),
            "keys differ for {cols:?}"
        );
    }

    #[test]
    fn simple_fd_is_found() {
        // col0 → col1 holds; col1 → col0 does not.
        check_against_brute(vec![
            vec![Some(1), Some(1), Some(2), Some(3)],
            vec![Some(9), Some(9), Some(9), Some(8)],
        ]);
    }

    #[test]
    fn composite_minimal_fd() {
        // {0,1} → 2 minimal (neither 0 nor 1 alone determines 2).
        check_against_brute(vec![
            vec![Some(1), Some(1), Some(2), Some(2)],
            vec![Some(5), Some(6), Some(5), Some(6)],
            vec![Some(1), Some(2), Some(3), Some(4)],
        ]);
    }

    #[test]
    fn keys_absorb_fds() {
        // col0 is a key → no FDs reported with LHS ⊇ {0}.
        let got = discover_intra(
            &[&[Some(1), Some(2), Some(3)], &[Some(9), Some(9), Some(8)]],
            3,
            &IntraOptions::default(),
        );
        assert_eq!(norm_keys(got.keys), vec![AttrSet::single(0).bits()]);
        assert!(got.fds.iter().all(|fd| fd.rhs != 1 || !fd.lhs.contains(0)));
    }

    #[test]
    fn constant_column_yields_empty_lhs_fd() {
        let got = discover_intra(
            &[&[Some(7), Some(7), Some(7)], &[Some(1), Some(2), Some(2)]],
            3,
            &IntraOptions::default(),
        );
        assert!(got.fds.contains(&IntraFd {
            lhs: AttrSet::empty(),
            rhs: 0
        }));
    }

    #[test]
    fn empty_lhs_can_be_disabled() {
        let got = discover_intra(
            &[&[Some(7), Some(7), Some(7)]],
            3,
            &IntraOptions {
                empty_lhs: false,
                ..Default::default()
            },
        );
        assert!(got.fds.is_empty());
    }

    #[test]
    fn nulls_are_distinct_strong_satisfaction() {
        // LHS null rows never agree; RHS null breaks the FD.
        // col0 → col1: rows 0,1 agree on col0 and col1 — holds.
        // col0 → col2: rows 0,1 agree on col0 but col2 has a null — fails.
        let got = discover_intra(
            &[
                &[Some(1), Some(1), Some(2)],
                &[Some(5), Some(5), Some(6)],
                &[Some(9), None, Some(9)],
            ],
            3,
            &IntraOptions::default(),
        );
        assert!(got.fds.contains(&IntraFd {
            lhs: AttrSet::single(0),
            rhs: 1
        }));
        assert!(!got
            .fds
            .iter()
            .any(|f| f.rhs == 2 && f.lhs == AttrSet::single(0)));
        check_against_brute(vec![
            vec![Some(1), Some(1), Some(2)],
            vec![Some(5), Some(5), Some(6)],
            vec![Some(9), None, Some(9)],
        ]);
    }

    #[test]
    fn single_tuple_relation_is_all_keys() {
        let got = discover_intra(&[&[Some(1)], &[Some(2)]], 1, &IntraOptions::default());
        assert_eq!(got.keys, vec![AttrSet::empty()]);
        assert!(got.fds.is_empty());
    }

    #[test]
    fn empty_relation() {
        let got = discover_intra(&[], 0, &IntraOptions::default());
        assert_eq!(got.keys, vec![AttrSet::empty()]);
    }

    #[test]
    fn max_lhs_bounds_the_search() {
        // {0,1} → 2 needs LHS size 2; with max_lhs = 1 it is not found.
        let cols: Vec<Vec<Option<u64>>> = vec![
            vec![Some(1), Some(1), Some(2), Some(2)],
            vec![Some(5), Some(6), Some(5), Some(6)],
            vec![Some(1), Some(2), Some(3), Some(4)],
        ];
        let refs: Vec<&[Option<u64>]> = cols.iter().map(|c| c.as_slice()).collect();
        let bounded = discover_intra(
            &refs,
            4,
            &IntraOptions {
                max_lhs: 1,
                ..Default::default()
            },
        );
        assert!(bounded.fds.iter().all(|f| f.lhs.len() <= 1));
        assert!(bounded.keys.iter().all(|k| k.len() <= 2));
    }

    #[test]
    fn pruning_does_not_change_results() {
        let cols: Vec<Vec<Option<u64>>> = vec![
            vec![Some(1), Some(1), Some(2), Some(2), Some(3)],
            vec![Some(5), Some(5), Some(6), Some(6), Some(7)],
            vec![Some(1), Some(2), Some(1), Some(2), Some(1)],
            vec![Some(4), Some(4), Some(4), Some(9), Some(9)],
        ];
        let refs: Vec<&[Option<u64>]> = cols.iter().map(|c| c.as_slice()).collect();
        let full = discover_intra(&refs, 5, &IntraOptions::default());
        let unpruned = discover_intra(
            &refs,
            5,
            &IntraOptions {
                prune: PruneConfig {
                    rule1: false,
                    rule2: false,
                    key_prune: false,
                },
                ..Default::default()
            },
        );
        // Unpruned run visits more nodes but must find the same minimal FDs
        // (it may additionally emit implied/non-minimal ones; the pruned
        // result must be a subset).
        assert!(unpruned.stats.nodes_visited >= full.stats.nodes_visited);
        let f = norm(full.fds.clone());
        let u = norm(unpruned.fds.clone());
        for fd in &f {
            assert!(
                u.contains(fd),
                "pruned run found {fd:?} that unpruned missed"
            );
        }
        // The unpruned run may also report non-minimal keys (supersets);
        // after minimal-filtering the key sets must agree.
        let minimal_unpruned: Vec<AttrSet> = unpruned
            .keys
            .iter()
            .copied()
            .filter(|&k| {
                !unpruned
                    .keys
                    .iter()
                    .any(|&k2| k2 != k && k2.is_subset_of(k))
            })
            .collect();
        assert_eq!(norm_keys(full.keys), norm_keys(minimal_unpruned));
    }

    #[test]
    fn randomized_tables_match_brute_force() {
        // Deterministic pseudo-random tables (LCG) across shapes.
        let mut seed = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            seed >> 33
        };
        for &(n_cols, n_rows, domain) in &[
            (2usize, 6usize, 2u64),
            (3, 8, 2),
            (3, 6, 3),
            (4, 7, 2),
            (4, 5, 3),
        ] {
            let cols: Vec<Vec<Option<u64>>> = (0..n_cols)
                .map(|_| {
                    (0..n_rows)
                        .map(|_| {
                            let v = next() % (domain + 1);
                            if v == domain {
                                None
                            } else {
                                Some(v)
                            }
                        })
                        .collect()
                })
                .collect();
            check_against_brute(cols);
        }
    }

    /// The parallel precompute and the memory-bounded cache must not change
    /// a single emitted FD or key — not even their order.
    #[test]
    fn threads_and_budget_leave_results_bit_identical() {
        let mut seed = 0x517C_C1B7_2722_0A95_u64;
        let mut next = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            seed >> 33
        };
        for &(n_cols, n_rows, domain) in
            &[(3usize, 12usize, 2u64), (4, 16, 3), (5, 24, 3), (6, 20, 4)]
        {
            let cols: Vec<Vec<Option<u64>>> = (0..n_cols)
                .map(|_| {
                    (0..n_rows)
                        .map(|_| {
                            let v = next() % (domain + 1);
                            (v != domain).then_some(v)
                        })
                        .collect()
                })
                .collect();
            let refs: Vec<&[Option<u64>]> = cols.iter().map(|c| c.as_slice()).collect();
            let seq = discover_intra(&refs, n_rows, &IntraOptions::default());
            for opts in [
                IntraOptions {
                    threads: 4,
                    ..Default::default()
                },
                IntraOptions {
                    cache_budget: Some(256),
                    ..Default::default()
                },
                IntraOptions {
                    threads: 3,
                    cache_budget: Some(1024),
                    ..Default::default()
                },
                IntraOptions {
                    threads: 0, // auto-detect
                    ..Default::default()
                },
                IntraOptions {
                    error_only_kernel: false,
                    ..Default::default()
                },
                IntraOptions {
                    error_only_kernel: false,
                    threads: 4,
                    ..Default::default()
                },
                IntraOptions {
                    error_only_kernel: false,
                    cache_budget: Some(256),
                    ..Default::default()
                },
            ] {
                let got = discover_intra(&refs, n_rows, &opts);
                assert_eq!(got.fds, seq.fds, "FDs drifted under {opts:?}");
                assert_eq!(got.keys, seq.keys, "keys drifted under {opts:?}");
                assert_eq!(
                    got.stats.nodes_visited, seq.stats.nodes_visited,
                    "replay visited different nodes under {opts:?}"
                );
            }
        }
    }

    /// The tiered kernel must actually run error-only products (with early
    /// exits on invalid candidates) while the escape hatch runs none — and
    /// both must emit identical results.
    #[test]
    fn tiered_kernel_counters_and_parity() {
        let mut seed = 0xA076_1D64_78BD_642Fu64;
        let mut next = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            seed >> 33
        };
        // Mostly-random wide table: plenty of invalid candidates whose
        // product error overshoots the node bound → early exits.
        let cols: Vec<Vec<Option<u64>>> = (0..7)
            .map(|_| (0..48).map(|_| Some(next() % 4)).collect())
            .collect();
        let refs: Vec<&[Option<u64>]> = cols.iter().map(|c| c.as_slice()).collect();
        let tiered = discover_intra(&refs, 48, &IntraOptions::default());
        let mat = discover_intra(
            &refs,
            48,
            &IntraOptions {
                error_only_kernel: false,
                ..Default::default()
            },
        );
        assert_eq!(tiered.fds, mat.fds);
        assert_eq!(tiered.keys, mat.keys);
        assert!(tiered.stats.products_error_only > 0, "{:?}", tiered.stats);
        assert!(tiered.stats.early_exits > 0, "{:?}", tiered.stats);
        assert!(tiered.stats.summary_hits > 0, "{:?}", tiered.stats);
        assert_eq!(mat.stats.products_error_only, 0);
        assert_eq!(mat.stats.early_exits, 0);
        assert_eq!(mat.stats.summary_hits, 0);
        assert_eq!(mat.stats.products, mat.stats.products_materialized);
        // Fewer CSR materializations is the whole point.
        assert!(
            tiered.stats.products_materialized < mat.stats.products_materialized,
            "tiered {} vs materializing {}",
            tiered.stats.products_materialized,
            mat.stats.products_materialized
        );
    }

    #[test]
    fn tight_budget_reports_evictions_and_bounded_peak() {
        let cols: Vec<Vec<Option<u64>>> = (0..6u32)
            .map(|c| {
                (0..64u32)
                    .map(|r| {
                        Some(u64::from(
                            r.wrapping_mul(2654435761).rotate_left(c * 5 + 3) % 4,
                        ))
                    })
                    .collect()
            })
            .collect();
        let refs: Vec<&[Option<u64>]> = cols.iter().map(|c| c.as_slice()).collect();
        let free = discover_intra(&refs, 64, &IntraOptions::default());
        let tight = discover_intra(
            &refs,
            64,
            &IntraOptions {
                cache_budget: Some(4096),
                ..Default::default()
            },
        );
        assert_eq!(free.fds, tight.fds);
        assert_eq!(free.keys, tight.keys);
        assert!(
            tight.stats.evictions > 0,
            "a 4 KiB budget on a 6-wide lattice must evict"
        );
        assert!(tight.stats.peak_resident_bytes <= free.stats.peak_resident_bytes);
        assert!(free.stats.peak_resident_bytes > 0);
    }

    #[test]
    fn paper_figure_7a_book_relation() {
        // R_book columns I(SBN), T(itle), P(rice) with Figure 6 data:
        // t20: (i1, t1, p1); t30: (i2, t2, p2); t50: (i2, t2, p2); t80: (i2, t2, ⊥)
        let isbn = [Some(1u64), Some(2), Some(2), Some(2)];
        let title = [Some(10u64), Some(20), Some(20), Some(20)];
        let price = [Some(100u64), Some(200), Some(200), None];
        let got = discover_intra(
            &[&isbn, &title, &price],
            4,
            &IntraOptions {
                empty_lhs: false,
                ..Default::default()
            },
        );
        // ISBN → title holds (bold edge I→IT in Figure 7A).
        assert!(got.fds.contains(&IntraFd {
            lhs: AttrSet::single(0),
            rhs: 1
        }));
        // title → ISBN also holds on this fragment.
        assert!(got.fds.contains(&IntraFd {
            lhs: AttrSet::single(1),
            rhs: 0
        }));
        // ISBN → price does NOT hold (t80 lacks a price).
        assert!(!got.fds.contains(&IntraFd {
            lhs: AttrSet::single(0),
            rhs: 2
        }));
        // price → ISBN holds ({t30,t50} share ISBN; t20/t80 stripped).
        assert!(got.fds.contains(&IntraFd {
            lhs: AttrSet::single(2),
            rhs: 0
        }));
        // price → title holds as well.
        assert!(got.fds.contains(&IntraFd {
            lhs: AttrSet::single(2),
            rhs: 1
        }));
        // No attribute set is a key: t30 and t50 agree on all of I, T, P.
        assert!(got.keys.is_empty());
    }
}
