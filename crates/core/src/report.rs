//! Rendering of a [`DiscoveryReport`] as plain text or Markdown — shared
//! by the CLI and downstream tooling.

use std::fmt::Write as _;

use crate::driver::RunOutcome;
use crate::normalize::suggest;

/// Rendering options.
#[derive(Debug, Clone, Copy, Default)]
pub struct RenderOptions {
    /// Include the uninteresting FDs/keys section (when populated).
    pub show_uninteresting: bool,
    /// Include XNF refinement suggestions.
    pub show_suggestions: bool,
    /// Include work counters and timings.
    pub show_stats: bool,
}

impl RenderOptions {
    /// Everything on.
    pub fn full() -> Self {
        RenderOptions {
            show_uninteresting: true,
            show_suggestions: true,
            show_stats: true,
        }
    }
}

/// Render as plain text (the CLI's `discover` output body).
pub fn render_text(report: &RunOutcome, opts: &RenderOptions) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# Interesting XML FDs ({})", report.fds.len());
    for fd in &report.fds {
        let _ = writeln!(out, "  {fd}");
    }
    let _ = writeln!(out, "\n# XML Keys ({})", report.keys.len());
    for key in &report.keys {
        let _ = writeln!(out, "  {key}");
    }
    let _ = writeln!(out, "\n# Redundancies ({})", report.redundancies.len());
    for r in &report.redundancies {
        let _ = writeln!(
            out,
            "  {}  [{} groups, {} redundant values]",
            r.fd, r.groups, r.redundant_values
        );
        if !r.examples.is_empty() {
            let _ = writeln!(out, "      e.g. {}", r.examples.join(", "));
        }
    }
    if opts.show_uninteresting
        && (!report.uninteresting_fds.is_empty() || !report.uninteresting_keys.is_empty())
    {
        let _ = writeln!(
            out,
            "\n# Uninteresting FDs ({})",
            report.uninteresting_fds.len()
        );
        for fd in &report.uninteresting_fds {
            let _ = writeln!(out, "  {fd}");
        }
        let _ = writeln!(
            out,
            "\n# Uninteresting keys ({})",
            report.uninteresting_keys.len()
        );
        for key in &report.uninteresting_keys {
            let _ = writeln!(out, "  {key}");
        }
    }
    if opts.show_suggestions {
        let _ = writeln!(out, "\n# Refinement suggestions");
        for s in suggest(&report.redundancies) {
            let _ = writeln!(out, "  - {s}");
        }
    }
    if opts.show_stats {
        let _ = writeln!(
            out,
            "\n# Stats: {} lattice nodes, {} partitions, {} products, {} targets, {:?} total",
            report.stats.lattice.nodes_visited,
            report.stats.lattice.partitions_built,
            report.stats.lattice.products,
            report.stats.targets.created,
            report.profile.total()
        );
        let _ = writeln!(
            out,
            "# Cache: {} hits, {} misses, {} evictions, {} peak partition bytes",
            report.stats.lattice.cache_hits,
            report.stats.lattice.cache_misses,
            report.stats.lattice.evictions,
            report.stats.lattice.peak_resident_bytes
        );
        let _ = writeln!(
            out,
            "# Kernel: {} error-only products ({} early exits), {} materialized, {} summary hits",
            report.stats.lattice.products_error_only,
            report.stats.lattice.early_exits,
            report.stats.lattice.products_materialized,
            report.stats.lattice.summary_hits
        );
    }
    out
}

/// Render as a Markdown document (for reports/CI artifacts).
pub fn render_markdown(report: &RunOutcome, opts: &RenderOptions) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "## Interesting XML FDs\n");
    let _ = writeln!(out, "| # | FD |\n|---|---|");
    for (i, fd) in report.fds.iter().enumerate() {
        let _ = writeln!(out, "| {} | `{}` |", i + 1, fd);
    }
    let _ = writeln!(out, "\n## XML Keys\n");
    let _ = writeln!(out, "| # | Key |\n|---|---|");
    for (i, key) in report.keys.iter().enumerate() {
        let _ = writeln!(out, "| {} | `{}` |", i + 1, key);
    }
    let _ = writeln!(out, "\n## Redundancies (Definition 11)\n");
    let _ = writeln!(out, "| FD | groups | redundant values |\n|---|---|---|");
    for r in &report.redundancies {
        let _ = writeln!(
            out,
            "| `{}` | {} | {} |",
            r.fd, r.groups, r.redundant_values
        );
    }
    if opts.show_suggestions {
        let _ = writeln!(out, "\n## Refinement suggestions\n");
        for s in suggest(&report.redundancies) {
            let _ = writeln!(out, "- {s}");
        }
    }
    if opts.show_stats {
        let _ = writeln!(
            out,
            "\n---\n*{} lattice nodes · {} partitions · {} targets · \
             {} cache hits / {} misses / {} evictions · {} peak bytes · \
             {} error-only / {} materialized products ({} early exits, {} summary hits) · {:?}*",
            report.stats.lattice.nodes_visited,
            report.stats.lattice.partitions_built,
            report.stats.targets.created,
            report.stats.lattice.cache_hits,
            report.stats.lattice.cache_misses,
            report.stats.lattice.evictions,
            report.stats.lattice.peak_resident_bytes,
            report.stats.lattice.products_error_only,
            report.stats.lattice.products_materialized,
            report.stats.lattice.early_exits,
            report.stats.lattice.summary_hits,
            report.profile.total()
        );
    }
    out
}

/// Minimal JSON string escaping.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Render as a JSON document (machine-readable CI artifact). Hand-rolled
/// (no serde) — the schema is small and stable:
///
/// ```json
/// {
///   "fds": [{"class": "...", "lhs": ["..."], "rhs": "...", "scope": "intra|inter"}],
///   "keys": [{"class": "...", "lhs": ["..."]}],
///   "redundancies": [{"fd": "...", "groups": n, "redundant_values": n}],
///   "stats": {...}
/// }
/// ```
pub fn render_json(report: &RunOutcome) -> String {
    let mut out = String::from("{\n  \"fds\": [");
    for (i, fd) in report.fds.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let lhs: Vec<String> = fd
            .lhs
            .iter()
            .map(|p| format!("\"{}\"", json_escape(&p.to_string())))
            .collect();
        let _ = write!(
            out,
            "\n    {{\"class\": \"{}\", \"lhs\": [{}], \"rhs\": \"{}\", \"scope\": \"{}\"}}",
            json_escape(&fd.tuple_class.to_string()),
            lhs.join(", "),
            json_escape(&fd.rhs.to_string()),
            match fd.scope {
                crate::fd::FdScope::IntraRelation => "intra",
                crate::fd::FdScope::InterRelation => "inter",
            }
        );
    }
    out.push_str("\n  ],\n  \"keys\": [");
    for (i, key) in report.keys.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let lhs: Vec<String> = key
            .lhs
            .iter()
            .map(|p| format!("\"{}\"", json_escape(&p.to_string())))
            .collect();
        let _ = write!(
            out,
            "\n    {{\"class\": \"{}\", \"lhs\": [{}]}}",
            json_escape(&key.tuple_class.to_string()),
            lhs.join(", ")
        );
    }
    out.push_str("\n  ],\n  \"redundancies\": [");
    for (i, r) in report.redundancies.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"fd\": \"{}\", \"groups\": {}, \"redundant_values\": {}}}",
            json_escape(&r.fd.to_string()),
            r.groups,
            r.redundant_values
        );
    }
    let _ = write!(
        out,
        "\n  ],\n  \"stats\": {{\"lattice_nodes\": {}, \"partitions\": {}, \"products\": {}, \"products_error_only\": {}, \"products_materialized\": {}, \"early_exits\": {}, \"summary_hits\": {}, \"targets_created\": {}, \"cache_hits\": {}, \"cache_misses\": {}, \"evictions\": {}, \"peak_resident_bytes\": {}, \"total_ms\": {:.3}, \"memo_hits\": {}, \"memo_misses\": {}, \"memo_evictions\": {}, \"memo_resident_bytes\": {}}}\n}}\n",
        report.stats.lattice.nodes_visited,
        report.stats.lattice.partitions_built,
        report.stats.lattice.products,
        report.stats.lattice.products_error_only,
        report.stats.lattice.products_materialized,
        report.stats.lattice.early_exits,
        report.stats.lattice.summary_hits,
        report.stats.targets.created,
        report.stats.lattice.cache_hits,
        report.stats.lattice.cache_misses,
        report.stats.lattice.evictions,
        report.stats.lattice.peak_resident_bytes,
        report.profile.total().as_secs_f64() * 1e3,
        report.stats.memo.hits,
        report.stats.memo.misses,
        report.stats.memo.evictions,
        report.stats.memo.resident_bytes
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DiscoveryConfig;
    use crate::driver::discover;
    use xfd_xml::parse;

    fn sample() -> RunOutcome {
        let t = parse(
            "<w><book><i>1</i><t>A</t></book><book><i>1</i><t>A</t></book>\
                <book><i>2</i><t>B</t></book></w>",
        )
        .unwrap();
        discover(
            &t,
            &DiscoveryConfig {
                keep_uninteresting: true,
                ..Default::default()
            },
        )
    }

    #[test]
    fn text_rendering_contains_all_sections() {
        let text = render_text(&sample(), &RenderOptions::full());
        for needle in [
            "# Interesting XML FDs",
            "# XML Keys",
            "# Redundancies",
            "# Refinement",
            "# Stats",
            "# Cache",
            "# Kernel",
        ] {
            assert!(text.contains(needle), "missing {needle}:\n{text}");
        }
        assert!(text.contains("{./i} -> ./t w.r.t. C_book"));
    }

    #[test]
    fn markdown_rendering_is_tabular() {
        let md = render_markdown(&sample(), &RenderOptions::full());
        assert!(md.contains("## Interesting XML FDs"));
        assert!(md.contains("| `{./i} -> ./t w.r.t. C_book` |"));
        assert!(md.contains("|---|"));
    }

    #[test]
    fn json_rendering_is_well_formed() {
        let json = render_json(&sample());
        // Structural sanity without a JSON parser dependency: balanced
        // braces/brackets and the expected keys.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        for key in [
            "\"fds\"",
            "\"keys\"",
            "\"redundancies\"",
            "\"stats\"",
            "\"scope\"",
            "\"cache_hits\"",
            "\"peak_resident_bytes\"",
            "\"products_error_only\"",
            "\"early_exits\"",
            "\"summary_hits\"",
        ] {
            assert!(json.contains(key), "missing {key}:\n{json}");
        }
        assert!(json.contains("{./i} -> ./t w.r.t. C_book"));
    }

    #[test]
    fn json_escaping_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn sections_are_optional() {
        let minimal = render_text(&sample(), &RenderOptions::default());
        assert!(!minimal.contains("# Stats"));
        assert!(!minimal.contains("# Refinement"));
        assert!(!minimal.contains("# Uninteresting"));
    }
}
