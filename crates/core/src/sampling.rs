//! Sample-then-validate discovery — a scalability technique layered over
//! the paper's algorithms (in the spirit of later FD miners à la HyFD):
//!
//! 1. discover candidate FDs on a systematic sample of each relation's
//!    tuples (the lattice shrinks because partitions are smaller and more
//!    FDs *appear* to hold, pruning more aggressively);
//! 2. validate every candidate on the full relation with one partition
//!    refinement check each (linear, no lattice).
//!
//! Sampling can only *over*-report candidates (an FD that holds on all
//! tuples holds on any subset), so step 2 restores exactness for the FDs
//! it validates. What sampling can lose is **completeness of minimal
//! LHSs**: an FD may hold on the sample with a *smaller* LHS than on the
//! full data, and the larger true-minimal variant is then never generated.
//! [`sampled_intra`] therefore *expands* failed candidates by one
//! attribute before giving up (a single repair round), which in practice
//! recovers most of the gap; the trade-off is quantified in experiment
//! `fig10`.

use xfd_partition::{AttrSet, Partition};

use crate::intra::{discover_intra, IntraOptions, IntraResult};
use crate::lattice::IntraFd;

/// Options for sampled discovery.
#[derive(Debug, Clone, Copy)]
pub struct SampleOptions {
    /// Keep every `stride`-th tuple (stride 1 = no sampling).
    pub stride: usize,
    /// Underlying lattice options for the sample pass.
    pub intra: IntraOptions,
    /// Attempt one LHS-expansion repair round for failed candidates.
    pub repair: bool,
}

impl Default for SampleOptions {
    fn default() -> Self {
        SampleOptions {
            stride: 4,
            intra: IntraOptions::default(),
            repair: true,
        }
    }
}

/// Result of a sampled run, with validation counters.
#[derive(Debug, Clone, Default)]
pub struct SampledResult {
    /// FDs that validated on the full relation (exact).
    pub fds: Vec<IntraFd>,
    /// Keys that validated on the full relation (exact).
    pub keys: Vec<AttrSet>,
    /// Candidates from the sample that failed full validation.
    pub rejected: usize,
    /// Candidates recovered by the repair round.
    pub repaired: usize,
}

fn full_partition(columns: &[&[Option<u64>]], attrs: AttrSet, n: usize) -> Partition {
    let mut acc = Partition::universal(n);
    for a in attrs.iter() {
        acc = acc.product(&Partition::from_column(columns[a]));
    }
    acc
}

fn fd_holds_full(columns: &[&[Option<u64>]], fd: &IntraFd, n: usize) -> bool {
    let pl = full_partition(columns, fd.lhs, n);
    let pa = pl.product(&Partition::from_column(columns[fd.rhs]));
    pl.same_as_refining(&pa)
}

/// Sampled intra-relation discovery with full validation.
pub fn sampled_intra(
    columns: &[&[Option<u64>]],
    n_tuples: usize,
    opts: &SampleOptions,
) -> SampledResult {
    let stride = opts.stride.max(1);
    if stride == 1 || n_tuples <= 2 * stride {
        let exact = discover_intra(columns, n_tuples, &opts.intra);
        return SampledResult {
            fds: exact.fds,
            keys: exact.keys,
            rejected: 0,
            repaired: 0,
        };
    }
    // Systematic sample (deterministic; respects value distributions well
    // enough for candidate generation).
    let sampled: Vec<Vec<Option<u64>>> = columns
        .iter()
        .map(|col| col.iter().copied().step_by(stride).collect())
        .collect();
    let sampled_refs: Vec<&[Option<u64>]> = sampled.iter().map(Vec::as_slice).collect();
    let sample_n = sampled.first().map_or(0, Vec::len);
    let candidates: IntraResult = discover_intra(&sampled_refs, sample_n, &opts.intra);

    let mut out = SampledResult::default();
    let mut failed: Vec<IntraFd> = Vec::new();
    for fd in &candidates.fds {
        if fd_holds_full(columns, fd, n_tuples) {
            out.fds.push(*fd);
        } else {
            failed.push(*fd);
            out.rejected += 1;
        }
    }
    // Keys validate the same way: the full partition must be singleton-free.
    for &k in &candidates.keys {
        if full_partition(columns, k, n_tuples).is_key() {
            out.keys.push(k);
        } else {
            out.rejected += 1;
        }
    }
    if opts.repair {
        // One expansion round: try adding each absent attribute to a failed
        // LHS; keep minimal validated expansions.
        for fd in failed {
            for a in 0..columns.len() {
                if fd.lhs.contains(a) || a == fd.rhs {
                    continue;
                }
                let bigger = IntraFd {
                    lhs: fd.lhs.insert(a),
                    rhs: fd.rhs,
                };
                let subsumed = out
                    .fds
                    .iter()
                    .any(|f| f.rhs == bigger.rhs && f.lhs.is_subset_of(bigger.lhs));
                if !subsumed && fd_holds_full(columns, &bigger, n_tuples) {
                    out.fds.push(bigger);
                    out.repaired += 1;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn columns_with_fd(n: usize) -> Vec<Vec<Option<u64>>> {
        // a0 → a1 everywhere; a2 random-ish; a0,a2 → a3.
        (0..4)
            .map(|c| {
                (0..n)
                    .map(|i| {
                        let a0 = (i * 7) as u64 % 13;
                        let a2 = (i * 11) as u64 % 5;
                        Some(match c {
                            0 => a0,
                            1 => a0 * 3 + 1,
                            2 => a2,
                            _ => a0 * 10 + a2,
                        })
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn validated_fds_always_hold_on_full_data() {
        let cols = columns_with_fd(400);
        let refs: Vec<&[Option<u64>]> = cols.iter().map(Vec::as_slice).collect();
        let res = sampled_intra(&refs, 400, &SampleOptions::default());
        for fd in &res.fds {
            assert!(fd_holds_full(&refs, fd, 400), "unsound sampled FD {fd:?}");
        }
        // The injected FDs are found.
        assert!(res
            .fds
            .iter()
            .any(|f| f.lhs == AttrSet::single(0) && f.rhs == 1));
    }

    #[test]
    fn sampling_rejects_spurious_candidates() {
        // a0 → a1 holds on every 4th tuple but not globally (violations at
        // odd indices only).
        let n = 200;
        let a0: Vec<Option<u64>> = (0..n).map(|i| Some((i / 2) as u64)).collect();
        let a1: Vec<Option<u64>> = (0..n)
            .map(|i| Some(if i % 2 == 0 { (i / 2) as u64 } else { 999 }))
            .collect();
        let refs: Vec<&[Option<u64>]> = vec![&a0, &a1];
        let opts = SampleOptions {
            stride: 2,
            repair: false,
            ..Default::default()
        };
        let res = sampled_intra(&refs, n, &opts);
        assert!(
            !res.fds
                .iter()
                .any(|f| f.lhs == AttrSet::single(0) && f.rhs == 1),
            "spurious FD must be rejected by validation"
        );
        assert!(res.rejected > 0);
    }

    #[test]
    fn stride_one_is_exact() {
        let cols = columns_with_fd(100);
        let refs: Vec<&[Option<u64>]> = cols.iter().map(Vec::as_slice).collect();
        let exact = discover_intra(&refs, 100, &IntraOptions::default());
        let res = sampled_intra(
            &refs,
            100,
            &SampleOptions {
                stride: 1,
                ..Default::default()
            },
        );
        assert_eq!(res.fds, exact.fds);
        assert_eq!(res.keys, exact.keys);
        assert_eq!(res.rejected, 0);
    }

    #[test]
    fn repair_recovers_expanded_lhs() {
        // On the sample, a2 → a3 may appear to hold (few a2 collisions);
        // on the full data only {a0, a2} → a3 holds. Repair should find it
        // if the small candidate fails.
        let cols = columns_with_fd(600);
        let refs: Vec<&[Option<u64>]> = cols.iter().map(Vec::as_slice).collect();
        let res = sampled_intra(
            &refs,
            600,
            &SampleOptions {
                stride: 8,
                ..Default::default()
            },
        );
        let found = res
            .fds
            .iter()
            .any(|f| f.rhs == 3 && f.lhs.is_subset_of(AttrSet::from_iter([0, 2])));
        assert!(found, "{:?}", res.fds);
    }

    #[test]
    fn keys_are_validated() {
        // a3 is a key on the full data in columns_with_fd? a3 = a0*10+a2 —
        // collides across i. Construct an explicit one.
        let n = 120;
        let id: Vec<Option<u64>> = (0..n).map(|i| Some(i as u64)).collect();
        let grp: Vec<Option<u64>> = (0..n).map(|i| Some((i % 7) as u64)).collect();
        let refs: Vec<&[Option<u64>]> = vec![&id, &grp];
        let res = sampled_intra(&refs, n, &SampleOptions::default());
        assert!(res.keys.contains(&AttrSet::single(0)));
        assert!(!res.keys.contains(&AttrSet::single(1)));
    }

    #[test]
    fn default_prune_config_is_used() {
        let opts = SampleOptions::default();
        assert!(opts.intra.prune.rule1 && opts.intra.prune.key_prune);
    }
}
