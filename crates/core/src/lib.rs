#![warn(missing_docs)]
//! # discoverxfd
//!
//! The DiscoverXFD system (Yu & Jagadish, *Efficient Discovery of XML Data
//! Redundancies*, VLDB 2006): discovery of XML functional dependencies,
//! XML keys and the data redundancies they indicate, over the generalized
//! tree tuple FD notion of Section 3.
//!
//! ## Quick start
//!
//! ```
//! use discoverxfd::{discover, DiscoveryConfig};
//! use xfd_xml::parse;
//!
//! let doc = parse(
//!     "<shop>\
//!        <book><isbn>1</isbn><title>DBMS</title></book>\
//!        <book><isbn>1</isbn><title>DBMS</title></book>\
//!        <book><isbn>2</isbn><title>TCP/IP</title></book>\
//!      </shop>",
//! ).unwrap();
//! let report = discover(&doc, &DiscoveryConfig::default());
//! // {./isbn} -> ./title holds but ./isbn is not a key: redundancy.
//! assert!(report.redundancies.iter().any(|r| r.fd.to_string().contains("isbn")));
//! ```
//!
//! ## Architecture
//!
//! * [`intra`] — the partition/lattice algorithm `DiscoverFD` (Figure 8)
//!   over a single relation; also powers the flat-representation baseline;
//! * [`discover_forest`](xfd::discover_forest) — `DiscoverXFD` (Figures
//!   9–10): bottom-up traversal of the relation forest propagating
//!   *partition targets* to find inter-relation FDs and keys;
//! * [`interesting`] — Definition 9/10 filters (trivial, essential tuple
//!   class, RHS below pivot);
//! * [`redundancy`] — Definition 11: a satisfied interesting FD whose LHS
//!   is not a key, plus redundant-value counting;
//! * [`baseline`] — the Section 4.1 strawman: full unnesting + relational
//!   (TANE-style) discovery, for the head-to-head experiments;
//! * [`bruteforce`] — a definition-level oracle used by the test suite to
//!   validate soundness/completeness on small documents;
//! * [`normalize`] — XNF-flavoured schema-refinement suggestions derived
//!   from the discovered redundancies (the application the paper
//!   motivates), plus an executor that applies a suggestion to the data;
//! * [`approximate`] — `g₃`-style approximate FDs for dirty data (an
//!   extension beyond the paper).

pub mod approximate;
pub mod baseline;
pub mod bruteforce;
pub mod config;
pub mod cover;
pub mod diff;
pub mod driver;
pub mod fd;
pub mod graphviz;
pub mod inclusion;
pub mod interesting;
pub mod intra;
pub mod lattice;
pub mod memo;
pub mod mvd;
pub mod normalize;
pub mod pathfd;
pub mod profile;
pub mod redundancy;
pub mod report;
pub mod sampling;
pub mod target;
pub mod verify;
pub mod wire;
pub mod xfd;

pub use config::{DiscoveryConfig, PruneConfig};
pub use driver::{
    discover, discover_collection, discover_prepared, discover_prepared_with,
    discover_trees_with_memo, discover_with_schema, merge_collection, DiscoveryReport,
    PhaseTimings, RunOutcome, RunStatsBundle,
};
pub use fd::{FdScope, Xfd, XmlKey};
pub use memo::{
    discover_forest_memo_with, run_task, task_in_bounds, MemoStats, PassRunner, RelationMemo,
    RelationProgress, WaveTask,
};
pub use redundancy::Redundancy;
pub use wire::{decode_config, encode_config, WireError};
