//! Definition-level oracle for validating `DiscoverXFD` on small inputs.
//!
//! Enumerates, for every essential tuple class, all LHS subsets drawn from
//! the class's own columns *and* every ancestor relation's columns (up to a
//! size bound), checks Definition 7 satisfaction directly on joined tuple
//! values, and reports minimal FDs (excluding superkey LHSs, which the
//! lattice reports as keys) and minimal keys.
//!
//! Exponential — intended for tests and small documents only.

use xfd_partition::AttrSet;
use xfd_relation::{Forest, RelId};

use crate::interesting::{inter_fd_to_xfd, inter_key_to_key};
use crate::redundancy::lhs_grouping;
use crate::xfd::{RawInterFd, RawInterKey};

/// Options for the oracle.
#[derive(Debug, Clone, Copy)]
pub struct BruteOptions {
    /// Maximum total LHS size (across levels).
    pub max_lhs: usize,
    /// Include `∅` as an LHS.
    pub empty_lhs: bool,
}

impl Default for BruteOptions {
    fn default() -> Self {
        BruteOptions {
            max_lhs: 3,
            empty_lhs: true,
        }
    }
}

/// Oracle output, in the same raw form the discovery produces.
#[derive(Debug, Default)]
pub struct BruteResult {
    /// Minimal satisfied FDs per tuple class (superkey LHSs excluded).
    pub fds: Vec<RawInterFd>,
    /// Minimal keys per tuple class.
    pub keys: Vec<RawInterKey>,
}

impl BruteResult {
    /// Render FDs as display strings (sorted) for comparison.
    pub fn fd_strings(&self, forest: &Forest) -> Vec<String> {
        let mut v: Vec<String> = self
            .fds
            .iter()
            .map(|fd| inter_fd_to_xfd(forest, fd).to_string())
            .collect();
        v.sort();
        v.dedup();
        v
    }

    /// Render keys as display strings (sorted) for comparison.
    pub fn key_strings(&self, forest: &Forest) -> Vec<String> {
        let mut v: Vec<String> = self
            .keys
            .iter()
            .map(|k| inter_key_to_key(forest, k).to_string())
            .collect();
        v.sort();
        v.dedup();
        v
    }
}

/// One candidate attribute: `(relation, column)` with the relation being
/// the origin or one of its ancestors.
type Attr = (RelId, usize);

fn candidate_attrs(forest: &Forest, origin: RelId) -> Vec<Attr> {
    let mut out = Vec::new();
    let mut cur = origin;
    let mut prev: Option<RelId> = None;
    loop {
        let rel = forest.relation(cur);
        for c in 0..rel.n_columns() {
            // Self-reference guard (mirrors the discovery): skip the
            // set-valued column aggregating the chain child we came from.
            if prev.is_some_and(|p| rel.columns[c].elem == forest.relation(p).pivot) {
                continue;
            }
            out.push((cur, c));
        }
        prev = Some(cur);
        match rel.parent {
            Some(p) => cur = p,
            None => break,
        }
    }
    out
}

/// Ancestor tuple of origin tuple `t` at relation `arel`, plus that
/// ancestor's cell for column `col`.
fn joined(forest: &Forest, origin: RelId, attr: Attr, t: usize) -> (u32, Option<u64>) {
    let (arel, col) = attr;
    let mut cur = origin;
    let mut tt = t as u32;
    while cur != arel {
        let rel = forest.relation(cur);
        tt = rel.parent_of[tt as usize];
        cur = rel.parent.expect("attr relation is an ancestor");
    }
    (tt, forest.relation(arel).columns[col].cells[tt as usize])
}

/// Do tuples `t1`, `t2` agree on `attr` under the algorithm's semantics?
/// Non-null values compare by value; ⊥ agrees only with the *same node*
/// (same ancestor tuple) — node-identity semantics, see DESIGN.md.
fn agree(forest: &Forest, origin: RelId, attr: Attr, t1: usize, t2: usize) -> bool {
    let (a1, v1) = joined(forest, origin, attr, t1);
    let (a2, v2) = joined(forest, origin, attr, t2);
    match (v1, v2) {
        (Some(x), Some(y)) => x == y,
        _ => a1 == a2,
    }
}

fn holds(forest: &Forest, origin: RelId, lhs: &[Attr], rhs: usize) -> bool {
    let n = forest.relation(origin).n_tuples();
    let rhs_cells = &forest.relation(origin).columns[rhs].cells;
    for t1 in 0..n {
        for t2 in t1 + 1..n {
            let lhs_agree = lhs.iter().all(|&a| agree(forest, origin, a, t1, t2));
            if lhs_agree && (rhs_cells[t1].is_none() || rhs_cells[t1] != rhs_cells[t2]) {
                return false;
            }
        }
    }
    true
}

fn is_key(forest: &Forest, origin: RelId, lhs: &[Attr]) -> bool {
    if lhs.is_empty() {
        return forest.relation(origin).n_tuples() <= 1;
    }
    // Reuse the redundancy grouping: a key has no group of size ≥ 2.
    let levels = to_levels(origin, lhs, forest);
    lhs_grouping(forest, origin, &levels).0 == 0
}

/// Convert a flat attr list into per-relation levels ordered origin-first.
fn to_levels(origin: RelId, attrs: &[Attr], forest: &Forest) -> Vec<(RelId, AttrSet)> {
    let mut chain = Vec::new();
    let mut cur = Some(origin);
    while let Some(r) = cur {
        chain.push(r);
        cur = forest.relation(r).parent;
    }
    let mut out = Vec::new();
    for r in chain {
        let set = AttrSet::from_iter(attrs.iter().filter(|(ar, _)| *ar == r).map(|&(_, c)| c));
        if !set.is_empty() {
            out.push((r, set));
        }
    }
    out
}

/// Enumerate all subsets of `attrs` with size ≤ `max` (small inputs only).
fn subsets(attrs: &[Attr], max: usize) -> Vec<Vec<Attr>> {
    let mut out = vec![Vec::new()];
    for &a in attrs {
        let mut next = Vec::with_capacity(out.len() * 2);
        for s in &out {
            next.push(s.clone());
            if s.len() < max {
                let mut bigger = s.clone();
                bigger.push(a);
                next.push(bigger);
            }
        }
        out = next;
    }
    out
}

/// Run the oracle over every essential tuple class of the forest.
pub fn brute_force(forest: &Forest, options: &BruteOptions) -> BruteResult {
    let mut result = BruteResult::default();
    for rel in &forest.relations {
        if rel.parent.is_none() || rel.n_tuples() == 0 {
            continue;
        }
        let attrs = candidate_attrs(forest, rel.id);
        let all_subsets = subsets(&attrs, options.max_lhs);

        // Minimal keys.
        let keys: Vec<Vec<Attr>> = all_subsets
            .iter()
            .filter(|s| (options.empty_lhs || !s.is_empty()) && is_key(forest, rel.id, s))
            .cloned()
            .collect();
        let minimal_keys: Vec<&Vec<Attr>> = keys
            .iter()
            .filter(|k| !keys.iter().any(|k2| k2.len() < k.len() && subset_of(k2, k)))
            .collect();
        for k in &minimal_keys {
            result.keys.push(RawInterKey {
                origin: rel.id,
                lhs_levels: to_levels(rel.id, k, forest),
            });
        }

        // Minimal FDs with non-superkey LHS.
        for rhs in 0..rel.n_columns() {
            for lhs in &all_subsets {
                if lhs.iter().any(|&(r, c)| r == rel.id && c == rhs) {
                    continue;
                }
                if !options.empty_lhs && lhs.is_empty() {
                    continue;
                }
                if minimal_keys.iter().any(|k| subset_of(k, lhs)) {
                    continue; // superkey LHS: reported via keys
                }
                if !holds(forest, rel.id, lhs, rhs) {
                    continue;
                }
                let minimal = !(0..lhs.len()).any(|i| {
                    let mut smaller = lhs.clone();
                    smaller.remove(i);
                    holds(forest, rel.id, &smaller, rhs)
                });
                if minimal {
                    result.fds.push(RawInterFd {
                        origin: rel.id,
                        rhs,
                        lhs_levels: to_levels(rel.id, lhs, forest),
                    });
                }
            }
        }
    }
    result
}

fn subset_of(a: &[Attr], b: &[Attr]) -> bool {
    a.iter().all(|x| b.contains(x))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DiscoveryConfig;
    use crate::interesting::{intra_fd_to_xfd, intra_key_to_key};
    use crate::xfd::discover_forest;
    use xfd_relation::{encode, EncodeConfig};
    use xfd_schema::infer_schema;
    use xfd_xml::parse;

    /// Collect the discovery's FDs/keys as sorted display strings,
    /// restricted to essential classes and LHS size ≤ bound (to match the
    /// oracle's enumeration bound).
    fn discovery_strings(
        forest: &Forest,
        config: &DiscoveryConfig,
        max_lhs: usize,
    ) -> (Vec<String>, Vec<String>) {
        let disc = discover_forest(forest, config);
        let mut fds = Vec::new();
        let mut keys = Vec::new();
        for rd in &disc.relations {
            if forest.relation(rd.rel).parent.is_none() {
                continue;
            }
            for fd in &rd.fds {
                if fd.lhs.len() <= max_lhs {
                    fds.push(intra_fd_to_xfd(forest, rd.rel, fd).to_string());
                }
            }
            for &k in &rd.keys {
                if k.len() <= max_lhs {
                    keys.push(intra_key_to_key(forest, rd.rel, k).to_string());
                }
            }
        }
        for fd in &disc.inter_fds {
            let total: usize = fd.lhs_levels.iter().map(|(_, a)| a.len()).sum();
            if total <= max_lhs {
                fds.push(inter_fd_to_xfd(forest, fd).to_string());
            }
        }
        for key in &disc.inter_keys {
            let total: usize = key.lhs_levels.iter().map(|(_, a)| a.len()).sum();
            if total <= max_lhs {
                keys.push(inter_key_to_key(forest, key).to_string());
            }
        }
        fds.sort();
        fds.dedup();
        keys.sort();
        keys.dedup();
        (fds, keys)
    }

    fn check(xml: &str) {
        let t = parse(xml).unwrap();
        let schema = infer_schema(&t);
        let forest = encode(&t, &schema, &EncodeConfig::default());
        let opts = BruteOptions {
            max_lhs: 3,
            empty_lhs: true,
        };
        let oracle = brute_force(&forest, &opts);
        let config = DiscoveryConfig {
            keep_uninteresting: true,
            ..Default::default()
        };
        let (fds, keys) = discovery_strings(&forest, &config, opts.max_lhs);
        let ofds = oracle.fd_strings(&forest);
        let okeys = oracle.key_strings(&forest);
        assert_eq!(fds, ofds, "FDs diverge from oracle for {xml}");
        // Keys: the discovery is sound and complete for single-level keys;
        // inter-relation keys surface only as partition-target byproducts
        // (the paper's design), so we check containment both ways with the
        // appropriate restriction.
        for k in &keys {
            assert!(okeys.contains(k), "unsound key {k} for {xml}");
        }
        for raw in oracle
            .keys
            .iter()
            .filter(|raw| raw.lhs_levels.iter().all(|&(rel, _)| rel == raw.origin))
        {
            let s = inter_key_to_key(&forest, raw).to_string();
            assert!(keys.contains(&s), "missed intra key {s} for {xml}");
        }
    }

    #[test]
    fn oracle_agrees_on_single_relation_documents() {
        check(
            "<w>\
             <book><isbn>1</isbn><title>A</title></book>\
             <book><isbn>1</isbn><title>A</title></book>\
             <book><isbn>2</isbn><title>B</title></book>\
             </w>",
        );
    }

    #[test]
    fn oracle_agrees_with_missing_elements() {
        check(
            "<w>\
             <book><isbn>1</isbn><title>A</title></book>\
             <book><isbn>1</isbn></book>\
             <book><title>B</title></book>\
             </w>",
        );
    }

    #[test]
    fn oracle_agrees_on_two_level_documents() {
        check(
            "<w>\
             <store><name>X</name><book><i>1</i><p>10</p></book></store>\
             <store><name>X</name><book><i>1</i><p>10</p></book></store>\
             <store><name>Y</name><book><i>1</i><p>12</p></book></store>\
             </w>",
        );
    }

    #[test]
    fn oracle_agrees_with_set_elements() {
        check(
            "<w>\
             <book><i>1</i><a>R</a><a>G</a></book>\
             <book><i>1</i><a>G</a><a>R</a></book>\
             <book><i>2</i><a>R</a></book>\
             </w>",
        );
    }
}
