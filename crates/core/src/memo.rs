//! Memoized `DiscoverXFD`: incremental re-discovery for a changing corpus.
//!
//! A corpus mutates one document at a time, but re-running discovery from
//! scratch repeats the full lattice traversal of every relation — including
//! the many whose tuples did not change. This module caches each
//! *relation pass* (`process_relation`) keyed by a 128-bit fingerprint of
//! everything the pass reads:
//!
//! * the discovery configuration (pruning rules, LHS bound, target caps),
//! * the forest skeleton (relation ids, parents, pivots — what the
//!   self-reference guard walks),
//! * the relation's own content: tuple count, `parent_of` index, and every
//!   column's schema element, kind and raw cells,
//! * the incoming partition targets, pair sets included.
//!
//! Soundness rests on two properties of the underlying engine. First,
//! `process_relation` never resolves dictionary strings — it compares
//! interned cell identifiers only — so equal raw cells imply an identical
//! pass. Second, the hierarchical encoding is *prefix-stable*: appending a
//! document appends tuples and dictionary entries without renumbering
//! existing ones, so an unchanged relation re-encodes to byte-identical
//! cells and its cached pass replays verbatim. A fingerprint mismatch
//! merely forces a recompute; output never differs from
//! [`discover_forest`](crate::xfd::discover_forest) on the same forest
//! (waves merge in the same order, then the same minimization runs).

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};

use xfd_hash::{ContentDigest, FxHashMap};
use xfd_partition::{AttrSet, PairSet};
use xfd_relation::{ColumnKind, Forest, RelId};

use crate::config::DiscoveryConfig;
use crate::intra::RunStats;
use crate::target::PartitionTarget;
use crate::xfd::{
    minimize_inter, process_relation, relation_waves, ForestDiscovery, RelationOutput, TargetStats,
};

/// One line of discovery progress: a relation pass finished (possibly from
/// cache). The corpus server streams these as NDJSON.
#[derive(Debug, Clone)]
pub struct RelationProgress<'a> {
    /// The relation.
    pub rel: RelId,
    /// Its tuple-class name (e.g. `C_book`).
    pub name: &'a str,
    /// Depth in the relation tree (waves run deepest-first).
    pub depth: usize,
    /// Whether the pass was replayed from the memo.
    pub cached: bool,
    /// Intra-relation FDs found in this relation.
    pub fds: usize,
    /// Intra-relation keys found.
    pub keys: usize,
    /// Inter-relation FDs completed at this relation.
    pub inter_fds: usize,
    /// Inter-relation keys completed here.
    pub inter_keys: usize,
}

/// Counters of a [`RelationMemo`] — either lifetime totals
/// ([`RelationMemo::stats`]) or a single run's deltas
/// (`RunStatsBundle::memo`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoStats {
    /// Relation passes replayed from cache.
    pub hits: u64,
    /// Relation passes computed (and inserted).
    pub misses: u64,
    /// Entries dropped by the byte-budget LRU sweep (generation pruning
    /// via `prune_stale` is not counted).
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Approximate bytes currently resident.
    pub resident_bytes: usize,
}

struct MemoEntry {
    generation: u64,
    last_used: u64,
    bytes: usize,
    output: RelationOutput,
}

/// Cache of relation passes, keyed by content fingerprint. Owned by a
/// [`CorpusHandle`-style](crate::driver::discover_trees_with_memo) caller
/// and carried across discover runs.
///
/// The memo is size-bounded: give it a byte budget
/// ([`RelationMemo::with_budget`]) and a least-recently-used sweep runs
/// after every wave, preferring entries *not* touched by the current run.
/// Eviction only ever costs future hits — a miss recomputes the pass.
#[derive(Default)]
pub struct RelationMemo {
    entries: FxHashMap<u128, MemoEntry>,
    generation: u64,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    resident_bytes: usize,
    budget: Option<usize>,
}

impl RelationMemo {
    /// An empty, unbounded memo.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty memo bounded to roughly `bytes` of cached pass output.
    pub fn with_budget(bytes: usize) -> Self {
        RelationMemo {
            budget: Some(bytes),
            ..Default::default()
        }
    }

    /// Change (or remove) the byte budget. Shrinking takes effect at the
    /// next discover run's sweep.
    pub fn set_budget(&mut self, bytes: Option<usize>) {
        self.budget = bytes;
    }

    /// The configured byte budget, if any.
    pub fn budget(&self) -> Option<usize> {
        self.budget
    }

    /// Cached relation passes currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lifetime cache hits (relation passes replayed).
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lifetime cache misses (relation passes computed).
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Lifetime LRU evictions.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Approximate bytes of cached pass output currently resident.
    pub fn resident_bytes(&self) -> usize {
        self.resident_bytes
    }

    /// Lifetime counters plus current residency, as one snapshot.
    pub fn stats(&self) -> MemoStats {
        MemoStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            entries: self.entries.len(),
            resident_bytes: self.resident_bytes,
        }
    }

    /// Drop entries not touched by the most recent discover run, bounding
    /// memory across document adds/removes (stale fingerprints can never
    /// hit again unless the exact same corpus state recurs).
    pub fn prune_stale(&mut self) {
        let current = self.generation;
        let mut freed = 0usize;
        self.entries.retain(|_, e| {
            if e.generation == current {
                true
            } else {
                freed += e.bytes;
                false
            }
        });
        self.resident_bytes = self.resident_bytes.saturating_sub(freed);
    }

    /// Forget everything.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.resident_bytes = 0;
    }

    /// Evict least-recently-used entries until the budget is met. Entries
    /// of generations before the current run go first (they can only hit
    /// again if the exact corpus state recurs); current-generation entries
    /// follow, oldest use first.
    fn enforce_budget(&mut self) {
        let Some(budget) = self.budget else {
            return;
        };
        if self.resident_bytes <= budget {
            return;
        }
        let current = self.generation;
        let mut order: Vec<(bool, u64, u128)> = self
            .entries
            .iter()
            .map(|(key, e)| (e.generation == current, e.last_used, *key))
            .collect();
        order.sort_unstable();
        for (_, _, key) in order {
            if self.resident_bytes <= budget {
                break;
            }
            if let Some(e) = self.entries.remove(&key) {
                self.resident_bytes = self.resident_bytes.saturating_sub(e.bytes);
                self.evictions += 1;
            }
        }
    }
}

/// Rough heap footprint of one cached pass, for budget accounting. Counts
/// the variable-size payloads with fixed per-item overheads; exactness is
/// not required — the budget is advisory, not an allocator limit.
fn approx_output_bytes(out: &RelationOutput) -> usize {
    fn pair_bytes(p: &PairSet) -> usize {
        std::mem::size_of_val(p.pairs()) + 32
    }
    let mut b = std::mem::size_of::<RelationOutput>() + std::mem::size_of::<MemoEntry>() + 16;
    b += out.local.fds.len() * std::mem::size_of::<crate::lattice::IntraFd>();
    b += out.local.keys.len() * std::mem::size_of::<AttrSet>();
    for fd in &out.inter_fds {
        b += 32 + fd.lhs_levels.len() * 24;
    }
    for key in &out.inter_keys {
        b += 24 + key.lhs_levels.len() * 24;
    }
    for t in &out.outgoing {
        b += std::mem::size_of::<PartitionTarget>()
            + t.lhs_levels.len() * 24
            + pair_bytes(&t.fd_target)
            + t.key_target.as_ref().map_or(0, pair_bytes)
            + (t.satisfied_fd.len() + t.satisfied_key.len()) * std::mem::size_of::<AttrSet>();
    }
    b
}

fn update_u128(d: &mut ContentDigest, v: u128) {
    d.update_u64(v as u64);
    d.update_u64((v >> 64) as u64);
}

fn update_attrset(d: &mut ContentDigest, s: AttrSet) {
    update_u128(d, s.bits());
}

fn update_pairs(d: &mut ContentDigest, pairs: &PairSet) {
    d.update_u64(pairs.pairs().len() as u64);
    for &(a, b) in pairs.pairs() {
        d.update_u64(a as u64);
        d.update_u64(b as u64);
    }
}

/// Absorb every configuration field `process_relation` reads.
fn config_fingerprint(config: &DiscoveryConfig, d: &mut ContentDigest) {
    d.update_u64(config.lhs_bound() as u64);
    d.update_u64(config.inter_relation as u64);
    d.update_u64(config.empty_lhs as u64);
    d.update_u64(config.prune.rule1 as u64);
    d.update_u64(config.prune.rule2 as u64);
    d.update_u64(config.prune.key_prune as u64);
    d.update_u64(config.max_partition_targets as u64);
    d.update_u64(config.cache_budget.map_or(u64::MAX, |b| b as u64));
    d.update_u64(config.error_only_kernel as u64);
    // Thread count never changes *discovered* FDs/keys, but speculative
    // level-precompute does show in the work counters the report renders;
    // keying on it keeps replayed stats byte-identical too.
    d.update_u64(config.effective_threads() as u64);
}

/// Absorb the forest skeleton: ids, parent edges and pivots of every
/// relation. The self-reference guard inside `process_relation` walks an
/// origin's parent chain and compares pivots, so the *whole* skeleton is
/// part of every relation's key.
fn skeleton_fingerprint(forest: &Forest, d: &mut ContentDigest) {
    d.update_u64(forest.relations.len() as u64);
    for rel in &forest.relations {
        d.update_u64(rel.id.0 as u64);
        d.update_u64(rel.parent.map_or(u64::MAX, |p| p.0 as u64));
        d.update_u64(rel.pivot.0 as u64);
    }
}

/// Fingerprint one relation pass: `base` (config + skeleton) extended with
/// the relation's content and its incoming partition targets.
fn relation_fingerprint(
    forest: &Forest,
    rel_id: RelId,
    incoming: &[PartitionTarget],
    base: ContentDigest,
) -> u128 {
    let rel = forest.relation(rel_id);
    let mut d = base;
    d.update_u64(rel.id.0 as u64);
    d.update_u64(rel.n_tuples() as u64);
    for &p in &rel.parent_of {
        d.update_u64(p as u64);
    }
    d.update_u64(rel.columns.len() as u64);
    for col in &rel.columns {
        d.update_u64(col.elem.0 as u64);
        d.update_u64(match col.kind {
            ColumnKind::Simple => 0,
            ColumnKind::Complex => 1,
            ColumnKind::SetValue => 2,
        });
        d.update_u64(col.cells.len() as u64);
        for cell in &col.cells {
            // Prefix-free cell encoding: None is one word (MAX), Some is a
            // tag word then the id, so cell sequences cannot alias.
            match cell {
                None => d.update_u64(u64::MAX),
                Some(v) => {
                    d.update_u64(1);
                    d.update_u64(*v);
                }
            }
        }
    }
    d.update_u64(incoming.len() as u64);
    for pt in incoming {
        d.update_u64(pt.origin.0 as u64);
        d.update_u64(pt.rhs as u64);
        d.update_u64(pt.lhs_levels.len() as u64);
        for &(r, s) in &pt.lhs_levels {
            d.update_u64(r.0 as u64);
            update_attrset(&mut d, s);
        }
        update_pairs(&mut d, &pt.fd_target);
        match &pt.key_target {
            None => d.update_u64(u64::MAX),
            Some(kt) => {
                d.update_u64(1);
                update_pairs(&mut d, kt);
            }
        }
        d.update_u64(pt.satisfied_fd.len() as u64);
        for &s in &pt.satisfied_fd {
            update_attrset(&mut d, s);
        }
        d.update_u64(pt.satisfied_key.len() as u64);
        for &s in &pt.satisfied_key {
            update_attrset(&mut d, s);
        }
    }
    d.finish()
}

/// One queued relation pass of a wave in dispatchable form: everything a
/// process holding a byte-identical forest needs to run the pass exactly
/// as this one would. Produced by
/// [`discover_forest_memo_with`] for its [`PassRunner`], shipped over the
/// wire via [`WaveTask::encode_bytes`]/[`WaveTask::decode_bytes`], and
/// executed by [`run_task`].
pub struct WaveTask {
    /// The relation to pass.
    pub rel: RelId,
    /// The pass's memo fingerprint (config + skeleton + relation content +
    /// incoming targets): a globally stable task identity the cluster
    /// layer partitions and logs by.
    pub key: u128,
    /// Threads handed to the intra-level precompute (1 inside parallel
    /// waves). Part of the task because the precompute split shows in the
    /// pass's work counters, which the report renders.
    pub intra_threads: usize,
    incoming: Vec<PartitionTarget>,
}

impl WaveTask {
    /// Serialize for dispatch to another process.
    pub fn encode_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        crate::wire::put_u32(&mut out, self.rel.0);
        crate::wire::put_u128(&mut out, self.key);
        crate::wire::put_usize(&mut out, self.intra_threads);
        crate::wire::put_usize(&mut out, self.incoming.len());
        for t in &self.incoming {
            crate::wire::put_target(&mut out, t);
        }
        out
    }

    /// Decode a task encoded by [`WaveTask::encode_bytes`].
    pub fn decode_bytes(bytes: &[u8]) -> Result<WaveTask, crate::wire::WireError> {
        let mut r = crate::wire::Reader::new(bytes);
        let rel = RelId(r.u32()?);
        let key = r.u128()?;
        let intra_threads = r.usize()?;
        let n = r.len(20)?;
        let mut incoming = Vec::with_capacity(n);
        for _ in 0..n {
            incoming.push(crate::wire::read_target(&mut r)?);
        }
        r.finish()?;
        Ok(WaveTask {
            rel,
            key,
            intra_threads,
            incoming,
        })
    }
}

/// Execute one [`WaveTask`] against a forest and return the encoded pass
/// output — the worker side of a cluster dispatch, and the reference
/// implementation a [`PassRunner`] must match: the coordinator falls back
/// to exactly this call (minus the codec round-trip) whenever a runner's
/// answer is missing or undecodable.
///
/// The relation id must be in range — callers validate tasks against the
/// forest they hold (the cluster worker checks `rel` before dispatch).
pub fn run_task(forest: &Forest, config: &DiscoveryConfig, task: &WaveTask) -> Vec<u8> {
    let out = process_relation(
        forest,
        task.rel,
        task.incoming.clone(),
        config,
        task.intra_threads,
    );
    crate::wire::encode_output(&out)
}

/// True when `task.rel` names a relation of `forest` — the bound
/// [`run_task`] requires.
pub fn task_in_bounds(forest: &Forest, task: &WaveTask) -> bool {
    (task.rel.index()) < forest.relations.len()
}

/// Executor hook for the misses of one wave: [`discover_forest_memo_with`]
/// hands every queued pass of the wave to the runner at once (they are
/// independent — same relation-tree depth) and decodes the answers in task
/// order. Entries that are `None` or fail to decode are recomputed in
/// process, so a runner can shed load or die without changing the output.
pub trait PassRunner {
    /// Run every task, returning encoded outputs ([`run_task`]'s bytes) in
    /// task order.
    fn run_wave(
        &mut self,
        forest: &Forest,
        config: &DiscoveryConfig,
        tasks: &[WaveTask],
    ) -> Vec<Option<Vec<u8>>>;
}

/// One relation of the current wave, fingerprinted up front.
struct WaveItem {
    rel: RelId,
    key: u128,
    /// Replayed output for memo hits; filled in later for misses.
    result: Option<RelationOutput>,
    cached: bool,
}

/// A memo miss queued for computation.
struct WaveJob {
    /// Index into the wave's `WaveItem` list.
    item: usize,
    rel: RelId,
    key: u128,
    incoming: Vec<PartitionTarget>,
}

/// Run the queued misses of one wave on a scoped worker pool, one thread
/// per pass (mirroring `discover_forest`'s split), and return each output
/// keyed by its wave-item index. A panicking pass propagates out of the
/// scope exactly like a panicking `discover_forest` worker would.
fn run_jobs_pooled(
    forest: &Forest,
    config: &DiscoveryConfig,
    jobs: &[WaveJob],
    workers: usize,
) -> HashMap<usize, RelationOutput> {
    let queue = AtomicUsize::new(0);
    let mut computed: HashMap<usize, RelationOutput> = HashMap::with_capacity(jobs.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut done: Vec<(usize, RelationOutput)> = Vec::new();
                    loop {
                        let j = queue.fetch_add(1, Ordering::Relaxed);
                        let Some(job) = jobs.get(j) else { break };
                        let out =
                            process_relation(forest, job.rel, job.incoming.clone(), config, 1);
                        done.push((job.item, out));
                    }
                    done
                })
            })
            .collect();
        for handle in handles {
            match handle.join() {
                Ok(done) => computed.extend(done),
                Err(panic) => std::panic::resume_unwind(panic),
            }
        }
    });
    computed
}

/// [`discover_forest`](crate::xfd::discover_forest) with a relation-pass
/// memo and a progress callback. Each wave is fingerprinted up front (a
/// wave member's parent lies in a shallower wave, so its incoming targets
/// are final when the wave starts); memo hits replay immediately and
/// bypass the queue, while the misses of a multi-relation wave drain from
/// a shared work queue on a `std::thread::scope` pool, one thread per pass
/// — the same split `discover_forest` uses, which its
/// parallel-equals-sequential invariant keeps byte-identical. Results
/// merge in wave order, so output and work counters never depend on the
/// thread count. The callback fires once per relation, deepest wave first.
pub fn discover_forest_memo(
    forest: &Forest,
    config: &DiscoveryConfig,
    memo: &mut RelationMemo,
    progress: impl FnMut(RelationProgress<'_>),
) -> ForestDiscovery {
    discover_forest_memo_with(forest, config, memo, progress, None)
}

/// [`discover_forest_memo`] with an optional [`PassRunner`] executing each
/// wave's memo misses — the cluster coordinator's entry point. With
/// `runner = None` the misses run on the in-process pool, byte-identically
/// to [`discover_forest_memo`]; with a runner they are dispatched as
/// [`WaveTask`]s and any answer that is missing or undecodable is
/// recomputed in process, so the output never depends on who computed a
/// pass. Memo hits always replay locally and never reach the runner.
pub fn discover_forest_memo_with(
    forest: &Forest,
    config: &DiscoveryConfig,
    memo: &mut RelationMemo,
    mut progress: impl FnMut(RelationProgress<'_>),
    mut runner: Option<&mut dyn PassRunner>,
) -> ForestDiscovery {
    memo.generation += 1;
    let mut base = ContentDigest::new();
    config_fingerprint(config, &mut base);
    skeleton_fingerprint(forest, &mut base);

    let mut out = ForestDiscovery {
        relations: Vec::with_capacity(forest.relations.len()),
        inter_fds: Vec::new(),
        inter_keys: Vec::new(),
        lattice_stats: RunStats::default(),
        target_stats: TargetStats::default(),
    };
    let mut inbox: HashMap<RelId, Vec<PartitionTarget>> = HashMap::new();
    let (depth, waves) = relation_waves(forest);
    let threads = config.effective_threads();

    for wave in waves.into_iter().rev() {
        // Mirror `discover_forest`'s thread split: a multi-relation wave
        // hands each relation pass one thread (they run in parallel), a
        // single-relation wave hands all threads to the intra-level
        // precompute. Matching it exactly keeps even the work counters
        // identical to the unmemoized traversal.
        let parallel_wave = threads > 1 && wave.len() > 1;
        let intra_threads = if parallel_wave { 1 } else { threads };

        // Fingerprint the whole wave, replaying hits as they surface.
        let mut items: Vec<WaveItem> = Vec::with_capacity(wave.len());
        let mut jobs: Vec<WaveJob> = Vec::new();
        for rel_id in wave {
            let incoming = inbox.remove(&rel_id).unwrap_or_default();
            let key = relation_fingerprint(forest, rel_id, &incoming, base);
            match memo.entries.get(&key) {
                Some(entry) => items.push(WaveItem {
                    rel: rel_id,
                    key,
                    result: Some(entry.output.clone()),
                    cached: true,
                }),
                None => {
                    jobs.push(WaveJob {
                        item: items.len(),
                        rel: rel_id,
                        key,
                        incoming,
                    });
                    items.push(WaveItem {
                        rel: rel_id,
                        key,
                        result: None,
                        cached: false,
                    });
                }
            }
        }

        // Compute the misses — dispatched to the runner when one is
        // installed, else pooled when the wave itself would have run in
        // parallel and there is more than one pass to run.
        let mut computed: HashMap<usize, RelationOutput> = match runner.as_deref_mut() {
            Some(r) if !jobs.is_empty() => {
                let item_of: Vec<usize> = jobs.iter().map(|j| j.item).collect();
                let tasks: Vec<WaveTask> = jobs
                    .drain(..)
                    .map(|job| WaveTask {
                        rel: job.rel,
                        key: job.key,
                        intra_threads,
                        incoming: job.incoming,
                    })
                    .collect();
                let answers = r.run_wave(forest, config, &tasks);
                let mut done = HashMap::with_capacity(tasks.len());
                for (i, task) in tasks.into_iter().enumerate() {
                    let decoded = answers
                        .get(i)
                        .and_then(|a| a.as_deref())
                        .and_then(|bytes| crate::wire::decode_output(bytes).ok())
                        // A forged relation id could route results to the
                        // wrong pass; recompute instead.
                        .filter(|out| out.local.rel == task.rel);
                    let out = match decoded {
                        Some(out) => out,
                        None => process_relation(
                            forest,
                            task.rel,
                            task.incoming,
                            config,
                            task.intra_threads,
                        ),
                    };
                    if let Some(&item) = item_of.get(i) {
                        done.insert(item, out);
                    }
                }
                done
            }
            _ if parallel_wave && jobs.len() > 1 => {
                run_jobs_pooled(forest, config, &jobs, threads.min(jobs.len()))
            }
            _ => jobs
                .drain(..)
                .map(|job| {
                    let out =
                        process_relation(forest, job.rel, job.incoming, config, intra_threads);
                    (job.item, out)
                })
                .collect(),
        };

        // Merge in wave order: memo updates, progress events, target
        // routing and counters are all independent of how (and on how many
        // threads) the passes ran.
        for (idx, item) in items.into_iter().enumerate() {
            let rel_id = item.rel;
            memo.tick += 1;
            let mut result = match item.result.or_else(|| computed.remove(&idx)) {
                Some(r) => r,
                // Unreachable: every item is either a replayed hit or a
                // queued job whose output landed under its index.
                None => continue,
            };
            if item.cached {
                memo.hits += 1;
                if let Some(entry) = memo.entries.get_mut(&item.key) {
                    entry.generation = memo.generation;
                    entry.last_used = memo.tick;
                }
            } else {
                memo.misses += 1;
                let bytes = approx_output_bytes(&result);
                memo.resident_bytes += bytes;
                memo.entries.insert(
                    item.key,
                    MemoEntry {
                        generation: memo.generation,
                        last_used: memo.tick,
                        bytes,
                        output: result.clone(),
                    },
                );
            }
            progress(RelationProgress {
                rel: rel_id,
                name: &forest.relation(rel_id).name,
                depth: depth.get(&rel_id).copied().unwrap_or(0),
                cached: item.cached,
                fds: result.local.fds.len(),
                keys: result.local.keys.len(),
                inter_fds: result.inter_fds.len(),
                inter_keys: result.inter_keys.len(),
            });
            out.inter_fds.append(&mut result.inter_fds);
            out.inter_keys.append(&mut result.inter_keys);
            out.lattice_stats.absorb(&result.lattice);
            out.target_stats.created += result.targets.created;
            out.target_stats.propagated += result.targets.propagated;
            out.target_stats.dropped_impossible += result.targets.dropped_impossible;
            out.target_stats.dropped_overflow += result.targets.dropped_overflow;
            out.relations.push(result.local);
            if let Some(parent) = forest.relation(rel_id).parent {
                let mut outgoing = result.outgoing;
                let room = config
                    .max_partition_targets
                    .saturating_sub(inbox.get(&parent).map_or(0, Vec::len));
                if outgoing.len() > room {
                    out.target_stats.dropped_overflow += outgoing.len() - room;
                    outgoing.truncate(room);
                }
                inbox.entry(parent).or_default().extend(outgoing);
            }
        }
        memo.enforce_budget();
    }
    out.relations.sort_by_key(|r| r.rel);
    minimize_inter(&mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::xfd::discover_forest;
    use xfd_relation::{encode, EncodeConfig};
    use xfd_schema::infer_schema;
    use xfd_xml::parse;

    const DOC: &str = "<w>\
        <state><sname>WA</sname>\
          <store><book><isbn>1</isbn><price>10</price></book>\
            <book><isbn>2</isbn><price>30</price></book>\
            <mag><m>1</m></mag><mag><m>2</m></mag></store>\
          <store><book><isbn>1</isbn><price>10</price></book>\
            <mag><m>1</m></mag></store>\
        </state>\
        <state><sname>KY</sname>\
          <store><book><isbn>1</isbn><price>12</price></book>\
            <mag><m>3</m></mag></store>\
        </state>\
        </w>";

    fn forest_of(xml: &str) -> Forest {
        let t = parse(xml).unwrap();
        let schema = infer_schema(&t);
        encode(&t, &schema, &EncodeConfig::default())
    }

    fn assert_same(a: &ForestDiscovery, b: &ForestDiscovery) {
        assert_eq!(a.inter_fds, b.inter_fds);
        assert_eq!(a.inter_keys, b.inter_keys);
        assert_eq!(a.relations.len(), b.relations.len());
        for (x, y) in a.relations.iter().zip(b.relations.iter()) {
            assert_eq!(x.rel, y.rel);
            assert_eq!(x.fds, y.fds);
            assert_eq!(x.keys, y.keys);
        }
        assert_eq!(a.lattice_stats, b.lattice_stats);
        assert_eq!(a.target_stats, b.target_stats);
    }

    #[test]
    fn memoized_run_matches_plain_discover_forest() {
        let forest = forest_of(DOC);
        let config = DiscoveryConfig::default();
        let plain = discover_forest(&forest, &config);
        let mut memo = RelationMemo::new();
        let cold = discover_forest_memo(&forest, &config, &mut memo, |_| {});
        assert_same(&plain, &cold);
        assert_eq!(memo.hits(), 0);
        assert!(memo.misses() > 0);
    }

    #[test]
    fn second_run_hits_on_every_relation_and_matches() {
        let forest = forest_of(DOC);
        let config = DiscoveryConfig::default();
        let mut memo = RelationMemo::new();
        let first = discover_forest_memo(&forest, &config, &mut memo, |_| {});
        let misses = memo.misses();
        let mut events = 0usize;
        let second = discover_forest_memo(&forest, &config, &mut memo, |p| {
            assert!(p.cached, "relation {} recomputed on warm run", p.name);
            events += 1;
        });
        assert_same(&first, &second);
        assert_eq!(memo.misses(), misses, "no new misses on identical forest");
        assert_eq!(events, forest.relations.len());
    }

    #[test]
    fn memoized_parallel_config_matches_plain_run_including_stats() {
        let forest = forest_of(DOC);
        let config = DiscoveryConfig {
            parallel: true,
            threads: 2,
            ..Default::default()
        };
        let plain = discover_forest(&forest, &config);
        let mut memo = RelationMemo::new();
        let out = discover_forest_memo(&forest, &config, &mut memo, |_| {});
        assert_same(&plain, &out);
    }

    #[test]
    fn changed_value_forces_partial_recompute() {
        let config = DiscoveryConfig::default();
        let mut memo = RelationMemo::new();
        let forest = forest_of(DOC);
        discover_forest_memo(&forest, &config, &mut memo, |_| {});
        // Same shape, one magazine id changed: the mag relation (and its
        // ancestors, whose incoming targets differ) recompute; the book
        // relation replays from cache.
        let dirty = forest_of(&DOC.replace("<m>3</m>", "<m>9</m>"));
        let mut cached_names: Vec<String> = Vec::new();
        let out = discover_forest_memo(&dirty, &config, &mut memo, |p| {
            if p.cached {
                cached_names.push(p.name.to_string());
            }
        });
        assert!(
            cached_names.iter().any(|n| n.contains("book")),
            "book relation should replay from cache, got {cached_names:?}"
        );
        assert_same(&out, &discover_forest(&dirty, &config));
    }

    #[test]
    fn different_config_never_replays_stale_entries() {
        let forest = forest_of(DOC);
        let mut memo = RelationMemo::new();
        discover_forest_memo(&forest, &DiscoveryConfig::default(), &mut memo, |_| {});
        let bounded = DiscoveryConfig {
            max_lhs_size: Some(1),
            ..Default::default()
        };
        let out = discover_forest_memo(&forest, &bounded, &mut memo, |p| {
            assert!(!p.cached, "config change must invalidate {}", p.name);
        });
        assert_same(&out, &discover_forest(&forest, &bounded));
    }

    #[test]
    fn pooled_wave_scheduling_matches_serial_for_every_thread_count() {
        let forest = forest_of(DOC);
        let serial_cfg = DiscoveryConfig::default();
        let mut serial_memo = RelationMemo::new();
        let serial = discover_forest_memo(&forest, &serial_cfg, &mut serial_memo, |_| {});
        for threads in [2usize, 8] {
            let config = DiscoveryConfig {
                parallel: true,
                threads,
                ..Default::default()
            };
            let plain = discover_forest(&forest, &config);
            let mut memo = RelationMemo::new();
            let cold = discover_forest_memo(&forest, &config, &mut memo, |_| {});
            assert_same(&plain, &cold);
            let warm = discover_forest_memo(&forest, &config, &mut memo, |p| {
                assert!(p.cached, "{} recomputed on warm pooled run", p.name);
            });
            assert_same(&cold, &warm);
            // Discovered artifacts are thread-count independent.
            assert_eq!(serial.inter_fds, cold.inter_fds);
            assert_eq!(serial.inter_keys, cold.inter_keys);
            for (a, b) in serial.relations.iter().zip(cold.relations.iter()) {
                assert_eq!(a.fds, b.fds);
                assert_eq!(a.keys, b.keys);
            }
        }
    }

    #[test]
    fn byte_budget_evicts_lru_and_tracks_residency() {
        let forest = forest_of(DOC);
        let config = DiscoveryConfig::default();
        // Measure an unbounded run first.
        let mut unbounded = RelationMemo::new();
        discover_forest_memo(&forest, &config, &mut unbounded, |_| {});
        let full = unbounded.resident_bytes();
        assert!(full > 0, "passes have nonzero footprint");

        // A budget below the working set forces evictions mid-run and
        // keeps residency bounded, without changing the output.
        let mut tight = RelationMemo::with_budget(full / 2);
        let out = discover_forest_memo(&forest, &config, &mut tight, |_| {});
        assert_same(&out, &discover_forest(&forest, &config));
        assert!(tight.evictions() > 0, "tight budget must evict");
        assert!(
            tight.resident_bytes() <= full / 2,
            "residency {} exceeds budget {}",
            tight.resident_bytes(),
            full / 2
        );
        let stats = tight.stats();
        assert_eq!(stats.evictions, tight.evictions());
        assert_eq!(stats.entries, tight.len());

        // Zero budget: everything evicts, every run is all misses, output
        // still correct.
        let mut zero = RelationMemo::with_budget(0);
        let first = discover_forest_memo(&forest, &config, &mut zero, |_| {});
        let second = discover_forest_memo(&forest, &config, &mut zero, |p| {
            assert!(!p.cached, "zero budget cannot hit");
        });
        assert_same(&first, &second);
        assert_eq!(zero.len(), 0);
        assert_eq!(zero.resident_bytes(), 0);
    }

    #[test]
    fn stale_generations_evict_before_current_ones() {
        let config = DiscoveryConfig::default();
        let forest = forest_of(DOC);
        let mut memo = RelationMemo::new();
        discover_forest_memo(&forest, &config, &mut memo, |_| {});
        let resident = memo.resident_bytes();
        // Allow the old generation plus a sliver: re-running on a changed
        // forest must evict *stale* entries first, so the warm rerun on
        // the new forest still hits everywhere.
        memo.set_budget(Some(resident + resident / 4));
        let dirty = forest_of(&DOC.replace("<sname>WA</sname>", "<sname>KY</sname>"));
        discover_forest_memo(&dirty, &config, &mut memo, |_| {});
        assert!(memo.evictions() > 0, "budget forces stale evictions");
        discover_forest_memo(&dirty, &config, &mut memo, |p| {
            assert!(p.cached, "{} should survive the stale-first sweep", p.name);
        });
    }

    #[test]
    fn pass_runner_roundtrip_matches_local_run() {
        // A runner that executes every task through the wire codec — the
        // moral equivalent of a remote worker on a verified forest.
        struct WireRunner {
            waves: usize,
            tasks: usize,
        }
        impl PassRunner for WireRunner {
            fn run_wave(
                &mut self,
                forest: &Forest,
                config: &DiscoveryConfig,
                tasks: &[WaveTask],
            ) -> Vec<Option<Vec<u8>>> {
                self.waves += 1;
                self.tasks += tasks.len();
                tasks
                    .iter()
                    .map(|t| {
                        let reparsed =
                            WaveTask::decode_bytes(&t.encode_bytes()).expect("task codec");
                        assert_eq!(reparsed.rel, t.rel);
                        assert_eq!(reparsed.key, t.key);
                        assert!(task_in_bounds(forest, &reparsed));
                        Some(run_task(forest, config, &reparsed))
                    })
                    .collect()
            }
        }
        let forest = forest_of(DOC);
        for config in [
            DiscoveryConfig::default(),
            DiscoveryConfig {
                parallel: true,
                threads: 4,
                ..Default::default()
            },
        ] {
            let mut local_memo = RelationMemo::new();
            let local = discover_forest_memo_with(&forest, &config, &mut local_memo, |_| {}, None);
            let mut runner = WireRunner { waves: 0, tasks: 0 };
            let mut memo = RelationMemo::new();
            let remote =
                discover_forest_memo_with(&forest, &config, &mut memo, |_| {}, Some(&mut runner));
            assert_same(&local, &remote);
            assert_eq!(
                runner.tasks,
                forest.relations.len(),
                "all misses dispatched"
            );
            assert_eq!(memo.misses(), local_memo.misses());
            // Warm rerun: hits replay locally, the runner sees nothing.
            let mut idle = WireRunner { waves: 0, tasks: 0 };
            let warm =
                discover_forest_memo_with(&forest, &config, &mut memo, |_| {}, Some(&mut idle));
            assert_same(&remote, &warm);
            assert_eq!(idle.tasks, 0, "memo hits never reach the runner");
        }
    }

    #[test]
    fn pass_runner_failures_fall_back_to_local_compute() {
        // A runner that sheds every other task and garbles the rest in
        // rotation: None, garbage bytes, a wrong-relation forgery.
        struct FlakyRunner {
            n: usize,
        }
        impl PassRunner for FlakyRunner {
            fn run_wave(
                &mut self,
                forest: &Forest,
                config: &DiscoveryConfig,
                tasks: &[WaveTask],
            ) -> Vec<Option<Vec<u8>>> {
                tasks
                    .iter()
                    .map(|t| {
                        self.n += 1;
                        match self.n % 3 {
                            0 => None,
                            1 => Some(b"not an output".to_vec()),
                            _ => {
                                // Valid bytes for the *wrong* relation.
                                let mut other = forest.relations.len() - 1;
                                if other == t.rel.index() {
                                    other = 0;
                                }
                                if other == t.rel.index() {
                                    return None;
                                }
                                let forged = WaveTask {
                                    rel: RelId(other as u32),
                                    key: 0,
                                    intra_threads: 1,
                                    incoming: Vec::new(),
                                };
                                Some(run_task(forest, config, &forged))
                            }
                        }
                    })
                    .collect()
            }
        }
        let forest = forest_of(DOC);
        let config = DiscoveryConfig::default();
        let mut memo_a = RelationMemo::new();
        let local = discover_forest_memo_with(&forest, &config, &mut memo_a, |_| {}, None);
        let mut flaky = FlakyRunner { n: 0 };
        let mut memo_b = RelationMemo::new();
        let out =
            discover_forest_memo_with(&forest, &config, &mut memo_b, |_| {}, Some(&mut flaky));
        assert_same(&local, &out);
        assert_eq!(memo_a.misses(), memo_b.misses());
    }

    #[test]
    fn prune_stale_keeps_only_the_latest_generation() {
        let forest = forest_of(DOC);
        let config = DiscoveryConfig::default();
        let mut memo = RelationMemo::new();
        discover_forest_memo(&forest, &config, &mut memo, |_| {});
        let n = memo.len();
        // Note: a pure *rename* (WA → OR) would change nothing — dictionary
        // ids are positional, so the cells stay identical and every pass
        // replays. Collapsing two distinct values changes the id structure.
        let dirty = forest_of(&DOC.replace("<sname>WA</sname>", "<sname>KY</sname>"));
        discover_forest_memo(&dirty, &config, &mut memo, |_| {});
        assert!(memo.len() > n, "both generations resident before pruning");
        memo.prune_stale();
        assert_eq!(memo.len(), n, "exactly the latest run's entries survive");
        // And the pruned memo still replays the latest forest fully.
        discover_forest_memo(&dirty, &config, &mut memo, |p| assert!(p.cached));
    }
}
