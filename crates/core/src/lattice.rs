//! Shared lattice helpers: candidate-LHS pruning (the paper's
//! `candidateLHS` / `candidateLHS2`), partition materialization, and the
//! speculative level-parallel partition precompute used by both lattice
//! passes (`discover_intra` and `DiscoverXFD`'s per-relation pass).

use xfd_hash::FxHashMap;
use xfd_partition::{
    AttrSet, CacheStats, ErrorOnlyProduct, Partition, PartitionCache, ProductScratch,
};

use crate::config::PruneConfig;

/// A discovered minimal intra-relation FD `lhs → rhs` (attribute indices).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IntraFd {
    /// LHS attribute set.
    pub lhs: AttrSet,
    /// RHS attribute index.
    pub rhs: usize,
}

/// Compute the candidate LHSs for lattice node `a_set` — the paper's
/// `candidateLHS` (Figure 8) with the pruning repairs documented in
/// DESIGN.md. Each candidate is `a_set` minus one attribute; a candidate is
/// dropped when the edge it represents cannot yield a minimal FD:
///
/// * **rule 1**: some satisfied `L → r` has `r = a` and `L ⊆ A_L` — the FD
///   `A_L → a` is implied;
/// * **rule 2** (repaired; only with `use_rule2`, i.e. `candidateLHS`
///   rather than `candidateLHS2`): some satisfied `L → r` has `r ∈ A_L`
///   and `L ⊆ A_L ∖ {r}` — `A_L` contains a derivable attribute, so any FD
///   from it is non-minimal.
///
/// With `empty_lhs`, singleton nodes get the candidate `∅` (the edge
/// `∅ → a`, discovering constant columns).
pub fn candidate_lhs(
    a_set: AttrSet,
    fds: &[IntraFd],
    prune: &PruneConfig,
    use_rule2: bool,
    empty_lhs: bool,
) -> Vec<AttrSet> {
    let mut out = Vec::new();
    if a_set.len() == 1 {
        if !empty_lhs {
            return out;
        }
        let a = a_set.max_attr().expect("non-empty");
        let pruned = prune.rule1 && fds.iter().any(|fd| fd.rhs == a && fd.lhs.is_empty());
        if !pruned {
            out.push(AttrSet::empty());
        }
        return out;
    }
    'cands: for a in a_set.iter() {
        let al = a_set.remove(a);
        for fd in fds {
            if prune.rule1 && fd.rhs == a && fd.lhs.is_subset_of(al) {
                continue 'cands;
            }
            if use_rule2
                && prune.rule2
                && al.contains(fd.rhs)
                && fd.lhs.is_subset_of(al.remove(fd.rhs))
            {
                continue 'cands;
            }
        }
        out.push(al);
    }
    out
}

/// Materialize `Π_{a_set}` in the cache, preferring the paper's
/// two-operand product over candidate LHSs (lines 9–10 of Figure 8) and
/// falling back to folding single-attribute partitions when an operand was
/// never materialized (possible after aggressive pruning).
pub fn materialize(
    cache: &mut PartitionCache,
    a_set: AttrSet,
    candidates: &[AttrSet],
) -> Partition {
    ensure(cache, a_set, candidates);
    cache.get(a_set).expect("ensured").clone()
}

/// Like [`materialize`] but without handing out an owned copy: after this
/// returns, `cache.get(a_set)` is guaranteed `Some`, so callers can borrow
/// several partitions immutably at once (the lattice hot path compares
/// `Π_{A_L}` against `Π_A` without cloning either).
pub fn ensure(cache: &mut PartitionCache, a_set: AttrSet, candidates: &[AttrSet]) {
    if cache.get(a_set).is_some() {
        return;
    }
    // Two candidates whose union is a_set (each lacks a distinct attribute).
    if candidates.len() >= 2 {
        let (c1, c2) = (candidates[0], candidates[1]);
        if cache.get(c1).is_some() && cache.get(c2).is_some() {
            debug_assert_eq!(c1.union(c2), a_set);
            cache.product(c1, c2);
            return;
        }
    }
    if let Some(&c1) = candidates.first() {
        let rest = a_set.minus(c1);
        if cache.get(c1).is_some() && cache.get(rest).is_some() {
            cache.product(c1, rest);
            return;
        }
    }
    // Fallback: fold over single attributes.
    let mut iter = a_set.iter();
    let first = AttrSet::single(iter.next().expect("ensure on empty set"));
    let mut acc = first;
    for a in iter {
        cache.product(acc, AttrSet::single(a));
        acc = acc.insert(a);
    }
}

/// [`ensure`] for the tiered kernel's frontier: identical operand
/// preferences plus one extra pass — any *fully resident* candidate pairs
/// with its single-attribute complement — so a frontier node whose first
/// two candidates were validation-only (summary tier) still avoids the
/// fold. Kept separate from [`ensure`] so the materializing kernel's work
/// counters stay exactly as they were.
pub(crate) fn ensure_full(cache: &mut PartitionCache, a_set: AttrSet, candidates: &[AttrSet]) {
    if cache.get(a_set).is_some() {
        return;
    }
    if candidates.len() >= 2 {
        let (c1, c2) = (candidates[0], candidates[1]);
        if cache.get(c1).is_some() && cache.get(c2).is_some() {
            debug_assert_eq!(c1.union(c2), a_set);
            cache.product(c1, c2);
            return;
        }
    }
    for &c1 in candidates {
        let rest = a_set.minus(c1);
        if cache.get(c1).is_some() && cache.get(rest).is_some() {
            cache.product(c1, rest);
            return;
        }
    }
    let mut iter = a_set.iter();
    let first = AttrSet::single(iter.next().expect("ensure_full on empty set"));
    let mut acc = first;
    for a in iter {
        cache.product(acc, AttrSet::single(a));
        acc = acc.insert(a);
    }
}

/// Tiered-kernel analogue of [`ensure`]: obtain the exact summary of
/// `Π_{a_set}` (or an early-exit proof against `bound`) without
/// materializing the product. Since `Π_{a_set} = Π_{a_set∖{a}} · Π_a` for
/// any `a ∈ a_set`, *one* resident parent suffices: the parent is refined
/// through the missing attribute's cached base map
/// ([`PartitionCache::product_summary_base`]), which costs a single scan of
/// the parent's stripped tuples with no probe-table setup or reset.
/// Candidates are preferred in order (the frontier materializes the first
/// one), then any resident parent (pruning can drop the materialized
/// candidate from the list between levels), and only if every parent was
/// evicted does this refold one from the bases.
///
/// The outcome is operand-independent: `BelowBound` fires iff
/// `0 < e(Π_{a_set}) < bound` no matter which parent is scanned, so work
/// counters and results stay deterministic.
pub(crate) fn ensure_summary(
    cache: &mut PartitionCache,
    a_set: AttrSet,
    candidates: &[AttrSet],
    bound: Option<usize>,
) -> ErrorOnlyProduct {
    if let Some(s) = cache.summary_of(a_set) {
        return ErrorOnlyProduct::Exact(s);
    }
    for &c in candidates {
        let diff = a_set.minus(c);
        if diff.len() == 1 && cache.get(c).is_some() {
            let attr = diff.max_attr().expect("one attribute");
            return cache.product_summary_base(c, attr, bound);
        }
    }
    for attr in a_set.iter() {
        let parent = a_set.remove(attr);
        if cache.get(parent).is_some() {
            return cache.product_summary_base(parent, attr, bound);
        }
    }
    // Every parent was evicted (byte budget): refold one from the bases and
    // finish with the error-only refinement step.
    let attr = a_set.max_attr().expect("ensure_summary on empty set");
    let parent = a_set.remove(attr);
    ensure_full(cache, parent, &[]);
    cache.product_summary_base(parent, attr, bound)
}

/// Exact error of `Π_{al}` for candidate validation under the tiered
/// kernel: O(1) from either cache tier when known; otherwise recomputed
/// error-only (possible when the frontier pass skipped `al` — e.g. it was
/// key-covered at the boundary — or a byte budget evicted it).
pub(crate) fn candidate_error(
    cache: &mut PartitionCache,
    al: AttrSet,
    fds: &[IntraFd],
    prune: &PruneConfig,
    use_rule2: bool,
    empty_lhs: bool,
) -> usize {
    if let Some(e) = cache.error_of(al) {
        return e;
    }
    let cands = candidate_lhs(al, fds, prune, use_rule2, empty_lhs);
    match ensure_summary(cache, al, &cands, None) {
        ErrorOnlyProduct::Exact(s) => s.error,
        ErrorOnlyProduct::BelowBound => unreachable!("no bound was given"),
    }
}

/// Materialize the partitions the *next* lattice level will use as product
/// operands, now that the current level's summaries identified them. Run at
/// the end of each level by the tiered sequential traversal (`threads ≤ 1`;
/// the parallel precompute already materializes everything it touches).
///
/// For each next-level node [`ensure_summary`] refines *one* resident
/// parent through a base map, so only the first candidate becomes a full
/// partition. With `all_candidates` (inter-relation passes) every candidate
/// is materialized instead: a failing edge `A_L → a` builds its partition
/// target by scanning the full `Π_{A_L}`. Without it, the remaining
/// candidates only feed error comparisons, so an exact summary suffices.
///
/// Why every partition this pass needs is obtainable: candidate lists only
/// shrink as FDs/keys are discovered (pruning is monotone), so next-level
/// candidates seen *here* are supersets of the ones the next level will
/// compute, and each such candidate is a node of the current level whose
/// operands (previous-level partitions) are still resident —
/// `evict_below(level − 2)` runs at level *starts*, after this pass used
/// them.
#[allow(clippy::too_many_arguments)]
pub(crate) fn materialize_frontier(
    cache: &mut PartitionCache,
    next_level: &[AttrSet],
    fds: &[IntraFd],
    keys: &[AttrSet],
    prune: &PruneConfig,
    use_rule2: bool,
    empty_lhs: bool,
    all_candidates: bool,
) {
    for &b in next_level {
        if prune.key_prune && keys.iter().any(|k| k.is_subset_of(b)) {
            continue;
        }
        let cands = candidate_lhs(b, fds, prune, use_rule2, empty_lhs);
        if b.len() > 1 && cands.is_empty() {
            continue;
        }
        for (idx, &al) in cands.iter().enumerate() {
            if cache.get(al).is_some() {
                continue;
            }
            let al_cands = candidate_lhs(al, fds, prune, use_rule2, empty_lhs);
            if idx == 0 || all_candidates {
                ensure_full(cache, al, &al_cands);
            } else if cache.summary_of(al).is_none() {
                let _ = ensure_summary(cache, al, &al_cands, None);
            }
        }
    }
}

/// A worker-local overlay over the shared (read-only) cache: lookups fall
/// through to the base, all writes stay local. Workers never mutate the
/// shared cache, so several of them can run against it at once.
struct Overlay<'a> {
    base: &'a PartitionCache,
    local: FxHashMap<AttrSet, Partition>,
    /// Insertion order of `local`, so the merge is deterministic.
    order: Vec<AttrSet>,
    scratch: ProductScratch,
    products: usize,
}

impl<'a> Overlay<'a> {
    fn new(base: &'a PartitionCache) -> Self {
        Overlay {
            base,
            local: FxHashMap::default(),
            order: Vec::new(),
            scratch: ProductScratch::new(),
            products: 0,
        }
    }

    fn get(&self, attrs: AttrSet) -> Option<&Partition> {
        self.local.get(&attrs).or_else(|| self.base.get(attrs))
    }

    fn product(&mut self, a: AttrSet, b: AttrSet) {
        let target = a.union(b);
        if self.get(target).is_some() {
            return;
        }
        let mut scratch = std::mem::take(&mut self.scratch);
        let pa = self.get(a).expect("operand partition must be available");
        let pb = self.get(b).expect("operand partition must be available");
        let prod = pa.product_in(pb, &mut scratch);
        self.scratch = scratch;
        self.products += 1;
        self.local.insert(target, prod);
        self.order.push(target);
    }

    /// Mirror of [`ensure`] against the overlay.
    fn ensure(&mut self, a_set: AttrSet, candidates: &[AttrSet]) {
        if self.get(a_set).is_some() {
            return;
        }
        if candidates.len() >= 2 {
            let (c1, c2) = (candidates[0], candidates[1]);
            if self.get(c1).is_some() && self.get(c2).is_some() {
                debug_assert_eq!(c1.union(c2), a_set);
                self.product(c1, c2);
                return;
            }
        }
        if let Some(&c1) = candidates.first() {
            let rest = a_set.minus(c1);
            if self.get(c1).is_some() && self.get(rest).is_some() {
                self.product(c1, rest);
                return;
            }
        }
        let mut iter = a_set.iter();
        let first = AttrSet::single(iter.next().expect("ensure on empty set"));
        let mut acc = first;
        for a in iter {
            self.product(acc, AttrSet::single(a));
            acc = acc.insert(a);
        }
    }
}

/// Speculatively materialize the partitions one lattice level will need, on
/// `threads` scoped workers, and merge them into `cache` in deterministic
/// node order.
///
/// Correctness argument (why the follow-up sequential replay over `nodes`
/// is bit-identical to a run without this call): the FD and key lists only
/// *grow* while a level is processed, and every pruning rule is monotone in
/// them, so the candidate sets computed here from the level-*start* state
/// are supersets of the ones the replay will compute — the replay never
/// needs a partition this pass did not consider. And a [`Partition`] is a
/// canonical value determined solely by its attribute set (see
/// `xfd_partition::partition`), so it does not matter which operand pair a
/// worker used to build it, nor which worker's duplicate wins the merge.
/// The replay therefore sees identical partition values at every lookup and
/// makes identical decisions; the only side effects are extra speculative
/// products (for nodes the replay key-prunes mid-level), which show up in
/// the work counters but never in the discovered FDs/keys.
#[allow(clippy::too_many_arguments)]
pub(crate) fn precompute_level(
    cache: &mut PartitionCache,
    nodes: &[AttrSet],
    fds: &[IntraFd],
    keys: &[AttrSet],
    prune: &PruneConfig,
    use_rule2: bool,
    empty_lhs: bool,
    threads: usize,
) {
    if threads <= 1 || nodes.len() < 2 {
        return;
    }
    let n_workers = threads.min(nodes.len());
    let chunk_size = nodes.len().div_ceil(n_workers);
    let shared: &PartitionCache = cache;
    let worker_results: Vec<(Vec<(AttrSet, Partition)>, usize)> = std::thread::scope(|scope| {
        let handles: Vec<_> = nodes
            .chunks(chunk_size)
            .map(|chunk| {
                scope.spawn(move || {
                    let mut ov = Overlay::new(shared);
                    for &a_set in chunk {
                        if prune.key_prune && keys.iter().any(|k| k.is_subset_of(a_set)) {
                            continue;
                        }
                        let cands = candidate_lhs(a_set, fds, prune, use_rule2, empty_lhs);
                        if a_set.len() > 1 && cands.is_empty() {
                            continue;
                        }
                        ov.ensure(a_set, &cands);
                        if ov.get(a_set).expect("ensured").is_key() {
                            continue;
                        }
                        for &al in &cands {
                            ov.ensure(al, &[]);
                        }
                    }
                    let Overlay {
                        mut local,
                        order,
                        products,
                        ..
                    } = ov;
                    let built: Vec<(AttrSet, Partition)> = order
                        .into_iter()
                        .map(|s| {
                            let p = local.remove(&s).expect("ordered entry present");
                            (s, p)
                        })
                        .collect();
                    (built, products)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("level precompute worker"))
            .collect()
    });
    let mut stats = CacheStats::default();
    for (built, products) in worker_results {
        stats.products += products;
        stats.products_materialized += products;
        stats.partitions_built += products;
        for (attrs, partition) in built {
            cache.adopt(attrs, partition);
        }
    }
    cache.absorb_stats(&stats);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fd(lhs: &[usize], rhs: usize) -> IntraFd {
        IntraFd {
            lhs: AttrSet::from_iter(lhs.iter().copied()),
            rhs,
        }
    }

    #[test]
    fn no_fds_yields_all_candidates() {
        let prune = PruneConfig::default();
        let cands = candidate_lhs(AttrSet::from_iter([0, 1, 2]), &[], &prune, true, true);
        assert_eq!(cands.len(), 3);
    }

    #[test]
    fn rule1_drops_implied_edges() {
        // B → C satisfied; node {B, C}: candidate {B} → C pruned.
        let prune = PruneConfig::default();
        let fds = [fd(&[1], 2)];
        let cands = candidate_lhs(AttrSet::from_iter([1, 2]), &fds, &prune, true, true);
        // Candidate A_L = {1} (rhs 2) pruned by rule 1; A_L = {2} (rhs 1)
        // pruned by repaired rule 2 ({2} contains derivable... no: r=2 ∈ {2},
        // L={1} ⊄ ∅). So {2} survives.
        assert_eq!(cands, vec![AttrSet::single(2)]);
    }

    #[test]
    fn repaired_rule2_requires_rhs_in_candidate() {
        // B → C satisfied. Node {A, B, D}: candidate {A,B} → D must SURVIVE
        // (C ∉ {A,B}); the paper's literal line 24 would wrongly drop it.
        let prune = PruneConfig::default();
        let fds = [fd(&[1], 2)];
        let cands = candidate_lhs(AttrSet::from_iter([0, 1, 3]), &fds, &prune, true, true);
        assert!(cands.contains(&AttrSet::from_iter([0, 1])), "{cands:?}");
    }

    #[test]
    fn rule2_drops_candidates_with_derivable_attrs() {
        // B → C satisfied. Node {B, C, D}: candidate {B,C} → D contains C
        // derivable from B ⊆ {B}: pruned. Candidate {C,D} → B: r=C? fd rhs=2∈{2,3}, L={1}⊄{3}: survives.
        let prune = PruneConfig::default();
        let fds = [fd(&[1], 2)];
        let cands = candidate_lhs(AttrSet::from_iter([1, 2, 3]), &fds, &prune, true, true);
        assert!(!cands.contains(&AttrSet::from_iter([1, 2])));
        assert!(cands.contains(&AttrSet::from_iter([2, 3])));
        // {B,D} → C pruned by rule 1 (B → C with {B} ⊆ {B,D}).
        assert!(!cands.contains(&AttrSet::from_iter([1, 3])));
    }

    #[test]
    fn candidate_lhs2_skips_rule2() {
        let prune = PruneConfig::default();
        let fds = [fd(&[1], 2)];
        let cands = candidate_lhs(AttrSet::from_iter([1, 2, 3]), &fds, &prune, false, true);
        // Without rule 2, {B,C} → D is kept.
        assert!(cands.contains(&AttrSet::from_iter([1, 2])));
    }

    #[test]
    fn empty_lhs_candidates_for_singletons() {
        let prune = PruneConfig::default();
        let with = candidate_lhs(AttrSet::single(4), &[], &prune, true, true);
        assert_eq!(with, vec![AttrSet::empty()]);
        let without = candidate_lhs(AttrSet::single(4), &[], &prune, true, false);
        assert!(without.is_empty());
        // ∅ → 4 already found: pruned by rule 1.
        let fds = [fd(&[], 4)];
        let pruned = candidate_lhs(AttrSet::single(4), &fds, &prune, true, true);
        assert!(pruned.is_empty());
    }

    #[test]
    fn disabled_rules_keep_everything() {
        let prune = PruneConfig {
            rule1: false,
            rule2: false,
            key_prune: false,
        };
        let fds = [fd(&[1], 2)];
        let cands = candidate_lhs(AttrSet::from_iter([1, 2]), &fds, &prune, true, true);
        assert_eq!(cands.len(), 2);
    }

    #[test]
    fn precompute_level_warms_the_cache_for_sequential_replay() {
        use xfd_partition::Partition;
        let cols: Vec<Vec<Option<u64>>> = vec![
            vec![Some(1), Some(1), Some(2), Some(2), Some(3)],
            vec![Some(5), Some(5), Some(6), Some(6), Some(7)],
            vec![Some(1), Some(2), Some(1), Some(2), Some(1)],
            vec![Some(4), Some(4), Some(4), Some(9), Some(9)],
        ];
        let mut warm = PartitionCache::new();
        let mut cold = PartitionCache::new();
        for c in [&mut warm, &mut cold] {
            c.insert(AttrSet::empty(), Partition::universal(5));
            for (i, col) in cols.iter().enumerate() {
                c.insert(AttrSet::single(i), Partition::from_column(col));
            }
        }
        // Level 2: all pairs.
        let nodes: Vec<AttrSet> = (0..4)
            .flat_map(|a| (a + 1..4).map(move |b| AttrSet::from_iter([a, b])))
            .collect();
        let prune = PruneConfig::default();
        precompute_level(&mut warm, &nodes, &[], &[], &prune, true, true, 3);
        // Every node the replay will ensure is already resident, with the
        // exact value a sequential build produces.
        for &node in &nodes {
            let cands = candidate_lhs(node, &[], &prune, true, true);
            ensure(&mut cold, node, &cands);
            assert_eq!(
                warm.get(node).expect("precomputed"),
                cold.get(node).expect("ensured"),
                "partition for {node:?} differs"
            );
        }
        // The replay over a warm cache computes zero further products.
        let before = warm.stats().products;
        for &node in &nodes {
            let cands = candidate_lhs(node, &[], &prune, true, true);
            ensure(&mut warm, node, &cands);
        }
        assert_eq!(warm.stats().products, before);
    }

    #[test]
    fn materialize_falls_back_to_fold() {
        use xfd_partition::Partition;
        let mut cache = PartitionCache::new();
        for (i, col) in [
            vec![Some(1), Some(1), Some(2), Some(2)],
            vec![Some(5), Some(6), Some(5), Some(5)],
            vec![Some(9), Some(9), Some(9), Some(8)],
        ]
        .iter()
        .enumerate()
        {
            cache.insert(AttrSet::single(i), Partition::from_column(col));
        }
        let target = AttrSet::from_iter([0, 1, 2]);
        // No candidates cached → fold path.
        let p = materialize(&mut cache, target, &[]);
        assert_eq!(p.groups().len(), 0, "all distinct combinations");
        // Re-materializing hits the cache.
        let p2 = materialize(&mut cache, target, &[]);
        assert_eq!(p, p2);
    }
}
