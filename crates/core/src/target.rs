//! Partition targets (Figure 10): candidate partial FDs carried up the
//! relation tree.
//!
//! A partition target is created from a lattice edge `A_L → a` of relation
//! `R_p` that is *not* satisfied across the whole relation but might be
//! satisfied once ancestor attributes join the LHS (Lemma 3). It carries:
//!
//! * `fd_target` — the pairs of parent tuples that must be separated for
//!   the extended FD to hold: one pair per *conflicting* tuple pair of
//!   `R_p` (same `Π_{A_L}` group, different `Π_{A_L∪{a}}` group — including
//!   pairs where a tuple is a stripped singleton of the product, e.g. a
//!   null RHS; the paper's `createPT` line 13 mistakenly files leftover
//!   residual pairs under `KeyTarget`, see DESIGN.md);
//! * `key_target` — the *additional* pairs (same group of both partitions)
//!   that must also be separated for the extended LHS to be an XML Key;
//!   `None` once a key pair collapses onto a single ancestor tuple
//!   (invalid: the key can never be satisfied).
//!
//! A conflicting pair that collapses onto one parent tuple makes the FD
//! itself unsatisfiable under individual parents — no target is created
//! ([`CreateOutcome::Impossible`], the paper's `return NULL`).

use xfd_partition::{AttrSet, Collapse, GroupMap, PairSet, Partition, Tuple};
use xfd_relation::RelId;

/// A partition target in flight. `fd_target`/`key_target` pairs live in the
/// tuple space of the relation *currently being processed* (they are mapped
/// through the tuple→parent index each time they move up).
#[derive(Debug, Clone)]
pub struct PartitionTarget {
    /// Relation whose tuple class the candidate FD is about.
    pub origin: RelId,
    /// RHS column index in the origin relation.
    pub rhs: usize,
    /// Accumulated LHS: `(relation, attribute set)` per level, origin first.
    pub lhs_levels: Vec<(RelId, AttrSet)>,
    /// Pairs that must be separated for the FD.
    pub fd_target: PairSet,
    /// Additional pairs for the Key; `None` = invalid (key unsatisfiable).
    pub key_target: Option<PairSet>,
    /// Attribute sets (of the relation currently processing this target)
    /// that already satisfied the FD — for minimal emission.
    pub satisfied_fd: Vec<AttrSet>,
    /// Attribute sets that already satisfied the Key.
    pub satisfied_key: Vec<AttrSet>,
}

/// Result of [`create_target`].
#[derive(Debug)]
pub enum CreateOutcome {
    /// A viable candidate partial FD.
    Target(Box<PartitionTarget>),
    /// Two same-parent tuples violate the FD: unsatisfiable (paper line 11).
    Impossible,
    /// The pair sets exceeded `max_pairs` — dropped, counted by the caller.
    Overflow,
}

/// Build a partition target from an unsatisfied edge `A_L → a` of a
/// relation with parent index `parent_of` (the paper's `createPT`).
///
/// `pl` is `Π_{A_L}`, `pa` is `Π_{A_L ∪ {a}}` (which refines `pl`).
#[allow(clippy::too_many_arguments)]
pub fn create_target(
    origin: RelId,
    rhs: usize,
    lhs: AttrSet,
    pl: &Partition,
    pa: &Partition,
    parent_of: &[Tuple],
    max_pairs: usize,
) -> CreateOutcome {
    let gm = GroupMap::new(pa);
    create_target_keyed(
        origin,
        rhs,
        lhs,
        pl,
        |t| gm.group_of(t),
        parent_of,
        max_pairs,
    )
}

/// [`create_target`] keyed by the *single-attribute base* partition of the
/// RHS instead of the materialized product `Π_{A_L∪{a}}`. Within one group
/// of `Π_{A_L}` (members agree on `A_L`), two tuples share a product group
/// exactly when they share an RHS base group, and a tuple stripped from the
/// product (its `{A_L, a}` combination is unique, or its RHS is ⊥) is
/// either alone in its base bucket or base-⊥ — its own subgroup in both
/// decompositions. First-touch subgroup order is the member scan order
/// either way, so the outcome is *identical* to [`create_target`] — without
/// materializing the product or building a per-edge O(n) group map.
#[allow(clippy::too_many_arguments)]
pub fn create_target_from_base(
    origin: RelId,
    rhs: usize,
    lhs: AttrSet,
    pl: &Partition,
    rhs_groups: &GroupMap,
    parent_of: &[Tuple],
    max_pairs: usize,
) -> CreateOutcome {
    create_target_keyed(
        origin,
        rhs,
        lhs,
        pl,
        |t| rhs_groups.group_of(t),
        parent_of,
        max_pairs,
    )
}

fn create_target_keyed(
    origin: RelId,
    rhs: usize,
    lhs: AttrSet,
    pl: &Partition,
    key_of: impl Fn(Tuple) -> Option<u32>,
    parent_of: &[Tuple],
    max_pairs: usize,
) -> CreateOutcome {
    let mut fd_pairs = PairSet::new();
    let mut key_pairs: Option<PairSet> = Some(PairSet::new());
    let mut n_pairs = 0usize;

    for g1 in pl.groups() {
        // Bucket g1's members by their refining-partition subgroup; `None`
        // (stripped singleton) members are each their own subgroup.
        let mut subgroups: Vec<(Option<u32>, Vec<Tuple>)> = Vec::new();
        for &t in g1 {
            match key_of(t) {
                Some(g) => match subgroups.iter_mut().find(|(k, _)| *k == Some(g)) {
                    Some((_, v)) => v.push(t),
                    None => subgroups.push((Some(g), vec![t])),
                },
                None => subgroups.push((None, vec![t])),
            }
        }
        // FD pairs: across subgroups. Key pairs: within subgroups.
        for i in 0..subgroups.len() {
            for j in i + 1..subgroups.len() {
                for &t1 in &subgroups[i].1 {
                    for &t2 in &subgroups[j].1 {
                        n_pairs += 1;
                        if n_pairs > max_pairs {
                            return CreateOutcome::Overflow;
                        }
                        let p1 = parent_of[t1 as usize];
                        let p2 = parent_of[t2 as usize];
                        if p1 == p2 {
                            return CreateOutcome::Impossible;
                        }
                        fd_pairs.insert(p1, p2);
                    }
                }
            }
            if let Some(kp) = key_pairs.as_mut() {
                let members = &subgroups[i].1;
                'key: for a in 0..members.len() {
                    for b in a + 1..members.len() {
                        n_pairs += 1;
                        if n_pairs > max_pairs {
                            return CreateOutcome::Overflow;
                        }
                        let p1 = parent_of[members[a] as usize];
                        let p2 = parent_of[members[b] as usize];
                        if p1 == p2 {
                            key_pairs = None; // invalid, FD may still live
                            break 'key;
                        }
                        kp.insert(p1, p2);
                    }
                }
            }
        }
    }
    debug_assert!(
        !fd_pairs.is_empty(),
        "create_target called on a satisfied edge"
    );
    CreateOutcome::Target(Box::new(PartitionTarget {
        origin,
        rhs,
        lhs_levels: vec![(origin, lhs)],
        fd_target: fd_pairs,
        key_target: key_pairs,
        satisfied_fd: Vec::new(),
        satisfied_key: Vec::new(),
    }))
}

/// Map a target's still-unsatisfied pairs to the parent relation's tuple
/// space, extending the LHS with `(rel, attrs)` when `attrs` is non-empty
/// (the paper's `updatePT`). Returns `None` when an FD pair collapses.
pub fn update_target(
    pt: &PartitionTarget,
    rel: RelId,
    attrs: AttrSet,
    remaining_fd: PairSet,
    remaining_key: Option<PairSet>,
    parent_of: &[Tuple],
) -> Option<PartitionTarget> {
    let fd_target = match remaining_fd.map_to_parent(parent_of) {
        Collapse::Mapped(p) => p,
        Collapse::Impossible => return None,
    };
    let key_target = remaining_key.and_then(|kt| match kt.map_to_parent(parent_of) {
        Collapse::Mapped(p) => Some(p),
        Collapse::Impossible => None,
    });
    let mut lhs_levels = pt.lhs_levels.clone();
    if !attrs.is_empty() {
        lhs_levels.push((rel, attrs));
    }
    Some(PartitionTarget {
        origin: pt.origin,
        rhs: pt.rhs,
        lhs_levels,
        fd_target,
        key_target,
        satisfied_fd: Vec::new(),
        satisfied_key: Vec::new(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's worked example (Section 4.3): `{./ISBN} → ./price`
    /// w.r.t. C_book over the Figure 6 data. Book tuples 1,2,3 (t30, t50,
    /// t80) share an ISBN; prices are 59.99, 59.99, ⊥; parents are stores
    /// 0,1,2 (t12, t42, t72).
    fn paper_example() -> (Partition, Partition, Vec<Tuple>) {
        // tuples: 0=t20, 1=t30, 2=t50, 3=t80
        let isbn = [Some(1u64), Some(2), Some(2), Some(2)];
        let price = [Some(10u64), Some(20), Some(20), None];
        let pl = Partition::from_column(&isbn);
        let paired: Vec<Option<u64>> = isbn
            .iter()
            .zip(price.iter())
            .map(|(a, b)| match (a, b) {
                (Some(a), Some(b)) => Some(a * 100 + b),
                _ => None,
            })
            .collect();
        let pa = Partition::from_column(&paired);
        let parent_of = vec![0, 0, 1, 2];
        (pl, pa, parent_of)
    }

    #[test]
    fn create_target_reproduces_the_papers_inequalities() {
        let (pl, pa, parent_of) = paper_example();
        let out = create_target(
            RelId(3),
            2,
            AttrSet::single(0),
            &pl,
            &pa,
            &parent_of,
            10_000,
        );
        let CreateOutcome::Target(pt) = out else {
            panic!("expected target")
        };
        // FDTarget: t30≠t80, t50≠t80 → stores (0,2) and (1,2).
        let mut fd: Vec<(Tuple, Tuple)> = pt.fd_target.pairs().to_vec();
        fd.sort_unstable();
        assert_eq!(fd, vec![(0, 2), (1, 2)]);
        // KeyTarget: t30≠t50 → stores (0,1).
        assert_eq!(pt.key_target.as_ref().unwrap().pairs(), &[(0, 1)]);
    }

    #[test]
    fn same_parent_conflict_is_impossible() {
        // Two conflicting tuples under the same parent.
        let lhs = [Some(1u64), Some(1)];
        let rhs = [Some(5u64), Some(6)];
        let pl = Partition::from_column(&lhs);
        let pa = Partition::from_column(&[Some(15u64), Some(16)]);
        let _ = rhs;
        let out = create_target(RelId(1), 1, AttrSet::single(0), &pl, &pa, &[0, 0], 100);
        assert!(matches!(out, CreateOutcome::Impossible));
    }

    #[test]
    fn same_parent_key_pair_invalidates_only_the_key() {
        // Tuples 0,1: same LHS, same RHS, same parent → key impossible;
        // tuple 2: same LHS, different RHS, different parent → FD viable.
        let lhs = [Some(1u64), Some(1), Some(1)];
        let both = [Some(11u64), Some(11), Some(12)];
        let pl = Partition::from_column(&lhs);
        let pa = Partition::from_column(&both);
        let out = create_target(RelId(1), 1, AttrSet::single(0), &pl, &pa, &[0, 0, 1], 100);
        let CreateOutcome::Target(pt) = out else {
            panic!("expected target")
        };
        assert!(pt.key_target.is_none(), "key collapsed");
        assert_eq!(pt.fd_target.pairs(), &[(0, 1)]);
    }

    #[test]
    fn null_rhs_tuples_are_fd_conflicts_not_key_pairs() {
        // Erratum fix: three tuples share the LHS; two have unique/⊥ RHS.
        // Both leftover tuples conflict with everything in the group.
        let lhs = [Some(1u64), Some(1), Some(1)];
        let both = [Some(11u64), None, None]; // t1, t2 singletons in Π_A
        let pl = Partition::from_column(&lhs);
        let pa = Partition::from_column(&both);
        let out = create_target(RelId(1), 1, AttrSet::single(0), &pl, &pa, &[0, 1, 2], 100);
        let CreateOutcome::Target(pt) = out else {
            panic!("expected target")
        };
        let mut fd: Vec<(Tuple, Tuple)> = pt.fd_target.pairs().to_vec();
        fd.sort_unstable();
        assert_eq!(
            fd,
            vec![(0, 1), (0, 2), (1, 2)],
            "all pairs are FD conflicts"
        );
        assert!(pt.key_target.unwrap().is_empty());
    }

    #[test]
    fn overflow_is_reported() {
        let lhs: Vec<Option<u64>> = (0..60).map(|_| Some(1u64)).collect();
        let rhs: Vec<Option<u64>> = (0..60).map(|i| Some(i as u64)).collect();
        let pl = Partition::from_column(&lhs);
        let paired: Vec<Option<u64>> = rhs.iter().map(|r| r.map(|v| v + 100)).collect();
        let pa = Partition::from_column(&paired);
        let parent_of: Vec<Tuple> = (0..60).collect();
        let out = create_target(RelId(1), 1, AttrSet::single(0), &pl, &pa, &parent_of, 50);
        assert!(matches!(out, CreateOutcome::Overflow));
    }

    #[test]
    fn base_keyed_target_matches_product_keyed() {
        // Keying by the RHS base partition must reproduce the
        // product-keyed outcome exactly — same pairs, same Impossible /
        // Overflow decisions — across nulls, unique combos, and shared RHS
        // values that straddle LHS groups.
        type Case = (Vec<Option<u64>>, Vec<Option<u64>>, Vec<Tuple>, usize);
        let cases: Vec<Case> = vec![
            // The paper's worked example.
            (
                vec![Some(1), Some(2), Some(2), Some(2)],
                vec![Some(10), Some(20), Some(20), None],
                vec![0, 0, 1, 2],
                100,
            ),
            // Same-parent FD conflict (Impossible).
            (
                vec![Some(1), Some(1)],
                vec![Some(5), Some(6)],
                vec![0, 0],
                100,
            ),
            // Key collapse, FD viable.
            (
                vec![Some(1), Some(1), Some(1)],
                vec![Some(11), Some(11), Some(12)],
                vec![0, 0, 1],
                100,
            ),
            // Null RHS: product-stripped vs base-⊥ must agree.
            (
                vec![Some(1), Some(1), Some(1)],
                vec![Some(11), None, None],
                vec![0, 1, 2],
                100,
            ),
            // RHS values shared across LHS groups: base groups span pl
            // groups, product groups do not.
            (
                vec![Some(1), Some(1), Some(2), Some(2)],
                vec![Some(7), Some(8), Some(7), Some(8)],
                vec![0, 1, 2, 3],
                100,
            ),
            // Overflow at the same pair count.
            (
                (0..20).map(|_| Some(1)).collect(),
                (0..20).map(|i| Some(i as u64)).collect(),
                (0..20).collect(),
                50,
            ),
        ];
        for (lhs_col, rhs_col, parent_of, max_pairs) in cases {
            let pl = Partition::from_column(&lhs_col);
            let paired: Vec<Option<u64>> = lhs_col
                .iter()
                .zip(rhs_col.iter())
                .map(|(a, b)| match (a, b) {
                    (Some(a), Some(b)) => Some(a * 1000 + b),
                    _ => None,
                })
                .collect();
            let pa = Partition::from_column(&paired);
            let base = Partition::from_column(&rhs_col);
            let gm = GroupMap::new(&base);
            let via_product = create_target(
                RelId(1),
                1,
                AttrSet::single(0),
                &pl,
                &pa,
                &parent_of,
                max_pairs,
            );
            let via_base = create_target_from_base(
                RelId(1),
                1,
                AttrSet::single(0),
                &pl,
                &gm,
                &parent_of,
                max_pairs,
            );
            match (via_product, via_base) {
                (CreateOutcome::Target(a), CreateOutcome::Target(b)) => {
                    assert_eq!(a.fd_target.pairs(), b.fd_target.pairs());
                    assert_eq!(
                        a.key_target.map(|k| k.pairs().to_vec()),
                        b.key_target.map(|k| k.pairs().to_vec()),
                    );
                }
                (CreateOutcome::Impossible, CreateOutcome::Impossible) => {}
                (CreateOutcome::Overflow, CreateOutcome::Overflow) => {}
                (a, b) => panic!("outcomes diverged: {a:?} vs {b:?} for {lhs_col:?}/{rhs_col:?}"),
            }
        }
    }

    #[test]
    fn update_target_maps_and_extends() {
        let (pl, pa, parent_of) = paper_example();
        let CreateOutcome::Target(pt) =
            create_target(RelId(3), 2, AttrSet::single(0), &pl, &pa, &parent_of, 100)
        else {
            panic!()
        };
        // Move store-space pairs up to state space: stores 0,1 → state 0;
        // store 2 → state 1. FD pairs (0,2),(1,2) → (0,1); key pair (0,1)
        // collapses → key invalid but FD alive.
        let store_parent = vec![0, 0, 1];
        let updated = update_target(
            &pt,
            RelId(2),
            AttrSet::single(1),
            pt.fd_target.clone(),
            pt.key_target.clone(),
            &store_parent,
        )
        .expect("fd pairs survive");
        assert_eq!(updated.fd_target.pairs(), &[(0, 1)]);
        assert!(updated.key_target.is_none());
        assert_eq!(updated.lhs_levels.len(), 2);
        assert_eq!(updated.lhs_levels[1], (RelId(2), AttrSet::single(1)));

        // An FD-pair collapse drops the target entirely.
        let collapse_all = vec![0, 0, 0];
        assert!(update_target(
            &pt,
            RelId(2),
            AttrSet::empty(),
            pt.fd_target.clone(),
            None,
            &collapse_all,
        )
        .is_none());
    }
}
