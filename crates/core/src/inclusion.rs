//! Unary inclusion dependencies (INDs) across the relation forest —
//! reference/foreign-key discovery, the natural companion of FD discovery
//! for schema refinement (an extracted element needs a key *and* the
//! references pointing at it).
//!
//! An IND `A ⊆ B` holds when every non-⊥ value of column `A` occurs in
//! column `B`. Discovery follows the classical sort-merge approach
//! (à la SPIDER): build each simple column's distinct value set once, then
//! test candidate pairs by merge; candidates are pruned by set size
//! (`|A| ≤ |B|`) and by minimum support.

use std::collections::BTreeSet;

use xfd_relation::{ColumnKind, Forest, RelId};
use xfd_xml::Path;

/// A discovered inclusion dependency between two columns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ind {
    /// Tuple class of the dependent (referencing) column.
    pub from_class: Path,
    /// Dependent column path, relative to its pivot.
    pub from_path: Path,
    /// Tuple class of the referenced column (a representative when the
    /// target is a label union).
    pub to_class: Path,
    /// Referenced column path, relative to its pivot.
    pub to_path: Path,
    /// The referenced side unions every same-labeled relation (e.g. the
    /// per-region `item` classes of XMark).
    pub union_target: bool,
    /// Distinct values in the dependent column.
    pub support: usize,
}

impl std::fmt::Display for Ind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} of C_{} ⊆ {} of {}C_{}  [{} values]",
            self.from_path,
            crate::fd::class_name(&self.from_class),
            self.to_path,
            if self.union_target { "any " } else { "" },
            crate::fd::class_name(&self.to_class),
            self.support
        )
    }
}

/// Options for IND discovery.
#[derive(Debug, Clone, Copy)]
pub struct IndOptions {
    /// Minimum number of distinct values in the dependent column (tiny
    /// domains produce accidental inclusions).
    pub min_support: usize,
    /// Require the referenced column to be unique over its relation (a
    /// key-like target — the classical foreign-key shape).
    pub referenced_unique: bool,
}

impl Default for IndOptions {
    fn default() -> Self {
        IndOptions {
            min_support: 3,
            referenced_unique: true,
        }
    }
}

struct ColumnInfo {
    rel: RelId,
    col: usize,
    values: BTreeSet<u64>,
    cells: usize,
    unique: bool,
}

/// Discover unary INDs between simple columns of different `(relation,
/// column)` pairs. Referenced-side candidates additionally include the
/// *union* of same-labeled relations' same-named columns (e.g. XMark's
/// per-region `item/@id` sets, which only jointly cover the references).
pub fn discover_inds(forest: &Forest, options: &IndOptions) -> Vec<Ind> {
    let mut infos: Vec<ColumnInfo> = Vec::new();
    for rel in &forest.relations {
        for (c, col) in rel.columns.iter().enumerate() {
            if col.kind != ColumnKind::Simple {
                continue;
            }
            let mut values = BTreeSet::new();
            let mut cells = 0usize;
            for v in col.cells.iter().flatten() {
                values.insert(*v);
                cells += 1;
            }
            let unique = values.len() == cells;
            infos.push(ColumnInfo {
                rel: rel.id,
                col: c,
                values,
                cells,
                unique,
            });
        }
    }
    // Union targets per (relation label, column name) with ≥ 2 members.
    struct UnionInfo {
        rep_rel: RelId,
        rep_col: usize,
        members: Vec<usize>, // indices into infos
        values: BTreeSet<u64>,
        unique: bool,
    }
    let mut unions: Vec<UnionInfo> = Vec::new();
    for (i, info) in infos.iter().enumerate() {
        let rel = forest.relation(info.rel);
        let key = (rel.name.clone(), rel.columns[info.col].name.clone());
        match unions.iter_mut().find(|u| {
            let r = forest.relation(u.rep_rel);
            (r.name.clone(), r.columns[u.rep_col].name.clone()) == key
        }) {
            Some(u) => {
                u.members.push(i);
                u.values.extend(info.values.iter().copied());
            }
            None => unions.push(UnionInfo {
                rep_rel: info.rel,
                rep_col: info.col,
                members: vec![i],
                values: info.values.clone(),
                unique: false,
            }),
        }
    }
    unions.retain(|u| u.members.len() >= 2);
    for u in &mut unions {
        let total_cells: usize = u.members.iter().map(|&i| infos[i].cells).sum();
        u.unique = u.values.len() == total_cells;
    }

    let mut out = Vec::new();
    for a in &infos {
        if a.values.len() < options.min_support {
            continue;
        }
        for b in &infos {
            if (a.rel, a.col) == (b.rel, b.col)
                || a.values.len() > b.values.len()
                || (options.referenced_unique && !b.unique)
            {
                continue;
            }
            if a.values.is_subset(&b.values) {
                let fr = forest.relation(a.rel);
                let tr = forest.relation(b.rel);
                out.push(Ind {
                    from_class: fr.pivot_path.clone(),
                    from_path: fr.columns[a.col].rel_path.clone(),
                    to_class: tr.pivot_path.clone(),
                    to_path: tr.columns[b.col].rel_path.clone(),
                    union_target: false,
                    support: a.values.len(),
                });
            }
        }
        for u in &unions {
            if u.members
                .iter()
                .any(|&i| (infos[i].rel, infos[i].col) == (a.rel, a.col))
            {
                continue; // a is part of the union itself
            }
            if a.values.len() > u.values.len()
                || (options.referenced_unique && !u.unique)
                || !a.values.is_subset(&u.values)
            {
                continue;
            }
            let fr = forest.relation(a.rel);
            let tr = forest.relation(u.rep_rel);
            out.push(Ind {
                from_class: fr.pivot_path.clone(),
                from_path: fr.columns[a.col].rel_path.clone(),
                to_class: tr.pivot_path.clone(),
                to_path: tr.columns[u.rep_col].rel_path.clone(),
                union_target: true,
                support: a.values.len(),
            });
        }
    }
    // Drop display-level duplicates (e.g. the same inclusion into each
    // same-labeled region relation).
    let mut seen = BTreeSet::new();
    out.retain(|ind| seen.insert(ind.to_string()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use xfd_datagen::{xmark_like, XmarkSpec};
    use xfd_relation::{encode, EncodeConfig};
    use xfd_schema::infer_schema;
    use xfd_xml::parse;

    fn forest_of(tree: &xfd_xml::DataTree) -> Forest {
        let schema = infer_schema(tree);
        encode(tree, &schema, &EncodeConfig::default())
    }

    #[test]
    fn simple_foreign_key_is_found() {
        let t = parse(
            "<db>\
             <item><id>i1</id></item><item><id>i2</id></item>\
             <item><id>i3</id></item><item><id>i4</id></item>\
             <order><ref>i1</ref></order><order><ref>i3</ref></order>\
             <order><ref>i1</ref></order><order><ref>i4</ref></order>\
             </db>",
        )
        .unwrap();
        let f = forest_of(&t);
        let inds = discover_inds(&f, &IndOptions::default());
        assert!(
            inds.iter()
                .any(|i| i.to_string().contains("./ref of C_order ⊆ ./id of C_item")),
            "{inds:#?}"
        );
    }

    #[test]
    fn dangling_references_break_the_ind() {
        let t = parse(
            "<db>\
             <item><id>i1</id></item><item><id>i2</id></item><item><id>i3</id></item>\
             <order><ref>i1</ref></order><order><ref>iMISSING</ref></order>\
             <order><ref>i3</ref></order>\
             </db>",
        )
        .unwrap();
        let f = forest_of(&t);
        let inds = discover_inds(
            &f,
            &IndOptions {
                min_support: 2,
                ..Default::default()
            },
        );
        assert!(
            !inds.iter().any(|i| i.to_string().contains("C_order ⊆")),
            "{inds:#?}"
        );
    }

    #[test]
    fn min_support_suppresses_tiny_domains() {
        let t = parse(
            "<db>\
             <a><x>1</x></a><a><x>2</x></a>\
             <b><y>1</y></b><b><y>2</y></b><b><y>3</y></b>\
             </db>",
        )
        .unwrap();
        let f = forest_of(&t);
        let strict = discover_inds(
            &f,
            &IndOptions {
                min_support: 3,
                referenced_unique: false,
            },
        );
        assert!(strict.is_empty(), "{strict:#?}");
        let loose = discover_inds(
            &f,
            &IndOptions {
                min_support: 2,
                referenced_unique: false,
            },
        );
        assert!(
            loose.iter().any(|i| i.to_string().contains("C_a ⊆")),
            "{loose:#?}"
        );
    }

    #[test]
    fn xmark_references_are_discovered() {
        // itemref/@item values come from the item catalog; with a unique-
        // target requirement relaxed (items repeat across regions), the
        // inclusion from auction references into item ids must appear.
        let t = xmark_like(&XmarkSpec::with_scale(1.0));
        let f = forest_of(&t);
        let inds = discover_inds(
            &f,
            &IndOptions {
                min_support: 5,
                referenced_unique: false,
            },
        );
        assert!(
            inds.iter().any(|i| {
                i.from_path.to_string() == "./itemref/@item"
                    && i.to_path.to_string() == "./@id"
                    && i.to_class.to_string().contains("item")
            }),
            "{:#?}",
            inds.iter().map(Ind::to_string).collect::<Vec<_>>()
        );
    }
}
