//! FD implication and canonical covers (Armstrong's axioms) over one
//! relation's attribute space.
//!
//! Discovery reports *minimal* FDs, but downstream consumers (schema
//! refiners, documentation) often want the implication structure: does a
//! candidate FD follow from the discovered ones? What is a canonical
//! (minimal, reduced) cover? This module implements the classical
//! machinery — attribute-set closure, implication, and canonical covers —
//! on [`AttrSet`]s, so it applies to any relation of the hierarchical
//! representation (and to the flat baseline).

use xfd_partition::AttrSet;

use crate::lattice::IntraFd;

/// Closure `X⁺` of `attrs` under `fds` (Armstrong: reflexivity,
/// augmentation, transitivity).
pub fn closure(attrs: AttrSet, fds: &[IntraFd]) -> AttrSet {
    let mut closed = attrs;
    loop {
        let before = closed;
        for fd in fds {
            if fd.lhs.is_subset_of(closed) {
                closed = closed.insert(fd.rhs);
            }
        }
        if closed == before {
            return closed;
        }
    }
}

/// Does `fds ⊨ candidate` (the candidate follows by Armstrong's axioms)?
pub fn implies(fds: &[IntraFd], candidate: &IntraFd) -> bool {
    closure(candidate.lhs, fds).contains(candidate.rhs)
}

/// Compute a canonical cover: left-reduced (no extraneous LHS attribute)
/// and non-redundant (no FD implied by the others). The result implies
/// exactly the same FDs as the input.
pub fn canonical_cover(fds: &[IntraFd]) -> Vec<IntraFd> {
    // Left-reduce each FD.
    let mut cover: Vec<IntraFd> = fds
        .iter()
        .map(|fd| {
            let mut lhs = fd.lhs;
            for a in fd.lhs.iter() {
                let smaller = lhs.remove(a);
                if closure(smaller, fds).contains(fd.rhs) {
                    lhs = smaller;
                }
            }
            IntraFd { lhs, rhs: fd.rhs }
        })
        .collect();
    cover.sort_by_key(|fd| (fd.lhs.bits(), fd.rhs));
    cover.dedup();
    // Drop redundant FDs (re-checking against the shrinking cover).
    let mut i = 0;
    while i < cover.len() {
        let fd = cover[i];
        let mut rest: Vec<IntraFd> = cover.clone();
        rest.remove(i);
        if implies(&rest, &fd) {
            cover.remove(i);
        } else {
            i += 1;
        }
    }
    cover
}

/// Is the attribute set a superkey w.r.t. `fds` over `all_attrs`?
pub fn is_superkey(attrs: AttrSet, all_attrs: AttrSet, fds: &[IntraFd]) -> bool {
    all_attrs.is_subset_of(closure(attrs, fds))
}

/// All candidate keys (minimal superkeys) over `all_attrs` under `fds`.
/// Exponential — intended for the narrow relations of the hierarchical
/// representation.
pub fn candidate_keys(all_attrs: AttrSet, fds: &[IntraFd]) -> Vec<AttrSet> {
    let attrs: Vec<usize> = all_attrs.iter().collect();
    let m = attrs.len();
    let mut keys: Vec<AttrSet> = Vec::new();
    // Level-wise so minimal keys are found first.
    for size in 0..=m {
        for bits in 0u64..(1 << m) {
            if (bits.count_ones() as usize) != size {
                continue;
            }
            let set = AttrSet::from_iter((0..m).filter(|i| bits & (1 << i) != 0).map(|i| attrs[i]));
            if keys.iter().any(|k| k.is_subset_of(set)) {
                continue;
            }
            if is_superkey(set, all_attrs, fds) {
                keys.push(set);
            }
        }
    }
    keys
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fd(lhs: &[usize], rhs: usize) -> IntraFd {
        IntraFd {
            lhs: AttrSet::from_iter(lhs.iter().copied()),
            rhs,
        }
    }

    #[test]
    fn closure_is_reflexive_and_transitive() {
        // 0→1, 1→2 ⇒ {0}⁺ = {0,1,2}.
        let fds = [fd(&[0], 1), fd(&[1], 2)];
        assert_eq!(
            closure(AttrSet::single(0), &fds),
            AttrSet::from_iter([0, 1, 2])
        );
        assert_eq!(closure(AttrSet::single(2), &fds), AttrSet::single(2));
    }

    #[test]
    fn implication_via_augmentation() {
        // 0→1 implies {0,2}→1.
        let fds = [fd(&[0], 1)];
        assert!(implies(&fds, &fd(&[0, 2], 1)));
        assert!(!implies(&fds, &fd(&[1], 0)));
        assert!(implies(&fds, &fd(&[1], 1)), "trivial FDs always follow");
    }

    #[test]
    fn canonical_cover_left_reduces() {
        // {0,1}→2 with 0→1: LHS reduces to {0}.
        let fds = [fd(&[0, 1], 2), fd(&[0], 1)];
        let cover = canonical_cover(&fds);
        assert!(cover.contains(&fd(&[0], 2)), "{cover:?}");
        assert!(cover.contains(&fd(&[0], 1)));
        assert_eq!(cover.len(), 2);
    }

    #[test]
    fn canonical_cover_drops_redundant_fds() {
        // 0→1, 1→2, 0→2: the last is implied.
        let fds = [fd(&[0], 1), fd(&[1], 2), fd(&[0], 2)];
        let cover = canonical_cover(&fds);
        assert_eq!(cover.len(), 2, "{cover:?}");
        assert!(implies(&cover, &fd(&[0], 2)));
    }

    #[test]
    fn cover_preserves_implication_power() {
        let fds = [fd(&[0], 1), fd(&[1, 2], 3), fd(&[0, 2], 3), fd(&[3], 0)];
        let cover = canonical_cover(&fds);
        // Everything in the original follows from the cover and vice versa.
        for f in &fds {
            assert!(implies(&cover, f), "cover lost {f:?}");
        }
        for f in &cover {
            assert!(implies(&fds, f));
        }
    }

    #[test]
    fn candidate_keys_classic_example() {
        // R(0,1,2,3) with 0→1, 2→3: candidate key {0,2}.
        let fds = [fd(&[0], 1), fd(&[2], 3)];
        let keys = candidate_keys(AttrSet::from_iter([0, 1, 2, 3]), &fds);
        assert_eq!(keys, vec![AttrSet::from_iter([0, 2])]);
        // Cyclic: 0→1, 1→0, {0,2} and {1,2} both keys.
        let fds = [fd(&[0], 1), fd(&[1], 0), fd(&[0, 2], 3)];
        let keys = candidate_keys(AttrSet::from_iter([0, 1, 2, 3]), &fds);
        assert_eq!(keys.len(), 2);
    }

    #[test]
    fn armstrong_laws_on_random_fd_sets() {
        // Deterministic pseudo-random FD sets; check soundness laws.
        let mut seed = 0xDEADBEEFu64;
        let mut next = move || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            seed >> 33
        };
        for _ in 0..50 {
            let m = 5usize;
            let n_fds = (next() % 5 + 1) as usize;
            let fds: Vec<IntraFd> = (0..n_fds)
                .map(|_| {
                    let lhs = AttrSet::from_iter((0..m).filter(|_| next() % 3 == 0));
                    IntraFd {
                        lhs,
                        rhs: (next() as usize) % m,
                    }
                })
                .collect();
            let cover = canonical_cover(&fds);
            for f in &fds {
                assert!(implies(&cover, f), "cover must imply {f:?} (fds {fds:?})");
            }
            // Closure is monotone: X ⊆ Y ⇒ X⁺ ⊆ Y⁺.
            let x = AttrSet::from_iter([0, 1]);
            let y = AttrSet::from_iter([0, 1, 2]);
            assert!(closure(x, &fds).is_subset_of(closure(y, &fds)));
            // Closure is idempotent.
            let cx = closure(x, &fds);
            assert_eq!(closure(cx, &fds), cx);
        }
    }
}
